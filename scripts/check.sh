#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 test suite (see ROADMAP.md).
# Run from anywhere; operates on the workspace containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> fault matrix (deterministic fault injection across models x policies)"
cargo test -p nest-transfer --release --test fault_matrix

echo "==> fault stress loop (seeded, --features fault-injection)"
cargo test -p nest-transfer --release --features fault-injection fault_stress

echo "==> all checks passed"
