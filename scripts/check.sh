#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 test suite (see ROADMAP.md).
# Run from anywhere; operates on the workspace containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> nest-lint (repo-rule source gate: shim-only locks, named locks, metric catalog, SAFETY comments, atomic orderings)"
cargo run -q -p nest-lint

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> nest-check (invariant macro + lock-order detector unit/regression tests, debug build)"
cargo test -q -p nest-check -p parking_lot

echo "==> tier-1 under lock-order deadlock detection (NEST_LOCK_ORDER=1)"
NEST_LOCK_ORDER=1 cargo test -q

echo "==> nest-model (deterministic interleaving explorer, --features model; wall-clock budget 60s)"
model_start=$SECONDS
cargo test -q -p nest-model --features model
model_elapsed=$((SECONDS - model_start))
if [ "$model_elapsed" -gt 60 ]; then
  echo "    nest-model: FAILED (took ${model_elapsed}s, budget 60s — a scenario outgrew exhaustive exploration)" >&2
  exit 1
fi
echo "    nest-model: PASSED (${model_elapsed}s)"

# Sanitizer passes are best-effort: they need a nightly toolchain with
# rust-src for -Zbuild-std. Each reports PASSED / SKIPPED (reason)
# explicitly so a log reader can tell "ran clean" from "never ran".
san_src=""
if cargo +nightly --version >/dev/null 2>&1; then
  san_src="$(rustc +nightly --print sysroot)/lib/rustlib/src/rust/library"
fi
san_host="$(rustc -vV | sed -n 's/^host: //p')"

echo "==> ThreadSanitizer spot-check (parking_lot shim)"
if [ -n "$san_src" ] && [ -d "$san_src" ]; then
  if RUSTFLAGS="-Zsanitizer=thread" RUSTDOCFLAGS="-Zsanitizer=thread" \
     cargo +nightly test -Zbuild-std --target "$san_host" \
       -q -p parking_lot 2>target/tsan.log; then
    echo "    tsan: PASSED (parking_lot shim clean)"
  else
    echo "    tsan: FAILED (see target/tsan.log)" >&2
    exit 1
  fi
else
  echo "    tsan: SKIPPED (nightly toolchain with rust-src not available)"
fi

echo "==> AddressSanitizer + LeakSanitizer pass (tests/fault_paths.rs: fault-path cleanup must not leak)"
if [ -n "$san_src" ] && [ -d "$san_src" ]; then
  if RUSTFLAGS="-Zsanitizer=address" RUSTDOCFLAGS="-Zsanitizer=address" \
     cargo +nightly test -Zbuild-std --target "$san_host" \
       -q --test fault_paths 2>target/asan.log; then
    echo "    asan/lsan: PASSED (fault paths clean, no leaks)"
  else
    echo "    asan/lsan: FAILED (see target/asan.log)" >&2
    exit 1
  fi
else
  echo "    asan/lsan: SKIPPED (nightly toolchain with rust-src not available)"
fi

echo "==> fault matrix (deterministic fault injection across models x policies)"
cargo test -p nest-transfer --release --test fault_matrix

echo "==> fault stress loop (seeded, --features fault-injection)"
cargo test -p nest-transfer --release --features fault-injection fault_stress

echo "==> datapath bench smoke (real LocalFsBackend, JSON schema check)"
cargo run --release -p nest-bench --bin datapath -- --smoke --out target/datapath_smoke.json
for key in get_speedup put_speedup nfs_speedup zerocopy_speedup zerocopy_wall_ratio socket_get_mbps socket_get_mb_per_cpu_sec handlecache_hits bufpool_reuse; do
  grep -q "\"$key\"" target/datapath_smoke.json ||
    { echo "datapath smoke JSON missing key: $key" >&2; exit 1; }
done

echo "==> connchurn bench smoke (session-layer accept path vs sleep-poll ablation, JSON schema check)"
cargo run --release -p nest-bench --bin connchurn -- --smoke --out target/connchurn_smoke.json
for key in churn_speedup pooled_conns_per_sec baseline_conns_per_sec p99_improvement; do
  grep -q "\"$key\"" target/connchurn_smoke.json ||
    { echo "connchurn smoke JSON missing key: $key" >&2; exit 1; }
done

echo "==> memtier bench smoke (RAM tier vs ram_tier_bytes(0) ablation grid, JSON schema check)"
cargo run --release -p nest-bench --bin memtier -- --smoke --out target/memtier_smoke.json
for key in hot_speedup hot_speedup_no_hc cold_penalty_pct tier_budget memtier_hits memtier_misses memtier_promotions memtier_demotions memtier_bytes; do
  grep -q "\"$key\"" target/memtier_smoke.json ||
    { echo "memtier smoke JSON missing key: $key" >&2; exit 1; }
done

echo "==> scale bench smoke (10k-session churn vs shards=1 ablation, JSON schema check)"
cargo run --release -p nest-bench --bin scale -- --smoke --out target/scale_smoke.json
for key in throughput_hold_ratio ablation_hold_ratio top_contended_before top_contended_after virtual_hold_ratio; do
  grep -q "\"$key\"" target/scale_smoke.json ||
    { echo "scale smoke JSON missing key: $key" >&2; exit 1; }
done

echo "==> all checks passed"
