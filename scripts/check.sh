#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 test suite (see ROADMAP.md).
# Run from anywhere; operates on the workspace containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> fault matrix (deterministic fault injection across models x policies)"
cargo test -p nest-transfer --release --test fault_matrix

echo "==> fault stress loop (seeded, --features fault-injection)"
cargo test -p nest-transfer --release --features fault-injection fault_stress

echo "==> datapath bench smoke (real LocalFsBackend, JSON schema check)"
cargo run --release -p nest-bench --bin datapath -- --smoke --out target/datapath_smoke.json
for key in get_speedup put_speedup nfs_speedup handlecache_hits bufpool_reuse; do
  grep -q "\"$key\"" target/datapath_smoke.json ||
    { echo "datapath smoke JSON missing key: $key" >&2; exit 1; }
done

echo "==> all checks passed"
