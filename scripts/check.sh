#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 test suite (see ROADMAP.md).
# Run from anywhere; operates on the workspace containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> all checks passed"
