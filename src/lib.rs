//! # nest
//!
//! Facade crate for the NeST Grid storage appliance reproduction. Re-exports
//! every subsystem crate under one roof so examples, integration tests and
//! downstream users can depend on a single crate.
//!
//! See `README.md` for the architecture overview and `DESIGN.md` for the
//! system inventory and the per-experiment index.

pub use nest_classad as classad;
pub use nest_core as core;
pub use nest_grid as grid;
pub use nest_jbos as jbos;
pub use nest_obs as obs;
pub use nest_proto as proto;
pub use nest_s3front as s3front;
pub use nest_simenv as simenv;
pub use nest_storage as storage;
pub use nest_sunrpc as sunrpc;
pub use nest_transfer as transfer;
