//! Lock-cheap metric instruments.
//!
//! Every instrument here is updated with plain atomic operations; locks are
//! confined to the [`EwmaMeter`]'s small state cell (uncontended in
//! practice) and to registry bookkeeping. Instruments are shared as
//! `Arc<..>` handles obtained from [`crate::Registry`], so the hot path
//! never touches the registry map.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed level (queue depth, active connections, bytes
/// committed).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the level.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Exponentially weighted moving-average rate meter.
///
/// Feed it event magnitudes (e.g. bytes moved) via [`EwmaMeter::mark`] and
/// read a smoothed per-second rate via [`EwmaMeter::rate_per_sec`]. The
/// smoothing uses the irregular-interval EWMA
/// `r ← r + (1 − e^(−Δt/τ)) · (x/Δt − r)` so bursts decay with time
/// constant `τ` regardless of how unevenly samples arrive; reads decay the
/// rate toward zero across idle gaps.
#[derive(Debug)]
pub struct EwmaMeter {
    tau: Duration,
    state: Mutex<EwmaState>,
}

#[derive(Debug)]
struct EwmaState {
    rate: f64,
    last: Option<Instant>,
}

impl Default for EwmaMeter {
    fn default() -> Self {
        Self::new(Duration::from_secs(10))
    }
}

impl EwmaMeter {
    /// A meter with smoothing time constant `tau`.
    pub fn new(tau: Duration) -> Self {
        assert!(!tau.is_zero(), "zero EWMA time constant");
        Self {
            tau,
            state: Mutex::named(
                "obs.ewma",
                920,
                EwmaState {
                    rate: 0.0,
                    last: None,
                },
            ),
        }
    }

    /// Records `amount` units now.
    pub fn mark(&self, amount: u64) {
        self.mark_at(amount, Instant::now());
    }

    /// Records `amount` units at `now` (deterministic variant for tests).
    pub fn mark_at(&self, amount: u64, now: Instant) {
        let mut s = self.state.lock();
        match s.last {
            None => {
                // First sample: no interval to derive a rate from yet;
                // treat it as having arrived over one time constant.
                s.rate = amount as f64 / self.tau.as_secs_f64();
            }
            Some(last) => {
                let dt = now.saturating_duration_since(last).as_secs_f64();
                if dt <= 0.0 {
                    // Same-instant burst: fold into the current estimate as
                    // if spread over the time constant.
                    s.rate += amount as f64 / self.tau.as_secs_f64();
                } else {
                    let inst = amount as f64 / dt;
                    let alpha = 1.0 - (-dt / self.tau.as_secs_f64()).exp();
                    s.rate += alpha * (inst - s.rate);
                }
            }
        }
        s.last = Some(now);
    }

    /// Smoothed rate in units per second, decayed across any idle gap.
    pub fn rate_per_sec(&self) -> f64 {
        self.rate_per_sec_at(Instant::now())
    }

    /// Deterministic variant of [`EwmaMeter::rate_per_sec`].
    pub fn rate_per_sec_at(&self, now: Instant) -> f64 {
        let s = self.state.lock();
        match s.last {
            None => 0.0,
            Some(last) => {
                let idle = now.saturating_duration_since(last).as_secs_f64();
                s.rate * (-idle / self.tau.as_secs_f64()).exp()
            }
        }
    }
}

/// One cache line of counter. The padding keeps adjacent stripes of a
/// [`ShardedCounter`] off each other's lines so concurrent adds from
/// different threads stop invalidating one shared line.
#[derive(Debug, Default)]
#[repr(align(64))]
struct CounterStripe {
    value: AtomicU64,
}

/// A striped monotonic counter for per-chunk hot paths.
///
/// [`Counter`] is one atomic: correct, but at 10k sessions every add is a
/// cache-line bounce. A `ShardedCounter` spreads adds over `N` padded
/// stripes selected by a caller-supplied hint (engine-thread index, shard
/// index, connection id) and sums them on read. Reads are *sloppy*: the
/// total is a sum of relaxed loads, exact once writers quiesce, and never
/// ahead of what writers have published — the same read semantics every
/// statistics snapshot here already has.
#[derive(Debug)]
pub struct ShardedCounter {
    stripes: Vec<CounterStripe>,
}

impl ShardedCounter {
    /// A counter with `stripes` stripes (clamped to at least 1).
    pub fn new(stripes: usize) -> Self {
        Self {
            stripes: (0..stripes.max(1))
                .map(|_| CounterStripe::default())
                .collect(),
        }
    }

    /// Number of stripes.
    pub fn stripes(&self) -> usize {
        self.stripes.len()
    }

    /// Adds `n` to the stripe selected by `hint` (any stable per-thread
    /// or per-shard number; reduced modulo the stripe count).
    pub fn add(&self, hint: usize, n: u64) {
        self.stripes[hint % self.stripes.len()]
            .value
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the stripe selected by `hint`.
    pub fn inc(&self, hint: usize) {
        self.add(hint, 1);
    }

    /// Sloppy total: the sum of all stripes.
    pub fn value(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.value.load(Ordering::Relaxed))
            .sum()
    }
}

/// Number of logarithmic buckets: bucket `i` holds samples in
/// `[2^(i-1), 2^i)` microseconds (bucket 0 holds `0..1`). 40 buckets cover
/// sub-microsecond through ~6-day latencies.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A fixed-bucket, log₂-scaled latency histogram.
///
/// Recording is two atomic adds plus an atomic max; no allocation, no
/// locking. Quantiles are read out by walking the bucket array and
/// reporting the upper bound of the bucket containing the requested rank —
/// accurate to a factor of two, which is plenty for spotting a slow
/// backend or a saturated scheduler.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_index(us: u64) -> usize {
        // 0 → bucket 0; otherwise 1 + floor(log2(us)), clamped.
        if us == 0 {
            0
        } else {
            ((64 - us.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Upper bound (µs, inclusive-exclusive) of bucket `i`.
    fn bucket_upper_us(i: usize) -> u64 {
        if i == 0 {
            1
        } else {
            1u64 << i
        }
    }

    /// Records a latency sample.
    pub fn record(&self, d: Duration) {
        self.record_us(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Records a latency sample in microseconds.
    pub fn record_us(&self, us: u64) {
        self.buckets[Self::bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_us.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Largest recorded sample in microseconds.
    pub fn max_us(&self) -> u64 {
        self.max_us.load(Ordering::Relaxed)
    }

    /// Approximate quantile (`0.0 ..= 1.0`) in microseconds: the upper
    /// bound of the bucket containing the requested rank. Returns 0 when
    /// empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based, at least 1.
        let rank = ((q * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_upper_us(i);
            }
        }
        Self::bucket_upper_us(HISTOGRAM_BUCKETS - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);

        let g = Gauge::new();
        g.set(5);
        g.add(-2);
        g.inc();
        g.dec();
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn sharded_counter_sums_across_stripes() {
        let c = std::sync::Arc::new(ShardedCounter::new(8));
        assert_eq!(c.stripes(), 8);
        let mut handles = Vec::new();
        for t in 0..4usize {
            let c = std::sync::Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    c.inc(t);
                }
                c.add(t + 100, 5);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.value(), 4 * 10_000 + 4 * 5);
        // Zero stripes clamps to one and still works.
        let one = ShardedCounter::new(0);
        one.add(usize::MAX, 3);
        assert_eq!(one.value(), 3);
    }

    #[test]
    fn ewma_converges_to_steady_rate() {
        let m = EwmaMeter::new(Duration::from_secs(2));
        let t0 = Instant::now();
        // 1000 units every 100ms = 10_000 units/sec, for 30s of model time.
        for i in 1..=300u64 {
            m.mark_at(1000, t0 + Duration::from_millis(100 * i));
        }
        let rate = m.rate_per_sec_at(t0 + Duration::from_secs(30));
        assert!(
            (rate - 10_000.0).abs() / 10_000.0 < 0.05,
            "rate {} not near 10k/s",
            rate
        );
    }

    #[test]
    fn ewma_decays_when_idle() {
        let m = EwmaMeter::new(Duration::from_secs(1));
        let t0 = Instant::now();
        for i in 1..=50u64 {
            m.mark_at(100, t0 + Duration::from_millis(100 * i));
        }
        let busy = m.rate_per_sec_at(t0 + Duration::from_secs(5));
        let idle = m.rate_per_sec_at(t0 + Duration::from_secs(15));
        assert!(busy > 0.0);
        // Ten time constants of idling: rate must have collapsed.
        assert!(
            idle < busy * 1e-3,
            "idle rate {} did not decay from {}",
            idle,
            busy
        );
    }

    #[test]
    fn ewma_burst_at_same_instant_accumulates() {
        let m = EwmaMeter::new(Duration::from_secs(1));
        let t0 = Instant::now();
        m.mark_at(100, t0);
        let r1 = m.rate_per_sec_at(t0);
        m.mark_at(100, t0);
        let r2 = m.rate_per_sec_at(t0);
        assert!(r2 > r1);
    }

    #[test]
    fn histogram_bucket_edges() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_quantiles_bracket_the_data() {
        let h = Histogram::new();
        // 90 fast samples at 10µs, 10 slow ones at 10ms.
        for _ in 0..90 {
            h.record_us(10);
        }
        for _ in 0..10 {
            h.record_us(10_000);
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_us(0.50);
        let p99 = h.quantile_us(0.99);
        // p50 must land in the 10µs bucket [8,16), p99 in [8192,16384).
        assert_eq!(p50, 16);
        assert_eq!(p99, 16_384);
        assert!(p50 < p99);
        let mean = h.mean_us();
        assert!((mean - (90.0 * 10.0 + 10.0 * 10_000.0) / 100.0).abs() < 1e-9);
        assert_eq!(h.max_us(), 10_000);
    }

    #[test]
    fn histogram_empty_is_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_us(), 0.0);
        assert_eq!(h.quantile_us(0.99), 0);
    }

    #[test]
    fn histogram_duration_overflow_saturates() {
        let h = Histogram::new();
        h.record(Duration::from_secs(u64::MAX / 1_000_000 + 1));
        assert_eq!(h.count(), 1);
        assert_eq!(
            h.quantile_us(1.0),
            Histogram::bucket_upper_us(HISTOGRAM_BUCKETS - 1)
        );
    }
}
