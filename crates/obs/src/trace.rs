//! A lightweight span/tracing facility with a pluggable sink.
//!
//! A [`Span`] times a region of code and carries a few key/value tags;
//! when it drops (or [`Span::finish`] is called) the completed
//! [`SpanRecord`] is handed to whatever [`SpanSink`] is installed on the
//! [`Tracer`]. With no sink installed, spans cost one `Instant::now()` and
//! a relaxed load — cheap enough to leave enabled on request paths.

use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A completed span: name, wall-clock duration, and tags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (e.g. `"dispatch.get"`).
    pub name: String,
    /// Elapsed wall time in microseconds.
    pub elapsed_us: u64,
    /// Key/value tags attached while the span was open.
    pub tags: Vec<(String, String)>,
}

/// Receives completed spans. Implementations must be cheap and
/// non-blocking; they run inline on the instrumented path.
pub trait SpanSink: Send + Sync {
    /// Consumes one completed span.
    fn record(&self, span: SpanRecord);
}

/// A sink that buffers spans in memory; intended for tests and for the
/// simple "recent activity" views.
pub struct CollectingSink {
    spans: Mutex<Vec<SpanRecord>>,
}

impl Default for CollectingSink {
    fn default() -> Self {
        Self {
            spans: Mutex::named("obs.trace.spans", 911, Vec::new()),
        }
    }
}

impl CollectingSink {
    /// Creates an empty collecting sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drains and returns everything recorded so far.
    pub fn take(&self) -> Vec<SpanRecord> {
        std::mem::take(&mut self.spans.lock())
    }

    /// Number of spans currently buffered.
    pub fn len(&self) -> usize {
        self.spans.lock().len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl SpanSink for CollectingSink {
    fn record(&self, span: SpanRecord) {
        self.spans.lock().push(span);
    }
}

/// Hands out spans and routes completed ones to the installed sink.
pub struct Tracer {
    sink: RwLock<Option<Arc<dyn SpanSink>>>,
    // Fast-path flag mirroring `sink.is_some()` so span completion can
    // skip the lock entirely when tracing is off.
    enabled: AtomicBool,
}

impl Default for Tracer {
    fn default() -> Self {
        Self {
            sink: RwLock::named("obs.trace.sink", 910, None),
            enabled: AtomicBool::new(false),
        }
    }
}

impl Tracer {
    /// Creates a tracer with no sink installed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs (or, with `None`, removes) the sink receiving completed
    /// spans.
    pub fn set_sink(&self, sink: Option<Arc<dyn SpanSink>>) {
        self.enabled.store(sink.is_some(), Ordering::Release);
        *self.sink.write() = sink;
    }

    /// True when a sink is installed.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    /// Opens a span named `name`; it reports when dropped or finished.
    pub fn span(&self, name: impl Into<String>) -> Span<'_> {
        Span {
            tracer: self,
            name: name.into(),
            start: Instant::now(),
            tags: Vec::new(),
            done: false,
        }
    }

    fn complete(&self, record: SpanRecord) {
        if !self.is_enabled() {
            return;
        }
        if let Some(sink) = self.sink.read().as_ref() {
            sink.record(record);
        }
    }
}

/// An open, timed region of code. Reports to the tracer's sink on drop.
pub struct Span<'a> {
    tracer: &'a Tracer,
    name: String,
    start: Instant,
    tags: Vec<(String, String)>,
    done: bool,
}

impl Span<'_> {
    /// Attaches a key/value tag (no-op when tracing is disabled).
    pub fn tag(&mut self, key: impl Into<String>, value: impl ToString) {
        if self.tracer.is_enabled() {
            self.tags.push((key.into(), value.to_string()));
        }
    }

    /// Microseconds elapsed since the span opened.
    pub fn elapsed_us(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Ends the span now, reporting it to the sink.
    pub fn finish(mut self) {
        self.complete();
    }

    fn complete(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        self.tracer.complete(SpanRecord {
            name: std::mem::take(&mut self.name),
            elapsed_us: self.elapsed_us(),
            tags: std::mem::take(&mut self.tags),
        });
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.complete();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_reach_the_sink() {
        let tracer = Tracer::new();
        let sink = Arc::new(CollectingSink::new());
        tracer.set_sink(Some(sink.clone()));

        {
            let mut s = tracer.span("op.read");
            s.tag("path", "/data/a");
        } // drop reports
        tracer.span("op.write").finish();

        let spans = sink.take();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "op.read");
        assert_eq!(
            spans[0].tags,
            vec![("path".to_owned(), "/data/a".to_owned())]
        );
        assert_eq!(spans[1].name, "op.write");
    }

    #[test]
    fn no_sink_means_no_buffering_cost() {
        let tracer = Tracer::new();
        assert!(!tracer.is_enabled());
        let mut s = tracer.span("quiet");
        s.tag("k", "v"); // ignored while disabled
        drop(s); // must not panic or block
    }

    #[test]
    fn sink_can_be_swapped_at_runtime() {
        let tracer = Tracer::new();
        let a = Arc::new(CollectingSink::new());
        let b = Arc::new(CollectingSink::new());
        tracer.set_sink(Some(a.clone()));
        tracer.span("one").finish();
        tracer.set_sink(Some(b.clone()));
        tracer.span("two").finish();
        tracer.set_sink(None);
        tracer.span("three").finish();
        assert_eq!(a.take().len(), 1);
        assert_eq!(b.take().len(), 1);
        assert!(!tracer.is_enabled());
    }

    #[test]
    fn finish_then_drop_reports_once() {
        let tracer = Tracer::new();
        let sink = Arc::new(CollectingSink::new());
        tracer.set_sink(Some(sink.clone()));
        let s = tracer.span("once");
        s.finish();
        assert_eq!(sink.take().len(), 1);
    }
}
