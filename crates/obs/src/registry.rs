//! Naming, lookup, and snapshotting of metric instruments.
//!
//! Hot paths hold `Arc` handles to their instruments; the registry's
//! `RwLock` is touched only at registration time and when a snapshot is
//! taken, so steady-state metric updates never contend on it.

use crate::metrics::{Counter, EwmaMeter, Gauge, Histogram};
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

/// A point-in-time value of one instrument.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic counter value.
    Count(u64),
    /// Instantaneous gauge level.
    Level(i64),
    /// Smoothed rate, units per second.
    Rate(f64),
    /// Latency distribution summary (microseconds).
    Latency {
        /// Number of samples.
        count: u64,
        /// Mean in microseconds.
        mean_us: f64,
        /// Approximate median (bucket upper bound).
        p50_us: u64,
        /// Approximate 99th percentile (bucket upper bound).
        p99_us: u64,
        /// Largest observed sample.
        max_us: u64,
    },
}

impl MetricValue {
    /// The value as `u64` when it is integral (count/level); `None` for
    /// rates and latency summaries.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            MetricValue::Count(v) => Some(*v),
            MetricValue::Level(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as `f64` for scalar kinds; `None` for latency summaries.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            MetricValue::Count(v) => Some(*v as f64),
            MetricValue::Level(v) => Some(*v as f64),
            MetricValue::Rate(v) => Some(*v),
            MetricValue::Latency { .. } => None,
        }
    }
}

/// A consistent, ordered view of every registered instrument.
///
/// Rendered as stable `name value` text lines by
/// [`MetricsSnapshot::render_text`]; latency summaries expand into
/// `.count` / `.mean_us` / `.p50_us` / `.p99_us` / `.max_us` suffixed
/// lines so the text form is a flat key space.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Instrument name → value, sorted by name.
    pub values: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// Looks up one instrument.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.values.get(name)
    }

    /// Convenience: integral value of `name`, or 0 when absent.
    pub fn count(&self, name: &str) -> u64 {
        self.get(name).and_then(MetricValue::as_u64).unwrap_or(0)
    }

    /// Convenience: float value of `name`, or 0.0 when absent.
    pub fn value(&self, name: &str) -> f64 {
        self.get(name).and_then(MetricValue::as_f64).unwrap_or(0.0)
    }

    /// Convenience: sample count of the latency summary `name`, or 0 when
    /// absent or not a latency metric.
    pub fn latency_count(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(MetricValue::Latency { count, .. }) => *count,
            _ => 0,
        }
    }

    /// Renders the flat `name value` text form (one instrument per line,
    /// sorted; rates with 3 decimals).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.values {
            match v {
                MetricValue::Count(n) => writeln!(out, "{} {}", name, n).unwrap(),
                MetricValue::Level(n) => writeln!(out, "{} {}", name, n).unwrap(),
                MetricValue::Rate(r) => writeln!(out, "{} {:.3}", name, r).unwrap(),
                MetricValue::Latency {
                    count,
                    mean_us,
                    p50_us,
                    p99_us,
                    max_us,
                } => {
                    // Alphabetical suffix order keeps the whole rendering
                    // sorted line-by-line.
                    writeln!(out, "{}.count {}", name, count).unwrap();
                    writeln!(out, "{}.max_us {}", name, max_us).unwrap();
                    writeln!(out, "{}.mean_us {:.1}", name, mean_us).unwrap();
                    writeln!(out, "{}.p50_us {}", name, p50_us).unwrap();
                    writeln!(out, "{}.p99_us {}", name, p99_us).unwrap();
                }
            }
        }
        out
    }

    /// Parses the text form back into `name → f64` pairs (used by clients
    /// and the end-to-end tests; latency summaries come back as their
    /// expanded flat keys).
    pub fn parse_text(text: &str) -> BTreeMap<String, f64> {
        let mut out = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some((name, value)) = line.rsplit_once(' ') {
                if let Ok(v) = value.parse::<f64>() {
                    out.insert(name.to_owned(), v);
                }
            }
        }
        out
    }
}

#[derive(Default)]
struct Instruments {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    meters: BTreeMap<String, Arc<EwmaMeter>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// A snapshot-time metric source: writes externally maintained values
/// into the snapshot map (e.g. the lock shim's contention statistics).
type Provider = Box<dyn Fn(&mut BTreeMap<String, MetricValue>) + Send + Sync>;

/// Names instruments and produces snapshots.
///
/// `counter`/`gauge`/`meter`/`histogram` are get-or-create: calling twice
/// with the same name yields handles to the same instrument, so
/// independent subsystems can share an instrument by convention.
pub struct Registry {
    inner: RwLock<Instruments>,
    providers: Mutex<Vec<Provider>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self {
            inner: RwLock::named("obs.registry", 900, Instruments::default()),
            providers: Mutex::named("obs.providers", 905, Vec::new()),
        }
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Handle to the counter named `name` (created on first use).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.inner.read().counters.get(name) {
            return Arc::clone(c);
        }
        let mut w = self.inner.write();
        Arc::clone(
            w.counters
                .entry(name.to_owned())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// Handle to the gauge named `name` (created on first use).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.inner.read().gauges.get(name) {
            return Arc::clone(g);
        }
        let mut w = self.inner.write();
        Arc::clone(
            w.gauges
                .entry(name.to_owned())
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// Handle to the EWMA meter named `name` (created on first use).
    pub fn meter(&self, name: &str) -> Arc<EwmaMeter> {
        if let Some(m) = self.inner.read().meters.get(name) {
            return Arc::clone(m);
        }
        let mut w = self.inner.write();
        Arc::clone(
            w.meters
                .entry(name.to_owned())
                .or_insert_with(|| Arc::new(EwmaMeter::default())),
        )
    }

    /// Handle to the latency histogram named `name` (created on first use).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.inner.read().histograms.get(name) {
            return Arc::clone(h);
        }
        let mut w = self.inner.write();
        Arc::clone(
            w.histograms
                .entry(name.to_owned())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Registers a snapshot-time metric source. Providers run after the
    /// instrument tables are read (never under the registry's own lock)
    /// and may insert or overwrite any keys in the snapshot.
    pub fn add_provider(
        &self,
        f: impl Fn(&mut BTreeMap<String, MetricValue>) + Send + Sync + 'static,
    ) {
        self.providers.lock().push(Box::new(f));
    }

    /// Installs the standard bridge from the lock shim's per-class
    /// statistics (see `parking_lot::lockstats`): every named lock class
    /// surfaces `lock.<class>.{acquires,contended,wait_us,hold_us}` in
    /// snapshots, feeding `GET /nest/stats` and the Chirp `stats` command.
    pub fn install_lock_stats(&self) {
        self.add_provider(|values| {
            for row in parking_lot::lockstats::snapshot() {
                let base = format!("lock.{}", row.name);
                values.insert(format!("{base}.acquires"), MetricValue::Count(row.acquires));
                values.insert(
                    format!("{base}.contended"),
                    MetricValue::Count(row.contended),
                );
                values.insert(
                    format!("{base}.wait_us"),
                    MetricValue::Count(row.wait_ns / 1_000),
                );
                values.insert(
                    format!("{base}.hold_us"),
                    MetricValue::Count(row.hold_ns / 1_000),
                );
            }
        });
    }

    /// A consistent, ordered snapshot of every instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let r = self.inner.read();
        let mut values = BTreeMap::new();
        for (name, c) in &r.counters {
            values.insert(name.clone(), MetricValue::Count(c.get()));
        }
        for (name, g) in &r.gauges {
            values.insert(name.clone(), MetricValue::Level(g.get()));
        }
        for (name, m) in &r.meters {
            values.insert(name.clone(), MetricValue::Rate(m.rate_per_sec()));
        }
        for (name, h) in &r.histograms {
            values.insert(
                name.clone(),
                MetricValue::Latency {
                    count: h.count(),
                    mean_us: h.mean_us(),
                    p50_us: h.quantile_us(0.50),
                    p99_us: h.quantile_us(0.99),
                    max_us: h.max_us(),
                },
            );
        }
        drop(r); // providers never run under the instrument lock
        for p in self.providers.lock().iter() {
            p(&mut values);
        }
        MetricsSnapshot { values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_shares_instruments() {
        let r = Registry::new();
        r.counter("a.ops").inc();
        r.counter("a.ops").add(2);
        assert_eq!(r.counter("a.ops").get(), 3);
        r.gauge("a.depth").set(7);
        assert_eq!(r.gauge("a.depth").get(), 7);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let r = Registry::new();
        r.counter("z.count").add(5);
        r.gauge("a.level").set(-2);
        r.histogram("m.lat").record_us(100);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.values.keys().map(String::as_str).collect();
        assert_eq!(names, vec!["a.level", "m.lat", "z.count"]);
        assert_eq!(snap.count("z.count"), 5);
        assert_eq!(snap.value("a.level"), -2.0);
        assert!(matches!(
            snap.get("m.lat"),
            Some(MetricValue::Latency { count: 1, .. })
        ));
    }

    #[test]
    fn text_roundtrip_preserves_scalars() {
        let r = Registry::new();
        r.counter("bytes.total").add(4096);
        r.gauge("queue.depth").set(3);
        r.histogram("op.lat").record_us(50);
        let text = r.snapshot().render_text();
        let parsed = MetricsSnapshot::parse_text(&text);
        assert_eq!(parsed["bytes.total"], 4096.0);
        assert_eq!(parsed["queue.depth"], 3.0);
        assert_eq!(parsed["op.lat.count"], 1.0);
        assert!(parsed.contains_key("op.lat.p99_us"));
        // Stable line order: sorted by name.
        let lines: Vec<&str> = text.lines().collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
    }

    #[test]
    fn parse_text_skips_garbage() {
        let parsed =
            MetricsSnapshot::parse_text("# comment\n\nnot-a-metric\nx 1.5\ny notanumber\n");
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed["x"], 1.5);
    }
}
