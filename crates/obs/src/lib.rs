//! Observability for the NeST storage appliance.
//!
//! The paper's central claim is that a storage appliance must be
//! *manageable*: an administrator (or the matchmaker) should be able to ask
//! a running server what it is doing and how fast. This crate provides the
//! plumbing for that:
//!
//! * [`metrics`] — lock-cheap instruments: [`metrics::Counter`],
//!   [`metrics::Gauge`], [`metrics::EwmaMeter`] (exponentially weighted
//!   rates, e.g. bandwidth), and [`metrics::Histogram`] (log-bucketed
//!   latency distributions). All are updated with plain atomics; no lock is
//!   taken on the hot path.
//! * [`registry`] — a [`registry::Registry`] that names instruments and
//!   produces a point-in-time [`registry::MetricsSnapshot`], renderable as
//!   the stable `name value` text served by `GET /nest/stats` and the
//!   Chirp `stats` command.
//! * [`trace`] — a tiny span facility ([`trace::Tracer`] / [`trace::Span`])
//!   with a pluggable [`trace::SpanSink`], used to time request handling
//!   without committing to any particular backend.
//!
//! The [`Obs`] facade bundles one registry and one tracer; the dispatcher
//! owns an `Arc<Obs>` and threads it through the storage and transfer
//! layers so every subsystem reports into a single snapshot.

pub mod metrics;
pub mod registry;
pub mod trace;

pub use metrics::{Counter, EwmaMeter, Gauge, Histogram, ShardedCounter};
pub use registry::{MetricValue, MetricsSnapshot, Registry};
pub use trace::{CollectingSink, Span, SpanRecord, SpanSink, Tracer};

use std::sync::Arc;

/// One observability domain: a metrics registry plus a tracer.
///
/// Cheap to share (`Arc<Obs>`); every subsystem registers instruments on
/// the same registry so a single [`Registry::snapshot`] covers the whole
/// appliance.
#[derive(Default)]
pub struct Obs {
    /// The shared metrics registry.
    pub metrics: Registry,
    /// The shared tracer.
    pub tracer: Tracer,
}

impl Obs {
    /// Creates a fresh observability domain behind an `Arc`.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Convenience: a snapshot of every registered instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }
}
