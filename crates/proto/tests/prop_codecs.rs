//! Property tests across the protocol codecs: every client-producible
//! request must reparse identically, every decoder must survive arbitrary
//! bytes without panicking, and MODE E striping must reassemble exactly.

use nest_proto::chirp;
use nest_proto::ftp;
use nest_proto::gridftp::modee::{self, OffsetSink};
use nest_proto::gsi::Credential;
use nest_proto::http::{HttpMethod, HttpRequestHead};
use nest_proto::nfs::types::{FileHandle, NfsAttr};
use nest_proto::request::{NestRequest, TransferUrl};
use nest_proto::wire;
use parking_lot::Mutex;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::io::Cursor;
use std::sync::Arc;

/// Path strings the escaping layer must survive (spaces, percent signs,
/// nested slashes).
fn arb_path() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9 %._/-]{1,32}".prop_map(|s| format!("/{}", s.trim_start_matches('/')))
}

fn arb_url() -> impl Strategy<Value = TransferUrl> {
    (
        prop_oneof![Just("chirp"), Just("gsiftp"), Just("http")],
        "[a-z][a-z0-9.-]{0,15}",
        1u16..,
        "[a-zA-Z0-9._/-]{0,20}",
    )
        .prop_map(|(scheme, host, port, path)| {
            TransferUrl::new(scheme, &host, port, &format!("/{}", path))
        })
}

fn arb_request() -> impl Strategy<Value = NestRequest> {
    prop_oneof![
        arb_path().prop_map(|path| NestRequest::Mkdir { path }),
        arb_path().prop_map(|path| NestRequest::Rmdir { path }),
        // Chirp's wire form only carries the path; the S3-side listing
        // options would not survive a chirp roundtrip, so stay None here.
        arb_path().prop_map(|path| NestRequest::ListDir {
            path,
            prefix: None,
            delimiter: None
        }),
        arb_path().prop_map(|path| NestRequest::Stat { path }),
        arb_path().prop_map(|path| NestRequest::Get { path }),
        (arb_path(), any::<u64>()).prop_map(|(path, size)| NestRequest::Put {
            path,
            size: Some(size)
        }),
        arb_path().prop_map(|path| NestRequest::Delete { path }),
        (arb_path(), arb_path()).prop_map(|(from, to)| NestRequest::Rename { from, to }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(capacity, duration)| NestRequest::LotCreate { capacity, duration }),
        (any::<u64>(), any::<u64>()).prop_map(|(id, extra)| NestRequest::LotRenew { id, extra }),
        any::<u64>().prop_map(|id| NestRequest::LotTerminate { id }),
        any::<u64>().prop_map(|id| NestRequest::LotStat { id }),
        Just(NestRequest::LotList),
        arb_path().prop_map(|path| NestRequest::GetAcl { path }),
        (arb_url(), arb_url()).prop_map(|(src, dst)| NestRequest::ThirdParty { src, dst }),
        Just(NestRequest::Quit),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn chirp_request_lines_roundtrip(req in arb_request()) {
        let line = chirp::format_request(&req);
        match chirp::parse_command(&line) {
            Some(chirp::ChirpCommand::Request(parsed)) => prop_assert_eq!(parsed, req),
            other => prop_assert!(false, "line {:?} parsed as {:?}", line, other),
        }
    }

    #[test]
    fn chirp_parser_never_panics(line in "\\PC{0,200}") {
        let _ = chirp::parse_command(&line);
    }

    #[test]
    fn ftp_parser_never_panics(line in "\\PC{0,200}") {
        let _ = ftp::parse_command(&line);
    }

    #[test]
    fn ftp_host_port_roundtrip(a in any::<u8>(), b in any::<u8>(),
                               c in any::<u8>(), d in any::<u8>(), port in any::<u16>()) {
        let addr = std::net::SocketAddrV4::new(std::net::Ipv4Addr::new(a, b, c, d), port);
        let rendered = ftp::render_host_port(addr);
        prop_assert_eq!(ftp::parse_host_port(&rendered), Some(addr));
    }

    #[test]
    fn http_head_roundtrip(
        method in prop_oneof![
            Just(HttpMethod::Get), Just(HttpMethod::Put),
            Just(HttpMethod::Head), Just(HttpMethod::Delete)
        ],
        path in arb_path(),
        length in proptest::option::of(any::<u64>()),
    ) {
        let mut headers = BTreeMap::new();
        if let Some(l) = length {
            headers.insert("content-length".to_owned(), l.to_string());
        }
        let head = HttpRequestHead::plain(method, &path, headers);
        let wire = head.render();
        let parsed = HttpRequestHead::read(&mut Cursor::new(wire.into_bytes()))
            .unwrap()
            .unwrap();
        prop_assert_eq!(parsed, head);
    }

    #[test]
    fn http_parser_survives_garbage(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = HttpRequestHead::read(&mut Cursor::new(bytes));
    }

    #[test]
    fn credential_wire_roundtrip(subject in "[/=a-zA-Z0-9 .-]{1,60}", tag in any::<u64>()) {
        let cred = Credential { subject: subject.clone(), tag };
        let back = Credential::from_wire(&cred.to_wire()).unwrap();
        prop_assert_eq!(back, cred);
    }

    #[test]
    fn url_roundtrip(url in arb_url()) {
        let parsed: TransferUrl = url.to_string().parse().unwrap();
        prop_assert_eq!(parsed, url);
    }

    #[test]
    fn nfs_attr_roundtrip(size in any::<u32>(), fileid in any::<u32>()) {
        let attr = NfsAttr::file(size, fileid);
        let mut e = nest_sunrpc::xdr::XdrEncoder::new();
        attr.encode(&mut e);
        let bytes = e.into_bytes();
        let back = NfsAttr::decode(&mut nest_sunrpc::xdr::XdrDecoder::new(&bytes)).unwrap();
        prop_assert_eq!(back, attr);
    }

    #[test]
    fn file_handle_roundtrip(id in any::<u64>(), generation in any::<u64>()) {
        let fh = FileHandle::from_id(id, generation);
        prop_assert_eq!(fh.id(), id);
        prop_assert_eq!(fh.generation(), generation);
    }

    #[test]
    fn modee_striping_reassembles_exactly(
        payload in prop::collection::vec(any::<u8>(), 0..20_000),
        streams in 1usize..5,
        chunk in 1usize..4096,
    ) {
        let mut wires: Vec<Vec<u8>> = vec![Vec::new(); streams];
        {
            let mut refs: Vec<&mut Vec<u8>> = wires.iter_mut().collect();
            let sent = modee::send_striped(
                &mut refs[..], &mut Cursor::new(payload.clone()), chunk).unwrap();
            prop_assert_eq!(sent, payload.len() as u64);
        }
        let sink = Arc::new(Mutex::new(Vec::<u8>::new()));
        let dyn_sink: Arc<Mutex<dyn OffsetSink>> = sink.clone();
        let total = modee::recv_striped(
            wires.into_iter().map(Cursor::new).collect::<Vec<_>>(),
            dyn_sink,
        ).unwrap();
        prop_assert_eq!(total, payload.len() as u64);
        prop_assert_eq!(&*sink.lock(), &payload);
    }

    #[test]
    fn modee_reader_survives_garbage(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let _ = modee::read_block(&mut Cursor::new(bytes));
    }

    #[test]
    fn wire_line_roundtrip(line in "[ -~]{0,200}") {
        // Printable ASCII without the terminator roundtrips through
        // write_line/read_line.
        let mut buf = Vec::new();
        wire::write_line(&mut buf, &line).unwrap();
        let back = wire::read_line(&mut Cursor::new(buf)).unwrap().unwrap();
        prop_assert_eq!(back, line);
    }
}
