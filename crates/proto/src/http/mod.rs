//! An HTTP/1.1 subset (paper §3, RFC 2068 era).
//!
//! NeST's HTTP handler supports anonymous `GET` (file retrieval), `PUT`
//! (file storage), `HEAD` (stat) and `DELETE`, which is the slice of HTTP a
//! 2002 storage appliance needed. Responses are `Connection: close`-free:
//! persistent connections with explicit `Content-Length`, one request per
//! round trip.

pub mod client;
mod codec;

pub use client::HttpClient;
pub use codec::{
    render_response_head, status_for_error, HttpMethod, HttpRequestHead, HttpResponseHead,
};
