//! HTTP request/response head parsing and rendering.

use crate::request::NestError;
use crate::wire::read_line;
use std::collections::BTreeMap;
use std::io::{self, Read};

/// Supported methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HttpMethod {
    Get,
    Put,
    Head,
    Delete,
}

impl HttpMethod {
    /// Parses a method token.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "GET" => HttpMethod::Get,
            "PUT" => HttpMethod::Put,
            "HEAD" => HttpMethod::Head,
            "DELETE" => HttpMethod::Delete,
            _ => return None,
        })
    }

    /// The wire token.
    pub fn as_str(self) -> &'static str {
        match self {
            HttpMethod::Get => "GET",
            HttpMethod::Put => "PUT",
            HttpMethod::Head => "HEAD",
            HttpMethod::Delete => "DELETE",
        }
    }
}

/// A parsed request head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequestHead {
    /// The method.
    pub method: HttpMethod,
    /// The request target (path, percent-decoded, query stripped).
    pub path: String,
    /// Parsed query parameters (percent-decoded; a bare `?flag` maps to
    /// an empty value). Empty for plain-path requests.
    pub query: BTreeMap<String, String>,
    /// Lower-cased header map.
    pub headers: BTreeMap<String, String>,
}

impl HttpRequestHead {
    /// A head with no query parameters (the common client-side case).
    pub fn plain(method: HttpMethod, path: &str, headers: BTreeMap<String, String>) -> Self {
        Self {
            method,
            path: path.to_owned(),
            query: BTreeMap::new(),
            headers,
        }
    }

    /// The Content-Length header, if present and numeric.
    pub fn content_length(&self) -> Option<u64> {
        self.headers.get("content-length")?.trim().parse().ok()
    }

    /// Reads and parses a request head from a stream. `Ok(None)` on clean
    /// EOF (client closed between requests).
    pub fn read(r: &mut impl Read) -> io::Result<Option<Self>> {
        let request_line = match read_line(r)? {
            None => return Ok(None),
            Some(l) if l.is_empty() => return Ok(None),
            Some(l) => l,
        };
        let mut parts = request_line.split_whitespace();
        let method = parts
            .next()
            .and_then(HttpMethod::parse)
            .ok_or_else(|| bad(&format!("bad method in {:?}", request_line)))?;
        let target = parts.next().ok_or_else(|| bad("missing request target"))?;
        let version = parts.next().unwrap_or("HTTP/1.0");
        if !version.starts_with("HTTP/1.") {
            return Err(bad(&format!("unsupported version {:?}", version)));
        }
        let mut headers = BTreeMap::new();
        loop {
            match read_line(r)? {
                None => return Err(bad("EOF inside headers")),
                Some(l) if l.is_empty() => break,
                Some(l) => {
                    if let Some((name, value)) = l.split_once(':') {
                        headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_owned());
                    }
                    // Malformed header lines are skipped, as real servers do.
                }
            }
        }
        let (raw_path, raw_query) = match target.split_once('?') {
            Some((p, q)) => (p, Some(q)),
            None => (target, None),
        };
        let mut query = BTreeMap::new();
        if let Some(q) = raw_query {
            for pair in q.split('&').filter(|p| !p.is_empty()) {
                let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
                query.insert(percent_decode(k), percent_decode(v));
            }
        }
        Ok(Some(HttpRequestHead {
            method,
            path: percent_decode(raw_path),
            query,
            headers,
        }))
    }

    /// Renders the head for sending (client side).
    pub fn render(&self) -> String {
        let mut target = percent_encode(&self.path);
        for (i, (k, v)) in self.query.iter().enumerate() {
            target.push(if i == 0 { '?' } else { '&' });
            target.push_str(&percent_encode(k));
            if !v.is_empty() {
                target.push('=');
                target.push_str(&percent_encode(v));
            }
        }
        let mut out = format!("{} {} HTTP/1.1\r\n", self.method.as_str(), target);
        for (name, value) in &self.headers {
            out.push_str(name);
            out.push_str(": ");
            out.push_str(value);
            out.push_str("\r\n");
        }
        out.push_str("\r\n");
        out
    }
}

/// A response head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponseHead {
    /// Status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: String,
    /// Lower-cased headers.
    pub headers: BTreeMap<String, String>,
}

impl HttpResponseHead {
    /// Builds a head with a Content-Length header.
    pub fn with_length(status: u16, reason: &str, length: u64) -> Self {
        let mut headers = BTreeMap::new();
        headers.insert("content-length".into(), length.to_string());
        headers.insert("server".into(), "NeST/0.9".into());
        Self {
            status,
            reason: reason.to_owned(),
            headers,
        }
    }

    /// The Content-Length, if present.
    pub fn content_length(&self) -> Option<u64> {
        self.headers.get("content-length")?.trim().parse().ok()
    }

    /// Reads and parses a response head.
    pub fn read(r: &mut impl Read) -> io::Result<Self> {
        let status_line = read_line(r)?.ok_or_else(|| bad("EOF before response status line"))?;
        let mut parts = status_line.splitn(3, ' ');
        let version = parts.next().unwrap_or("");
        if !version.starts_with("HTTP/1.") {
            return Err(bad(&format!("bad response version in {:?}", status_line)));
        }
        let status: u16 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad(&format!("bad status in {:?}", status_line)))?;
        let reason = parts.next().unwrap_or("").to_owned();
        let mut headers = BTreeMap::new();
        loop {
            match read_line(r)? {
                None => return Err(bad("EOF inside response headers")),
                Some(l) if l.is_empty() => break,
                Some(l) => {
                    if let Some((name, value)) = l.split_once(':') {
                        headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_owned());
                    }
                }
            }
        }
        Ok(Self {
            status,
            reason,
            headers,
        })
    }
}

/// Renders a response head to wire form.
pub fn render_response_head(head: &HttpResponseHead) -> String {
    let mut out = format!("HTTP/1.1 {} {}\r\n", head.status, head.reason);
    for (name, value) in &head.headers {
        out.push_str(name);
        out.push_str(": ");
        out.push_str(value);
        out.push_str("\r\n");
    }
    out.push_str("\r\n");
    out
}

/// Maps common errors to HTTP statuses.
pub fn status_for_error(e: NestError) -> (u16, &'static str) {
    match e {
        NestError::Denied => (403, "Forbidden"),
        NestError::NotFound => (404, "Not Found"),
        NestError::Exists => (409, "Conflict"),
        NestError::NoSpace => (507, "Insufficient Storage"),
        NestError::BadRequest => (400, "Bad Request"),
        NestError::Invalid => (409, "Conflict"),
        NestError::Internal => (500, "Internal Server Error"),
    }
}

/// Minimal percent-decoding for path targets.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 2 < bytes.len() {
            if let Ok(v) = u8::from_str_radix(&s[i + 1..i + 3], 16) {
                out.push(v);
                i += 3;
                continue;
            }
        }
        out.push(bytes[i]);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Minimal percent-encoding (spaces and percent only; enough for our
/// virtual paths).
pub fn percent_encode(s: &str) -> String {
    s.replace('%', "%25").replace(' ', "%20")
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parse_get_request() {
        let raw = b"GET /data/file.txt HTTP/1.1\r\nHost: x\r\nUser-Agent: t\r\n\r\n".to_vec();
        let head = HttpRequestHead::read(&mut Cursor::new(raw))
            .unwrap()
            .unwrap();
        assert_eq!(head.method, HttpMethod::Get);
        assert_eq!(head.path, "/data/file.txt");
        assert_eq!(head.headers.get("host").map(String::as_str), Some("x"));
    }

    #[test]
    fn parse_put_with_content_length() {
        let raw = b"PUT /f HTTP/1.1\r\nContent-Length: 12\r\n\r\n".to_vec();
        let head = HttpRequestHead::read(&mut Cursor::new(raw))
            .unwrap()
            .unwrap();
        assert_eq!(head.method, HttpMethod::Put);
        assert_eq!(head.content_length(), Some(12));
    }

    #[test]
    fn clean_eof_returns_none() {
        let head = HttpRequestHead::read(&mut Cursor::new(Vec::new())).unwrap();
        assert!(head.is_none());
    }

    #[test]
    fn bad_method_rejected() {
        let raw = b"BREW /pot HTTP/1.1\r\n\r\n".to_vec();
        assert!(HttpRequestHead::read(&mut Cursor::new(raw)).is_err());
    }

    #[test]
    fn request_render_then_parse_roundtrip() {
        let mut headers = BTreeMap::new();
        headers.insert("content-length".into(), "5".into());
        let mut query = BTreeMap::new();
        query.insert("list-type".into(), "2".into());
        query.insert("prefix".into(), "logs/".into());
        let head = HttpRequestHead {
            method: HttpMethod::Put,
            path: "/a file".into(),
            query,
            headers,
        };
        let rendered = head.render();
        let parsed = HttpRequestHead::read(&mut Cursor::new(rendered.into_bytes()))
            .unwrap()
            .unwrap();
        assert_eq!(parsed, head);
    }

    #[test]
    fn response_roundtrip() {
        let head = HttpResponseHead::with_length(200, "OK", 1234);
        let rendered = render_response_head(&head);
        let parsed = HttpResponseHead::read(&mut Cursor::new(rendered.into_bytes())).unwrap();
        assert_eq!(parsed.status, 200);
        assert_eq!(parsed.content_length(), Some(1234));
    }

    #[test]
    fn percent_coding_roundtrips() {
        assert_eq!(percent_decode("/a%20b%25c"), "/a b%c");
        assert_eq!(percent_decode(&percent_encode("/x y%z")), "/x y%z");
        // Malformed escapes pass through.
        assert_eq!(percent_decode("/a%2"), "/a%2");
        assert_eq!(percent_decode("/a%zz"), "/a%zz");
    }

    #[test]
    fn status_mapping_covers_errors() {
        assert_eq!(status_for_error(NestError::NotFound).0, 404);
        assert_eq!(status_for_error(NestError::Denied).0, 403);
        assert_eq!(status_for_error(NestError::NoSpace).0, 507);
    }

    #[test]
    fn query_string_stripped_from_path_and_parsed() {
        let raw = b"GET /f?x=1&flag&p=a%2Fb HTTP/1.1\r\n\r\n".to_vec();
        let head = HttpRequestHead::read(&mut Cursor::new(raw))
            .unwrap()
            .unwrap();
        assert_eq!(head.path, "/f");
        assert_eq!(head.query.get("x").map(String::as_str), Some("1"));
        assert_eq!(head.query.get("flag").map(String::as_str), Some(""));
        assert_eq!(head.query.get("p").map(String::as_str), Some("a/b"));
    }

    #[test]
    fn plain_head_has_no_query() {
        let head = HttpRequestHead::plain(HttpMethod::Get, "/x", BTreeMap::new());
        assert!(head.query.is_empty());
        assert_eq!(head.render(), "GET /x HTTP/1.1\r\n\r\n");
    }
}
