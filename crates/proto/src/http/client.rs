//! A minimal blocking HTTP/1.1 client for talking to NeST's HTTP handler.

use super::codec::{HttpMethod, HttpRequestHead, HttpResponseHead};
use crate::wire::copy_exact;
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A persistent-connection HTTP client.
pub struct HttpClient {
    stream: TcpStream,
    host: String,
}

impl HttpClient {
    /// Connects to the server.
    pub fn connect(addr: impl ToSocketAddrs + std::fmt::Debug) -> io::Result<Self> {
        let host = format!("{:?}", addr);
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        Ok(Self { stream, host })
    }

    fn head(&self, method: HttpMethod, path: &str) -> HttpRequestHead {
        let mut headers = BTreeMap::new();
        headers.insert("host".into(), self.host.clone());
        HttpRequestHead::plain(method, path, headers)
    }

    /// GET a file into a writer. Returns (status, bytes).
    pub fn get(&mut self, path: &str, sink: &mut impl Write) -> io::Result<(u16, u64)> {
        let head = self.head(HttpMethod::Get, path);
        self.stream.write_all(head.render().as_bytes())?;
        self.stream.flush()?;
        let resp = HttpResponseHead::read(&mut self.stream)?;
        let len = resp.content_length().unwrap_or(0);
        copy_exact(&mut self.stream, sink, len, 64 * 1024)?;
        Ok((resp.status, len))
    }

    /// GET a file into a vector; errors unless status is 200.
    pub fn get_bytes(&mut self, path: &str) -> io::Result<Vec<u8>> {
        let mut out = Vec::new();
        let (status, _) = self.get(path, &mut out)?;
        if status != 200 {
            return Err(io::Error::other(format!("HTTP status {}", status)));
        }
        Ok(out)
    }

    /// HEAD: returns (status, content-length).
    pub fn head_request(&mut self, path: &str) -> io::Result<(u16, Option<u64>)> {
        let head = self.head(HttpMethod::Head, path);
        self.stream.write_all(head.render().as_bytes())?;
        self.stream.flush()?;
        let resp = HttpResponseHead::read(&mut self.stream)?;
        // HEAD carries no body.
        Ok((resp.status, resp.content_length()))
    }

    /// PUT `size` bytes from a reader. Returns the status code.
    pub fn put(&mut self, path: &str, size: u64, source: &mut impl Read) -> io::Result<u16> {
        let mut head = self.head(HttpMethod::Put, path);
        head.headers
            .insert("content-length".into(), size.to_string());
        self.stream.write_all(head.render().as_bytes())?;
        copy_exact(source, &mut self.stream, size, 64 * 1024)?;
        let resp = HttpResponseHead::read(&mut self.stream)?;
        // Drain any error body to keep the connection reusable.
        let len = resp.content_length().unwrap_or(0);
        copy_exact(&mut self.stream, &mut io::sink(), len, 4096)?;
        Ok(resp.status)
    }

    /// PUT a byte slice.
    pub fn put_bytes(&mut self, path: &str, data: &[u8]) -> io::Result<u16> {
        self.put(path, data.len() as u64, &mut io::Cursor::new(data))
    }

    /// DELETE a file. Returns the status code.
    pub fn delete(&mut self, path: &str) -> io::Result<u16> {
        let head = self.head(HttpMethod::Delete, path);
        self.stream.write_all(head.render().as_bytes())?;
        self.stream.flush()?;
        let resp = HttpResponseHead::read(&mut self.stream)?;
        let len = resp.content_length().unwrap_or(0);
        copy_exact(&mut self.stream, &mut io::sink(), len, 4096)?;
        Ok(resp.status)
    }
}
