//! A minimal blocking S3 client for talking to the S3 front.

use super::{
    format_auth_header, parse_list_bucket_page, parse_list_bucket_result, xml_blocks, xml_text,
    S3ListPage, S3Listing,
};
use crate::gsi::Credential;
use crate::http::{HttpMethod, HttpRequestHead, HttpResponseHead};
use crate::wire::copy_exact;
use std::collections::BTreeMap;
use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A persistent-connection S3 client. Anonymous unless a credential is
/// attached with [`S3Client::with_credential`].
pub struct S3Client {
    stream: TcpStream,
    host: String,
    credential: Option<Credential>,
}

/// A status code plus the response body (error XML or payload).
#[derive(Debug)]
pub struct S3Response {
    /// HTTP status code.
    pub status: u16,
    /// The raw body.
    pub body: Vec<u8>,
}

impl S3Response {
    /// The S3 error code element, when the body is an error document.
    pub fn error_code(&self) -> Option<String> {
        xml_text(&String::from_utf8_lossy(&self.body), "Code")
    }

    fn expect(self, ok: &[u16]) -> io::Result<Self> {
        if ok.contains(&self.status) {
            Ok(self)
        } else {
            Err(io::Error::other(format!(
                "S3 status {} ({})",
                self.status,
                self.error_code().unwrap_or_else(|| "no error code".into())
            )))
        }
    }
}

impl S3Client {
    /// Connects to the server.
    pub fn connect(addr: impl ToSocketAddrs + std::fmt::Debug) -> io::Result<Self> {
        let host = format!("{:?}", addr);
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        Ok(Self {
            stream,
            host,
            credential: None,
        })
    }

    /// Attaches a simulated-GSI credential; subsequent requests carry the
    /// `Authorization` header.
    pub fn with_credential(mut self, cred: Credential) -> Self {
        self.credential = Some(cred);
        self
    }

    fn request(
        &mut self,
        method: HttpMethod,
        path: &str,
        query: BTreeMap<String, String>,
        body: &[u8],
    ) -> io::Result<S3Response> {
        let mut headers = BTreeMap::new();
        headers.insert("host".into(), self.host.clone());
        if let Some(cred) = &self.credential {
            headers.insert("authorization".into(), format_auth_header(cred));
        }
        if method == HttpMethod::Put {
            headers.insert("content-length".into(), body.len().to_string());
        }
        let head = HttpRequestHead {
            method,
            path: path.to_owned(),
            query,
            headers,
        };
        self.stream.write_all(head.render().as_bytes())?;
        if method == HttpMethod::Put {
            self.stream.write_all(body)?;
        }
        self.stream.flush()?;
        let resp = HttpResponseHead::read(&mut self.stream)?;
        let len = resp.content_length().unwrap_or(0);
        let mut out = Vec::new();
        // HEAD replies declare a length but carry no body.
        if method != HttpMethod::Head {
            copy_exact(&mut self.stream, &mut out, len, 64 * 1024)?;
        }
        Ok(S3Response {
            status: resp.status,
            body: out,
        })
    }

    /// Creates a bucket (`PUT /{bucket}`).
    pub fn create_bucket(&mut self, bucket: &str) -> io::Result<()> {
        self.request(HttpMethod::Put, &format!("/{bucket}"), BTreeMap::new(), b"")?
            .expect(&[200])
            .map(drop)
    }

    /// Deletes an empty bucket (`DELETE /{bucket}`).
    pub fn delete_bucket(&mut self, bucket: &str) -> io::Result<()> {
        self.request(
            HttpMethod::Delete,
            &format!("/{bucket}"),
            BTreeMap::new(),
            b"",
        )?
        .expect(&[204])
        .map(drop)
    }

    /// Lists all buckets (`GET /`).
    pub fn list_buckets(&mut self) -> io::Result<Vec<String>> {
        let resp = self
            .request(HttpMethod::Get, "/", BTreeMap::new(), b"")?
            .expect(&[200])?;
        let xml = String::from_utf8_lossy(&resp.body).into_owned();
        Ok(xml_blocks(&xml, "Bucket")
            .iter()
            .filter_map(|b| xml_text(b, "Name"))
            .collect())
    }

    /// Stores an object (`PUT /{bucket}/{key}`).
    pub fn put_object(&mut self, bucket: &str, key: &str, data: &[u8]) -> io::Result<()> {
        self.request(
            HttpMethod::Put,
            &format!("/{bucket}/{key}"),
            BTreeMap::new(),
            data,
        )?
        .expect(&[200])
        .map(drop)
    }

    /// Fetches an object (`GET /{bucket}/{key}`).
    pub fn get_object(&mut self, bucket: &str, key: &str) -> io::Result<Vec<u8>> {
        self.request(
            HttpMethod::Get,
            &format!("/{bucket}/{key}"),
            BTreeMap::new(),
            b"",
        )?
        .expect(&[200])
        .map(|r| r.body)
    }

    /// Stats an object (`HEAD /{bucket}/{key}`); returns its size.
    pub fn head_object(&mut self, bucket: &str, key: &str) -> io::Result<u64> {
        let mut headers = BTreeMap::new();
        headers.insert("host".into(), self.host.clone());
        if let Some(cred) = &self.credential {
            headers.insert("authorization".into(), format_auth_header(cred));
        }
        let head = HttpRequestHead::plain(HttpMethod::Head, &format!("/{bucket}/{key}"), headers);
        self.stream.write_all(head.render().as_bytes())?;
        self.stream.flush()?;
        let resp = HttpResponseHead::read(&mut self.stream)?;
        if resp.status != 200 {
            return Err(io::Error::other(format!("S3 status {}", resp.status)));
        }
        Ok(resp.content_length().unwrap_or(0))
    }

    /// Deletes an object (`DELETE /{bucket}/{key}`).
    pub fn delete_object(&mut self, bucket: &str, key: &str) -> io::Result<()> {
        self.request(
            HttpMethod::Delete,
            &format!("/{bucket}/{key}"),
            BTreeMap::new(),
            b"",
        )?
        .expect(&[204])
        .map(drop)
    }

    /// ListObjectsV2 (`GET /{bucket}?list-type=2&prefix=&delimiter=`).
    pub fn list(
        &mut self,
        bucket: &str,
        prefix: &str,
        delimiter: Option<&str>,
    ) -> io::Result<S3Listing> {
        let mut query = BTreeMap::new();
        query.insert("list-type".into(), "2".into());
        if !prefix.is_empty() {
            query.insert("prefix".into(), prefix.to_owned());
        }
        if let Some(d) = delimiter {
            query.insert("delimiter".into(), d.to_owned());
        }
        let resp = self
            .request(HttpMethod::Get, &format!("/{bucket}"), query, b"")?
            .expect(&[200])?;
        Ok(parse_list_bucket_result(&String::from_utf8_lossy(
            &resp.body,
        )))
    }

    /// One page of a ListObjectsV2 walk
    /// (`GET /{bucket}?list-type=2&max-keys=&continuation-token=`).
    /// Pass the previous page's `next_token` as `continuation` to resume;
    /// `start_after` begins the walk strictly after a key (first page
    /// only — a continuation token overrides it, as on real S3).
    pub fn list_page(
        &mut self,
        bucket: &str,
        prefix: &str,
        delimiter: Option<&str>,
        max_keys: Option<usize>,
        continuation: Option<&str>,
        start_after: Option<&str>,
    ) -> io::Result<S3ListPage> {
        let mut query = BTreeMap::new();
        query.insert("list-type".into(), "2".into());
        if !prefix.is_empty() {
            query.insert("prefix".into(), prefix.to_owned());
        }
        if let Some(d) = delimiter {
            query.insert("delimiter".into(), d.to_owned());
        }
        if let Some(n) = max_keys {
            query.insert("max-keys".into(), n.to_string());
        }
        if let Some(t) = continuation {
            query.insert("continuation-token".into(), t.to_owned());
        }
        if let Some(s) = start_after {
            query.insert("start-after".into(), s.to_owned());
        }
        let resp = self
            .request(HttpMethod::Get, &format!("/{bucket}"), query, b"")?
            .expect(&[200])?;
        Ok(parse_list_bucket_page(&String::from_utf8_lossy(&resp.body)))
    }

    /// A raw request, for tests that need to observe error statuses.
    pub fn raw(
        &mut self,
        method: HttpMethod,
        path: &str,
        query: BTreeMap<String, String>,
        body: &[u8],
    ) -> io::Result<S3Response> {
        self.request(method, path, query, body)
    }
}
