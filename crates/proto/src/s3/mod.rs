//! An S3-compatible wire dialect (GET/PUT/DELETE object, ListObjectsV2).
//!
//! The paper's central claim for the virtual protocol layer is that "new
//! protocols can be easily added into NeST" (§3). S3 postdates the paper
//! by four years, which makes it the perfect probe: a protocol the
//! authors could not have anticipated, mapped onto the same common
//! request interface. The dialect here is the small, stable core of the
//! 2006 REST API:
//!
//! * objects: `GET`/`PUT`/`HEAD`/`DELETE /{bucket}/{key}`;
//! * buckets: `PUT`/`DELETE /{bucket}`, `GET /` (ListAllMyBuckets);
//! * listing: `GET /{bucket}?list-type=2&prefix=&delimiter=&max-keys=`
//!   (ListObjectsV2 with common-prefix roll-up);
//! * errors: the S3 error XML document (`<Error><Code>...`);
//! * overload: `503` + `SlowDown`, S3's documented throttle reply.
//!
//! Buckets map onto NeST **lots by directory**: a bucket is a top-level
//! directory of the virtual namespace, so bucket charges flow through the
//! same lot accounting as every other protocol's writes.
//!
//! Authentication reuses the simulated GSI material from [`crate::gsi`]:
//! an `Authorization: NEST4-FNV1A Credential=<subject>,Signature=<tag>`
//! header carries the same subject + FNV-1a tag a Chirp or GridFTP
//! credential would, shaped like S3's `AWS4-HMAC-SHA256` header. Requests
//! without the header are anonymous, exactly like NeST's HTTP front.

pub mod client;

pub use client::S3Client;

use crate::gsi::Credential;
use crate::request::NestError;

/// The scheme token in the `Authorization` header — the simulated-GSI
/// analogue of `AWS4-HMAC-SHA256`.
pub const AUTH_SCHEME: &str = "NEST4-FNV1A";

/// The verbatim overload reply: S3 throttles with `503 Slow Down` and a
/// `SlowDown` error document. Served by the session layer without
/// touching a worker thread, so it is a single static byte string.
pub const SLOWDOWN_REPLY: &[u8] = concat!(
    "HTTP/1.1 503 Slow Down\r\n",
    "content-length: 127\r\n",
    "content-type: application/xml\r\n",
    "server: NeST/0.9\r\n",
    "\r\n",
    "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n",
    "<Error><Code>SlowDown</Code>",
    "<Message>Please reduce your request rate.</Message></Error>\n",
)
.as_bytes();

/// Maps a common-interface error to the S3 dialect:
/// `(HTTP status, S3 error code, message)`.
pub fn error_for(e: NestError) -> (u16, &'static str, &'static str) {
    match e {
        NestError::Denied => (403, "AccessDenied", "Access Denied"),
        NestError::NotFound => (404, "NoSuchKey", "The specified key does not exist."),
        NestError::Exists => (
            409,
            "BucketAlreadyExists",
            "The requested bucket name is not available.",
        ),
        NestError::NoSpace => (
            403,
            "QuotaExceeded",
            "The lot backing this bucket is out of space.",
        ),
        NestError::BadRequest => (400, "InvalidRequest", "Invalid request."),
        NestError::Invalid => (409, "BucketNotEmpty", "The bucket you tried is not empty."),
        NestError::Internal => (500, "InternalError", "We encountered an internal error."),
    }
}

/// Escapes text for inclusion in XML character data.
pub fn xml_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

/// Renders an S3 error document.
pub fn render_error_xml(code: &str, message: &str, resource: &str) -> String {
    format!(
        "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n\
         <Error><Code>{}</Code><Message>{}</Message><Resource>{}</Resource></Error>\n",
        xml_escape(code),
        xml_escape(message),
        xml_escape(resource)
    )
}

/// One object row in a listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct S3Object {
    /// Full object key (bucket-relative, no leading slash).
    pub key: String,
    /// Object size in bytes.
    pub size: u64,
}

/// A ListObjectsV2 result: objects plus rolled-up common prefixes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct S3Listing {
    /// Matching objects, in key order.
    pub objects: Vec<S3Object>,
    /// Common prefixes (only when a delimiter was given), in order.
    pub common_prefixes: Vec<String>,
}

/// One page of a ListObjectsV2 walk, as a client sees it: the page's
/// rows plus the cursor state needed to fetch the next page.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct S3ListPage {
    /// The page's objects and common prefixes.
    pub listing: S3Listing,
    /// Whether more rows remain beyond this page.
    pub is_truncated: bool,
    /// Opaque cursor for the next page; present iff `is_truncated`.
    pub next_token: Option<String>,
}

/// Renders a ListObjectsV2 `ListBucketResult` document.
///
/// Per the V2 contract: `KeyCount` counts *everything* returned —
/// objects **and** common prefixes — and a truncated page carries the
/// opaque `NextContinuationToken` the client echoes back to resume.
pub fn render_list_bucket_result(
    bucket: &str,
    prefix: &str,
    delimiter: Option<&str>,
    listing: &S3Listing,
    truncated: bool,
    max_keys: usize,
    next_token: Option<&str>,
) -> String {
    let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<ListBucketResult>");
    out.push_str(&format!("<Name>{}</Name>", xml_escape(bucket)));
    out.push_str(&format!("<Prefix>{}</Prefix>", xml_escape(prefix)));
    if let Some(d) = delimiter {
        out.push_str(&format!("<Delimiter>{}</Delimiter>", xml_escape(d)));
    }
    out.push_str(&format!("<MaxKeys>{max_keys}</MaxKeys>"));
    out.push_str(&format!(
        "<KeyCount>{}</KeyCount>",
        listing.objects.len() + listing.common_prefixes.len()
    ));
    out.push_str(&format!("<IsTruncated>{truncated}</IsTruncated>"));
    if let Some(token) = next_token {
        out.push_str(&format!(
            "<NextContinuationToken>{}</NextContinuationToken>",
            xml_escape(token)
        ));
    }
    for obj in &listing.objects {
        out.push_str(&format!(
            "<Contents><Key>{}</Key><Size>{}</Size></Contents>",
            xml_escape(&obj.key),
            obj.size
        ));
    }
    for p in &listing.common_prefixes {
        out.push_str(&format!(
            "<CommonPrefixes><Prefix>{}</Prefix></CommonPrefixes>",
            xml_escape(p)
        ));
    }
    out.push_str("</ListBucketResult>\n");
    out
}

/// Renders a `ListAllMyBucketsResult` document for `GET /`.
pub fn render_list_all_buckets(buckets: &[String]) -> String {
    let mut out = String::from(
        "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<ListAllMyBucketsResult><Buckets>",
    );
    for b in buckets {
        out.push_str(&format!("<Bucket><Name>{}</Name></Bucket>", xml_escape(b)));
    }
    out.push_str("</Buckets></ListAllMyBucketsResult>\n");
    out
}

/// Formats the `Authorization` header value for a simulated credential.
pub fn format_auth_header(cred: &Credential) -> String {
    format!(
        "{} Credential={},Signature={:016x}",
        AUTH_SCHEME,
        cred.subject.replace(' ', "+"),
        cred.tag
    )
}

/// Parses an `Authorization` header value back into a credential.
/// Returns `None` for missing/foreign schemes or malformed values.
pub fn parse_auth_header(value: &str) -> Option<Credential> {
    let rest = value.strip_prefix(AUTH_SCHEME)?.trim_start();
    let rest = rest.strip_prefix("Credential=")?;
    // The subject DN may itself contain '=' and ','; split on the last
    // ",Signature=" so only the tag is peeled off the end.
    let at = rest.rfind(",Signature=")?;
    let (subject, sig) = rest.split_at(at);
    let tag = u64::from_str_radix(&sig[",Signature=".len()..], 16).ok()?;
    Some(Credential {
        subject: subject.replace('+', " "),
        tag,
    })
}

/// Unescapes the five XML entities produced by [`xml_escape`].
pub fn xml_unescape(s: &str) -> String {
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

/// Extracts the character data of the first `<tag>...</tag>` element in
/// `xml`, unescaped. A deliberately tiny extractor: the documents this
/// dialect produces are flat and machine-generated.
pub fn xml_text(xml: &str, tag: &str) -> Option<String> {
    let open = format!("<{tag}>");
    let close = format!("</{tag}>");
    let start = xml.find(&open)? + open.len();
    let end = xml[start..].find(&close)? + start;
    Some(xml_unescape(&xml[start..end]))
}

/// Splits out every `<tag>...</tag>` block (inner text, escaped form).
pub fn xml_blocks<'a>(xml: &'a str, tag: &str) -> Vec<&'a str> {
    let open = format!("<{tag}>");
    let close = format!("</{tag}>");
    let mut out = Vec::new();
    let mut rest = xml;
    while let Some(i) = rest.find(&open) {
        let body = &rest[i + open.len()..];
        let Some(j) = body.find(&close) else { break };
        out.push(&body[..j]);
        rest = &body[j + close.len()..];
    }
    out
}

/// Parses a `ListBucketResult` document into an [`S3Listing`].
pub fn parse_list_bucket_result(xml: &str) -> S3Listing {
    let mut listing = S3Listing::default();
    for block in xml_blocks(xml, "Contents") {
        let key = xml_text(block, "Key").unwrap_or_default();
        let size = xml_text(block, "Size")
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        listing.objects.push(S3Object { key, size });
    }
    for block in xml_blocks(xml, "CommonPrefixes") {
        if let Some(p) = xml_text(block, "Prefix") {
            listing.common_prefixes.push(p);
        }
    }
    listing
}

/// Parses a `ListBucketResult` document into a full [`S3ListPage`],
/// including the truncation flag and continuation token.
pub fn parse_list_bucket_page(xml: &str) -> S3ListPage {
    S3ListPage {
        listing: parse_list_bucket_result(xml),
        is_truncated: xml_text(xml, "IsTruncated").as_deref() == Some("true"),
        next_token: xml_text(xml, "NextContinuationToken"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gsi::SimCa;
    use crate::http::HttpResponseHead;
    use std::io::Cursor;

    #[test]
    fn slowdown_reply_is_a_complete_http_response() {
        let mut cur = Cursor::new(SLOWDOWN_REPLY.to_vec());
        let head = HttpResponseHead::read(&mut cur).unwrap();
        assert_eq!(head.status, 503);
        let body_len = head.content_length().unwrap() as usize;
        let body = &SLOWDOWN_REPLY[SLOWDOWN_REPLY.len() - body_len..];
        // The declared Content-Length must cover exactly the XML body.
        assert!(body.starts_with(b"<?xml"));
        assert!(std::str::from_utf8(body)
            .unwrap()
            .contains("<Code>SlowDown</Code>"));
        assert_eq!(
            cur.get_ref().len() - cur.position() as usize,
            body_len,
            "Content-Length must match the remaining bytes"
        );
    }

    #[test]
    fn error_xml_renders_and_parses() {
        let (status, code, msg) = error_for(NestError::NotFound);
        assert_eq!(status, 404);
        let xml = render_error_xml(code, msg, "/b/<k>");
        assert_eq!(xml_text(&xml, "Code").as_deref(), Some("NoSuchKey"));
        assert_eq!(xml_text(&xml, "Resource").as_deref(), Some("/b/<k>"));
    }

    #[test]
    fn every_error_maps_to_a_distinct_code() {
        use NestError::*;
        let codes: Vec<&str> = [
            Denied, NotFound, Exists, NoSpace, BadRequest, Invalid, Internal,
        ]
        .iter()
        .map(|&e| error_for(e).1)
        .collect();
        let mut dedup = codes.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), codes.len());
    }

    #[test]
    fn list_bucket_result_roundtrip() {
        let listing = S3Listing {
            objects: vec![
                S3Object {
                    key: "logs/app.log".into(),
                    size: 7,
                },
                S3Object {
                    key: "a&b".into(),
                    size: 0,
                },
            ],
            common_prefixes: vec!["logs/2026/".into()],
        };
        let xml =
            render_list_bucket_result("data", "logs/", Some("/"), &listing, false, 1000, None);
        assert_eq!(xml_text(&xml, "Name").as_deref(), Some("data"));
        // KeyCount covers objects AND common prefixes, per ListObjectsV2.
        assert_eq!(xml_text(&xml, "KeyCount").as_deref(), Some("3"));
        assert_eq!(xml_text(&xml, "MaxKeys").as_deref(), Some("1000"));
        let back = parse_list_bucket_result(&xml);
        assert_eq!(back, listing);
    }

    #[test]
    fn truncated_page_carries_continuation_token() {
        let listing = S3Listing {
            objects: vec![S3Object {
                key: "k1".into(),
                size: 1,
            }],
            common_prefixes: vec![],
        };
        let xml = render_list_bucket_result("b", "", None, &listing, true, 1, Some("6b31"));
        let page = parse_list_bucket_page(&xml);
        assert!(page.is_truncated);
        assert_eq!(page.next_token.as_deref(), Some("6b31"));
        assert_eq!(page.listing, listing);
        // An exhausted listing carries no token.
        let xml = render_list_bucket_result("b", "", None, &listing, false, 1000, None);
        let page = parse_list_bucket_page(&xml);
        assert!(!page.is_truncated);
        assert_eq!(page.next_token, None);
    }

    #[test]
    fn auth_header_roundtrips_subjects_with_spaces() {
        let ca = SimCa::new("TestCA", 0xFEED);
        let cred = ca.issue("/O=Grid/OU=wisc.edu/CN=John Bent");
        let header = format_auth_header(&cred);
        assert!(header.starts_with("NEST4-FNV1A Credential="));
        // Spaces in the DN are escaped so the header stays one token pair.
        assert_eq!(header.matches(' ').count(), 1);
        let back = parse_auth_header(&header).unwrap();
        assert_eq!(back, cred);
        assert!(ca.verify(&back));
    }

    #[test]
    fn foreign_auth_schemes_are_ignored() {
        assert!(parse_auth_header("AWS4-HMAC-SHA256 Credential=x,Signature=y").is_none());
        assert!(parse_auth_header("NEST4-FNV1A Credential=only-subject").is_none());
        assert!(parse_auth_header("NEST4-FNV1A Credential=s,Signature=zzzz").is_none());
    }

    #[test]
    fn bucket_listing_renders() {
        let xml = render_list_all_buckets(&["alpha".into(), "beta".into()]);
        let blocks = xml_blocks(&xml, "Bucket");
        assert_eq!(blocks.len(), 2);
        assert_eq!(xml_text(blocks[0], "Name").as_deref(), Some("alpha"));
    }
}
