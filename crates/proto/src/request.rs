//! The common request interface (paper §3).
//!
//! Every protocol handler parses its wire format into a [`NestRequest`] and
//! renders a [`NestResponse`] back out, so the dispatcher, storage manager
//! and transfer manager never see protocol detail. "Most request types
//! across protocols are very similar (e.g., all have directory operations
//! such as create, remove, and read, as well as file operations such as
//! read, write, get, put, remove, and query)."

use std::fmt;
use std::str::FromStr;

/// The common request format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NestRequest {
    /// Create a directory.
    Mkdir { path: String },
    /// Remove an empty directory.
    Rmdir { path: String },
    /// List a directory. `prefix`/`delimiter` support object-store style
    /// listings (S3 ListObjectsV2): when either is set, the listing walks
    /// the subtree under `path`, filters keys by `prefix`, and rolls
    /// everything after the first `delimiter` past the prefix up into
    /// common prefixes. Both `None` is the classic flat directory listing.
    ListDir {
        path: String,
        prefix: Option<String>,
        delimiter: Option<String>,
    },
    /// Query file metadata.
    Stat { path: String },
    /// Retrieve a file (server → client data flow).
    Get { path: String },
    /// Store a file (client → server data flow). `size` is known for
    /// protocols that announce it (Chirp, HTTP Content-Length).
    Put { path: String, size: Option<u64> },
    /// Delete a file.
    Delete { path: String },
    /// Rename a file or directory.
    Rename { from: String, to: String },
    /// Create a lot (Chirp only: "Chirp is the only protocol that supports
    /// lot management").
    LotCreate { capacity: u64, duration: u64 },
    /// Create a group lot (the paper's "next release" feature; the caller
    /// must belong to the group).
    LotCreateGroup {
        group: String,
        capacity: u64,
        duration: u64,
    },
    /// Renew a lot's duration.
    LotRenew { id: u64, extra: u64 },
    /// Terminate a lot.
    LotTerminate { id: u64 },
    /// Query a lot.
    LotStat { id: u64 },
    /// List the caller's lots.
    LotList,
    /// Replace a directory ACL entry.
    SetAcl {
        path: String,
        principal: String,
        rights: String,
    },
    /// Read the effective ACL.
    GetAcl { path: String },
    /// Third-party transfer: instruct this server to move a file between
    /// two URLs (GridFTP-style server-to-server).
    ThirdParty { src: TransferUrl, dst: TransferUrl },
    /// End the session.
    Quit,
}

impl NestRequest {
    /// A short operation name used in ACL request ads and logs.
    pub fn op_name(&self) -> &'static str {
        match self {
            NestRequest::Mkdir { .. } => "mkdir",
            NestRequest::Rmdir { .. } => "rmdir",
            NestRequest::ListDir { .. } => "list",
            NestRequest::Stat { .. } => "stat",
            NestRequest::Get { .. } => "get",
            NestRequest::Put { .. } => "put",
            NestRequest::Delete { .. } => "delete",
            NestRequest::Rename { .. } => "rename",
            NestRequest::LotCreate { .. } => "lot_create",
            NestRequest::LotCreateGroup { .. } => "lot_create_group",
            NestRequest::LotRenew { .. } => "lot_renew",
            NestRequest::LotTerminate { .. } => "lot_terminate",
            NestRequest::LotStat { .. } => "lot_stat",
            NestRequest::LotList => "lot_list",
            NestRequest::SetAcl { .. } => "setacl",
            NestRequest::GetAcl { .. } => "getacl",
            NestRequest::ThirdParty { .. } => "third_party",
            NestRequest::Quit => "quit",
        }
    }

    /// True for requests whose execution is a data transfer (routed to the
    /// transfer manager); everything else is handled synchronously by the
    /// storage manager.
    pub fn is_transfer(&self) -> bool {
        matches!(
            self,
            NestRequest::Get { .. } | NestRequest::Put { .. } | NestRequest::ThirdParty { .. }
        )
    }
}

/// The protocol-independent response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NestResponse {
    /// Success with no payload.
    Ok,
    /// Success with a text payload (directory listings, lot info, ACLs).
    OkText(Vec<String>),
    /// Success with a size (stat, and the pre-transfer size announcement).
    OkSize(u64),
    /// Success with a lot id.
    OkLot(u64),
    /// The request failed.
    Error(NestError),
}

impl NestResponse {
    /// Collapses a fallible handler computation into a response: `Ok`
    /// passes through, the error converts via `Into<NestError>`. This is
    /// the single funnel through which layer-specific failures (storage,
    /// authentication) become wire-visible error classes, so handlers can
    /// use `?` internally and convert exactly once at the edge.
    pub fn from_result<E: Into<NestError>>(result: Result<NestResponse, E>) -> NestResponse {
        match result {
            Ok(resp) => resp,
            Err(e) => NestResponse::Error(e.into()),
        }
    }
}

/// Protocol-independent error classes; each codec maps these to its wire
/// representation (HTTP status, FTP reply code, NFS stat, Chirp code).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NestError {
    /// Authentication failed or access denied.
    Denied,
    /// No such file or directory.
    NotFound,
    /// Already exists.
    Exists,
    /// Out of guaranteed space / lot failure.
    NoSpace,
    /// Malformed request.
    BadRequest,
    /// Directory not empty, wrong object kind, etc.
    Invalid,
    /// Internal server error.
    Internal,
}

impl fmt::Display for NestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NestError::Denied => "permission denied",
            NestError::NotFound => "not found",
            NestError::Exists => "already exists",
            NestError::NoSpace => "insufficient space",
            NestError::BadRequest => "bad request",
            NestError::Invalid => "invalid operation",
            NestError::Internal => "internal error",
        };
        write!(f, "{}", s)
    }
}

/// Authentication failures are always reported as `Denied`: the wire
/// protocols deliberately do not distinguish "bad credential" from
/// "unmapped subject" (that would leak mapfile contents to probers).
impl From<crate::gsi::AuthError> for NestError {
    fn from(_: crate::gsi::AuthError) -> Self {
        NestError::Denied
    }
}

/// A transfer endpoint URL: `protocol://host:port/path`, as used by
/// third-party transfers and the grid execution manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransferUrl {
    /// Protocol scheme: "chirp", "ftp", "gsiftp" (GridFTP), "http", "nfs".
    pub scheme: String,
    /// Host name or address.
    pub host: String,
    /// TCP port.
    pub port: u16,
    /// Absolute path on that server.
    pub path: String,
}

impl TransferUrl {
    /// Builds a URL.
    pub fn new(scheme: &str, host: &str, port: u16, path: &str) -> Self {
        Self {
            scheme: scheme.to_owned(),
            host: host.to_owned(),
            port,
            path: path.to_owned(),
        }
    }

    /// The `host:port` authority.
    pub fn authority(&self) -> String {
        format!("{}:{}", self.host, self.port)
    }
}

impl fmt::Display for TransferUrl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}://{}:{}{}",
            self.scheme, self.host, self.port, self.path
        )
    }
}

/// URL parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UrlError(pub String);

impl fmt::Display for UrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad transfer url: {}", self.0)
    }
}

impl std::error::Error for UrlError {}

impl FromStr for TransferUrl {
    type Err = UrlError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (scheme, rest) = s
            .split_once("://")
            .ok_or_else(|| UrlError(format!("missing scheme in {:?}", s)))?;
        if scheme.is_empty() {
            return Err(UrlError("empty scheme".into()));
        }
        let (authority, path) = match rest.find('/') {
            Some(i) => (&rest[..i], &rest[i..]),
            None => (rest, "/"),
        };
        let (host, port) = authority
            .rsplit_once(':')
            .ok_or_else(|| UrlError(format!("missing port in {:?}", s)))?;
        if host.is_empty() {
            return Err(UrlError("empty host".into()));
        }
        let port: u16 = port
            .parse()
            .map_err(|_| UrlError(format!("bad port in {:?}", s)))?;
        Ok(TransferUrl {
            scheme: scheme.to_owned(),
            host: host.to_owned(),
            port,
            path: path.to_owned(),
        })
    }
}

/// Default well-known ports, mirroring the 2002 NeST deployment layout
/// (one process, many listening ports).
pub mod ports {
    /// Chirp (NeST native).
    pub const CHIRP: u16 = 5893;
    /// HTTP.
    pub const HTTP: u16 = 8080;
    /// FTP control.
    pub const FTP: u16 = 5894;
    /// GridFTP control.
    pub const GRIDFTP: u16 = 2811;
    /// NFS (UDP/TCP RPC).
    pub const NFS: u16 = 5899;
    /// S3-compatible REST (the conventional MinIO port).
    pub const S3: u16 = 9000;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_classification() {
        assert!(NestRequest::Get { path: "/f".into() }.is_transfer());
        assert!(NestRequest::Put {
            path: "/f".into(),
            size: None
        }
        .is_transfer());
        assert!(!NestRequest::Mkdir { path: "/d".into() }.is_transfer());
        assert!(!NestRequest::LotList.is_transfer());
    }

    #[test]
    fn url_roundtrip() {
        let u: TransferUrl = "gsiftp://argonne.example.org:2811/staging/input.dat"
            .parse()
            .unwrap();
        assert_eq!(u.scheme, "gsiftp");
        assert_eq!(u.host, "argonne.example.org");
        assert_eq!(u.port, 2811);
        assert_eq!(u.path, "/staging/input.dat");
        assert_eq!(
            u.to_string(),
            "gsiftp://argonne.example.org:2811/staging/input.dat"
        );
    }

    #[test]
    fn url_defaults_root_path() {
        let u: TransferUrl = "chirp://host:5893".parse().unwrap();
        assert_eq!(u.path, "/");
    }

    #[test]
    fn url_errors() {
        assert!("no-scheme/path".parse::<TransferUrl>().is_err());
        assert!("chirp://hostonly/path".parse::<TransferUrl>().is_err());
        assert!("chirp://host:badport/p".parse::<TransferUrl>().is_err());
        assert!("://host:1/p".parse::<TransferUrl>().is_err());
        assert!("chirp://:1/p".parse::<TransferUrl>().is_err());
    }

    #[test]
    fn from_result_funnels_errors() {
        let ok: Result<NestResponse, NestError> = Ok(NestResponse::OkSize(9));
        assert_eq!(NestResponse::from_result(ok), NestResponse::OkSize(9));
        let err: Result<NestResponse, NestError> = Err(NestError::NoSpace);
        assert_eq!(
            NestResponse::from_result(err),
            NestResponse::Error(NestError::NoSpace)
        );
        // Auth failures collapse to Denied without leaking the cause.
        assert_eq!(
            NestError::from(crate::gsi::AuthError::BadCredential),
            NestError::Denied
        );
        assert_eq!(
            NestError::from(crate::gsi::AuthError::Unmapped),
            NestError::Denied
        );
    }

    #[test]
    fn op_names_unique_enough() {
        assert_eq!(NestRequest::Quit.op_name(), "quit");
        assert_eq!(
            NestRequest::LotCreate {
                capacity: 1,
                duration: 1
            }
            .op_name(),
            "lot_create"
        );
    }

    #[test]
    fn ipv6_ish_host_with_port_parses_via_rsplit() {
        // rsplit_once keeps the last colon as the port separator.
        let u: TransferUrl = "http://fe80--1:8080/x".parse().unwrap();
        assert_eq!(u.host, "fe80--1");
        assert_eq!(u.port, 8080);
    }
}
