//! # nest-proto
//!
//! The NeST **protocol layer** (paper §3): wire codecs and client libraries
//! for every protocol the appliance speaks, plus the *common request
//! format* they are all translated into.
//!
//! "The role of the protocol layer is to transform the specific protocol
//! used by the client to and from a common request interface understood by
//! the other components in NeST. ... the virtual protocol layer in NeST is
//! much like the virtual file system (VFS) layer in many operating
//! systems."
//!
//! * [`request`] — the common request/response model ([`NestRequest`],
//!   [`NestResponse`]) and transfer URLs for third-party transfers.
//! * [`wire`] — shared line-oriented framing with hostile-input limits.
//! * [`chirp`] — Chirp, NeST's native protocol: the only protocol with lot
//!   management, and a GSI-authenticated one.
//! * [`http`] — an HTTP/1.1 subset (GET/PUT/HEAD/DELETE).
//! * [`ftp`] — RFC 959 FTP: control-channel codec and passive-mode data
//!   connections.
//! * [`gridftp`] — GridFTP extensions over FTP: simulated GSI
//!   authentication, extended block (MODE E) framing, parallel data
//!   streams, and third-party transfers.
//! * [`nfs`] — an NFSv2 subset plus the MOUNT protocol, over
//!   `nest-sunrpc`.
//! * [`ibp`] — the Internet Backplane Protocol's byte-array depot model
//!   (the paper's announced protocol addition; §8 contrasts its
//!   allocations with lots).
//! * [`s3`] — an S3-compatible REST subset (objects, buckets,
//!   ListObjectsV2, S3 error XML): the post-paper protocol that proves
//!   the virtual layer is a real plugin API.
//! * [`gsi`] — a *simulated* Grid Security Infrastructure: subject DNs,
//!   toy CA-signed credentials and a grid-mapfile. (Not cryptographically
//!   secure; it exercises the same authentication code paths.)

pub mod chirp;
pub mod ftp;
pub mod gridftp;
pub mod gsi;
pub mod http;
pub mod ibp;
pub mod nfs;
pub mod request;
pub mod s3;
pub mod wire;

pub use request::{NestRequest, NestResponse, TransferUrl};
