//! NFS version 2 (RFC 1094) subset plus the MOUNT protocol (paper §3).
//!
//! The paper serves "a restricted subset of NFS" so unmodified applications
//! can use Grid storage through the local file-system interface, and notes
//! that "mount, not technically part of NFS, is actually a protocol in its
//! own right; however, within NeST, mount is handled by the NFS handler."
//!
//! Implemented procedures: NULL, GETATTR, LOOKUP, READ, WRITE, CREATE,
//! REMOVE, RENAME, MKDIR, RMDIR, READDIR, STATFS — the set a 2002
//! compute-job workload touches. NFS is block-based: a client reading a
//! 10 MB file issues ~1280 8 KB READs, which is exactly why FIFO
//! scheduling disfavors NFS in Figure 3 and why the stride scheduler's
//! byte-based accounting matters in Figure 4.

pub mod client;
pub mod types;
pub mod wire;

pub use client::{MountClient, NfsClient};
pub use types::{FileHandle, NfsAttr, NfsFileType, NfsStat};
pub use wire::{MOUNT_PROGRAM, MOUNT_VERSION, NFS_BLOCK_SIZE, NFS_PROGRAM, NFS_VERSION};
