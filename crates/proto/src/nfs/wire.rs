//! NFSv2 / MOUNT procedure argument and result encodings (RFC 1094).
//!
//! Both sides live here: the client encodes args and decodes results; the
//! server (in `nest-core`) decodes args and encodes results.

use super::types::{FileHandle, NfsAttr, NfsStat};
use nest_sunrpc::xdr::{XdrDecoder, XdrEncoder, XdrError};

/// The NFS RPC program number.
pub const NFS_PROGRAM: u32 = 100_003;
/// NFS protocol version implemented.
pub const NFS_VERSION: u32 = 2;
/// The MOUNT RPC program number.
pub const MOUNT_PROGRAM: u32 = 100_005;
/// MOUNT protocol version.
pub const MOUNT_VERSION: u32 = 1;
/// NFSv2 transfer block size (8 KB, the classic value — and the unit the
/// paper's byte-based stride scheduling reasons about).
pub const NFS_BLOCK_SIZE: u32 = 8192;

/// NFSv2 procedure numbers.
pub mod proc {
    pub const NULL: u32 = 0;
    pub const GETATTR: u32 = 1;
    pub const SETATTR: u32 = 2;
    pub const LOOKUP: u32 = 4;
    pub const READ: u32 = 6;
    pub const WRITE: u32 = 8;
    pub const CREATE: u32 = 9;
    pub const REMOVE: u32 = 10;
    pub const RENAME: u32 = 11;
    pub const MKDIR: u32 = 14;
    pub const RMDIR: u32 = 15;
    pub const READDIR: u32 = 16;
    pub const STATFS: u32 = 17;
}

/// MOUNT procedure numbers.
pub mod mountproc {
    pub const NULL: u32 = 0;
    pub const MNT: u32 = 1;
    pub const UMNT: u32 = 3;
}

/// `diropargs`: directory handle + name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirOpArgs {
    /// Directory handle.
    pub dir: FileHandle,
    /// Entry name.
    pub name: String,
}

impl DirOpArgs {
    /// Encodes.
    pub fn encode(&self, e: &mut XdrEncoder) {
        self.dir.encode(e);
        e.put_str(&self.name);
    }

    /// Decodes.
    pub fn decode(d: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(Self {
            dir: FileHandle::decode(d)?,
            name: d.get_string()?,
        })
    }
}

/// `diropres`: status + (handle, attributes) on success.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirOpRes {
    pub status: NfsStat,
    pub fh: Option<(FileHandle, NfsAttr)>,
}

impl DirOpRes {
    /// Encodes a success.
    pub fn ok(fh: FileHandle, attr: NfsAttr) -> Self {
        Self {
            status: NfsStat::Ok,
            fh: Some((fh, attr)),
        }
    }

    /// Encodes an error.
    pub fn err(status: NfsStat) -> Self {
        Self { status, fh: None }
    }

    /// Encodes.
    pub fn encode(&self, e: &mut XdrEncoder) {
        e.put_u32(self.status as u32);
        if let Some((fh, attr)) = &self.fh {
            fh.encode(e);
            attr.encode(e);
        }
    }

    /// Decodes.
    pub fn decode(d: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        let status = NfsStat::from_u32(d.get_u32()?);
        if status == NfsStat::Ok {
            let fh = FileHandle::decode(d)?;
            let attr = NfsAttr::decode(d)?;
            Ok(Self {
                status,
                fh: Some((fh, attr)),
            })
        } else {
            Ok(Self { status, fh: None })
        }
    }
}

/// `attrstat`: status + attributes on success.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrStat {
    pub status: NfsStat,
    pub attr: Option<NfsAttr>,
}

impl AttrStat {
    /// Success.
    pub fn ok(attr: NfsAttr) -> Self {
        Self {
            status: NfsStat::Ok,
            attr: Some(attr),
        }
    }

    /// Error.
    pub fn err(status: NfsStat) -> Self {
        Self { status, attr: None }
    }

    /// Encodes.
    pub fn encode(&self, e: &mut XdrEncoder) {
        e.put_u32(self.status as u32);
        if let Some(attr) = &self.attr {
            attr.encode(e);
        }
    }

    /// Decodes.
    pub fn decode(d: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        let status = NfsStat::from_u32(d.get_u32()?);
        if status == NfsStat::Ok {
            Ok(Self {
                status,
                attr: Some(NfsAttr::decode(d)?),
            })
        } else {
            Ok(Self { status, attr: None })
        }
    }
}

/// SETATTR args: handle + sattr. The only settable attribute NeST honors
/// is `size` (truncate); mode/uid/gid are ACL-layer concerns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetAttrArgs {
    pub fh: FileHandle,
    /// New size, or `None` (wire value 0xffffffff) to leave unchanged.
    pub size: Option<u32>,
}

impl SetAttrArgs {
    /// Encodes.
    pub fn encode(&self, e: &mut XdrEncoder) {
        self.fh.encode(e);
        e.put_u32(u32::MAX); // mode: don't set
        e.put_u32(u32::MAX); // uid
        e.put_u32(u32::MAX); // gid
        e.put_u32(self.size.unwrap_or(u32::MAX));
        e.put_u32(u32::MAX).put_u32(u32::MAX); // atime
        e.put_u32(u32::MAX).put_u32(u32::MAX); // mtime
    }

    /// Decodes.
    pub fn decode(d: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        let fh = FileHandle::decode(d)?;
        let _mode = d.get_u32()?;
        let _uid = d.get_u32()?;
        let _gid = d.get_u32()?;
        let size = match d.get_u32()? {
            u32::MAX => None,
            v => Some(v),
        };
        for _ in 0..4 {
            d.get_u32()?;
        }
        Ok(Self { fh, size })
    }
}

/// READ args.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadArgs {
    pub fh: FileHandle,
    pub offset: u32,
    pub count: u32,
}

impl ReadArgs {
    /// Encodes (totalcount is unused per the RFC).
    pub fn encode(&self, e: &mut XdrEncoder) {
        self.fh.encode(e);
        e.put_u32(self.offset);
        e.put_u32(self.count);
        e.put_u32(0);
    }

    /// Decodes.
    pub fn decode(d: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        let fh = FileHandle::decode(d)?;
        let offset = d.get_u32()?;
        let count = d.get_u32()?;
        let _total = d.get_u32()?;
        Ok(Self { fh, offset, count })
    }
}

/// READ result: status + (attrs, data).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadRes {
    pub status: NfsStat,
    pub attr: Option<NfsAttr>,
    pub data: Vec<u8>,
}

impl ReadRes {
    /// Encodes.
    pub fn encode(&self, e: &mut XdrEncoder) {
        e.put_u32(self.status as u32);
        if self.status == NfsStat::Ok {
            if let Some(attr) = &self.attr {
                attr.encode(e);
            }
            e.put_opaque(&self.data);
        }
    }

    /// Decodes.
    pub fn decode(d: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        let status = NfsStat::from_u32(d.get_u32()?);
        if status == NfsStat::Ok {
            let attr = NfsAttr::decode(d)?;
            let data = d.get_opaque()?.to_vec();
            Ok(Self {
                status,
                attr: Some(attr),
                data,
            })
        } else {
            Ok(Self {
                status,
                attr: None,
                data: Vec::new(),
            })
        }
    }
}

/// WRITE args.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteArgs {
    pub fh: FileHandle,
    pub offset: u32,
    pub data: Vec<u8>,
}

impl WriteArgs {
    /// Encodes (beginoffset/totalcount unused per the RFC).
    pub fn encode(&self, e: &mut XdrEncoder) {
        self.fh.encode(e);
        e.put_u32(0);
        e.put_u32(self.offset);
        e.put_u32(0);
        e.put_opaque(&self.data);
    }

    /// Decodes.
    pub fn decode(d: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        let fh = FileHandle::decode(d)?;
        let _begin = d.get_u32()?;
        let offset = d.get_u32()?;
        let _total = d.get_u32()?;
        let data = d.get_opaque()?.to_vec();
        Ok(Self { fh, offset, data })
    }
}

/// CREATE/MKDIR args: where + initial attributes (we honor only size=0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CreateArgs {
    pub wher: DirOpArgs,
}

impl CreateArgs {
    /// Encodes with a default `sattr` (all -1 except mode/size).
    pub fn encode(&self, e: &mut XdrEncoder) {
        self.wher.encode(e);
        // sattr: mode, uid, gid, size, atime(2), mtime(2) — -1 = don't set.
        e.put_u32(0o644);
        e.put_u32(u32::MAX);
        e.put_u32(u32::MAX);
        e.put_u32(0);
        e.put_u32(u32::MAX).put_u32(u32::MAX);
        e.put_u32(u32::MAX).put_u32(u32::MAX);
    }

    /// Decodes, discarding the sattr.
    pub fn decode(d: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        let wher = DirOpArgs::decode(d)?;
        for _ in 0..8 {
            d.get_u32()?;
        }
        Ok(Self { wher })
    }
}

/// RENAME args.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RenameArgs {
    pub from: DirOpArgs,
    pub to: DirOpArgs,
}

impl RenameArgs {
    /// Encodes.
    pub fn encode(&self, e: &mut XdrEncoder) {
        self.from.encode(e);
        self.to.encode(e);
    }

    /// Decodes.
    pub fn decode(d: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(Self {
            from: DirOpArgs::decode(d)?,
            to: DirOpArgs::decode(d)?,
        })
    }
}

/// READDIR args.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadDirArgs {
    pub fh: FileHandle,
    pub cookie: u32,
    pub count: u32,
}

impl ReadDirArgs {
    /// Encodes.
    pub fn encode(&self, e: &mut XdrEncoder) {
        self.fh.encode(e);
        e.put_u32(self.cookie);
        e.put_u32(self.count);
    }

    /// Decodes.
    pub fn decode(d: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(Self {
            fh: FileHandle::decode(d)?,
            cookie: d.get_u32()?,
            count: d.get_u32()?,
        })
    }
}

/// One READDIR entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    pub fileid: u32,
    pub name: String,
    pub cookie: u32,
}

/// READDIR result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadDirRes {
    pub status: NfsStat,
    pub entries: Vec<DirEntry>,
    pub eof: bool,
}

impl ReadDirRes {
    /// Encodes (linked-list XDR form).
    pub fn encode(&self, e: &mut XdrEncoder) {
        e.put_u32(self.status as u32);
        if self.status != NfsStat::Ok {
            return;
        }
        for entry in &self.entries {
            e.put_bool(true);
            e.put_u32(entry.fileid);
            e.put_str(&entry.name);
            e.put_u32(entry.cookie);
        }
        e.put_bool(false);
        e.put_bool(self.eof);
    }

    /// Decodes.
    pub fn decode(d: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        let status = NfsStat::from_u32(d.get_u32()?);
        if status != NfsStat::Ok {
            return Ok(Self {
                status,
                entries: Vec::new(),
                eof: true,
            });
        }
        let mut entries = Vec::new();
        while d.get_bool()? {
            entries.push(DirEntry {
                fileid: d.get_u32()?,
                name: d.get_string()?,
                cookie: d.get_u32()?,
            });
        }
        let eof = d.get_bool()?;
        Ok(Self {
            status,
            entries,
            eof,
        })
    }
}

/// MOUNT `fhstatus`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FhStatus {
    pub status: u32,
    pub fh: Option<FileHandle>,
}

impl FhStatus {
    /// Encodes.
    pub fn encode(&self, e: &mut XdrEncoder) {
        e.put_u32(self.status);
        if let Some(fh) = &self.fh {
            fh.encode(e);
        }
    }

    /// Decodes.
    pub fn decode(d: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        let status = d.get_u32()?;
        if status == 0 {
            Ok(Self {
                status,
                fh: Some(FileHandle::decode(d)?),
            })
        } else {
            Ok(Self { status, fh: None })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: PartialEq + std::fmt::Debug>(
        value: &T,
        encode: impl Fn(&T, &mut XdrEncoder),
        decode: impl Fn(&mut XdrDecoder<'_>) -> Result<T, XdrError>,
    ) {
        let mut e = XdrEncoder::new();
        encode(value, &mut e);
        let bytes = e.into_bytes();
        let mut d = XdrDecoder::new(&bytes);
        let back = decode(&mut d).unwrap();
        assert_eq!(&back, value);
        assert!(d.is_exhausted(), "{} trailing bytes", d.remaining());
    }

    fn fh(id: u64) -> FileHandle {
        FileHandle::from_id(id, 1)
    }

    #[test]
    fn diropargs_roundtrip() {
        roundtrip(
            &DirOpArgs {
                dir: fh(5),
                name: "input.dat".into(),
            },
            DirOpArgs::encode,
            DirOpArgs::decode,
        );
    }

    #[test]
    fn diropres_both_arms() {
        roundtrip(
            &DirOpRes::ok(fh(9), NfsAttr::file(100, 9)),
            DirOpRes::encode,
            DirOpRes::decode,
        );
        roundtrip(
            &DirOpRes::err(NfsStat::NoEnt),
            DirOpRes::encode,
            DirOpRes::decode,
        );
    }

    #[test]
    fn attrstat_both_arms() {
        roundtrip(
            &AttrStat::ok(NfsAttr::dir(2)),
            AttrStat::encode,
            AttrStat::decode,
        );
        roundtrip(
            &AttrStat::err(NfsStat::Stale),
            AttrStat::encode,
            AttrStat::decode,
        );
    }

    #[test]
    fn read_roundtrips() {
        roundtrip(
            &ReadArgs {
                fh: fh(1),
                offset: 8192,
                count: 8192,
            },
            ReadArgs::encode,
            ReadArgs::decode,
        );
        roundtrip(
            &ReadRes {
                status: NfsStat::Ok,
                attr: Some(NfsAttr::file(100, 1)),
                data: vec![1, 2, 3],
            },
            ReadRes::encode,
            ReadRes::decode,
        );
        roundtrip(
            &ReadRes {
                status: NfsStat::Acces,
                attr: None,
                data: Vec::new(),
            },
            ReadRes::encode,
            ReadRes::decode,
        );
    }

    #[test]
    fn setattr_roundtrip() {
        roundtrip(
            &SetAttrArgs {
                fh: fh(4),
                size: Some(1000),
            },
            SetAttrArgs::encode,
            SetAttrArgs::decode,
        );
        roundtrip(
            &SetAttrArgs {
                fh: fh(4),
                size: None,
            },
            SetAttrArgs::encode,
            SetAttrArgs::decode,
        );
    }

    #[test]
    fn write_roundtrip() {
        roundtrip(
            &WriteArgs {
                fh: fh(1),
                offset: 0,
                data: vec![7; 8192],
            },
            WriteArgs::encode,
            WriteArgs::decode,
        );
    }

    #[test]
    fn create_and_rename_roundtrip() {
        roundtrip(
            &CreateArgs {
                wher: DirOpArgs {
                    dir: fh(1),
                    name: "new".into(),
                },
            },
            CreateArgs::encode,
            CreateArgs::decode,
        );
        roundtrip(
            &RenameArgs {
                from: DirOpArgs {
                    dir: fh(1),
                    name: "a".into(),
                },
                to: DirOpArgs {
                    dir: fh(2),
                    name: "b".into(),
                },
            },
            RenameArgs::encode,
            RenameArgs::decode,
        );
    }

    #[test]
    fn readdir_roundtrip_with_entries() {
        roundtrip(
            &ReadDirRes {
                status: NfsStat::Ok,
                entries: vec![
                    DirEntry {
                        fileid: 1,
                        name: ".".into(),
                        cookie: 1,
                    },
                    DirEntry {
                        fileid: 7,
                        name: "data".into(),
                        cookie: 2,
                    },
                ],
                eof: true,
            },
            ReadDirRes::encode,
            ReadDirRes::decode,
        );
        roundtrip(
            &ReadDirRes {
                status: NfsStat::NotDir,
                entries: Vec::new(),
                eof: true,
            },
            ReadDirRes::encode,
            ReadDirRes::decode,
        );
    }

    #[test]
    fn fhstatus_roundtrip() {
        roundtrip(
            &FhStatus {
                status: 0,
                fh: Some(fh(1)),
            },
            FhStatus::encode,
            FhStatus::decode,
        );
        roundtrip(
            &FhStatus {
                status: 13,
                fh: None,
            },
            FhStatus::encode,
            FhStatus::decode,
        );
    }
}
