//! A user-level NFSv2 + MOUNT client.
//!
//! Stands in for the kernel NFS client the paper's compute jobs used (a
//! kernel mount is unavailable in a container; see the substitution table
//! in `DESIGN.md`). Exercises the identical wire protocol.

use super::types::{FileHandle, NfsAttr, NfsStat};
use super::wire::{
    mountproc, proc, AttrStat, CreateArgs, DirOpArgs, DirOpRes, ReadArgs, ReadDirArgs, ReadDirRes,
    ReadRes, RenameArgs, SetAttrArgs, WriteArgs, MOUNT_PROGRAM, MOUNT_VERSION, NFS_BLOCK_SIZE,
    NFS_PROGRAM, NFS_VERSION,
};
use nest_sunrpc::client::{RpcClient, RpcError};
use nest_sunrpc::xdr::{XdrDecoder, XdrEncoder};
use std::fmt;
use std::io::{Read, Write};
use std::net::ToSocketAddrs;

/// NFS client errors.
#[derive(Debug)]
pub enum NfsError {
    /// RPC/transport failure.
    Rpc(RpcError),
    /// The server returned a non-OK NFS status.
    Status(NfsStat),
    /// Malformed server reply.
    Decode,
}

impl fmt::Display for NfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NfsError::Rpc(e) => write!(f, "nfs rpc error: {}", e),
            NfsError::Status(s) => write!(f, "nfs error status {:?}", s),
            NfsError::Decode => write!(f, "nfs reply decode error"),
        }
    }
}

impl std::error::Error for NfsError {}

impl From<RpcError> for NfsError {
    fn from(e: RpcError) -> Self {
        NfsError::Rpc(e)
    }
}

impl From<nest_sunrpc::xdr::XdrError> for NfsError {
    fn from(_: nest_sunrpc::xdr::XdrError) -> Self {
        NfsError::Decode
    }
}

fn check(status: NfsStat) -> Result<(), NfsError> {
    if status == NfsStat::Ok {
        Ok(())
    } else {
        Err(NfsError::Status(status))
    }
}

/// A MOUNT-protocol client.
pub struct MountClient {
    rpc: RpcClient,
}

impl MountClient {
    /// Connects over UDP to the server's RPC endpoint.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, NfsError> {
        Ok(Self {
            rpc: RpcClient::udp(addr)?,
        })
    }

    /// MNT: obtains the root file handle for an export path.
    pub fn mount(&mut self, dirpath: &str) -> Result<FileHandle, NfsError> {
        let mut e = XdrEncoder::new();
        e.put_str(dirpath);
        let res = self
            .rpc
            .call(MOUNT_PROGRAM, MOUNT_VERSION, mountproc::MNT, e.into_bytes())?;
        let mut d = XdrDecoder::new(&res);
        let st = super::wire::FhStatus::decode(&mut d)?;
        match st.fh {
            Some(fh) if st.status == 0 => Ok(fh),
            _ => Err(NfsError::Status(NfsStat::from_u32(st.status))),
        }
    }

    /// UMNT: releases an export.
    pub fn unmount(&mut self, dirpath: &str) -> Result<(), NfsError> {
        let mut e = XdrEncoder::new();
        e.put_str(dirpath);
        self.rpc.call(
            MOUNT_PROGRAM,
            MOUNT_VERSION,
            mountproc::UMNT,
            e.into_bytes(),
        )?;
        Ok(())
    }
}

/// An NFSv2 client bound to one server.
pub struct NfsClient {
    rpc: RpcClient,
}

impl NfsClient {
    /// Connects over UDP (the classic NFSv2 transport).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, NfsError> {
        Ok(Self {
            rpc: RpcClient::udp(addr)?,
        })
    }

    /// Connects over TCP.
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> Result<Self, NfsError> {
        Ok(Self {
            rpc: RpcClient::tcp(addr)?,
        })
    }

    fn call(&mut self, proc: u32, args: Vec<u8>) -> Result<Vec<u8>, NfsError> {
        Ok(self.rpc.call(NFS_PROGRAM, NFS_VERSION, proc, args)?)
    }

    /// NULL ping.
    pub fn null(&mut self) -> Result<(), NfsError> {
        self.call(proc::NULL, Vec::new())?;
        Ok(())
    }

    /// GETATTR.
    pub fn getattr(&mut self, fh: FileHandle) -> Result<NfsAttr, NfsError> {
        let mut e = XdrEncoder::new();
        fh.encode(&mut e);
        let res = self.call(proc::GETATTR, e.into_bytes())?;
        let st = AttrStat::decode(&mut XdrDecoder::new(&res))?;
        check(st.status)?;
        st.attr.ok_or(NfsError::Decode)
    }

    /// SETATTR: truncates (or extends) a file to `size` bytes.
    pub fn truncate(&mut self, fh: FileHandle, size: u32) -> Result<NfsAttr, NfsError> {
        let mut e = XdrEncoder::new();
        SetAttrArgs {
            fh,
            size: Some(size),
        }
        .encode(&mut e);
        let res = self.call(proc::SETATTR, e.into_bytes())?;
        let st = AttrStat::decode(&mut XdrDecoder::new(&res))?;
        check(st.status)?;
        st.attr.ok_or(NfsError::Decode)
    }

    /// LOOKUP a name in a directory.
    pub fn lookup(
        &mut self,
        dir: FileHandle,
        name: &str,
    ) -> Result<(FileHandle, NfsAttr), NfsError> {
        let mut e = XdrEncoder::new();
        DirOpArgs {
            dir,
            name: name.into(),
        }
        .encode(&mut e);
        let res = self.call(proc::LOOKUP, e.into_bytes())?;
        let r = DirOpRes::decode(&mut XdrDecoder::new(&res))?;
        check(r.status)?;
        r.fh.ok_or(NfsError::Decode)
    }

    /// READ one block.
    pub fn read(&mut self, fh: FileHandle, offset: u32, count: u32) -> Result<Vec<u8>, NfsError> {
        let mut e = XdrEncoder::new();
        ReadArgs { fh, offset, count }.encode(&mut e);
        let res = self.call(proc::READ, e.into_bytes())?;
        let r = ReadRes::decode(&mut XdrDecoder::new(&res))?;
        check(r.status)?;
        Ok(r.data)
    }

    /// WRITE one block.
    pub fn write(&mut self, fh: FileHandle, offset: u32, data: &[u8]) -> Result<NfsAttr, NfsError> {
        let mut e = XdrEncoder::new();
        WriteArgs {
            fh,
            offset,
            data: data.to_vec(),
        }
        .encode(&mut e);
        let res = self.call(proc::WRITE, e.into_bytes())?;
        let st = AttrStat::decode(&mut XdrDecoder::new(&res))?;
        check(st.status)?;
        st.attr.ok_or(NfsError::Decode)
    }

    /// CREATE a file.
    pub fn create(
        &mut self,
        dir: FileHandle,
        name: &str,
    ) -> Result<(FileHandle, NfsAttr), NfsError> {
        let mut e = XdrEncoder::new();
        CreateArgs {
            wher: DirOpArgs {
                dir,
                name: name.into(),
            },
        }
        .encode(&mut e);
        let res = self.call(proc::CREATE, e.into_bytes())?;
        let r = DirOpRes::decode(&mut XdrDecoder::new(&res))?;
        check(r.status)?;
        r.fh.ok_or(NfsError::Decode)
    }

    /// REMOVE a file.
    pub fn remove(&mut self, dir: FileHandle, name: &str) -> Result<(), NfsError> {
        let mut e = XdrEncoder::new();
        DirOpArgs {
            dir,
            name: name.into(),
        }
        .encode(&mut e);
        let res = self.call(proc::REMOVE, e.into_bytes())?;
        check(NfsStat::from_u32(
            XdrDecoder::new(&res)
                .get_u32()
                .map_err(|_| NfsError::Decode)?,
        ))
    }

    /// RENAME.
    pub fn rename(
        &mut self,
        from_dir: FileHandle,
        from: &str,
        to_dir: FileHandle,
        to: &str,
    ) -> Result<(), NfsError> {
        let mut e = XdrEncoder::new();
        RenameArgs {
            from: DirOpArgs {
                dir: from_dir,
                name: from.into(),
            },
            to: DirOpArgs {
                dir: to_dir,
                name: to.into(),
            },
        }
        .encode(&mut e);
        let res = self.call(proc::RENAME, e.into_bytes())?;
        check(NfsStat::from_u32(
            XdrDecoder::new(&res)
                .get_u32()
                .map_err(|_| NfsError::Decode)?,
        ))
    }

    /// MKDIR.
    pub fn mkdir(
        &mut self,
        dir: FileHandle,
        name: &str,
    ) -> Result<(FileHandle, NfsAttr), NfsError> {
        let mut e = XdrEncoder::new();
        CreateArgs {
            wher: DirOpArgs {
                dir,
                name: name.into(),
            },
        }
        .encode(&mut e);
        let res = self.call(proc::MKDIR, e.into_bytes())?;
        let r = DirOpRes::decode(&mut XdrDecoder::new(&res))?;
        check(r.status)?;
        r.fh.ok_or(NfsError::Decode)
    }

    /// RMDIR.
    pub fn rmdir(&mut self, dir: FileHandle, name: &str) -> Result<(), NfsError> {
        let mut e = XdrEncoder::new();
        DirOpArgs {
            dir,
            name: name.into(),
        }
        .encode(&mut e);
        let res = self.call(proc::RMDIR, e.into_bytes())?;
        check(NfsStat::from_u32(
            XdrDecoder::new(&res)
                .get_u32()
                .map_err(|_| NfsError::Decode)?,
        ))
    }

    /// READDIR (whole directory, following cookies).
    pub fn readdir(&mut self, dir: FileHandle) -> Result<Vec<String>, NfsError> {
        let mut names = Vec::new();
        let mut cookie = 0u32;
        loop {
            let mut e = XdrEncoder::new();
            ReadDirArgs {
                fh: dir,
                cookie,
                count: 4096,
            }
            .encode(&mut e);
            let res = self.call(proc::READDIR, e.into_bytes())?;
            let r = ReadDirRes::decode(&mut XdrDecoder::new(&res))?;
            check(r.status)?;
            for entry in &r.entries {
                cookie = entry.cookie;
                if entry.name != "." && entry.name != ".." {
                    names.push(entry.name.clone());
                }
            }
            if r.eof || r.entries.is_empty() {
                return Ok(names);
            }
        }
    }

    /// Reads a whole file block by block (how a kernel client streams it —
    /// the workload shape Figures 3–4 depend on).
    pub fn read_file(&mut self, fh: FileHandle, sink: &mut impl Write) -> Result<u64, NfsError> {
        let mut offset = 0u32;
        loop {
            let data = self.read(fh, offset, NFS_BLOCK_SIZE)?;
            if data.is_empty() {
                return Ok(offset as u64);
            }
            sink.write_all(&data).map_err(|_| NfsError::Decode)?;
            offset += data.len() as u32;
            if (data.len() as u32) < NFS_BLOCK_SIZE {
                return Ok(offset as u64);
            }
        }
    }

    /// Writes a whole stream block by block under `name` in `dir`.
    pub fn write_file(
        &mut self,
        dir: FileHandle,
        name: &str,
        source: &mut impl Read,
    ) -> Result<u64, NfsError> {
        let (fh, _) = self.create(dir, name)?;
        let mut offset = 0u32;
        let mut buf = vec![0u8; NFS_BLOCK_SIZE as usize];
        loop {
            let n = source.read(&mut buf).map_err(|_| NfsError::Decode)?;
            if n == 0 {
                return Ok(offset as u64);
            }
            self.write(fh, offset, &buf[..n])?;
            offset += n as u32;
        }
    }
}
