//! NFSv2 data types (RFC 1094 §2.3).

use nest_sunrpc::xdr::{XdrDecoder, XdrEncoder, XdrError};

/// Size of an NFSv2 file handle.
pub const FHSIZE: usize = 32;

/// An opaque 32-byte file handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FileHandle(pub [u8; FHSIZE]);

impl FileHandle {
    /// Builds a handle from a 64-bit file id (the server's fh scheme:
    /// id in the first 8 bytes, a generation tag in the next 8, zero pad).
    pub fn from_id(id: u64, generation: u64) -> Self {
        let mut bytes = [0u8; FHSIZE];
        bytes[..8].copy_from_slice(&id.to_be_bytes());
        bytes[8..16].copy_from_slice(&generation.to_be_bytes());
        FileHandle(bytes)
    }

    /// Extracts the file id.
    pub fn id(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().unwrap())
    }

    /// Extracts the generation tag.
    pub fn generation(&self) -> u64 {
        u64::from_be_bytes(self.0[8..16].try_into().unwrap())
    }

    /// XDR-encodes (fixed 32 bytes).
    pub fn encode(&self, e: &mut XdrEncoder) {
        e.put_opaque_fixed(&self.0);
    }

    /// XDR-decodes.
    pub fn decode(d: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        let bytes = d.get_opaque_fixed(FHSIZE)?;
        let mut fh = [0u8; FHSIZE];
        fh.copy_from_slice(bytes);
        Ok(FileHandle(fh))
    }
}

/// NFSv2 status codes (RFC 1094 §2.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum NfsStat {
    Ok = 0,
    Perm = 1,
    NoEnt = 2,
    Io = 5,
    Acces = 13,
    Exist = 17,
    NotDir = 20,
    IsDir = 21,
    FBig = 27,
    NoSpc = 28,
    Rofs = 30,
    NotEmpty = 66,
    Dquot = 69,
    Stale = 70,
}

impl NfsStat {
    /// Decodes from the wire value (unknown values map to Io).
    pub fn from_u32(v: u32) -> Self {
        match v {
            0 => NfsStat::Ok,
            1 => NfsStat::Perm,
            2 => NfsStat::NoEnt,
            5 => NfsStat::Io,
            13 => NfsStat::Acces,
            17 => NfsStat::Exist,
            20 => NfsStat::NotDir,
            21 => NfsStat::IsDir,
            27 => NfsStat::FBig,
            28 => NfsStat::NoSpc,
            30 => NfsStat::Rofs,
            66 => NfsStat::NotEmpty,
            69 => NfsStat::Dquot,
            70 => NfsStat::Stale,
            _ => NfsStat::Io,
        }
    }
}

/// NFSv2 file types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum NfsFileType {
    /// Non-file (unused here).
    None = 0,
    /// Regular file.
    Regular = 1,
    /// Directory.
    Directory = 2,
}

impl NfsFileType {
    fn from_u32(v: u32) -> Self {
        match v {
            1 => NfsFileType::Regular,
            2 => NfsFileType::Directory,
            _ => NfsFileType::None,
        }
    }
}

/// NFSv2 `fattr` — file attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NfsAttr {
    /// File type.
    pub ftype: NfsFileType,
    /// Permission bits (NeST reports 0644/0755; real enforcement is the
    /// ACL layer's job).
    pub mode: u32,
    /// Link count (always 1/2).
    pub nlink: u32,
    /// Owner uid as reported.
    pub uid: u32,
    /// Owner gid.
    pub gid: u32,
    /// Size in bytes.
    pub size: u32,
    /// Preferred block size.
    pub blocksize: u32,
    /// File id (inode analogue: the fh id truncated).
    pub fileid: u32,
    /// Modification time (seconds).
    pub mtime: u32,
}

impl NfsAttr {
    /// Attributes for a regular file.
    pub fn file(size: u32, fileid: u32) -> Self {
        Self {
            ftype: NfsFileType::Regular,
            mode: 0o644,
            nlink: 1,
            uid: 0,
            gid: 0,
            size,
            blocksize: super::wire::NFS_BLOCK_SIZE,
            fileid,
            mtime: 0,
        }
    }

    /// Attributes for a directory.
    pub fn dir(fileid: u32) -> Self {
        Self {
            ftype: NfsFileType::Directory,
            mode: 0o755,
            nlink: 2,
            uid: 0,
            gid: 0,
            size: 512,
            blocksize: super::wire::NFS_BLOCK_SIZE,
            fileid,
            mtime: 0,
        }
    }

    /// XDR-encodes the full RFC 1094 fattr layout.
    pub fn encode(&self, e: &mut XdrEncoder) {
        e.put_u32(self.ftype as u32);
        e.put_u32(self.mode);
        e.put_u32(self.nlink);
        e.put_u32(self.uid);
        e.put_u32(self.gid);
        e.put_u32(self.size);
        e.put_u32(self.blocksize);
        e.put_u32(0); // rdev
        e.put_u32(self.size.div_ceil(512)); // blocks
        e.put_u32(1); // fsid
        e.put_u32(self.fileid);
        e.put_u32(self.mtime).put_u32(0); // atime
        e.put_u32(self.mtime).put_u32(0); // mtime
        e.put_u32(self.mtime).put_u32(0); // ctime
    }

    /// XDR-decodes.
    pub fn decode(d: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        let ftype = NfsFileType::from_u32(d.get_u32()?);
        let mode = d.get_u32()?;
        let nlink = d.get_u32()?;
        let uid = d.get_u32()?;
        let gid = d.get_u32()?;
        let size = d.get_u32()?;
        let blocksize = d.get_u32()?;
        let _rdev = d.get_u32()?;
        let _blocks = d.get_u32()?;
        let _fsid = d.get_u32()?;
        let fileid = d.get_u32()?;
        let mtime_a = (d.get_u32()?, d.get_u32()?);
        let _mtime_m = (d.get_u32()?, d.get_u32()?);
        let _ctime = (d.get_u32()?, d.get_u32()?);
        Ok(Self {
            ftype,
            mode,
            nlink,
            uid,
            gid,
            size,
            blocksize,
            fileid,
            mtime: mtime_a.0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_handle_id_roundtrip() {
        let fh = FileHandle::from_id(0xABCDEF, 42);
        assert_eq!(fh.id(), 0xABCDEF);
        assert_eq!(fh.generation(), 42);
        let mut e = XdrEncoder::new();
        fh.encode(&mut e);
        let bytes = e.into_bytes();
        assert_eq!(bytes.len(), FHSIZE);
        let decoded = FileHandle::decode(&mut XdrDecoder::new(&bytes)).unwrap();
        assert_eq!(decoded, fh);
    }

    #[test]
    fn attr_roundtrip() {
        let attr = NfsAttr::file(123_456, 77);
        let mut e = XdrEncoder::new();
        attr.encode(&mut e);
        let bytes = e.into_bytes();
        // fattr is 17 u32s.
        assert_eq!(bytes.len(), 17 * 4);
        let decoded = NfsAttr::decode(&mut XdrDecoder::new(&bytes)).unwrap();
        assert_eq!(decoded, attr);
    }

    #[test]
    fn dir_attr_shape() {
        let attr = NfsAttr::dir(1);
        assert_eq!(attr.ftype, NfsFileType::Directory);
        assert_eq!(attr.mode, 0o755);
        assert_eq!(attr.nlink, 2);
    }

    #[test]
    fn stat_codes_roundtrip() {
        for s in [
            NfsStat::Ok,
            NfsStat::Perm,
            NfsStat::NoEnt,
            NfsStat::Io,
            NfsStat::Acces,
            NfsStat::Exist,
            NfsStat::NotDir,
            NfsStat::IsDir,
            NfsStat::FBig,
            NfsStat::NoSpc,
            NfsStat::Rofs,
            NfsStat::NotEmpty,
            NfsStat::Dquot,
            NfsStat::Stale,
        ] {
            assert_eq!(NfsStat::from_u32(s as u32), s);
        }
        assert_eq!(NfsStat::from_u32(9999), NfsStat::Io);
    }
}
