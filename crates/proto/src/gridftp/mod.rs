//! GridFTP — protocol extensions to FTP for the Grid (paper §3; Allcock et
//! al., "GridFTP: Protocol Extensions to FTP for the Grid").
//!
//! Implemented extensions:
//!
//! * **GSI authentication** — `AUTH GSSAPI` + `ADAT` carrying our simulated
//!   credential (see [`crate::gsi`]); the paper notes GSI "is used by Chirp
//!   and GridFTP".
//! * **Extended block mode (MODE E)** — blocks carry `(descriptor, count,
//!   offset)` headers so data can arrive out of order over several TCP
//!   streams ([`modee`]).
//! * **Parallel data streams** — `OPTS RETR Parallelism=n;` plus multiple
//!   connections to one passive endpoint.
//! * **Third-party transfers** — a client holds two control connections
//!   and splices the servers together with `PASV`/`PORT`
//!   ([`client::third_party`]), the mechanism behind the paper's Figure 2
//!   step 3 ("a GridFTP third-party transfer between the Madison NeST and
//!   the NeST at the Argonne cluster").

pub mod client;
pub mod modee;

pub use client::{third_party, GridFtpClient};
pub use modee::{read_block, write_block, Block, OffsetSink, DESC_EOD, DESC_EOF};
