//! GridFTP extended block mode (MODE E) framing.
//!
//! Each block on a data channel is:
//!
//! ```text
//! +------------+---------------+----------------+------ ... ------+
//! | descriptor | count (u64 BE)| offset (u64 BE)| count data bytes|
//! +------------+---------------+----------------+------ ... ------+
//! ```
//!
//! Because every block names its file offset, blocks may arrive out of
//! order and over any number of TCP streams — this is what makes parallel
//! streams and striped servers possible.
//!
//! Descriptor bits used here (a subset of the GridFTP draft):
//! * [`DESC_EOD`] (0x08) — end of data on *this* channel;
//! * [`DESC_EOF`] (0x40) — the block's `offset` field carries the total
//!   number of data channels the receiver should expect EOD from.

use std::io::{self, Read, Write};

/// End-of-data descriptor bit.
pub const DESC_EOD: u8 = 0x08;
/// End-of-file descriptor bit (offset = expected EOD count).
pub const DESC_EOF: u8 = 0x40;

/// One MODE E block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Descriptor bits.
    pub descriptor: u8,
    /// File offset of the payload.
    pub offset: u64,
    /// Payload bytes.
    pub data: Vec<u8>,
}

impl Block {
    /// True if this block carries the EOD bit.
    pub fn is_eod(&self) -> bool {
        self.descriptor & DESC_EOD != 0
    }

    /// True if this block carries the EOF bit.
    pub fn is_eof(&self) -> bool {
        self.descriptor & DESC_EOF != 0
    }
}

/// Writes one block.
pub fn write_block(w: &mut impl Write, descriptor: u8, offset: u64, data: &[u8]) -> io::Result<()> {
    let mut header = [0u8; 17];
    header[0] = descriptor;
    header[1..9].copy_from_slice(&(data.len() as u64).to_be_bytes());
    header[9..17].copy_from_slice(&offset.to_be_bytes());
    w.write_all(&header)?;
    w.write_all(data)?;
    w.flush()
}

/// Reads one block; `Ok(None)` on clean EOF at a block boundary.
pub fn read_block(r: &mut impl Read) -> io::Result<Option<Block>> {
    let mut header = [0u8; 17];
    let mut filled = 0;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside MODE E block header",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let descriptor = header[0];
    let count = u64::from_be_bytes(header[1..9].try_into().unwrap());
    let offset = u64::from_be_bytes(header[9..17].try_into().unwrap());
    if count > (1 << 31) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("MODE E block of {} bytes exceeds cap", count),
        ));
    }
    let mut data = vec![0u8; count as usize];
    r.read_exact(&mut data)?;
    Ok(Some(Block {
        descriptor,
        offset,
        data,
    }))
}

/// A random-access byte sink: MODE E blocks land at explicit offsets.
pub trait OffsetSink: Send {
    /// Writes `data` at `offset`, extending as needed.
    fn write_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()>;
}

impl OffsetSink for Vec<u8> {
    fn write_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()> {
        let end = offset as usize + data.len();
        if self.len() < end {
            self.resize(end, 0);
        }
        self[offset as usize..end].copy_from_slice(data);
        Ok(())
    }
}

/// Stripes a source across several writers in MODE E, round-robin, then
/// sends the EOF block (on the first stream) and EOD on every stream.
/// Returns total payload bytes sent.
pub fn send_striped<W: Write>(
    streams: &mut [W],
    source: &mut impl Read,
    chunk_size: usize,
) -> io::Result<u64> {
    assert!(!streams.is_empty());
    let mut buf = vec![0u8; chunk_size.max(1)];
    let mut offset = 0u64;
    let mut turn = 0usize;
    loop {
        let n = source.read(&mut buf)?;
        if n == 0 {
            break;
        }
        write_block(&mut streams[turn], 0, offset, &buf[..n])?;
        offset += n as u64;
        turn = (turn + 1) % streams.len();
    }
    // EOF block: announce how many EODs to expect.
    let n_streams = streams.len() as u64;
    write_block(&mut streams[0], DESC_EOF, n_streams, &[])?;
    for s in streams.iter_mut() {
        write_block(s, DESC_EOD, 0, &[])?;
    }
    Ok(offset)
}

/// Drains one MODE E stream into a shared sink; returns (payload bytes,
/// saw_eod, eof_channel_count if an EOF block arrived).
pub fn drain_stream(
    r: &mut impl Read,
    sink: &std::sync::Arc<parking_lot::Mutex<dyn OffsetSink>>,
) -> io::Result<(u64, bool, Option<u64>)> {
    let mut bytes = 0u64;
    let mut saw_eod = false;
    let mut eof_channels = None;
    while let Some(block) = read_block(r)? {
        if !block.data.is_empty() {
            sink.lock().write_at(block.offset, &block.data)?;
            bytes += block.data.len() as u64;
        }
        if block.is_eof() {
            eof_channels = Some(block.offset);
        }
        if block.is_eod() {
            saw_eod = true;
            break;
        }
    }
    Ok((bytes, saw_eod, eof_channels))
}

/// Receives a complete MODE E transfer arriving over several streams,
/// writing into `sink`. Spawns a thread per stream (std has no readiness
/// API; one blocking reader per channel is exactly what 2002-era servers
/// did). Returns total payload bytes.
pub fn recv_striped<R: Read + Send + 'static>(
    streams: Vec<R>,
    sink: std::sync::Arc<parking_lot::Mutex<dyn OffsetSink>>,
) -> io::Result<u64> {
    let mut handles = Vec::new();
    for mut r in streams {
        let sink = std::sync::Arc::clone(&sink);
        handles.push(std::thread::spawn(move || drain_stream(&mut r, &sink)));
    }
    let mut total = 0u64;
    let mut first_err = None;
    for h in handles {
        match h.join() {
            Ok(Ok((bytes, _eod, _eof))) => total += bytes,
            Ok(Err(e)) => first_err = first_err.or(Some(e)),
            Err(_) => {
                first_err = first_err.or_else(|| Some(io::Error::other("receiver thread panicked")))
            }
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(total),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::io::Cursor;
    use std::sync::Arc;

    #[test]
    fn block_roundtrip() {
        let mut buf = Vec::new();
        write_block(&mut buf, 0, 4096, b"payload").unwrap();
        let mut cur = Cursor::new(buf);
        let block = read_block(&mut cur).unwrap().unwrap();
        assert_eq!(block.descriptor, 0);
        assert_eq!(block.offset, 4096);
        assert_eq!(block.data, b"payload");
        assert!(read_block(&mut cur).unwrap().is_none());
    }

    #[test]
    fn eod_and_eof_bits() {
        let mut buf = Vec::new();
        write_block(&mut buf, DESC_EOF, 3, &[]).unwrap();
        write_block(&mut buf, DESC_EOD, 0, &[]).unwrap();
        let mut cur = Cursor::new(buf);
        let eof = read_block(&mut cur).unwrap().unwrap();
        assert!(eof.is_eof());
        assert_eq!(eof.offset, 3);
        let eod = read_block(&mut cur).unwrap().unwrap();
        assert!(eod.is_eod());
    }

    #[test]
    fn truncated_header_is_error() {
        let mut buf = Vec::new();
        write_block(&mut buf, 0, 0, b"xy").unwrap();
        buf.truncate(10);
        assert!(read_block(&mut Cursor::new(buf)).is_err());
    }

    #[test]
    fn oversized_count_rejected() {
        let mut header = [0u8; 17];
        header[1..9].copy_from_slice(&(u64::MAX).to_be_bytes());
        assert!(read_block(&mut Cursor::new(header.to_vec())).is_err());
    }

    #[test]
    fn offset_sink_vec_handles_out_of_order() {
        let mut v: Vec<u8> = Vec::new();
        v.write_at(5, b"world").unwrap();
        v.write_at(0, b"hello").unwrap();
        assert_eq!(&v, b"helloworld");
    }

    #[test]
    fn stripe_and_reassemble_across_three_streams() {
        let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let mut wires: Vec<Vec<u8>> = vec![Vec::new(); 3];
        {
            let mut refs: Vec<&mut Vec<u8>> = wires.iter_mut().collect();
            let sent =
                send_striped(&mut refs[..], &mut Cursor::new(payload.clone()), 1000).unwrap();
            assert_eq!(sent, payload.len() as u64);
        }
        let sink: Arc<Mutex<dyn OffsetSink>> = Arc::new(Mutex::new(Vec::<u8>::new()));
        let streams: Vec<Cursor<Vec<u8>>> = wires.into_iter().map(Cursor::new).collect();
        let total = recv_striped(streams, Arc::clone(&sink)).unwrap();
        assert_eq!(total, payload.len() as u64);
        // Verify reassembly byte-for-byte by downcasting through the vec.
        let guard = sink.lock();
        // Write a copy out through the trait: cheat by writing at 0 of a
        // fresh vec is not possible through dyn; instead re-run with a
        // concrete type:
        drop(guard);
        let concrete = Arc::new(Mutex::new(Vec::<u8>::new()));
        let mut wires2: Vec<Vec<u8>> = vec![Vec::new(); 3];
        {
            let mut refs: Vec<&mut Vec<u8>> = wires2.iter_mut().collect();
            send_striped(&mut refs[..], &mut Cursor::new(payload.clone()), 1000).unwrap();
        }
        let dyn_sink: Arc<Mutex<dyn OffsetSink>> = concrete.clone();
        recv_striped(
            wires2.into_iter().map(Cursor::new).collect::<Vec<_>>(),
            dyn_sink,
        )
        .unwrap();
        assert_eq!(&*concrete.lock(), &payload);
    }

    #[test]
    fn single_stream_stripe() {
        let payload = vec![9u8; 5000];
        let mut wires: Vec<Vec<u8>> = vec![Vec::new()];
        {
            let mut refs: Vec<&mut Vec<u8>> = wires.iter_mut().collect();
            send_striped(&mut refs[..], &mut Cursor::new(payload.clone()), 512).unwrap();
        }
        let concrete = Arc::new(Mutex::new(Vec::<u8>::new()));
        let dyn_sink: Arc<Mutex<dyn OffsetSink>> = concrete.clone();
        recv_striped(vec![Cursor::new(wires.remove(0))], dyn_sink).unwrap();
        assert_eq!(&*concrete.lock(), &payload);
    }

    #[test]
    fn empty_source_sends_only_control_blocks() {
        let mut wires: Vec<Vec<u8>> = vec![Vec::new(), Vec::new()];
        {
            let mut refs: Vec<&mut Vec<u8>> = wires.iter_mut().collect();
            let sent = send_striped(&mut refs[..], &mut Cursor::new(Vec::new()), 512).unwrap();
            assert_eq!(sent, 0);
        }
        let concrete = Arc::new(Mutex::new(Vec::<u8>::new()));
        let dyn_sink: Arc<Mutex<dyn OffsetSink>> = concrete.clone();
        let total = recv_striped(
            wires.into_iter().map(Cursor::new).collect::<Vec<_>>(),
            dyn_sink,
        )
        .unwrap();
        assert_eq!(total, 0);
        assert!(concrete.lock().is_empty());
    }
}
