//! A blocking GridFTP client: FTP plus GSI authentication, MODE E parallel
//! transfers, and third-party orchestration.

use super::modee::{recv_striped, send_striped, OffsetSink};
use crate::ftp::{render_host_port, FtpClient, FtpError};
use crate::gsi::Credential;
use parking_lot::Mutex;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Arc;

/// A GridFTP client session.
pub struct GridFtpClient {
    ftp: FtpClient,
    parallelism: u32,
}

impl GridFtpClient {
    /// Connects to a GridFTP control port.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, FtpError> {
        Ok(Self {
            ftp: FtpClient::connect(addr)?,
            parallelism: 1,
        })
    }

    /// Performs the (simulated) GSI handshake: `AUTH GSSAPI` then `ADAT`
    /// carrying the credential. Returns the mapped local user reported in
    /// the 235 reply.
    pub fn authenticate(&mut self, cred: &Credential) -> Result<String, FtpError> {
        let reply = self.ftp.command("AUTH GSSAPI")?;
        if reply.code != 334 {
            return Err(FtpError::Reply(reply));
        }
        let reply = self
            .ftp
            .command(&format!("ADAT {}", cred.to_wire().replace(' ', "|")))?;
        if reply.code != 235 {
            return Err(FtpError::Reply(reply));
        }
        // "235 GSSAPI authentication succeeded for <user>"
        Ok(reply.text.rsplit(' ').next().unwrap_or_default().to_owned())
    }

    /// Switches the session to extended block mode and sets the number of
    /// parallel data streams for subsequent transfers.
    pub fn set_parallelism(&mut self, n: u32) -> Result<(), FtpError> {
        let n = n.max(1);
        let reply = self.ftp.command("MODE E")?;
        if reply.code != 200 {
            return Err(FtpError::Reply(reply));
        }
        let reply = self.ftp.command(&format!("OPTS RETR Parallelism={};", n))?;
        if reply.code != 200 {
            return Err(FtpError::Reply(reply));
        }
        self.parallelism = n;
        Ok(())
    }

    /// Plain FTP operations pass straight through.
    pub fn ftp(&mut self) -> &mut FtpClient {
        &mut self.ftp
    }

    fn open_streams(&mut self, data_addr: SocketAddr) -> Result<Vec<TcpStream>, FtpError> {
        let mut streams = Vec::with_capacity(self.parallelism as usize);
        for _ in 0..self.parallelism.max(1) {
            let s = TcpStream::connect(data_addr)?;
            s.set_nodelay(true)?;
            streams.push(s);
        }
        Ok(streams)
    }

    /// Retrieves a file in MODE E over the configured parallel streams,
    /// writing blocks (possibly out of order) into `sink`. Returns payload
    /// bytes received.
    pub fn get_parallel(
        &mut self,
        path: &str,
        sink: Arc<Mutex<dyn OffsetSink>>,
    ) -> Result<u64, FtpError> {
        let data_addr = self.ftp.pasv()?;
        let reply = self.ftp.command(&format!("RETR {}", path))?;
        if reply.code != 150 {
            return Err(FtpError::Reply(reply));
        }
        let streams = self.open_streams(data_addr)?;
        let total = recv_striped(streams, sink)?;
        let done = self.ftp.read_reply()?;
        if done.code != 226 {
            return Err(FtpError::Reply(done));
        }
        Ok(total)
    }

    /// Convenience: retrieves a whole file into memory.
    pub fn get_bytes(&mut self, path: &str) -> Result<Vec<u8>, FtpError> {
        let sink = Arc::new(Mutex::named("proto.gridftp.sink", 600, Vec::<u8>::new()));
        let dyn_sink: Arc<Mutex<dyn OffsetSink>> = sink.clone();
        self.get_parallel(path, dyn_sink)?;
        let mut guard = sink.lock();
        Ok(std::mem::take(&mut *guard))
    }

    /// Stores a stream in MODE E over the configured parallel streams.
    /// Returns payload bytes sent.
    pub fn put_parallel(&mut self, path: &str, source: &mut impl Read) -> Result<u64, FtpError> {
        let data_addr = self.ftp.pasv()?;
        let reply = self.ftp.command(&format!("STOR {}", path))?;
        if reply.code != 150 {
            return Err(FtpError::Reply(reply));
        }
        let mut streams = self.open_streams(data_addr)?;
        let total = send_striped(&mut streams[..], source, 64 * 1024)?;
        drop(streams);
        let done = self.ftp.read_reply()?;
        if done.code != 226 {
            return Err(FtpError::Reply(done));
        }
        Ok(total)
    }

    /// Convenience: stores a byte slice.
    pub fn put_bytes(&mut self, path: &str, data: &[u8]) -> Result<u64, FtpError> {
        self.put_parallel(path, &mut io::Cursor::new(data))
    }

    /// Ends the session.
    pub fn quit(self) -> Result<(), FtpError> {
        self.ftp.quit()
    }
}

/// Orchestrates a third-party transfer: the file at `src_path` on the
/// server behind `src` moves directly to `dst_path` on the server behind
/// `dst`; the data never touches this client (paper §2.1: "allowing
/// transparent three- and four-party transfers").
///
/// Mechanism (classic FTP third-party, stream mode):
/// 1. `PASV` on the destination → data address;
/// 2. `STOR` on the destination (it begins listening);
/// 3. `PORT <addr>` on the source (it will connect out);
/// 4. `RETR` on the source;
/// 5. wait for `226` on both control channels.
pub fn third_party(
    src: &mut GridFtpClient,
    src_path: &str,
    dst: &mut GridFtpClient,
    dst_path: &str,
) -> Result<(), FtpError> {
    let data_addr = dst.ftp.pasv()?;
    let stor = dst.ftp.command(&format!("STOR {}", dst_path))?;
    if stor.code != 150 {
        return Err(FtpError::Reply(stor));
    }
    let v4 = match data_addr {
        SocketAddr::V4(v4) => v4,
        SocketAddr::V6(_) => {
            return Err(FtpError::Protocol(
                "IPv6 data address in third-party".into(),
            ))
        }
    };
    let port = src.ftp.command(&format!("PORT {}", render_host_port(v4)))?;
    if port.code != 200 {
        return Err(FtpError::Reply(port));
    }
    let retr = src.ftp.command(&format!("RETR {}", src_path))?;
    if retr.code != 150 {
        return Err(FtpError::Reply(retr));
    }
    let src_done = src.ftp.read_reply()?;
    if src_done.code != 226 {
        return Err(FtpError::Reply(src_done));
    }
    let dst_done = dst.ftp.read_reply()?;
    if dst_done.code != 226 {
        return Err(FtpError::Reply(dst_done));
    }
    Ok(())
}
