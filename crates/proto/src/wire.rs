//! Shared line-oriented wire helpers.
//!
//! Chirp, HTTP and FTP are all CRLF/LF line protocols; this module provides
//! bounded line reading (hostile clients cannot exhaust memory with an
//! unterminated line) and exact-count byte copying for data phases.

use std::io::{self, Read, Write};

/// Maximum accepted line length; longer lines abort the connection.
pub const MAX_LINE: usize = 8 * 1024;

/// Reads one line (terminated by `\n`; a trailing `\r` is stripped).
/// Returns `Ok(None)` on clean EOF before any byte.
pub fn read_line(r: &mut impl Read) -> io::Result<Option<String>> {
    let mut buf = Vec::with_capacity(80);
    let mut byte = [0u8; 1];
    loop {
        match r.read(&mut byte) {
            Ok(0) => {
                if buf.is_empty() {
                    return Ok(None);
                }
                // EOF mid-line: hand back what we have (FTP clients often
                // omit the final newline on QUIT).
                break;
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                if buf.len() >= MAX_LINE {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "line exceeds maximum length",
                    ));
                }
                buf.push(byte[0]);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 line"))
}

/// Writes a line with CRLF termination and flushes.
pub fn write_line(w: &mut impl Write, line: &str) -> io::Result<()> {
    w.write_all(line.as_bytes())?;
    w.write_all(b"\r\n")?;
    w.flush()
}

/// Copies exactly `count` bytes from `r` to `w` in `chunk`-sized pieces.
pub fn copy_exact(
    r: &mut impl Read,
    w: &mut impl Write,
    count: u64,
    chunk: usize,
) -> io::Result<()> {
    let mut buf = vec![0u8; chunk.max(1)];
    let mut remaining = count;
    while remaining > 0 {
        let want = (buf.len() as u64).min(remaining) as usize;
        let n = r.read(&mut buf[..want])?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("peer closed with {} bytes outstanding", remaining),
            ));
        }
        w.write_all(&buf[..n])?;
        remaining -= n as u64;
    }
    w.flush()
}

/// Reads exactly `count` bytes into a vector.
pub fn read_exact_vec(r: &mut impl Read, count: u64) -> io::Result<Vec<u8>> {
    let mut out = vec![0u8; count as usize];
    r.read_exact(&mut out)?;
    Ok(out)
}

/// Splits a command line into the verb and the remainder.
pub fn split_verb(line: &str) -> (&str, &str) {
    match line.find(' ') {
        Some(i) => (&line[..i], line[i + 1..].trim_start()),
        None => (line, ""),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn read_line_strips_crlf() {
        let mut c = Cursor::new(b"hello\r\nworld\n".to_vec());
        assert_eq!(read_line(&mut c).unwrap().unwrap(), "hello");
        assert_eq!(read_line(&mut c).unwrap().unwrap(), "world");
        assert_eq!(read_line(&mut c).unwrap(), None);
    }

    #[test]
    fn read_line_handles_eof_mid_line() {
        let mut c = Cursor::new(b"partial".to_vec());
        assert_eq!(read_line(&mut c).unwrap().unwrap(), "partial");
        assert_eq!(read_line(&mut c).unwrap(), None);
    }

    #[test]
    fn read_line_rejects_oversized() {
        let big = vec![b'a'; MAX_LINE + 10];
        let mut c = Cursor::new(big);
        assert!(read_line(&mut c).is_err());
    }

    #[test]
    fn write_line_appends_crlf() {
        let mut out = Vec::new();
        write_line(&mut out, "200 OK").unwrap();
        assert_eq!(out, b"200 OK\r\n");
    }

    #[test]
    fn copy_exact_moves_count_bytes() {
        let src = vec![7u8; 10_000];
        let mut r = Cursor::new(src);
        let mut dst = Vec::new();
        copy_exact(&mut r, &mut dst, 9_999, 512).unwrap();
        assert_eq!(dst.len(), 9_999);
    }

    #[test]
    fn copy_exact_detects_early_eof() {
        let mut r = Cursor::new(vec![0u8; 5]);
        let mut dst = Vec::new();
        assert!(copy_exact(&mut r, &mut dst, 10, 4).is_err());
    }

    #[test]
    fn split_verb_variants() {
        assert_eq!(split_verb("GET /path"), ("GET", "/path"));
        assert_eq!(split_verb("QUIT"), ("QUIT", ""));
        assert_eq!(split_verb("PUT   /a b"), ("PUT", "/a b"));
    }
}
