//! IBP — the Internet Backplane Protocol (paper §3 future work, §8
//! related work).
//!
//! The paper: "We plan to include other Grid-relevant protocols in NeST,
//! including data movement protocols such as IBP", and §8 contrasts lots
//! with IBP's storage model: "IBP reservations are allocations for byte
//! arrays ... IBP allows both permanent and volatile allocations. ...
//! there does not appear to be a mechanism in IBP for switching an
//! allocation from permanent to volatile while lots in NeST switch
//! automatically to best-effort when their duration expires."
//!
//! This module implements that storage model (after Plank et al., "Managing
//! Data Storage in the Network"): a *depot* holds **byte arrays** named by
//! unguessable **capabilities** — a read, a write and a manage capability
//! per allocation — rather than files in a namespace.
//!
//! ## Wire format
//!
//! Line-oriented requests; `0 ...` success replies, negative codes for
//! errors; raw byte phases follow STORE requests and LOAD replies:
//!
//! ```text
//! ALLOCATE <size> <duration> <volatile|stable>  → 0 <rcap> <wcap> <mcap>
//! STORE <wcap> <nbytes> ⏎ <raw bytes>           → 0 <stored_total>
//! LOAD <rcap> <offset> <len>                    → 0 <n> ⏎ <raw bytes>
//! PROBE <mcap>                                  → 0 <size> <stored> <expires> <reliability>
//! EXTEND <mcap> <extra_seconds>                 → 0 ok
//! DECREMENT <mcap>                              → 0 ok   (deallocates)
//! QUIT                                          → 0 bye
//! ```

pub mod client;
mod codec;

pub use client::{IbpCapSet, IbpClient, IbpError, IbpProbe};
pub use codec::{parse_command, Capability, IbpCommand, Reliability, CODE_OK};
