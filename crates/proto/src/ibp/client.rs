//! A blocking IBP client.

use super::codec::{Capability, Reliability, CODE_OK};
use crate::wire::{copy_exact, read_exact_vec, read_line, write_line};
use std::fmt;
use std::io::{self, Read};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// IBP client errors.
#[derive(Debug)]
pub enum IbpError {
    /// Transport failure.
    Io(io::Error),
    /// Depot-reported failure (negative status code).
    Depot(i32),
    /// Unparseable depot output.
    Protocol(String),
}

impl fmt::Display for IbpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IbpError::Io(e) => write!(f, "ibp I/O error: {}", e),
            IbpError::Depot(code) => write!(f, "ibp depot error {}", code),
            IbpError::Protocol(m) => write!(f, "ibp protocol error: {}", m),
        }
    }
}

impl std::error::Error for IbpError {}

impl From<io::Error> for IbpError {
    fn from(e: io::Error) -> Self {
        IbpError::Io(e)
    }
}

/// The three capabilities returned by ALLOCATE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IbpCapSet {
    /// Read capability.
    pub read: Capability,
    /// Write capability.
    pub write: Capability,
    /// Manage capability.
    pub manage: Capability,
}

/// PROBE results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IbpProbe {
    /// Reserved size in bytes.
    pub size: u64,
    /// Bytes stored so far.
    pub stored: u64,
    /// Absolute expiry (depot seconds).
    pub expires: u64,
    /// Reliability class.
    pub reliability: Reliability,
}

/// A blocking IBP client session.
pub struct IbpClient {
    stream: TcpStream,
}

struct Status {
    code: i32,
    rest: String,
}

impl IbpClient {
    /// Connects to a depot.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, IbpError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        Ok(Self { stream })
    }

    fn command(&mut self, line: &str) -> Result<Status, IbpError> {
        write_line(&mut self.stream, line)?;
        self.read_status()
    }

    fn read_status(&mut self) -> Result<Status, IbpError> {
        let line = read_line(&mut self.stream)?
            .ok_or_else(|| IbpError::Protocol("depot closed connection".into()))?;
        let (code, rest) = match line.split_once(' ') {
            Some((c, r)) => (c, r.to_owned()),
            None => (line.as_str(), String::new()),
        };
        let code: i32 = code
            .parse()
            .map_err(|_| IbpError::Protocol(format!("bad status line {:?}", line)))?;
        if code != CODE_OK {
            return Err(IbpError::Depot(code));
        }
        Ok(Status { code, rest })
    }

    /// Reserves a byte array; returns its capability set.
    pub fn allocate(
        &mut self,
        size: u64,
        duration: u64,
        reliability: Reliability,
    ) -> Result<IbpCapSet, IbpError> {
        let st = self.command(&format!(
            "ALLOCATE {} {} {}",
            size,
            duration,
            reliability.as_str()
        ))?;
        let caps: Vec<&str> = st.rest.split_whitespace().collect();
        if caps.len() != 3 {
            return Err(IbpError::Protocol(format!(
                "expected 3 capabilities, got {:?}",
                st.rest
            )));
        }
        Ok(IbpCapSet {
            read: Capability(caps[0].to_owned()),
            write: Capability(caps[1].to_owned()),
            manage: Capability(caps[2].to_owned()),
        })
    }

    /// Appends bytes from a reader; returns the array's total stored bytes.
    pub fn store(
        &mut self,
        wcap: &Capability,
        nbytes: u64,
        source: &mut impl Read,
    ) -> Result<u64, IbpError> {
        write_line(&mut self.stream, &format!("STORE {} {}", wcap, nbytes))?;
        copy_exact(source, &mut self.stream, nbytes, 64 * 1024)?;
        let st = self.read_status()?;
        debug_assert_eq!(st.code, CODE_OK);
        st.rest
            .split_whitespace()
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| IbpError::Protocol(format!("bad STORE reply {:?}", st.rest)))
    }

    /// Appends a byte slice.
    pub fn store_bytes(&mut self, wcap: &Capability, data: &[u8]) -> Result<u64, IbpError> {
        self.store(wcap, data.len() as u64, &mut io::Cursor::new(data))
    }

    /// Reads a byte range.
    pub fn load(&mut self, rcap: &Capability, offset: u64, len: u64) -> Result<Vec<u8>, IbpError> {
        let st = self.command(&format!("LOAD {} {} {}", rcap, offset, len))?;
        let n: u64 = st
            .rest
            .split_whitespace()
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| IbpError::Protocol(format!("bad LOAD reply {:?}", st.rest)))?;
        Ok(read_exact_vec(&mut self.stream, n)?)
    }

    /// Queries an allocation.
    pub fn probe(&mut self, mcap: &Capability) -> Result<IbpProbe, IbpError> {
        let st = self.command(&format!("PROBE {}", mcap))?;
        let parts: Vec<&str> = st.rest.split_whitespace().collect();
        if parts.len() != 4 {
            return Err(IbpError::Protocol(format!("bad PROBE reply {:?}", st.rest)));
        }
        Ok(IbpProbe {
            size: parts[0]
                .parse()
                .map_err(|_| IbpError::Protocol("size".into()))?,
            stored: parts[1]
                .parse()
                .map_err(|_| IbpError::Protocol("stored".into()))?,
            expires: parts[2]
                .parse()
                .map_err(|_| IbpError::Protocol("expires".into()))?,
            reliability: Reliability::parse(parts[3])
                .ok_or_else(|| IbpError::Protocol("reliability".into()))?,
        })
    }

    /// Extends an allocation's duration.
    pub fn extend(&mut self, mcap: &Capability, extra: u64) -> Result<(), IbpError> {
        self.command(&format!("EXTEND {} {}", mcap, extra))?;
        Ok(())
    }

    /// Deallocates.
    pub fn decrement(&mut self, mcap: &Capability) -> Result<(), IbpError> {
        self.command(&format!("DECREMENT {}", mcap))?;
        Ok(())
    }

    /// Ends the session.
    pub fn quit(mut self) -> Result<(), IbpError> {
        let _ = self.command("QUIT");
        Ok(())
    }
}
