//! IBP command parsing and capability handling.

use std::fmt;

/// Success status code.
pub const CODE_OK: i32 = 0;

/// An unguessable capability naming one right on one allocation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Capability(pub String);

impl Capability {
    /// Builds a capability from an allocation id, a kind tag and a secret
    /// tag (the depot mints these; clients treat them as opaque).
    pub fn mint(alloc_id: u64, kind: &str, secret: u64) -> Self {
        Capability(format!("ibp-{}-{}-{:016x}", kind, alloc_id, secret))
    }

    /// Parses the allocation id back out (depot side).
    pub fn alloc_id(&self) -> Option<u64> {
        self.0.split('-').nth(2)?.parse().ok()
    }

    /// The capability kind ("r", "w" or "m").
    pub fn kind(&self) -> Option<&str> {
        self.0.split('-').nth(1)
    }
}

impl fmt::Display for Capability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Allocation reliability, per the IBP model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reliability {
    /// May be revoked when the depot needs space.
    Volatile,
    /// Space is guaranteed until the duration expires; never revoked early.
    Stable,
}

impl Reliability {
    /// Wire token.
    pub fn as_str(self) -> &'static str {
        match self {
            Reliability::Volatile => "volatile",
            Reliability::Stable => "stable",
        }
    }

    /// Parses the wire token.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "volatile" => Some(Reliability::Volatile),
            "stable" => Some(Reliability::Stable),
            _ => None,
        }
    }
}

/// A parsed IBP request.
#[derive(Debug, Clone, PartialEq)]
pub enum IbpCommand {
    /// Reserve a byte array.
    Allocate {
        size: u64,
        duration: u64,
        reliability: Reliability,
    },
    /// Append bytes (raw payload follows the line).
    Store { wcap: Capability, nbytes: u64 },
    /// Read a range.
    Load {
        rcap: Capability,
        offset: u64,
        len: u64,
    },
    /// Query an allocation.
    Probe { mcap: Capability },
    /// Extend the duration.
    Extend { mcap: Capability, extra: u64 },
    /// Deallocate.
    Decrement { mcap: Capability },
    /// End the session.
    Quit,
}

/// Parses one request line; `None` = malformed.
pub fn parse_command(line: &str) -> Option<IbpCommand> {
    let mut parts = line.split_whitespace();
    let verb = parts.next()?.to_ascii_uppercase();
    let args: Vec<&str> = parts.collect();
    Some(match (verb.as_str(), args.as_slice()) {
        ("ALLOCATE", [size, duration, rel]) => IbpCommand::Allocate {
            size: size.parse().ok()?,
            duration: duration.parse().ok()?,
            reliability: Reliability::parse(rel)?,
        },
        ("STORE", [wcap, nbytes]) => IbpCommand::Store {
            wcap: Capability((*wcap).to_owned()),
            nbytes: nbytes.parse().ok()?,
        },
        ("LOAD", [rcap, offset, len]) => IbpCommand::Load {
            rcap: Capability((*rcap).to_owned()),
            offset: offset.parse().ok()?,
            len: len.parse().ok()?,
        },
        ("PROBE", [mcap]) => IbpCommand::Probe {
            mcap: Capability((*mcap).to_owned()),
        },
        ("EXTEND", [mcap, extra]) => IbpCommand::Extend {
            mcap: Capability((*mcap).to_owned()),
            extra: extra.parse().ok()?,
        },
        ("DECREMENT", [mcap]) => IbpCommand::Decrement {
            mcap: Capability((*mcap).to_owned()),
        },
        ("QUIT", []) => IbpCommand::Quit,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capability_roundtrip() {
        let cap = Capability::mint(42, "w", 0xDEADBEEF);
        assert_eq!(cap.alloc_id(), Some(42));
        assert_eq!(cap.kind(), Some("w"));
        // Different secrets produce different capabilities.
        assert_ne!(cap, Capability::mint(42, "w", 0xBEEF));
    }

    #[test]
    fn parse_allocate() {
        assert_eq!(
            parse_command("ALLOCATE 1000 3600 volatile"),
            Some(IbpCommand::Allocate {
                size: 1000,
                duration: 3600,
                reliability: Reliability::Volatile
            })
        );
        assert_eq!(
            parse_command("allocate 5 1 STABLE"),
            Some(IbpCommand::Allocate {
                size: 5,
                duration: 1,
                reliability: Reliability::Stable
            })
        );
        assert_eq!(parse_command("ALLOCATE x 1 stable"), None);
        assert_eq!(parse_command("ALLOCATE 1 1 flaky"), None);
    }

    #[test]
    fn parse_data_commands() {
        assert!(matches!(
            parse_command("STORE ibp-w-1-aa 100"),
            Some(IbpCommand::Store { nbytes: 100, .. })
        ));
        assert!(matches!(
            parse_command("LOAD ibp-r-1-aa 0 50"),
            Some(IbpCommand::Load {
                offset: 0,
                len: 50,
                ..
            })
        ));
        assert!(matches!(
            parse_command("PROBE ibp-m-1-aa"),
            Some(IbpCommand::Probe { .. })
        ));
        assert_eq!(parse_command("QUIT"), Some(IbpCommand::Quit));
        assert_eq!(parse_command("FROBNICATE"), None);
        assert_eq!(parse_command(""), None);
    }
}
