//! A blocking FTP client (passive mode).

use super::codec::{parse_pasv_reply, FtpReply};
use crate::wire::{read_line, write_line};
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// FTP client errors.
#[derive(Debug)]
pub enum FtpError {
    /// Transport failure.
    Io(io::Error),
    /// A negative server reply.
    Reply(FtpReply),
    /// Unparseable server output.
    Protocol(String),
}

impl fmt::Display for FtpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtpError::Io(e) => write!(f, "ftp I/O error: {}", e),
            FtpError::Reply(r) => write!(f, "ftp server replied {}", r),
            FtpError::Protocol(m) => write!(f, "ftp protocol error: {}", m),
        }
    }
}

impl std::error::Error for FtpError {}

impl From<io::Error> for FtpError {
    fn from(e: io::Error) -> Self {
        FtpError::Io(e)
    }
}

/// A blocking FTP client session.
pub struct FtpClient {
    control: TcpStream,
}

impl FtpClient {
    /// Connects and consumes the greeting.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, FtpError> {
        let control = TcpStream::connect(addr)?;
        control.set_nodelay(true)?;
        control.set_read_timeout(Some(Duration::from_secs(30)))?;
        let mut client = Self { control };
        let greeting = client.read_reply()?;
        if greeting.code != 220 {
            return Err(FtpError::Reply(greeting));
        }
        Ok(client)
    }

    /// Issues a raw command and reads one reply.
    pub fn command(&mut self, line: &str) -> Result<FtpReply, FtpError> {
        write_line(&mut self.control, line)?;
        self.read_reply()
    }

    /// Reads one reply line.
    pub fn read_reply(&mut self) -> Result<FtpReply, FtpError> {
        let line = read_line(&mut self.control)?
            .ok_or_else(|| FtpError::Protocol("server closed control connection".into()))?;
        FtpReply::parse(&line)
            .ok_or_else(|| FtpError::Protocol(format!("bad reply line {:?}", line)))
    }

    fn expect(&mut self, line: &str, code: u16) -> Result<FtpReply, FtpError> {
        let reply = self.command(line)?;
        if reply.code == code {
            Ok(reply)
        } else {
            Err(FtpError::Reply(reply))
        }
    }

    /// Logs in (anonymous or named).
    pub fn login(&mut self, user: &str, pass: &str) -> Result<(), FtpError> {
        let reply = self.command(&format!("USER {}", user))?;
        match reply.code {
            230 => return Ok(()),
            331 => {}
            _ => return Err(FtpError::Reply(reply)),
        }
        self.expect(&format!("PASS {}", pass), 230)?;
        Ok(())
    }

    /// Sets binary type.
    pub fn type_binary(&mut self) -> Result<(), FtpError> {
        self.expect("TYPE I", 200)?;
        Ok(())
    }

    /// Enters passive mode; returns the server's data address.
    pub fn pasv(&mut self) -> Result<SocketAddr, FtpError> {
        let reply = self.expect("PASV", 227)?;
        parse_pasv_reply(&reply.text)
            .map(SocketAddr::V4)
            .ok_or_else(|| FtpError::Protocol(format!("bad PASV reply {:?}", reply.text)))
    }

    /// Downloads a file into a writer; returns bytes transferred.
    pub fn retr(&mut self, path: &str, sink: &mut impl Write) -> Result<u64, FtpError> {
        let data_addr = self.pasv()?;
        let reply = self.command(&format!("RETR {}", path))?;
        if reply.code != 150 {
            return Err(FtpError::Reply(reply));
        }
        let mut data = TcpStream::connect(data_addr)?;
        let mut total = 0u64;
        let mut buf = vec![0u8; 64 * 1024];
        loop {
            let n = data.read(&mut buf)?;
            if n == 0 {
                break;
            }
            sink.write_all(&buf[..n])?;
            total += n as u64;
        }
        drop(data);
        let done = self.read_reply()?;
        if done.code != 226 {
            return Err(FtpError::Reply(done));
        }
        Ok(total)
    }

    /// Downloads a file into a vector.
    pub fn retr_bytes(&mut self, path: &str) -> Result<Vec<u8>, FtpError> {
        let mut out = Vec::new();
        self.retr(path, &mut out)?;
        Ok(out)
    }

    /// Uploads from a reader until EOF; returns bytes transferred.
    pub fn stor(&mut self, path: &str, source: &mut impl Read) -> Result<u64, FtpError> {
        let data_addr = self.pasv()?;
        let reply = self.command(&format!("STOR {}", path))?;
        if reply.code != 150 {
            return Err(FtpError::Reply(reply));
        }
        let mut data = TcpStream::connect(data_addr)?;
        let mut total = 0u64;
        let mut buf = vec![0u8; 64 * 1024];
        loop {
            let n = source.read(&mut buf)?;
            if n == 0 {
                break;
            }
            data.write_all(&buf[..n])?;
            total += n as u64;
        }
        data.flush()?;
        drop(data); // close signals EOF in stream mode
        let done = self.read_reply()?;
        if done.code != 226 {
            return Err(FtpError::Reply(done));
        }
        Ok(total)
    }

    /// Uploads a byte slice.
    pub fn stor_bytes(&mut self, path: &str, data: &[u8]) -> Result<u64, FtpError> {
        self.stor(path, &mut io::Cursor::new(data))
    }

    /// Names in a directory (NLST).
    pub fn nlst(&mut self, path: Option<&str>) -> Result<Vec<String>, FtpError> {
        let data_addr = self.pasv()?;
        let cmd = match path {
            Some(p) => format!("NLST {}", p),
            None => "NLST".to_owned(),
        };
        let reply = self.command(&cmd)?;
        if reply.code != 150 {
            return Err(FtpError::Reply(reply));
        }
        let mut data = TcpStream::connect(data_addr)?;
        let mut names = Vec::new();
        while let Some(line) = read_line(&mut data)? {
            if !line.is_empty() {
                names.push(line);
            }
        }
        drop(data);
        let done = self.read_reply()?;
        if done.code != 226 {
            return Err(FtpError::Reply(done));
        }
        Ok(names)
    }

    /// Makes a directory.
    pub fn mkd(&mut self, path: &str) -> Result<(), FtpError> {
        self.expect(&format!("MKD {}", path), 257)?;
        Ok(())
    }

    /// Removes a directory.
    pub fn rmd(&mut self, path: &str) -> Result<(), FtpError> {
        self.expect(&format!("RMD {}", path), 250)?;
        Ok(())
    }

    /// Deletes a file.
    pub fn dele(&mut self, path: &str) -> Result<(), FtpError> {
        self.expect(&format!("DELE {}", path), 250)?;
        Ok(())
    }

    /// Queries a file's size.
    pub fn size(&mut self, path: &str) -> Result<u64, FtpError> {
        let reply = self.expect(&format!("SIZE {}", path), 213)?;
        reply
            .text
            .trim()
            .parse()
            .map_err(|_| FtpError::Protocol(format!("bad SIZE reply {:?}", reply.text)))
    }

    /// Renames a file.
    pub fn rename(&mut self, from: &str, to: &str) -> Result<(), FtpError> {
        self.expect(&format!("RNFR {}", from), 350)?;
        self.expect(&format!("RNTO {}", to), 250)?;
        Ok(())
    }

    /// Ends the session.
    pub fn quit(mut self) -> Result<(), FtpError> {
        let _ = self.command("QUIT");
        Ok(())
    }
}
