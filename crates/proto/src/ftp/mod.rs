//! FTP (RFC 959 subset) — control-channel codec and client (paper §3).
//!
//! The subset implemented is what a 2002 storage appliance served:
//! USER/PASS login (anonymous only on plain FTP, per the paper), TYPE I,
//! passive (PASV) and active (PORT) data connections, RETR/STOR/LIST/NLST,
//! MKD/RMD/DELE/SIZE, RNFR/RNTO and QUIT. GridFTP's extensions build on
//! this module (see [`crate::gridftp`]).

pub mod client;
mod codec;

pub use client::{FtpClient, FtpError};
pub use codec::{
    format_pasv_reply, parse_command, parse_host_port, render_host_port, FtpCommand, FtpReply,
};
