//! FTP control-channel command and reply codec.

use std::fmt;
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4};

/// A parsed FTP control command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FtpCommand {
    /// `USER <name>`.
    User(String),
    /// `PASS <password>`.
    Pass(String),
    /// `SYST`.
    Syst,
    /// `TYPE I` / `TYPE A` (we accept, always behave as binary).
    Type(char),
    /// `PWD`.
    Pwd,
    /// `CWD <dir>`.
    Cwd(String),
    /// `PASV` — server opens a listening data port.
    Pasv,
    /// `PORT h1,h2,h3,h4,p1,p2` — server connects out for data.
    Port(SocketAddrV4),
    /// `RETR <path>`.
    Retr(String),
    /// `STOR <path>`.
    Stor(String),
    /// `LIST [path]` (long listing).
    List(Option<String>),
    /// `NLST [path]` (names only).
    Nlst(Option<String>),
    /// `MKD <dir>`.
    Mkd(String),
    /// `RMD <dir>`.
    Rmd(String),
    /// `DELE <path>`.
    Dele(String),
    /// `SIZE <path>`.
    Size(String),
    /// `RNFR <path>`.
    Rnfr(String),
    /// `RNTO <path>`.
    Rnto(String),
    /// `NOOP`.
    Noop,
    /// `QUIT`.
    Quit,
    /// `MODE S|E` — stream or (GridFTP) extended block mode.
    Mode(char),
    /// `AUTH GSSAPI` — GridFTP security handshake start.
    AuthGssapi,
    /// `ADAT <base64ish blob>` — GridFTP security token (our simulated
    /// credential wire form).
    Adat(String),
    /// `OPTS RETR Parallelism=n;` — GridFTP parallel-stream option.
    OptsParallelism(u32),
    /// `SPAS` — striped passive: server returns several data endpoints.
    Spas,
    /// Anything else (answered 502).
    Unknown(String),
}

/// Parses one control line.
pub fn parse_command(line: &str) -> FtpCommand {
    let (verb, arg) = match line.find(' ') {
        Some(i) => (&line[..i], line[i + 1..].trim()),
        None => (line.trim(), ""),
    };
    match verb.to_ascii_uppercase().as_str() {
        "USER" => FtpCommand::User(arg.to_owned()),
        "PASS" => FtpCommand::Pass(arg.to_owned()),
        "SYST" => FtpCommand::Syst,
        "TYPE" => FtpCommand::Type(arg.chars().next().unwrap_or('I')),
        "PWD" => FtpCommand::Pwd,
        "CWD" => FtpCommand::Cwd(arg.to_owned()),
        "PASV" => FtpCommand::Pasv,
        "PORT" => match parse_host_port(arg) {
            Some(addr) => FtpCommand::Port(addr),
            None => FtpCommand::Unknown(line.to_owned()),
        },
        "RETR" => FtpCommand::Retr(arg.to_owned()),
        "STOR" => FtpCommand::Stor(arg.to_owned()),
        "LIST" => FtpCommand::List(if arg.is_empty() {
            None
        } else {
            Some(arg.to_owned())
        }),
        "NLST" => FtpCommand::Nlst(if arg.is_empty() {
            None
        } else {
            Some(arg.to_owned())
        }),
        "MKD" => FtpCommand::Mkd(arg.to_owned()),
        "RMD" => FtpCommand::Rmd(arg.to_owned()),
        "DELE" => FtpCommand::Dele(arg.to_owned()),
        "SIZE" => FtpCommand::Size(arg.to_owned()),
        "RNFR" => FtpCommand::Rnfr(arg.to_owned()),
        "RNTO" => FtpCommand::Rnto(arg.to_owned()),
        "NOOP" => FtpCommand::Noop,
        "QUIT" => FtpCommand::Quit,
        "MODE" => FtpCommand::Mode(arg.chars().next().unwrap_or('S')),
        "AUTH" if arg.eq_ignore_ascii_case("GSSAPI") => FtpCommand::AuthGssapi,
        "ADAT" => FtpCommand::Adat(arg.to_owned()),
        "SPAS" => FtpCommand::Spas,
        "OPTS" => {
            // `OPTS RETR Parallelism=n;` (GridFTP).
            let lower = arg.to_ascii_lowercase();
            if let Some(idx) = lower.find("parallelism=") {
                let rest = &arg[idx + "parallelism=".len()..];
                let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
                if let Ok(n) = digits.parse() {
                    return FtpCommand::OptsParallelism(n);
                }
            }
            FtpCommand::Unknown(line.to_owned())
        }
        _ => FtpCommand::Unknown(line.to_owned()),
    }
}

/// An FTP reply: code + text. Multi-line replies use `code-text` continuation
/// lines; we only ever emit single-line and the final line of multi-line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FtpReply {
    /// Three-digit reply code.
    pub code: u16,
    /// Reply text.
    pub text: String,
}

impl FtpReply {
    /// Builds a reply.
    pub fn new(code: u16, text: impl Into<String>) -> Self {
        Self {
            code,
            text: text.into(),
        }
    }

    /// True for 2xx/1xx/3xx (non-error).
    pub fn is_positive(&self) -> bool {
        self.code < 400
    }

    /// Parses one reply line.
    pub fn parse(line: &str) -> Option<Self> {
        if line.len() < 3 {
            return None;
        }
        let code: u16 = line.get(0..3)?.parse().ok()?;
        let text = line.get(4..).unwrap_or("").to_owned();
        Some(Self { code, text })
    }
}

impl fmt::Display for FtpReply {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code, self.text)
    }
}

/// Parses the `h1,h2,h3,h4,p1,p2` host-port form used by PORT and PASV.
pub fn parse_host_port(s: &str) -> Option<SocketAddrV4> {
    let nums: Vec<u8> = s
        .split(',')
        .map(|p| p.trim().parse::<u8>())
        .collect::<Result<_, _>>()
        .ok()?;
    if nums.len() != 6 {
        return None;
    }
    let ip = Ipv4Addr::new(nums[0], nums[1], nums[2], nums[3]);
    let port = u16::from(nums[4]) << 8 | u16::from(nums[5]);
    Some(SocketAddrV4::new(ip, port))
}

/// Renders an address in `h1,h2,h3,h4,p1,p2` form.
pub fn render_host_port(addr: SocketAddrV4) -> String {
    let [a, b, c, d] = addr.ip().octets();
    format!(
        "{},{},{},{},{},{}",
        a,
        b,
        c,
        d,
        addr.port() >> 8,
        addr.port() & 0xFF
    )
}

/// Builds the `227 Entering Passive Mode (...)` reply for a data address.
/// Non-IPv4 addresses (unused in this codebase) report 0.0.0.0.
pub fn format_pasv_reply(addr: SocketAddr) -> FtpReply {
    let v4 = match addr {
        SocketAddr::V4(v4) => v4,
        SocketAddr::V6(v6) => SocketAddrV4::new(Ipv4Addr::UNSPECIFIED, v6.port()),
    };
    FtpReply::new(
        227,
        format!("Entering Passive Mode ({})", render_host_port(v4)),
    )
}

/// Extracts the data address from a 227 reply's text.
pub fn parse_pasv_reply(text: &str) -> Option<SocketAddrV4> {
    let start = text.find('(')? + 1;
    let end = text.rfind(')')?;
    parse_host_port(&text[start..end])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_commands() {
        assert_eq!(
            parse_command("USER anonymous"),
            FtpCommand::User("anonymous".into())
        );
        assert_eq!(
            parse_command("pass secret"),
            FtpCommand::Pass("secret".into())
        );
        assert_eq!(parse_command("TYPE I"), FtpCommand::Type('I'));
        assert_eq!(parse_command("RETR /a/b"), FtpCommand::Retr("/a/b".into()));
        assert_eq!(parse_command("LIST"), FtpCommand::List(None));
        assert_eq!(
            parse_command("LIST /d"),
            FtpCommand::List(Some("/d".into()))
        );
        assert_eq!(parse_command("QUIT"), FtpCommand::Quit);
        assert_eq!(parse_command("MODE E"), FtpCommand::Mode('E'));
        assert!(matches!(parse_command("XYZZY"), FtpCommand::Unknown(_)));
    }

    #[test]
    fn parse_gridftp_commands() {
        assert_eq!(parse_command("AUTH GSSAPI"), FtpCommand::AuthGssapi);
        assert_eq!(parse_command("ADAT blob"), FtpCommand::Adat("blob".into()));
        assert_eq!(
            parse_command("OPTS RETR Parallelism=4;"),
            FtpCommand::OptsParallelism(4)
        );
        assert_eq!(parse_command("SPAS"), FtpCommand::Spas);
    }

    #[test]
    fn host_port_roundtrip() {
        let addr = SocketAddrV4::new(Ipv4Addr::new(127, 0, 0, 1), 45678);
        let rendered = render_host_port(addr);
        assert_eq!(parse_host_port(&rendered), Some(addr));
        assert_eq!(rendered, "127,0,0,1,178,110");
    }

    #[test]
    fn port_command_parses_address() {
        match parse_command("PORT 10,0,0,2,4,1") {
            FtpCommand::Port(addr) => {
                assert_eq!(addr.ip(), &Ipv4Addr::new(10, 0, 0, 2));
                assert_eq!(addr.port(), 4 * 256 + 1);
            }
            other => panic!("{:?}", other),
        }
        assert!(matches!(
            parse_command("PORT 1,2,3"),
            FtpCommand::Unknown(_)
        ));
        assert!(matches!(
            parse_command("PORT 300,0,0,1,1,1"),
            FtpCommand::Unknown(_)
        ));
    }

    #[test]
    fn pasv_reply_roundtrip() {
        let addr: SocketAddr = "127.0.0.1:50000".parse().unwrap();
        let reply = format_pasv_reply(addr);
        assert_eq!(reply.code, 227);
        let parsed = parse_pasv_reply(&reply.text).unwrap();
        assert_eq!(SocketAddr::V4(parsed), addr);
    }

    #[test]
    fn reply_parse_and_positivity() {
        let r = FtpReply::parse("230 User logged in").unwrap();
        assert_eq!(r.code, 230);
        assert!(r.is_positive());
        let e = FtpReply::parse("550 No such file").unwrap();
        assert!(!e.is_positive());
        assert!(FtpReply::parse("xx").is_none());
    }
}
