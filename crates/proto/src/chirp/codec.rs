//! Chirp command/response codec: the translation between Chirp's wire
//! format and the common request interface.

use crate::gsi::Credential;
use crate::request::{NestError, NestRequest, NestResponse};

/// Success status code.
pub const CODE_OK: i32 = 0;

/// A parsed Chirp command: session-level commands plus common requests.
#[derive(Debug, Clone, PartialEq)]
pub enum ChirpCommand {
    /// Protocol version inquiry.
    Version,
    /// GSI authentication handshake.
    Auth(Credential),
    /// Metrics snapshot request ("what is this appliance doing, and how
    /// fast?"). Session-level, like `version`: it never reaches the
    /// storage or transfer managers.
    Stats,
    /// A common request.
    Request(NestRequest),
}

/// Percent-escapes spaces and percent signs in a path argument.
pub fn escape_arg(s: &str) -> String {
    s.replace('%', "%25").replace(' ', "%20")
}

/// Reverses [`escape_arg`].
pub fn unescape_arg(s: &str) -> String {
    s.replace("%20", " ").replace("%25", "%")
}

/// Parses one request line. Returns `None` for unknown verbs or malformed
/// argument lists (the handler answers with a bad-request status).
pub fn parse_command(line: &str) -> Option<ChirpCommand> {
    let mut parts = line.split_whitespace();
    let verb = parts.next()?.to_ascii_lowercase();
    let args: Vec<&str> = parts.collect();
    let req = match (verb.as_str(), args.as_slice()) {
        ("version", []) => return Some(ChirpCommand::Version),
        ("stats", []) => return Some(ChirpCommand::Stats),
        ("auth", ["gsi", rest @ ..]) if rest.len() == 2 => {
            let cred = Credential::from_wire(&format!("{} {}", rest[0], rest[1]))?;
            return Some(ChirpCommand::Auth(cred));
        }
        ("mkdir", [p]) => NestRequest::Mkdir {
            path: unescape_arg(p),
        },
        ("rmdir", [p]) => NestRequest::Rmdir {
            path: unescape_arg(p),
        },
        ("ls", [p]) => NestRequest::ListDir {
            path: unescape_arg(p),
            prefix: None,
            delimiter: None,
        },
        ("stat", [p]) => NestRequest::Stat {
            path: unescape_arg(p),
        },
        ("get", [p]) => NestRequest::Get {
            path: unescape_arg(p),
        },
        ("put", [p, size]) => NestRequest::Put {
            path: unescape_arg(p),
            size: Some(size.parse().ok()?),
        },
        ("unlink", [p]) => NestRequest::Delete {
            path: unescape_arg(p),
        },
        ("rename", [a, b]) => NestRequest::Rename {
            from: unescape_arg(a),
            to: unescape_arg(b),
        },
        ("lot_create", [cap, dur]) => NestRequest::LotCreate {
            capacity: cap.parse().ok()?,
            duration: dur.parse().ok()?,
        },
        ("lot_create_group", [group, cap, dur]) => NestRequest::LotCreateGroup {
            group: unescape_arg(group),
            capacity: cap.parse().ok()?,
            duration: dur.parse().ok()?,
        },
        ("lot_renew", [id, extra]) => NestRequest::LotRenew {
            id: id.parse().ok()?,
            extra: extra.parse().ok()?,
        },
        ("lot_terminate", [id]) => NestRequest::LotTerminate {
            id: id.parse().ok()?,
        },
        ("lot_stat", [id]) => NestRequest::LotStat {
            id: id.parse().ok()?,
        },
        ("lot_list", []) => NestRequest::LotList,
        ("setacl", [p, principal, rights]) => NestRequest::SetAcl {
            path: unescape_arg(p),
            principal: unescape_arg(principal),
            rights: (*rights).to_owned(),
        },
        ("getacl", [p]) => NestRequest::GetAcl {
            path: unescape_arg(p),
        },
        ("third_party", [src, dst]) => NestRequest::ThirdParty {
            src: src.parse().ok()?,
            dst: dst.parse().ok()?,
        },
        ("quit", []) => NestRequest::Quit,
        _ => return None,
    };
    Some(ChirpCommand::Request(req))
}

/// Renders a request as a Chirp command line (client side).
pub fn format_request(req: &NestRequest) -> String {
    match req {
        NestRequest::Mkdir { path } => format!("mkdir {}", escape_arg(path)),
        NestRequest::Rmdir { path } => format!("rmdir {}", escape_arg(path)),
        // Chirp's wire format has no object-listing options; the flat form
        // keeps the dialect byte-identical (options are S3-side only).
        NestRequest::ListDir { path, .. } => format!("ls {}", escape_arg(path)),
        NestRequest::Stat { path } => format!("stat {}", escape_arg(path)),
        NestRequest::Get { path } => format!("get {}", escape_arg(path)),
        NestRequest::Put { path, size } => {
            format!("put {} {}", escape_arg(path), size.unwrap_or(0))
        }
        NestRequest::Delete { path } => format!("unlink {}", escape_arg(path)),
        NestRequest::Rename { from, to } => {
            format!("rename {} {}", escape_arg(from), escape_arg(to))
        }
        NestRequest::LotCreate { capacity, duration } => {
            format!("lot_create {} {}", capacity, duration)
        }
        NestRequest::LotCreateGroup {
            group,
            capacity,
            duration,
        } => format!(
            "lot_create_group {} {} {}",
            escape_arg(group),
            capacity,
            duration
        ),
        NestRequest::LotRenew { id, extra } => format!("lot_renew {} {}", id, extra),
        NestRequest::LotTerminate { id } => format!("lot_terminate {}", id),
        NestRequest::LotStat { id } => format!("lot_stat {}", id),
        NestRequest::LotList => "lot_list".to_owned(),
        NestRequest::SetAcl {
            path,
            principal,
            rights,
        } => format!(
            "setacl {} {} {}",
            escape_arg(path),
            escape_arg(principal),
            rights
        ),
        NestRequest::GetAcl { path } => format!("getacl {}", escape_arg(path)),
        NestRequest::ThirdParty { src, dst } => format!("third_party {} {}", src, dst),
        NestRequest::Quit => "quit".to_owned(),
    }
}

/// Maps a [`NestError`] to its Chirp status code.
pub fn error_code(e: NestError) -> i32 {
    match e {
        NestError::NotFound => -1,
        NestError::Denied => -2,
        NestError::Exists => -3,
        NestError::NoSpace => -4,
        NestError::BadRequest => -5,
        NestError::Invalid => -6,
        NestError::Internal => -7,
    }
}

/// Maps a Chirp status code back to a [`NestError`].
pub fn error_from_code(code: i32) -> NestError {
    match code {
        -1 => NestError::NotFound,
        -2 => NestError::Denied,
        -3 => NestError::Exists,
        -4 => NestError::NoSpace,
        -5 => NestError::BadRequest,
        -6 => NestError::Invalid,
        _ => NestError::Internal,
    }
}

/// Builds the status line for a response. Multi-line payloads follow the
/// status line, one per line.
pub fn status_line(resp: &NestResponse) -> String {
    match resp {
        NestResponse::Ok => format!("{} ok", CODE_OK),
        NestResponse::OkText(lines) => format!("{} {}", CODE_OK, lines.len()),
        NestResponse::OkSize(size) => format!("{} {}", CODE_OK, size),
        NestResponse::OkLot(id) => format!("{} {}", CODE_OK, id),
        NestResponse::Error(e) => format!("{} {}", error_code(*e), e),
    }
}

/// Renders a full response (status line plus any payload lines).
pub fn format_response(resp: &NestResponse) -> Vec<String> {
    let mut out = vec![status_line(resp)];
    if let NestResponse::OkText(lines) = resp {
        out.extend(lines.iter().cloned());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::TransferUrl;

    #[test]
    fn request_lines_roundtrip() {
        let requests = vec![
            NestRequest::Mkdir {
                path: "/a dir".into(),
            },
            NestRequest::Rmdir { path: "/d".into() },
            NestRequest::ListDir {
                path: "/".into(),
                prefix: None,
                delimiter: None,
            },
            NestRequest::Stat { path: "/f".into() },
            NestRequest::Get { path: "/f".into() },
            NestRequest::Put {
                path: "/f".into(),
                size: Some(100),
            },
            NestRequest::Delete { path: "/f".into() },
            NestRequest::Rename {
                from: "/a".into(),
                to: "/b".into(),
            },
            NestRequest::LotCreate {
                capacity: 1000,
                duration: 60,
            },
            NestRequest::LotCreateGroup {
                group: "wind".into(),
                capacity: 500,
                duration: 60,
            },
            NestRequest::LotRenew { id: 3, extra: 30 },
            NestRequest::LotTerminate { id: 3 },
            NestRequest::LotStat { id: 3 },
            NestRequest::LotList,
            NestRequest::SetAcl {
                path: "/d".into(),
                principal: "user:alice".into(),
                rights: "rliw".into(),
            },
            NestRequest::GetAcl { path: "/d".into() },
            NestRequest::ThirdParty {
                src: TransferUrl::new("gsiftp", "a", 2811, "/x"),
                dst: TransferUrl::new("gsiftp", "b", 2811, "/y"),
            },
            NestRequest::Quit,
        ];
        for req in requests {
            let line = format_request(&req);
            match parse_command(&line) {
                Some(ChirpCommand::Request(parsed)) => assert_eq!(parsed, req, "line {:?}", line),
                other => panic!("line {:?} parsed as {:?}", line, other),
            }
        }
    }

    #[test]
    fn path_escaping_roundtrips() {
        assert_eq!(unescape_arg(&escape_arg("a b%c")), "a b%c");
        let line = format_request(&NestRequest::Get {
            path: "/dir with spaces/f".into(),
        });
        assert!(!line[4..].contains(' ') || line.matches(' ').count() == 1);
    }

    #[test]
    fn auth_command_parses() {
        let ca = crate::gsi::SimCa::new("ca", 1);
        let cred = ca.issue("/O=Grid/CN=A B");
        let line = format!("auth gsi {}", cred.to_wire());
        match parse_command(&line) {
            Some(ChirpCommand::Auth(c)) => assert_eq!(c, cred),
            other => panic!("{:?}", other),
        }
    }

    #[test]
    fn version_and_unknown() {
        assert_eq!(parse_command("version"), Some(ChirpCommand::Version));
        assert_eq!(parse_command("stats"), Some(ChirpCommand::Stats));
        assert_eq!(parse_command("stats extra"), None);
        assert_eq!(parse_command("frobnicate /x"), None);
        assert_eq!(parse_command(""), None);
        assert_eq!(parse_command("put /f notanumber"), None);
    }

    #[test]
    fn error_codes_roundtrip() {
        for e in [
            NestError::NotFound,
            NestError::Denied,
            NestError::Exists,
            NestError::NoSpace,
            NestError::BadRequest,
            NestError::Invalid,
            NestError::Internal,
        ] {
            assert_eq!(error_from_code(error_code(e)), e);
            assert!(error_code(e) < 0);
        }
    }

    #[test]
    fn response_rendering() {
        assert_eq!(status_line(&NestResponse::Ok), "0 ok");
        assert_eq!(status_line(&NestResponse::OkSize(42)), "0 42");
        assert_eq!(status_line(&NestResponse::OkLot(7)), "0 7");
        let multi = format_response(&NestResponse::OkText(vec!["a".into(), "b".into()]));
        assert_eq!(multi, vec!["0 2", "a", "b"]);
        let err = status_line(&NestResponse::Error(NestError::Denied));
        assert!(err.starts_with("-2 "));
    }
}
