//! Chirp — NeST's native protocol (paper §3).
//!
//! Chirp is a simple line-oriented request/response protocol from the
//! Condor project. It is the only protocol with lot-management requests
//! ("Chirp is the only protocol that supports lot management") and one of
//! the two GSI-authenticated protocols.
//!
//! ## Wire format
//!
//! Requests are single lines: `verb arg1 arg2 ...`; path arguments with
//! spaces are percent-escaped by the client. Responses begin with a status
//! line `<code> <detail>`, where code `0` is success and negative codes are
//! errors. `get`/`put` responses are followed by a raw byte stream of the
//! announced length. Multi-line results (`ls`, `lot_list`, `getacl`)
//! announce a line count and then send that many lines.

pub mod client;
mod codec;

pub use client::{ChirpClient, ChirpError};
pub use codec::{
    error_code, error_from_code, format_request, format_response, parse_command, status_line,
    ChirpCommand, CODE_OK,
};
