//! A blocking Chirp client.

use super::codec::{error_from_code, format_request, CODE_OK};
use crate::gsi::Credential;
use crate::request::{NestError, NestRequest, TransferUrl};
use crate::wire::{copy_exact, read_line, write_line};
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Chirp client errors.
#[derive(Debug)]
pub enum ChirpError {
    /// Transport failure.
    Io(io::Error),
    /// Server-reported failure.
    Server(NestError),
    /// The server sent something unparseable.
    Protocol(String),
}

impl fmt::Display for ChirpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChirpError::Io(e) => write!(f, "chirp I/O error: {}", e),
            ChirpError::Server(e) => write!(f, "chirp server error: {}", e),
            ChirpError::Protocol(m) => write!(f, "chirp protocol error: {}", m),
        }
    }
}

impl std::error::Error for ChirpError {}

impl From<io::Error> for ChirpError {
    fn from(e: io::Error) -> Self {
        ChirpError::Io(e)
    }
}

/// Lot information returned by `lot_stat` / `lot_list`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LotInfo {
    /// Lot id.
    pub id: u64,
    /// Owner spec (`user:alice` / `group:wind`).
    pub owner: String,
    /// Capacity in bytes.
    pub capacity: u64,
    /// Bytes used.
    pub used: u64,
    /// Absolute expiry (seconds).
    pub expires_at: u64,
}

impl LotInfo {
    /// Parses the server's `id owner capacity used expires` line.
    pub fn parse(line: &str) -> Option<Self> {
        let mut it = line.split_whitespace();
        Some(LotInfo {
            id: it.next()?.parse().ok()?,
            owner: it.next()?.to_owned(),
            capacity: it.next()?.parse().ok()?,
            used: it.next()?.parse().ok()?,
            expires_at: it.next()?.parse().ok()?,
        })
    }

    /// Renders the wire line.
    pub fn render(&self) -> String {
        format!(
            "{} {} {} {} {}",
            self.id, self.owner, self.capacity, self.used, self.expires_at
        )
    }
}

/// A blocking Chirp client session.
pub struct ChirpClient {
    stream: TcpStream,
}

struct Status {
    code: i32,
    detail: String,
}

impl ChirpClient {
    /// Connects to a Chirp server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ChirpError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        Ok(Self { stream })
    }

    /// Authenticates with a simulated GSI credential; returns the mapped
    /// local user name.
    pub fn authenticate(&mut self, cred: &Credential) -> Result<String, ChirpError> {
        write_line(&mut self.stream, &format!("auth gsi {}", cred.to_wire()))?;
        let st = self.read_status()?;
        if st.code == CODE_OK {
            Ok(st.detail)
        } else {
            Err(ChirpError::Server(error_from_code(st.code)))
        }
    }

    /// Asks the server's version string.
    pub fn version(&mut self) -> Result<String, ChirpError> {
        write_line(&mut self.stream, "version")?;
        let st = self.read_status()?;
        self.expect_ok(&st)?;
        Ok(st.detail)
    }

    fn send(&mut self, req: &NestRequest) -> Result<Status, ChirpError> {
        write_line(&mut self.stream, &format_request(req))?;
        self.read_status()
    }

    fn read_status(&mut self) -> Result<Status, ChirpError> {
        let line = read_line(&mut self.stream)?
            .ok_or_else(|| ChirpError::Protocol("server closed connection".into()))?;
        let (code, detail) = match line.split_once(' ') {
            Some((c, d)) => (c, d.to_owned()),
            None => (line.as_str(), String::new()),
        };
        let code: i32 = code
            .parse()
            .map_err(|_| ChirpError::Protocol(format!("bad status line {:?}", line)))?;
        Ok(Status { code, detail })
    }

    fn expect_ok(&mut self, st: &Status) -> Result<(), ChirpError> {
        if st.code == CODE_OK {
            Ok(())
        } else {
            Err(ChirpError::Server(error_from_code(st.code)))
        }
    }

    fn read_lines(&mut self, st: &Status) -> Result<Vec<String>, ChirpError> {
        let n: usize = st
            .detail
            .split_whitespace()
            .next()
            .unwrap_or("0")
            .parse()
            .map_err(|_| ChirpError::Protocol(format!("bad line count {:?}", st.detail)))?;
        let mut out = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            out.push(
                read_line(&mut self.stream)?
                    .ok_or_else(|| ChirpError::Protocol("EOF in multi-line payload".into()))?,
            );
        }
        Ok(out)
    }

    /// Fetches the server's metrics snapshot: flat `name value` text lines
    /// (the same rendering `GET /nest/stats` serves over HTTP).
    pub fn stats(&mut self) -> Result<Vec<String>, ChirpError> {
        write_line(&mut self.stream, "stats")?;
        let st = self.read_status()?;
        self.expect_ok(&st)?;
        self.read_lines(&st)
    }

    /// Creates a directory.
    pub fn mkdir(&mut self, path: &str) -> Result<(), ChirpError> {
        let st = self.send(&NestRequest::Mkdir { path: path.into() })?;
        self.expect_ok(&st)
    }

    /// Removes an empty directory.
    pub fn rmdir(&mut self, path: &str) -> Result<(), ChirpError> {
        let st = self.send(&NestRequest::Rmdir { path: path.into() })?;
        self.expect_ok(&st)
    }

    /// Lists a directory.
    pub fn ls(&mut self, path: &str) -> Result<Vec<String>, ChirpError> {
        let st = self.send(&NestRequest::ListDir {
            path: path.into(),
            prefix: None,
            delimiter: None,
        })?;
        self.expect_ok(&st)?;
        self.read_lines(&st)
    }

    /// Returns a file's size.
    pub fn stat(&mut self, path: &str) -> Result<u64, ChirpError> {
        let st = self.send(&NestRequest::Stat { path: path.into() })?;
        self.expect_ok(&st)?;
        st.detail
            .split_whitespace()
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ChirpError::Protocol(format!("bad stat reply {:?}", st.detail)))
    }

    /// Deletes a file.
    pub fn unlink(&mut self, path: &str) -> Result<(), ChirpError> {
        let st = self.send(&NestRequest::Delete { path: path.into() })?;
        self.expect_ok(&st)
    }

    /// Renames a file or directory.
    pub fn rename(&mut self, from: &str, to: &str) -> Result<(), ChirpError> {
        let st = self.send(&NestRequest::Rename {
            from: from.into(),
            to: to.into(),
        })?;
        self.expect_ok(&st)
    }

    /// Stores a byte slice as a file.
    pub fn put_bytes(&mut self, path: &str, data: &[u8]) -> Result<(), ChirpError> {
        self.put_stream(path, data.len() as u64, &mut io::Cursor::new(data))
    }

    /// Stores `size` bytes read from `source`.
    pub fn put_stream(
        &mut self,
        path: &str,
        size: u64,
        source: &mut impl Read,
    ) -> Result<(), ChirpError> {
        let st = self.send(&NestRequest::Put {
            path: path.into(),
            size: Some(size),
        })?;
        self.expect_ok(&st)?; // server says "ready"
        copy_exact(source, &mut self.stream, size, 64 * 1024)?;
        let st = self.read_status()?;
        self.expect_ok(&st)
    }

    /// Retrieves a file into a vector.
    pub fn get_bytes(&mut self, path: &str) -> Result<Vec<u8>, ChirpError> {
        let mut out = Vec::new();
        self.get_stream(path, &mut out)?;
        Ok(out)
    }

    /// Retrieves a file into a writer; returns the byte count.
    pub fn get_stream(&mut self, path: &str, sink: &mut impl Write) -> Result<u64, ChirpError> {
        let st = self.send(&NestRequest::Get { path: path.into() })?;
        self.expect_ok(&st)?;
        let size: u64 = st
            .detail
            .split_whitespace()
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ChirpError::Protocol(format!("bad get reply {:?}", st.detail)))?;
        copy_exact(&mut self.stream, sink, size, 64 * 1024)?;
        Ok(size)
    }

    /// Creates a lot; returns its id.
    pub fn lot_create(&mut self, capacity: u64, duration: u64) -> Result<u64, ChirpError> {
        let st = self.send(&NestRequest::LotCreate { capacity, duration })?;
        self.expect_ok(&st)?;
        st.detail
            .split_whitespace()
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ChirpError::Protocol(format!("bad lot id {:?}", st.detail)))
    }

    /// Creates a group lot (caller must belong to the group); returns its id.
    pub fn lot_create_group(
        &mut self,
        group: &str,
        capacity: u64,
        duration: u64,
    ) -> Result<u64, ChirpError> {
        let st = self.send(&NestRequest::LotCreateGroup {
            group: group.into(),
            capacity,
            duration,
        })?;
        self.expect_ok(&st)?;
        st.detail
            .split_whitespace()
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ChirpError::Protocol(format!("bad lot id {:?}", st.detail)))
    }

    /// Renews a lot.
    pub fn lot_renew(&mut self, id: u64, extra: u64) -> Result<(), ChirpError> {
        let st = self.send(&NestRequest::LotRenew { id, extra })?;
        self.expect_ok(&st)
    }

    /// Terminates a lot.
    pub fn lot_terminate(&mut self, id: u64) -> Result<(), ChirpError> {
        let st = self.send(&NestRequest::LotTerminate { id })?;
        self.expect_ok(&st)
    }

    /// Queries a lot.
    pub fn lot_stat(&mut self, id: u64) -> Result<LotInfo, ChirpError> {
        let st = self.send(&NestRequest::LotStat { id })?;
        self.expect_ok(&st)?;
        let lines = self.read_lines(&st)?;
        lines
            .first()
            .and_then(|l| LotInfo::parse(l))
            .ok_or_else(|| ChirpError::Protocol("bad lot_stat payload".into()))
    }

    /// Lists the caller's lots.
    pub fn lot_list(&mut self) -> Result<Vec<LotInfo>, ChirpError> {
        let st = self.send(&NestRequest::LotList)?;
        self.expect_ok(&st)?;
        let lines = self.read_lines(&st)?;
        lines
            .iter()
            .map(|l| {
                LotInfo::parse(l)
                    .ok_or_else(|| ChirpError::Protocol(format!("bad lot line {:?}", l)))
            })
            .collect()
    }

    /// Sets an ACL entry on a directory.
    pub fn setacl(&mut self, path: &str, principal: &str, rights: &str) -> Result<(), ChirpError> {
        let st = self.send(&NestRequest::SetAcl {
            path: path.into(),
            principal: principal.into(),
            rights: rights.into(),
        })?;
        self.expect_ok(&st)
    }

    /// Reads the effective ACL for a path.
    pub fn getacl(&mut self, path: &str) -> Result<Vec<String>, ChirpError> {
        let st = self.send(&NestRequest::GetAcl { path: path.into() })?;
        self.expect_ok(&st)?;
        self.read_lines(&st)
    }

    /// Requests a third-party transfer between two URLs, orchestrated by
    /// the connected server.
    pub fn third_party(&mut self, src: &TransferUrl, dst: &TransferUrl) -> Result<(), ChirpError> {
        let st = self.send(&NestRequest::ThirdParty {
            src: src.clone(),
            dst: dst.clone(),
        })?;
        self.expect_ok(&st)
    }

    /// Ends the session politely.
    pub fn quit(mut self) -> Result<(), ChirpError> {
        let _ = self.send(&NestRequest::Quit);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lot_info_roundtrip() {
        let info = LotInfo {
            id: 3,
            owner: "user:alice".into(),
            capacity: 1000,
            used: 250,
            expires_at: 1234567,
        };
        assert_eq!(LotInfo::parse(&info.render()), Some(info));
        assert_eq!(LotInfo::parse("not a lot line"), None);
        assert_eq!(LotInfo::parse(""), None);
    }
}
