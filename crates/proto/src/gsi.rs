//! Simulated Grid Security Infrastructure (paper §3).
//!
//! "Currently, we allow only Grid Security Infrastructure (GSI)
//! authentication, which is used by Chirp and GridFTP; connections through
//! the other protocols are allowed only anonymous access."
//!
//! The real GSI is X.509/GSSAPI. Without a crypto dependency we simulate
//! the *shape* of it faithfully enough to exercise the same code paths:
//!
//! * a **CA** holds a secret; a **credential** is a subject DN plus a tag
//!   computed as `fnv1a(secret ‖ subject)`;
//! * servers verify the tag against their trusted CA and then map the
//!   subject DN to a local user through a **grid-mapfile**, exactly as
//!   Globus gatekeepers do;
//! * the wire handshake is a single `AUTHENTICATE GSI <subject> <tag>`
//!   exchange inside each protocol's own framing.
//!
//! **This is a simulation**: the tag scheme is trivially forgeable by
//! anyone who knows the CA secret, and there is no channel encryption. It
//! stands in for GSI per the substitution policy in `DESIGN.md`.

use std::collections::HashMap;
use std::fmt;

/// 64-bit FNV-1a — the toy MAC underlying simulated credentials.
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// A simulated certificate authority.
#[derive(Debug, Clone)]
pub struct SimCa {
    /// Name of the CA (informational).
    pub name: String,
    secret: u64,
}

impl SimCa {
    /// Creates a CA with the given secret.
    pub fn new(name: impl Into<String>, secret: u64) -> Self {
        Self {
            name: name.into(),
            secret,
        }
    }

    /// Issues a credential for a subject DN.
    pub fn issue(&self, subject: &str) -> Credential {
        Credential {
            subject: subject.to_owned(),
            tag: self.tag_for(subject),
        }
    }

    /// Verifies a credential was issued by this CA.
    pub fn verify(&self, cred: &Credential) -> bool {
        cred.tag == self.tag_for(&cred.subject)
    }

    fn tag_for(&self, subject: &str) -> u64 {
        let mut data = self.secret.to_be_bytes().to_vec();
        data.extend_from_slice(subject.as_bytes());
        fnv1a(&data)
    }
}

/// A simulated GSI credential: subject DN + CA tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Credential {
    /// The X.509-style subject distinguished name,
    /// e.g. `/O=Grid/OU=wisc.edu/CN=John Bent`.
    pub subject: String,
    /// The CA's tag over the subject.
    pub tag: u64,
}

impl Credential {
    /// Serializes for the wire: `<subject-with-escaped-spaces> <tag-hex>`.
    pub fn to_wire(&self) -> String {
        format!("{} {:016x}", self.subject.replace(' ', "+"), self.tag)
    }

    /// Parses the wire form.
    pub fn from_wire(s: &str) -> Option<Self> {
        let (subject, tag) = s.rsplit_once(' ')?;
        let tag = u64::from_str_radix(tag, 16).ok()?;
        Some(Self {
            subject: subject.replace('+', " "),
            tag,
        })
    }
}

impl fmt::Display for Credential {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.subject)
    }
}

/// A grid-mapfile: subject DN → local user name.
#[derive(Debug, Clone, Default)]
pub struct GridMap {
    map: HashMap<String, String>,
}

impl GridMap {
    /// Empty map (every authentic credential is refused: unmapped).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a mapping.
    pub fn add(&mut self, subject: impl Into<String>, user: impl Into<String>) -> &mut Self {
        self.map.insert(subject.into(), user.into());
        self
    }

    /// Maps a subject to its local user.
    pub fn lookup(&self, subject: &str) -> Option<&str> {
        self.map.get(subject).map(String::as_str)
    }

    /// Parses the classic grid-mapfile format:
    /// `"/O=Grid/CN=Jane Doe" jdoe` per line, `#` comments.
    pub fn parse(text: &str) -> Self {
        let mut gm = Self::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(rest) = line.strip_prefix('"') {
                if let Some((subject, user)) = rest.split_once('"') {
                    let user = user.trim();
                    if !user.is_empty() {
                        gm.add(subject, user);
                    }
                }
            } else if let Some((subject, user)) = line.rsplit_once(' ') {
                gm.add(subject.trim(), user.trim());
            }
        }
        gm
    }
}

/// Server-side authenticator: trusted CA + grid-mapfile.
#[derive(Debug, Clone)]
pub struct GsiAuthenticator {
    ca: SimCa,
    gridmap: GridMap,
}

impl GsiAuthenticator {
    /// Creates an authenticator.
    pub fn new(ca: SimCa, gridmap: GridMap) -> Self {
        Self { ca, gridmap }
    }

    /// Full check: credential authenticity, then DN mapping.
    /// Returns the local user name on success.
    pub fn authenticate(&self, cred: &Credential) -> Result<String, AuthError> {
        if !self.ca.verify(cred) {
            return Err(AuthError::BadCredential);
        }
        self.gridmap
            .lookup(&cred.subject)
            .map(str::to_owned)
            .ok_or(AuthError::Unmapped)
    }
}

/// Authentication failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuthError {
    /// The credential's tag did not verify against the trusted CA.
    BadCredential,
    /// Authentic, but the subject has no grid-mapfile entry.
    Unmapped,
}

impl fmt::Display for AuthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuthError::BadCredential => write!(f, "credential verification failed"),
            AuthError::Unmapped => write!(f, "subject not in grid-mapfile"),
        }
    }
}

impl std::error::Error for AuthError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn ca() -> SimCa {
        SimCa::new("TestCA", 0xDEADBEEF)
    }

    #[test]
    fn issued_credentials_verify() {
        let ca = ca();
        let cred = ca.issue("/O=Grid/CN=Alice");
        assert!(ca.verify(&cred));
    }

    #[test]
    fn forged_or_foreign_credentials_fail() {
        let ca = ca();
        let mut cred = ca.issue("/O=Grid/CN=Alice");
        cred.subject = "/O=Grid/CN=Mallory".into();
        assert!(!ca.verify(&cred));
        let other_ca = SimCa::new("OtherCA", 0x1234);
        let foreign = other_ca.issue("/O=Grid/CN=Alice");
        assert!(!ca.verify(&foreign));
    }

    #[test]
    fn wire_roundtrip_with_spaces() {
        let ca = ca();
        let cred = ca.issue("/O=Grid/OU=wisc.edu/CN=John Bent");
        let wire = cred.to_wire();
        assert!(!wire.contains("John Bent")); // spaces escaped
        let back = Credential::from_wire(&wire).unwrap();
        assert_eq!(back, cred);
        assert!(ca.verify(&back));
    }

    #[test]
    fn gridmap_parse_and_lookup() {
        let gm = GridMap::parse(
            r#"
# comment line
"/O=Grid/CN=Alice Smith" alice
/O=Grid/CN=Bob bob
"#,
        );
        assert_eq!(gm.lookup("/O=Grid/CN=Alice Smith"), Some("alice"));
        assert_eq!(gm.lookup("/O=Grid/CN=Bob"), Some("bob"));
        assert_eq!(gm.lookup("/O=Grid/CN=Eve"), None);
    }

    #[test]
    fn authenticator_full_path() {
        let ca = ca();
        let mut gm = GridMap::new();
        gm.add("/O=Grid/CN=Alice", "alice");
        let auth = GsiAuthenticator::new(ca.clone(), gm);

        let good = ca.issue("/O=Grid/CN=Alice");
        assert_eq!(auth.authenticate(&good).unwrap(), "alice");

        let unmapped = ca.issue("/O=Grid/CN=Stranger");
        assert_eq!(auth.authenticate(&unmapped), Err(AuthError::Unmapped));

        let mut forged = good.clone();
        forged.tag ^= 1;
        assert_eq!(auth.authenticate(&forged), Err(AuthError::BadCredential));
    }

    #[test]
    fn fnv1a_known_vector() {
        // FNV-1a of empty input is the offset basis.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        // And it is deterministic and input-sensitive.
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
