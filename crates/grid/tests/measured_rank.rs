//! Matchmaking on *measured* load, not just static capacity: the enriched
//! storage ad carries `MeasuredBandwidthMBs`, `ActiveTransfers` and
//! `LotBytesCommitted`, so a request can rank appliances by what they are
//! observed to be doing.

use nest_classad::{parse_ad, Value};
use nest_core::config::NestConfig;
use nest_core::server::NestServer;
use nest_grid::Discovery;
use nest_proto::http::HttpClient;

fn start(name: &str) -> NestServer {
    let server = NestServer::start(NestConfig::builder(name).build().unwrap()).unwrap();
    server
        .grant_default_lot("anonymous", 16 << 20, 3600)
        .unwrap();
    server
}

#[test]
fn measured_bandwidth_attribute_drives_ranking() {
    let busy = start("busy-site");
    let idle = start("idle-site");

    // Only the busy site moves bytes; its EWMA bandwidth meter rises while
    // the idle site's stays at zero.
    let body: Vec<u8> = (0..300_000u32).map(|i| (i % 241) as u8).collect();
    let mut http = HttpClient::connect(busy.http_addr.unwrap()).unwrap();
    assert_eq!(http.put_bytes("/load.bin", &body).unwrap(), 201);
    assert_eq!(http.get_bytes("/load.bin").unwrap(), body);

    // The client can read the last GET byte slightly before the engine
    // retires the flow; wait for the queue to drain before sampling.
    let obs = std::sync::Arc::clone(busy.dispatcher().obs());
    for _ in 0..200 {
        if obs.snapshot().count("transfer.queue_depth") == 0
            && obs.snapshot().count("transfer.completed") >= 2
        {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }

    let busy_ad = busy.dispatcher().storage_ad(&["http", "chirp"]);
    let idle_ad = idle.dispatcher().storage_ad(&["http", "chirp"]);

    // The measured attributes are present and sane on both ads.
    match busy_ad.eval("MeasuredBandwidthMBs") {
        Value::Real(mbs) => assert!(mbs > 0.0, "busy site bandwidth {}", mbs),
        other => panic!("MeasuredBandwidthMBs = {:?}", other),
    }
    match idle_ad.eval("MeasuredBandwidthMBs") {
        Value::Real(mbs) => assert_eq!(mbs, 0.0),
        other => panic!("MeasuredBandwidthMBs = {:?}", other),
    }
    assert_eq!(busy_ad.eval("LotBytesCommitted"), Value::Int(300_000));
    assert_eq!(idle_ad.eval("LotBytesCommitted"), Value::Int(0));
    assert_eq!(busy_ad.eval("ActiveTransfers"), Value::Int(0));

    // A matchmaker ranking on measured bandwidth picks the site that has
    // demonstrated throughput, all else equal.
    let discovery = Discovery::new();
    discovery.publish("busy-site", busy_ad);
    discovery.publish("idle-site", idle_ad);
    let request = parse_ad(
        r#"[ Type = "StorageRequest"; NeedSpace = 1024;
             Requirements = other.Type == "Storage";
             Rank = other.MeasuredBandwidthMBs ]"#,
    )
    .unwrap();
    let (key, ad) = discovery.best_match(&request).unwrap();
    assert_eq!(key, "busy-site");
    assert_eq!(ad.eval("Name"), Value::str("busy-site"));

    // Ranking on committed lot bytes (e.g. preferring the *least* loaded
    // appliance) also evaluates: the attribute is a plain integer.
    let inverse = parse_ad(
        r#"[ Type = "StorageRequest"; NeedSpace = 1024;
             Requirements = other.Type == "Storage";
             Rank = -other.LotBytesCommitted ]"#,
    )
    .unwrap();
    let (key, _) = discovery.best_match(&inverse).unwrap();
    assert_eq!(key, "idle-site");

    busy.shutdown();
    idle.shutdown();
}
