//! Integration test: the paper's Section 6 scenario end-to-end with two
//! live NeST servers, a discovery service and the execution manager.

use nest_core::config::NestConfig;
use nest_core::server::NestServer;
use nest_grid::manager::{ExecutionManager, JobSpec, SiteInfo};
use nest_grid::Discovery;
use nest_proto::chirp::ChirpClient;
use nest_proto::gsi::{GridMap, SimCa};

fn ca() -> SimCa {
    SimCa::new("Grid-CA", 0xC0FFEE)
}

fn gridmap() -> GridMap {
    let mut gm = GridMap::new();
    gm.add("/O=Grid/CN=Researcher", "researcher");
    gm
}

fn start(name: &str) -> (NestServer, SiteInfo) {
    let config = NestConfig::builder(name)
        .gsi(ca(), gridmap())
        .build()
        .unwrap();
    let server = NestServer::start(config).unwrap();
    // Anonymous lot backs the GridFTP/NFS data paths at each site.
    server
        .grant_default_lot("anonymous", 64 << 20, 3600)
        .unwrap();
    let site = SiteInfo {
        name: name.to_owned(),
        chirp: server.chirp_addr.unwrap().to_string(),
        gridftp: server.gridftp_addr.unwrap().to_string(),
        nfs: server.nfs_addr.unwrap().to_string(),
    };
    (server, site)
}

fn publish(discovery: &Discovery, server: &NestServer, site: &SiteInfo) {
    let mut ad = server
        .dispatcher()
        .storage_ad(&["chirp", "gridftp", "nfs", "http", "ftp"]);
    site.annotate(&mut ad);
    discovery.publish(&site.name, ad);
}

#[test]
fn figure2_scenario_end_to_end() {
    let (madison, madison_site) = start("madison");
    let (argonne, argonne_site) = start("argonne");

    // The user's input data is permanently stored at the home site.
    let cred = ca().issue("/O=Grid/CN=Researcher");
    let mut home = ChirpClient::connect(&*madison_site.chirp).unwrap();
    home.authenticate(&cred).unwrap();
    home.lot_create(16 << 20, 3600).unwrap();
    let input: Vec<u8> = (0..500_000u32).map(|i| (i % 251) as u8).collect();
    home.put_bytes("/input.dat", &input).unwrap();

    // Both sites publish into the discovery system.
    let discovery = Discovery::new();
    publish(&discovery, &madison, &madison_site);
    publish(&discovery, &argonne, &argonne_site);

    // The job: read the staged input over NFS, compute a checksum, and
    // write the result next to it.
    let expected_sum: u64 = input.iter().map(|&b| b as u64).sum();
    let job = JobSpec {
        name: "checksum".into(),
        need_space: 4 << 20,
        lot_duration: 600,
        stage_in: vec![("/input.dat".into(), "/staged/input.dat".into())],
        stage_out: vec![("/staged/output.dat".into(), "/output.dat".into())],
        run: Box::new(move |nfs, root| {
            let (staged_dir, _) = nfs.lookup(root, "staged").map_err(|e| e.to_string())?;
            let (fh, attr) = nfs
                .lookup(staged_dir, "input.dat")
                .map_err(|e| e.to_string())?;
            let mut data = Vec::new();
            nfs.read_file(fh, &mut data).map_err(|e| e.to_string())?;
            if data.len() != attr.size as usize {
                return Err("short read".into());
            }
            let sum: u64 = data.iter().map(|&b| b as u64).sum();
            let out = format!("checksum={}", sum);
            nfs.write_file(
                staged_dir,
                "output.dat",
                &mut std::io::Cursor::new(out.into_bytes()),
            )
            .map_err(|e| e.to_string())?;
            Ok(())
        }),
    };

    // Pre-create the /staged directory at the execution site: the manager
    // stages into it.
    {
        // The manager would normally mkdir through Chirp; do it here so
        // the JobSpec stays declarative.
        let mut argonne_chirp = ChirpClient::connect(&*argonne_site.chirp).unwrap();
        argonne_chirp.authenticate(&cred).unwrap();
        argonne_chirp.mkdir("/staged").unwrap();
    }

    let manager = ExecutionManager::new(discovery, madison_site.clone(), cred.clone());
    let summary = manager
        .run_job(job)
        .unwrap_or_else(|e| panic!("scenario failed: {}", e));

    // The matchmaker must have chosen the remote site, not home.
    assert_eq!(summary.site, "argonne");
    assert_eq!(summary.staged_in, 1);
    assert_eq!(summary.staged_out, 1);

    // Step 6 aftermath: output is back at Madison.
    let output = home.get_bytes("/output.dat").unwrap();
    assert_eq!(
        String::from_utf8(output).unwrap(),
        format!("checksum={}", expected_sum)
    );

    // The lot at Argonne was terminated: its staged files are gone.
    let mut check = ChirpClient::connect(&*argonne_site.chirp).unwrap();
    check.authenticate(&cred).unwrap();
    assert!(check.stat("/staged/input.dat").is_err());

    madison.shutdown();
    argonne.shutdown();
}

#[test]
fn no_matching_site_is_reported() {
    let (madison, madison_site) = start("lonely");
    let discovery = Discovery::new();
    // Only the home site is published; the request excludes home.
    publish(&discovery, &madison, &madison_site);
    let cred = ca().issue("/O=Grid/CN=Researcher");
    let manager = ExecutionManager::new(discovery, madison_site, cred);
    let job = JobSpec {
        name: "nowhere".into(),
        need_space: 1,
        lot_duration: 1,
        stage_in: vec![],
        stage_out: vec![],
        run: Box::new(|_, _| Ok(())),
    };
    match manager.run_job(job) {
        Err(nest_grid::manager::ManagerError::NoMatch) => {}
        other => panic!("{:?}", other.map(|_| ())),
    }
    madison.shutdown();
}

#[test]
fn kangaroo_delivers_through_outages() {
    use nest_grid::Kangaroo;
    use nest_proto::request::TransferUrl;
    use std::time::Duration;

    // The destination NeST is up but cannot accept writes yet (no lot):
    // a realistic transient failure the mover must ride out. (Started
    // without the helper so no default lot exists yet.)
    let dest = NestServer::start(NestConfig::ephemeral("kangaroo-dest")).unwrap();
    let dest_chirp = dest.chirp_addr.unwrap();
    let dest_url = |path: &str| TransferUrl::new("chirp", "127.0.0.1", dest_chirp.port(), path);

    let mover = Kangaroo::start(Duration::from_millis(30), None);
    // The "application" spools three outputs and keeps going immediately.
    let payloads: Vec<Vec<u8>> = (0..3u8).map(|i| vec![i; 50_000]).collect();
    for (i, p) in payloads.iter().enumerate() {
        mover.spool(&dest_url(&format!("/out{}.bin", i)), p.clone());
    }
    // Writes fail (anonymous holds no lot) and are retried...
    std::thread::sleep(Duration::from_millis(150));
    assert!(
        mover.stats().retries > 0,
        "expected retries during the outage"
    );
    assert_eq!(mover.stats().delivered, 0);

    // ...until the outage ends.
    dest.grant_default_lot("anonymous", 16 << 20, 3600).unwrap();
    assert!(mover.flush(Duration::from_secs(20)), "spool did not drain");
    assert_eq!(mover.stats().delivered, 3);

    // Everything arrived intact.
    let mut check = nest_proto::chirp::ChirpClient::connect(dest_chirp).unwrap();
    for (i, p) in payloads.iter().enumerate() {
        assert_eq!(&check.get_bytes(&format!("/out{}.bin", i)).unwrap(), p);
    }
    mover.stop();
    dest.shutdown();
}
