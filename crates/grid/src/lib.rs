//! # nest-grid
//!
//! The Grid middleware around NeST (paper §6, Figure 2): a **discovery
//! service** NeSTs publish their storage ads into, a **global execution
//! manager** that matches jobs to storage and orchestrates staging, and a
//! small **DAG manager** in the spirit of Condor DAGMan ("many of the
//! steps ... can be encapsulated within a request execution manager such
//! as the Condor Directed-Acyclic-Graph Manager"), and a **Kangaroo-style
//! background data mover** ("other data movement protocols such as
//! Kangaroo could also be utilized").

pub mod dag;
pub mod discovery;
pub mod kangaroo;
pub mod manager;

pub use dag::{Dag, DagError};
pub use discovery::{AdPublisher, Discovery};
pub use kangaroo::Kangaroo;
pub use manager::{ExecutionManager, JobSpec, JobSummary};
