//! The global execution manager (paper §6, Figure 2).
//!
//! Executes the paper's six-step scenario: (1) accept a job whose input
//! lives on the home NeST; (2) match the job's storage request against the
//! discovery system; (3) create a lot at the chosen site over Chirp and
//! stage input there with a GridFTP third-party transfer; (4) run the job
//! at the remote site, accessing data over NFS; (5) stage output back
//! home; (6) terminate the lot.

use crate::discovery::Discovery;
use nest_classad::{ClassAd, Expr, Value};
use nest_proto::chirp::ChirpClient;
use nest_proto::gridftp::{third_party, GridFtpClient};
use nest_proto::gsi::Credential;
use nest_proto::nfs::{FileHandle, MountClient, NfsClient};
use std::fmt;

/// The body of a job: runs with an NFS client bound to the execution site.
pub type JobBody<'a> =
    Box<dyn FnOnce(&mut NfsClient, FileHandle) -> Result<(), String> + Send + 'a>;

/// A site's protocol endpoints, carried inside its storage ad.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteInfo {
    /// Site name.
    pub name: String,
    /// Chirp `host:port`.
    pub chirp: String,
    /// GridFTP `host:port`.
    pub gridftp: String,
    /// NFS `host:port`.
    pub nfs: String,
}

impl SiteInfo {
    /// Adds the endpoint attributes to a storage ad before publication.
    pub fn annotate(&self, ad: &mut ClassAd) {
        ad.insert("ChirpAddr", Expr::Literal(Value::str(self.chirp.clone())));
        ad.insert(
            "GridFtpAddr",
            Expr::Literal(Value::str(self.gridftp.clone())),
        );
        ad.insert("NfsAddr", Expr::Literal(Value::str(self.nfs.clone())));
    }

    /// Recovers endpoints from a matched ad.
    pub fn from_ad(ad: &ClassAd) -> Option<SiteInfo> {
        Some(SiteInfo {
            name: ad.eval("Name").as_str()?.to_owned(),
            chirp: ad.eval("ChirpAddr").as_str()?.to_owned(),
            gridftp: ad.eval("GridFtpAddr").as_str()?.to_owned(),
            nfs: ad.eval("NfsAddr").as_str()?.to_owned(),
        })
    }
}

/// A job submission.
pub struct JobSpec<'a> {
    /// Job name (used for lot-size accounting and logs).
    pub name: String,
    /// Guaranteed space to reserve at the execution site.
    pub need_space: u64,
    /// Lot duration in seconds.
    pub lot_duration: u64,
    /// Files to stage in: `(path on home NeST, path at execution site)`.
    pub stage_in: Vec<(String, String)>,
    /// Files to stage out afterwards: `(path at site, path on home NeST)`.
    pub stage_out: Vec<(String, String)>,
    /// The job body: runs with an NFS client bound to the execution site
    /// (paper: "those jobs access the user's input files on the NeST via a
    /// local file system protocol, in this case NFS").
    pub run: JobBody<'a>,
}

/// What happened during a job's execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSummary {
    /// The chosen execution site.
    pub site: String,
    /// Lot id created (and later terminated) at the site.
    pub lot_id: u64,
    /// Files staged in.
    pub staged_in: usize,
    /// Files staged out.
    pub staged_out: usize,
}

/// Errors from scenario execution.
#[derive(Debug)]
pub enum ManagerError {
    /// No storage ad matched the request.
    NoMatch,
    /// A matched ad lacked endpoint attributes.
    BadAd,
    /// A step failed.
    Step(&'static str, String),
}

impl fmt::Display for ManagerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManagerError::NoMatch => write!(f, "no storage site matched the request"),
            ManagerError::BadAd => write!(f, "matched ad lacks endpoint attributes"),
            ManagerError::Step(step, msg) => write!(f, "step {:?} failed: {}", step, msg),
        }
    }
}

impl std::error::Error for ManagerError {}

fn step<T, E: fmt::Display>(name: &'static str, r: Result<T, E>) -> Result<T, ManagerError> {
    r.map_err(|e| ManagerError::Step(name, e.to_string()))
}

/// The global execution manager.
pub struct ExecutionManager {
    discovery: Discovery,
    home: SiteInfo,
    credential: Credential,
}

impl ExecutionManager {
    /// Creates a manager for a user whose data lives at `home`.
    pub fn new(discovery: Discovery, home: SiteInfo, credential: Credential) -> Self {
        Self {
            discovery,
            home,
            credential,
        }
    }

    /// Builds the storage-request ad for a job.
    pub fn request_ad(&self, need_space: u64) -> ClassAd {
        let mut ad = ClassAd::new();
        ad.insert_value("Type", Value::str("StorageRequest"));
        ad.insert_value("NeedSpace", Value::Int(need_space as i64));
        ad.insert(
            "Requirements",
            nest_classad::parse_expr(&format!(
                "other.Type == \"Storage\" && other.Name != \"{}\"",
                self.home.name
            ))
            .expect("static expression parses"),
        );
        ad.insert(
            "Rank",
            nest_classad::parse_expr("other.FreeSpace").expect("static expression parses"),
        );
        ad
    }

    /// Runs the full Figure 2 scenario for one job.
    pub fn run_job(&self, spec: JobSpec<'_>) -> Result<JobSummary, ManagerError> {
        // Step 1–2: discovery and matchmaking.
        let request = self.request_ad(spec.need_space);
        let (_, ad) = self
            .discovery
            .best_match(&request)
            .ok_or(ManagerError::NoMatch)?;
        let site = SiteInfo::from_ad(&ad).ok_or(ManagerError::BadAd)?;

        // Step 2: guarantee space with a Chirp lot.
        let mut chirp = step("chirp-connect", ChirpClient::connect(&*site.chirp))?;
        step("chirp-auth", chirp.authenticate(&self.credential))?;
        let lot_id = step(
            "lot-create",
            chirp.lot_create(spec.need_space, spec.lot_duration),
        )?;

        // Step 3: stage input via GridFTP third-party transfers.
        let mut src = step("gftp-home", GridFtpClient::connect(&*self.home.gridftp))?;
        let mut dst = step("gftp-site", GridFtpClient::connect(&*site.gridftp))?;
        step("gftp-auth-home", src.authenticate(&self.credential))?;
        step("gftp-auth-site", dst.authenticate(&self.credential))?;
        for (home_path, site_path) in &spec.stage_in {
            step(
                "stage-in",
                third_party(&mut src, home_path, &mut dst, site_path),
            )?;
        }

        // Step 4: execute the job against the site over NFS.
        let mut mount = step("nfs-mount", MountClient::connect(&*site.nfs))?;
        let root = step("nfs-root", mount.mount("/"))?;
        let mut nfs = step("nfs-connect", NfsClient::connect(&*site.nfs))?;
        step("job", (spec.run)(&mut nfs, root))?;

        // Step 5: stage output home (direction reversed).
        for (site_path, home_path) in &spec.stage_out {
            step(
                "stage-out",
                third_party(&mut dst, site_path, &mut src, home_path),
            )?;
        }

        // Step 6: terminate the reservation.
        step("lot-terminate", chirp.lot_terminate(lot_id))?;
        let _ = chirp.quit();

        Ok(JobSummary {
            site: site.name,
            lot_id,
            staged_in: spec.stage_in.len(),
            staged_out: spec.stage_out.len(),
        })
    }
}
