//! A miniature DAG request manager in the spirit of Condor DAGMan.
//!
//! The paper (§6): "many of the steps of guaranteeing space, moving input
//! data, executing jobs, moving output data, and terminating reservations,
//! can be encapsulated within a request execution manager such as the
//! Condor Directed-Acyclic-Graph Manager (DAGMan)."
//!
//! Nodes are closures; edges are dependencies; ready nodes run in parallel
//! on scoped threads. A node failure cancels everything downstream of it
//! (but independent branches still complete), matching DAGMan semantics.

use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Errors from DAG construction or execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// An edge names an unknown node.
    UnknownNode(String),
    /// The graph has a cycle (detected before execution).
    Cycle,
    /// One or more nodes failed; the map holds each failure message, and
    /// the set holds downstream nodes that were never run.
    Failed {
        /// Node name → its error message.
        errors: Vec<(String, String)>,
        /// Nodes skipped because an ancestor failed.
        skipped: Vec<String>,
    },
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::UnknownNode(n) => write!(f, "unknown DAG node {:?}", n),
            DagError::Cycle => write!(f, "DAG contains a cycle"),
            DagError::Failed { errors, skipped } => write!(
                f,
                "{} node(s) failed ({:?}), {} skipped",
                errors.len(),
                errors.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
                skipped.len()
            ),
        }
    }
}

impl std::error::Error for DagError {}

type Job<'a> = Box<dyn FnOnce() -> Result<(), String> + Send + 'a>;

/// A DAG of named jobs.
///
/// ```
/// use nest_grid::Dag;
///
/// let mut dag = Dag::new();
/// dag.job("stage-in", || Ok(()));
/// dag.job("run", || Ok(()));
/// dag.job("stage-out", || Ok(()));
/// dag.depends("run", "stage-in").unwrap();
/// dag.depends("stage-out", "run").unwrap();
/// let order = dag.run().unwrap();
/// assert_eq!(order, vec!["stage-in", "run", "stage-out"]);
/// ```
pub struct Dag<'a> {
    jobs: HashMap<String, Job<'a>>,
    /// child → parents.
    deps: HashMap<String, HashSet<String>>,
    order: Vec<String>,
}

impl<'a> Default for Dag<'a> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a> Dag<'a> {
    /// Creates an empty DAG.
    pub fn new() -> Self {
        Self {
            jobs: HashMap::new(),
            deps: HashMap::new(),
            order: Vec::new(),
        }
    }

    /// Adds a named job.
    pub fn job(
        &mut self,
        name: impl Into<String>,
        f: impl FnOnce() -> Result<(), String> + Send + 'a,
    ) -> &mut Self {
        let name = name.into();
        if !self.jobs.contains_key(&name) {
            self.order.push(name.clone());
        }
        self.jobs.insert(name.clone(), Box::new(f));
        self.deps.entry(name).or_default();
        self
    }

    /// Declares that `child` runs only after `parent` succeeds.
    pub fn depends(&mut self, child: &str, parent: &str) -> Result<&mut Self, DagError> {
        if !self.jobs.contains_key(child) {
            return Err(DagError::UnknownNode(child.to_owned()));
        }
        if !self.jobs.contains_key(parent) {
            return Err(DagError::UnknownNode(parent.to_owned()));
        }
        self.deps
            .entry(child.to_owned())
            .or_default()
            .insert(parent.to_owned());
        Ok(self)
    }

    /// Runs the DAG: ready nodes execute concurrently; a failure skips its
    /// descendants. Returns the order in which nodes completed.
    pub fn run(mut self) -> Result<Vec<String>, DagError> {
        // Cycle check via Kahn's algorithm on a copy.
        let mut indegree: HashMap<&str, usize> = self
            .order
            .iter()
            .map(|n| (n.as_str(), self.deps[n].len()))
            .collect();
        let mut ready: Vec<&str> = indegree
            .iter()
            .filter(|(_, d)| **d == 0)
            .map(|(n, _)| *n)
            .collect();
        let mut seen = 0;
        let mut queue = ready.clone();
        while let Some(n) = queue.pop() {
            seen += 1;
            for (child, parents) in &self.deps {
                if parents.contains(n) {
                    let d = indegree.get_mut(child.as_str()).unwrap();
                    *d -= 1;
                    if *d == 0 {
                        queue.push(child);
                    }
                }
            }
        }
        if seen != self.order.len() {
            return Err(DagError::Cycle);
        }
        drop(ready.drain(..));

        // Execute level by level (each level's nodes in parallel).
        let mut done: HashSet<String> = HashSet::new();
        let mut failed: HashSet<String> = HashSet::new();
        let mut errors: Vec<(String, String)> = Vec::new();
        let mut completed_order: Vec<String> = Vec::new();

        while done.len() + failed_closure(&self.deps, &failed).len() < self.order.len() {
            let blocked = failed_closure(&self.deps, &failed);
            let runnable: Vec<String> = self
                .order
                .iter()
                .filter(|n| {
                    !done.contains(*n)
                        && !blocked.contains(*n)
                        && self.jobs.contains_key(*n)
                        && self.deps[*n].iter().all(|p| done.contains(p))
                })
                .cloned()
                .collect();
            if runnable.is_empty() {
                break;
            }
            let results: Mutex<Vec<(String, Result<(), String>)>> =
                Mutex::named("grid.dag.results", 520, Vec::new());
            let mut batch: Vec<(String, Job<'a>)> = Vec::new();
            for name in &runnable {
                let job = self.jobs.remove(name).expect("job present");
                batch.push((name.clone(), job));
            }
            std::thread::scope(|scope| {
                for (name, job) in batch {
                    let results = &results;
                    scope.spawn(move || {
                        let outcome = job();
                        results.lock().push((name, outcome));
                    });
                }
            });
            for (name, outcome) in results.into_inner() {
                match outcome {
                    Ok(()) => {
                        done.insert(name.clone());
                        completed_order.push(name);
                    }
                    Err(msg) => {
                        failed.insert(name.clone());
                        errors.push((name, msg));
                    }
                }
            }
        }

        if errors.is_empty() {
            Ok(completed_order)
        } else {
            let blocked = failed_closure(&self.deps, &failed);
            let mut skipped: Vec<String> = blocked
                .into_iter()
                .filter(|n| !failed.contains(n))
                .collect();
            skipped.sort();
            errors.sort();
            Err(DagError::Failed { errors, skipped })
        }
    }
}

/// All nodes that transitively depend on a failed node (including the
/// failed nodes themselves).
fn failed_closure(
    deps: &HashMap<String, HashSet<String>>,
    failed: &HashSet<String>,
) -> HashSet<String> {
    let mut blocked: HashSet<String> = failed.clone();
    loop {
        let mut grew = false;
        for (child, parents) in deps {
            if !blocked.contains(child) && parents.iter().any(|p| blocked.contains(p)) {
                blocked.insert(child.clone());
                grew = true;
            }
        }
        if !grew {
            return blocked;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn linear_chain_runs_in_order() {
        let log = Mutex::new(Vec::new());
        let mut dag = Dag::new();
        for name in ["a", "b", "c"] {
            let log = &log;
            dag.job(name, move || {
                log.lock().push(name);
                Ok(())
            });
        }
        dag.depends("b", "a").unwrap();
        dag.depends("c", "b").unwrap();
        let order = dag.run().unwrap();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(*log.lock(), vec!["a", "b", "c"]);
    }

    #[test]
    fn independent_nodes_run_in_parallel_level() {
        let counter = AtomicU32::new(0);
        let mut dag = Dag::new();
        for name in ["x", "y", "z"] {
            let counter = &counter;
            dag.job(name, move || {
                counter.fetch_add(1, Ordering::Relaxed);
                Ok(())
            });
        }
        let order = dag.run().unwrap();
        assert_eq!(order.len(), 3);
        assert_eq!(counter.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn failure_skips_descendants_only() {
        let ran_d = AtomicU32::new(0);
        let mut dag = Dag::new();
        dag.job("a", || Ok(()));
        dag.job("bad", || Err("boom".into()));
        dag.job("c", || Ok(())); // child of bad: skipped
        let ran_d_ref = &ran_d;
        dag.job("d", move || {
            ran_d_ref.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }); // child of a: runs
        dag.depends("c", "bad").unwrap();
        dag.depends("d", "a").unwrap();
        match dag.run() {
            Err(DagError::Failed { errors, skipped }) => {
                assert_eq!(errors, vec![("bad".to_owned(), "boom".to_owned())]);
                assert_eq!(skipped, vec!["c"]);
            }
            other => panic!("{:?}", other.map(|_| ())),
        }
        assert_eq!(ran_d.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn cycle_detected() {
        let mut dag = Dag::new();
        dag.job("a", || Ok(()));
        dag.job("b", || Ok(()));
        dag.depends("a", "b").unwrap();
        dag.depends("b", "a").unwrap();
        assert_eq!(dag.run().err(), Some(DagError::Cycle));
    }

    #[test]
    fn unknown_node_in_edge() {
        let mut dag = Dag::new();
        dag.job("a", || Ok(()));
        assert_eq!(
            dag.depends("a", "ghost").err(),
            Some(DagError::UnknownNode("ghost".into()))
        );
        assert_eq!(
            dag.depends("ghost", "a").err(),
            Some(DagError::UnknownNode("ghost".into()))
        );
    }

    #[test]
    fn diamond_dependency() {
        let log = Mutex::new(Vec::new());
        let mut dag = Dag::new();
        for name in ["top", "l", "r", "bottom"] {
            let log = &log;
            dag.job(name, move || {
                log.lock().push(name);
                Ok(())
            });
        }
        dag.depends("l", "top").unwrap();
        dag.depends("r", "top").unwrap();
        dag.depends("bottom", "l").unwrap();
        dag.depends("bottom", "r").unwrap();
        let order = dag.run().unwrap();
        assert_eq!(order.first().map(String::as_str), Some("top"));
        assert_eq!(order.last().map(String::as_str), Some("bottom"));
    }
}
