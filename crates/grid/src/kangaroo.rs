//! Kangaroo-style staged data movement (paper §6: "Other data movement
//! protocols such as Kangaroo could also be utilized to move data from
//! site to site", citing Thain et al., "The Kangaroo Approach to Data
//! Movement on the Grid").
//!
//! Kangaroo's idea: an application should never block on the wide area.
//! It hands output to a nearby spool and keeps computing; a background
//! mover "hops" the data toward its destination, retrying over failures
//! until delivery. This module implements a single-hop mover whose spool
//! feeds a NeST over Chirp.

use nest_proto::chirp::ChirpClient;
use nest_proto::gsi::Credential;
use nest_proto::request::TransferUrl;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One spooled write awaiting delivery.
struct Hop {
    dest: TransferUrl,
    path: String,
    data: Vec<u8>,
    attempts: u32,
}

#[derive(Default)]
struct Spool {
    queue: VecDeque<Hop>,
    /// Number of hops handed to the mover but not yet delivered.
    in_flight: usize,
}

/// Delivery statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KangarooStats {
    /// Hops delivered to their destination.
    pub delivered: u64,
    /// Delivery attempts that failed (and were retried).
    pub retries: u64,
}

/// The background mover.
pub struct Kangaroo {
    spool: Arc<(Mutex<Spool>, Condvar)>,
    stop: Arc<AtomicBool>,
    delivered: Arc<AtomicU64>,
    retries: Arc<AtomicU64>,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl Kangaroo {
    /// Starts a mover that retries failed deliveries every
    /// `retry_interval`. `credential` authenticates to destinations that
    /// require GSI.
    pub fn start(retry_interval: Duration, credential: Option<Credential>) -> Self {
        let spool: Arc<(Mutex<Spool>, Condvar)> = Arc::new((
            Mutex::named("grid.kangaroo.spool", 510, Spool::default()),
            Condvar::named("grid.kangaroo.spool.cv", 511),
        ));
        let stop = Arc::new(AtomicBool::new(false));
        let delivered = Arc::new(AtomicU64::new(0));
        let retries = Arc::new(AtomicU64::new(0));

        let worker = {
            let spool = Arc::clone(&spool);
            let stop = Arc::clone(&stop);
            let delivered = Arc::clone(&delivered);
            let retries = Arc::clone(&retries);
            std::thread::Builder::new()
                .name("kangaroo-mover".into())
                .spawn(move || {
                    let (lock, cv) = &*spool;
                    loop {
                        let hop = {
                            let mut st = lock.lock();
                            loop {
                                // nestlint: allow(atomic-ordering): stop flag polled under the spool lock; eventual visibility suffices
                                if stop.load(Ordering::Relaxed) {
                                    return;
                                }
                                if let Some(hop) = st.queue.pop_front() {
                                    st.in_flight += 1;
                                    break hop;
                                }
                                cv.wait_for(&mut st, Duration::from_millis(50));
                            }
                        };
                        let ok = deliver(&hop, credential.as_ref());
                        let mut st = lock.lock();
                        st.in_flight -= 1;
                        if ok {
                            // nestlint: allow(atomic-ordering): delivery statistic; nothing synchronizes on it
                            delivered.fetch_add(1, Ordering::Relaxed);
                            cv.notify_all();
                        } else {
                            // nestlint: allow(atomic-ordering): retry statistic; nothing synchronizes on it
                            retries.fetch_add(1, Ordering::Relaxed);
                            let mut hop = hop;
                            hop.attempts += 1;
                            st.queue.push_back(hop);
                            drop(st);
                            // Back off before the next round of attempts.
                            std::thread::sleep(retry_interval);
                        }
                    }
                })
                .expect("spawn kangaroo mover")
        };
        Self {
            spool,
            stop,
            delivered,
            retries,
            worker: Some(worker),
        }
    }

    /// Spools a write toward `dest` (a `chirp://host:port/path` URL) and
    /// returns immediately — the Kangaroo property: the caller never waits
    /// on the wide area.
    pub fn spool(&self, dest: &TransferUrl, data: Vec<u8>) {
        let (lock, cv) = &*self.spool;
        lock.lock().queue.push_back(Hop {
            dest: dest.clone(),
            path: dest.path.clone(),
            data,
            attempts: 0,
        });
        cv.notify_all();
    }

    /// Hops not yet delivered (queued + in flight).
    pub fn pending(&self) -> usize {
        let st = self.spool.0.lock();
        st.queue.len() + st.in_flight
    }

    /// Blocks until every spooled hop has been delivered, or the timeout
    /// elapses. Returns true when the spool drained.
    pub fn flush(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let (lock, cv) = &*self.spool;
        let mut st = lock.lock();
        while st.queue.len() + st.in_flight > 0 {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            cv.wait_for(&mut st, (deadline - now).min(Duration::from_millis(50)));
        }
        true
    }

    /// Delivery statistics so far.
    pub fn stats(&self) -> KangarooStats {
        KangarooStats {
            // nestlint: allow(atomic-ordering): statistics snapshot; counters are independent
            delivered: self.delivered.load(Ordering::Relaxed),
            // nestlint: allow(atomic-ordering): statistics snapshot; counters are independent
            retries: self.retries.load(Ordering::Relaxed),
        }
    }

    /// Stops the mover; undelivered hops are dropped.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        // nestlint: allow(atomic-ordering): stop flag; the worker join below is the real sync point
        self.stop.store(true, Ordering::Relaxed);
        self.spool.1.notify_all();
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

impl Drop for Kangaroo {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One delivery attempt: connect, (optionally) authenticate, put.
fn deliver(hop: &Hop, credential: Option<&Credential>) -> bool {
    let Ok(mut client) = ChirpClient::connect(hop.dest.authority()) else {
        return false;
    };
    if let Some(cred) = credential {
        if client.authenticate(cred).is_err() {
            return false;
        }
    }
    client.put_bytes(&hop.path, &hop.data).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spool_is_nonblocking_and_pending_counts() {
        // Destination does not exist: hops accumulate, spool() returns
        // instantly anyway.
        let k = Kangaroo::start(Duration::from_millis(20), None);
        let dest = TransferUrl::new("chirp", "127.0.0.1", 1, "/never.bin");
        let start = Instant::now();
        for _ in 0..5 {
            k.spool(&dest, vec![0u8; 1 << 20]);
        }
        assert!(
            start.elapsed() < Duration::from_millis(200),
            "spool blocked"
        );
        assert_eq!(k.pending(), 5);
        assert!(!k.flush(Duration::from_millis(150)));
        assert!(k.stats().retries > 0);
        k.stop();
    }
}
