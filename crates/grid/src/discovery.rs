//! The discovery service: a thread-safe ClassAd collector.
//!
//! "The NeST 'gateway' appliance in Argonne has previously published both
//! its resource and data availability into a global Grid discovery system"
//! — this is that system, an in-process stand-in for the Condor collector
//! (see the substitution table in `DESIGN.md`).

use nest_classad::{ClassAd, Matchmaker};
use parking_lot::Mutex;
use std::sync::Arc;

/// A shared, thread-safe ad collection with bilateral matchmaking.
#[derive(Clone)]
pub struct Discovery {
    inner: Arc<Mutex<Matchmaker>>,
}

impl Default for Discovery {
    fn default() -> Self {
        Self {
            inner: Arc::new(Mutex::named(
                "grid.discovery.ads",
                500,
                Matchmaker::default(),
            )),
        }
    }
}

impl Discovery {
    /// Creates an empty discovery service.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes (or refreshes) an ad under a unique key — what a NeST's
    /// dispatcher does periodically.
    pub fn publish(&self, key: &str, ad: ClassAd) {
        self.inner.lock().publish(key, ad);
    }

    /// Withdraws an ad.
    pub fn withdraw(&self, key: &str) -> bool {
        self.inner.lock().withdraw(key)
    }

    /// Number of published ads.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Finds the best bilateral match for a request ad, returning the
    /// publisher key and a copy of the matched ad.
    pub fn best_match(&self, request: &ClassAd) -> Option<(String, ClassAd)> {
        let mm = self.inner.lock();
        mm.best_match(request)
            .map(|(key, ad)| (key.to_owned(), ad.clone()))
    }

    /// All matches for a request.
    pub fn query(&self, request: &ClassAd) -> Vec<(String, ClassAd)> {
        let mm = self.inner.lock();
        mm.query(request)
            .into_iter()
            .map(|(k, ad)| (k.to_owned(), ad.clone()))
            .collect()
    }

    /// Fetches one ad by key.
    pub fn lookup(&self, key: &str) -> Option<ClassAd> {
        self.inner.lock().lookup(key).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nest_classad::{parse_ad, Value};

    fn storage_ad(name: &str, free: i64) -> ClassAd {
        parse_ad(&format!(
            r#"[ Type = "Storage"; Name = "{}"; FreeSpace = {};
                 Requirements = other.Type == "StorageRequest" &&
                                other.NeedSpace <= my.FreeSpace ]"#,
            name, free
        ))
        .unwrap()
    }

    fn request(need: i64) -> ClassAd {
        parse_ad(&format!(
            r#"[ Type = "StorageRequest"; NeedSpace = {};
                 Requirements = other.Type == "Storage";
                 Rank = other.FreeSpace ]"#,
            need
        ))
        .unwrap()
    }

    #[test]
    fn publish_and_match() {
        let d = Discovery::new();
        d.publish("madison", storage_ad("madison", 1000));
        d.publish("argonne", storage_ad("argonne", 50_000));
        let (key, ad) = d.best_match(&request(500)).unwrap();
        assert_eq!(key, "argonne");
        assert_eq!(ad.eval("Name"), Value::str("argonne"));
        assert_eq!(d.query(&request(500)).len(), 2);
        assert_eq!(d.query(&request(5_000)).len(), 1);
    }

    #[test]
    fn refresh_replaces() {
        let d = Discovery::new();
        d.publish("x", storage_ad("x", 10));
        d.publish("x", storage_ad("x", 99));
        assert_eq!(d.len(), 1);
        assert_eq!(d.lookup("x").unwrap().eval("FreeSpace"), Value::Int(99));
        assert!(d.withdraw("x"));
        assert!(d.is_empty());
    }

    #[test]
    fn clone_shares_state() {
        let d = Discovery::new();
        let d2 = d.clone();
        d.publish("a", storage_ad("a", 1));
        assert_eq!(d2.len(), 1);
    }
}

/// Periodically republished ads: the paper's dispatcher "periodically
/// consolidates information about resource and data availability in the
/// NeST and can publish this information as a ClassAd into a global
/// scheduling system." The publisher owns a background thread that calls
/// a snapshot closure on an interval and republishes under a fixed key;
/// dropping it (or calling [`AdPublisher::stop`]) ends publication and
/// withdraws the ad.
pub struct AdPublisher {
    stop: Arc<std::sync::atomic::AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
    discovery: Discovery,
    key: String,
}

impl AdPublisher {
    /// Starts republishing `snapshot()` under `key` every `interval`.
    /// The first publication happens immediately.
    pub fn start(
        discovery: Discovery,
        key: impl Into<String>,
        interval: std::time::Duration,
        snapshot: impl Fn() -> ClassAd + Send + 'static,
    ) -> Self {
        let key = key.into();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        discovery.publish(&key, snapshot());
        let handle = {
            let discovery = discovery.clone();
            let key = key.clone();
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("nest-ad-publisher".into())
                .spawn(move || {
                    // Sleep in short slices so stop() is prompt even with
                    // long publication intervals.
                    let slice = std::time::Duration::from_millis(50).min(interval);
                    let mut next = std::time::Instant::now() + interval;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        std::thread::sleep(slice);
                        if stop.load(std::sync::atomic::Ordering::Relaxed) {
                            break;
                        }
                        if std::time::Instant::now() >= next {
                            discovery.publish(&key, snapshot());
                            next = std::time::Instant::now() + interval;
                        }
                    }
                })
                .expect("spawn ad publisher")
        };
        Self {
            stop,
            handle: Some(handle),
            discovery,
            key,
        }
    }

    /// Stops publication and withdraws the ad.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        self.discovery.withdraw(&self.key);
    }
}

impl Drop for AdPublisher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod publisher_tests {
    use super::*;
    use nest_classad::Value;
    use std::sync::atomic::{AtomicI64, Ordering};
    use std::time::Duration;

    #[test]
    fn publisher_refreshes_and_withdraws() {
        let discovery = Discovery::new();
        let counter = Arc::new(AtomicI64::new(0));
        let c2 = Arc::clone(&counter);
        let publisher = AdPublisher::start(
            discovery.clone(),
            "site",
            Duration::from_millis(10),
            move || {
                let n = c2.fetch_add(1, Ordering::Relaxed);
                let mut ad = ClassAd::new();
                ad.insert_value("Type", Value::str("Storage"));
                ad.insert_value("Version", Value::Int(n));
                ad
            },
        );
        // First publication is immediate.
        assert_eq!(discovery.len(), 1);
        // Wait for at least one refresh.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        loop {
            let v = discovery.lookup("site").unwrap().eval("Version");
            if v != Value::Int(0) {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "no refresh seen");
            std::thread::sleep(Duration::from_millis(5));
        }
        publisher.stop();
        assert!(discovery.is_empty(), "ad not withdrawn");
    }
}
