//! The cooperative scheduler: one OS thread per model task, exactly one
//! runnable at a time, every sync operation a scheduling decision.
//!
//! ## Execution model
//!
//! A *run* executes the scenario once under one schedule. Each task is an
//! OS thread that parks on the run's single `std` mutex + condvar pair
//! whenever it reaches a scheduling point, posting the operation it is
//! *about to* perform ([`Pending`]). The controller (the thread that
//! called [`explore`]) waits until no task is running, computes the set of
//! *eligible* tasks (those whose pending operation can proceed — a lock
//! acquisition is eligible only when the lock is free, a join only when
//! the target finished, a condvar wait only when notified or timed out
//! *and* its mutex is reacquirable), picks one according to the schedule,
//! applies the operation's effect (grants the lock, delivers the notify,
//! resolves the `try_lock`), and hands that task the run token.
//!
//! Releases (`unlock`) are deliberately **not** scheduling points: the
//! releasing task mutates the resource table and keeps running. This is
//! sound because between two scheduling points a task executes only
//! data-race-free Rust (the borrow checker guarantees non-sync memory is
//! not shared mutably), so the first observable difference any other task
//! could see occurs at the *next* acquisition — which is a scheduling
//! point. Dropping release points roughly halves schedule depth.
//!
//! ## Exploration
//!
//! Schedules are enumerated by iterative DFS over the decision log. Each
//! decision records the eligible set and the index chosen; after a
//! complete run the deepest decision with an untried alternative (within
//! the preemption bound) becomes the new forced prefix, and everything
//! past the prefix follows the default policy "keep running the previous
//! task if it is still eligible, else the lowest task id". A *preemption*
//! is a decision that switches away from a task that was still eligible —
//! the CHESS observation is that real concurrency bugs almost always need
//! only 1–2 preemptions, so bounding them turns an exponential tree into
//! a small polynomial one while keeping the bug-finding power. A bound of
//! `None` explores exhaustively.
//!
//! Everything here is deterministic: task ids are assigned in spawn order
//! under the run token, eligible sets are ordered by task id, and model
//! time has no clock — so a seed (the `.`-joined chosen indices) replays
//! the identical schedule on any machine.

use parking_lot::model::{self, ModelHooks};
use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
// nestlint: allow(raw-std-sync): the model scheduler cannot run on the shim locks it schedules
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::time::{Duration, Instant};

pub(crate) type TaskId = usize;

/// The operation a parked task will perform when next granted the token.
#[derive(Clone, Debug)]
pub(crate) enum Pending {
    /// First grant after spawn; no effect.
    Start,
    /// An atomic-wrapper op or explicit `yield_now`; no effect.
    Yield,
    /// Blocking lock acquisition (mutex or rwlock; `excl` = write side).
    Lock {
        addr: usize,
        name: Option<&'static str>,
        excl: bool,
    },
    /// Non-blocking mutex acquisition; always eligible, outcome in `flag`.
    TryLock { addr: usize },
    /// Condvar wait: the mutex was released on entry; eligible once
    /// notified (or, for timed waits, any time the timeout "fires") and
    /// the mutex is free — wakeup and reacquisition are one step.
    CvWait {
        cv: usize,
        name: Option<&'static str>,
        mutex: usize,
        timed: bool,
        notified: bool,
    },
    /// Condvar notify; the wakeup is delivered when this op is granted.
    Notify { cv: usize, all: bool },
    /// Join on another task; eligible once the target finished.
    Join { target: TaskId },
}

enum TaskState {
    Ready(Pending),
    Running,
    Finished,
}

struct Task {
    state: TaskState,
    /// Out-of-band result of the last granted op: `try_lock` success, or
    /// `timed_out` for a timed condvar wait.
    flag: bool,
}

impl Task {
    fn new() -> Self {
        Self {
            state: TaskState::Ready(Pending::Start),
            flag: false,
        }
    }
}

/// Ownership state of one lock, keyed by object address.
#[derive(Default)]
struct ResState {
    writer: Option<TaskId>,
    readers: usize,
    name: Option<&'static str>,
}

/// One scheduling decision: who could run, who ran before, who was picked.
pub(crate) struct Decision {
    eligible: Vec<TaskId>,
    prev: Option<TaskId>,
    chosen: usize,
}

/// Why a schedule failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// A task panicked (includes `invariant!` checks firing in the code
    /// under test).
    Panic,
    /// No task runnable; at least one blocked on a lock or join.
    Deadlock,
    /// No task runnable; every blocked task is an un-notified untimed
    /// condvar waiter, so no continuation can ever wake them.
    LostWakeup,
    /// The [`Config::invariant`] closure rejected the state.
    Invariant,
    /// The per-run step budget was exhausted (livelock backstop).
    StepBudget,
    /// A replayed seed chose an index outside the eligible set — the
    /// scenario is nondeterministic beyond scheduling.
    ReplayDivergence,
}

/// A failing schedule: what went wrong and the seed that replays it.
#[derive(Debug, Clone)]
pub struct Failure {
    pub kind: FailureKind,
    /// Replay seed: `v1:` + the chosen index at each decision, `.`-joined.
    pub seed: String,
    pub message: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?}: {}\n  replay seed: {}",
            self.kind, self.message, self.seed
        )
    }
}

/// Exploration limits and checks.
#[derive(Clone)]
pub struct Config {
    /// Maximum preemptions per schedule; `None` explores exhaustively.
    pub preemption_bound: Option<usize>,
    /// Stop (incomplete) after this many schedules.
    pub max_schedules: usize,
    /// Stop (incomplete) after this much wall-clock time.
    pub max_duration: Duration,
    /// Per-run decision budget; exceeding it fails the schedule
    /// ([`FailureKind::StepBudget`]).
    pub max_steps: usize,
    /// Optional global check run at every scheduling point, on the
    /// controller thread while all tasks are parked. It must be
    /// *lock-free* (read atomics only): a task parked at a scheduling
    /// point may hold the very lock the closure would block on.
    #[allow(clippy::type_complexity)]
    pub invariant: Option<Arc<dyn Fn() -> Result<(), String> + Send + Sync>>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            preemption_bound: Some(2),
            max_schedules: 200_000,
            max_duration: Duration::from_secs(30),
            max_steps: 20_000,
            invariant: None,
        }
    }
}

impl Config {
    /// No preemption bound: every schedule, for scenarios small enough.
    pub fn exhaustive() -> Self {
        Self {
            preemption_bound: None,
            ..Self::default()
        }
    }
}

/// Outcome of an [`explore`] call.
#[derive(Debug)]
pub struct Report {
    /// Schedules executed.
    pub schedules: usize,
    /// True when the schedule space was exhausted (no failure and nothing
    /// left to try within the bound); false when a limit stopped us.
    pub complete: bool,
    /// The first failing schedule, if any.
    pub failure: Option<Failure>,
}

struct Sched {
    tasks: Vec<Task>,
    resources: HashMap<usize, ResState>,
    running: Option<TaskId>,
    last_ran: Option<TaskId>,
    log: Vec<Decision>,
    steps: usize,
    aborted: bool,
    failure: Option<(FailureKind, String)>,
}

impl Sched {
    fn new() -> Self {
        Self {
            tasks: Vec::new(),
            resources: HashMap::new(),
            running: None,
            last_ran: None,
            log: Vec::new(),
            steps: 0,
            aborted: false,
            failure: None,
        }
    }

    fn res_free(&self, addr: usize, excl: bool) -> bool {
        match self.resources.get(&addr) {
            None => true,
            Some(r) => r.writer.is_none() && (!excl || r.readers == 0),
        }
    }

    /// Tasks whose pending op can proceed now, in task-id order.
    fn eligible(&self) -> Vec<TaskId> {
        self.tasks
            .iter()
            .enumerate()
            .filter_map(|(id, t)| {
                let TaskState::Ready(op) = &t.state else {
                    return None;
                };
                let ok = match op {
                    Pending::Start
                    | Pending::Yield
                    | Pending::TryLock { .. }
                    | Pending::Notify { .. } => true,
                    Pending::Lock { addr, excl, .. } => self.res_free(*addr, *excl),
                    Pending::CvWait {
                        mutex,
                        timed,
                        notified,
                        ..
                    } => (*notified || *timed) && self.res_free(*mutex, true),
                    Pending::Join { target } => {
                        matches!(self.tasks[*target].state, TaskState::Finished)
                    }
                };
                ok.then_some(id)
            })
            .collect()
    }

    /// Applies the effect of `id`'s pending op and hands it the token.
    fn grant(&mut self, id: TaskId) {
        let op = match std::mem::replace(&mut self.tasks[id].state, TaskState::Running) {
            TaskState::Ready(op) => op,
            _ => unreachable!("granted task was not ready"),
        };
        match op {
            Pending::Start | Pending::Yield | Pending::Join { .. } => {}
            Pending::Lock { addr, name, excl } => {
                let r = self.resources.entry(addr).or_default();
                r.name = r.name.or(name);
                if excl {
                    r.writer = Some(id);
                } else {
                    r.readers += 1;
                }
            }
            Pending::TryLock { addr } => {
                let free = self.res_free(addr, true);
                if free {
                    self.resources.entry(addr).or_default().writer = Some(id);
                }
                self.tasks[id].flag = free;
            }
            Pending::CvWait {
                mutex, notified, ..
            } => {
                // Wake + reacquire as one step; timed out iff never
                // notified (eligibility guaranteed `timed` in that case).
                self.resources.entry(mutex).or_default().writer = Some(id);
                self.tasks[id].flag = !notified;
            }
            Pending::Notify { cv, all } => {
                // notify_one wakes the lowest-id un-notified waiter —
                // deterministic, like everything else here.
                for t in self.tasks.iter_mut() {
                    if let TaskState::Ready(Pending::CvWait {
                        cv: c, notified, ..
                    }) = &mut t.state
                    {
                        if *c == cv && !*notified {
                            *notified = true;
                            if !all {
                                break;
                            }
                        }
                    }
                }
            }
        }
        self.running = Some(id);
        self.last_ran = Some(id);
    }

    /// Classifies a stuck state (no eligible task, some unfinished) and
    /// describes every blocked task for the failure report.
    ///
    /// Lost wakeup: at least one un-notified untimed condvar waiter and
    /// nothing blocked on a *resource* — no continuation could ever free
    /// anything. Tasks blocked joining a wedged task are derivative and
    /// stay neutral; anything lock-blocked (or a wakeable waiter whose
    /// mutex is never freed) makes it a deadlock.
    fn stuck_failure(&self) -> (FailureKind, String) {
        let mut lines = Vec::new();
        let mut lost_waiters = 0usize;
        let mut resource_blocked = 0usize;
        for (id, t) in self.tasks.iter().enumerate() {
            let TaskState::Ready(op) = &t.state else {
                continue;
            };
            let line = match op {
                Pending::Lock { addr, name, excl } => {
                    resource_blocked += 1;
                    let held = self
                        .resources
                        .get(addr)
                        .and_then(|r| r.writer)
                        .map(|h| format!(" (held by task {h})"))
                        .unwrap_or_default();
                    format!(
                        "task {id} blocked acquiring {} `{}`{held}",
                        if *excl { "lock" } else { "shared lock" },
                        name.unwrap_or("<unnamed>"),
                    )
                }
                Pending::CvWait {
                    name,
                    timed,
                    notified,
                    ..
                } => {
                    if *timed || *notified {
                        // Could wake, but its mutex is held forever.
                        resource_blocked += 1;
                    } else {
                        lost_waiters += 1;
                    }
                    format!(
                        "task {id} waiting on condvar `{}` ({})",
                        name.unwrap_or("<unnamed>"),
                        if *notified {
                            "notified, mutex never freed"
                        } else if *timed {
                            "timed, mutex never freed"
                        } else {
                            "never notified"
                        },
                    )
                }
                Pending::Join { target } => {
                    format!("task {id} joining task {target}, which never finishes")
                }
                other => {
                    resource_blocked += 1;
                    format!("task {id} blocked at {other:?}")
                }
            };
            lines.push(line);
        }
        let kind = if resource_blocked == 0 && lost_waiters > 0 {
            FailureKind::LostWakeup
        } else {
            FailureKind::Deadlock
        };
        (kind, lines.join("; "))
    }
}

pub(crate) struct RunShared {
    sched: StdMutex<Sched>,
    cv: StdCondvar,
    handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

impl RunShared {
    fn new() -> Self {
        Self {
            // nestlint: allow(unnamed-lock): the scheduler's own std state, not a shim lock
            sched: StdMutex::new(Sched::new()),
            // nestlint: allow(unnamed-lock): the scheduler's own std state, not a shim lock
            cv: StdCondvar::new(),
            // nestlint: allow(unnamed-lock): the scheduler's own std state, not a shim lock
            handles: StdMutex::new(Vec::new()),
        }
    }

    fn sched(&self) -> StdMutexGuard<'_, Sched> {
        self.sched
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn wait<'a>(&self, g: StdMutexGuard<'a, Sched>) -> StdMutexGuard<'a, Sched> {
        self.cv
            .wait(g)
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Unwind payload used to tear a task down when its run is aborted; the
/// per-task `catch_unwind` recognizes it and exits without reporting.
struct AbortToken;

/// The per-task side of the protocol; installed as the shim's
/// [`ModelHooks`] and stashed in [`CURRENT`] for the thread/atomic
/// wrappers.
pub(crate) struct TaskCtx {
    pub(crate) id: TaskId,
    pub(crate) shared: Arc<RunShared>,
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<TaskCtx>>> = const { RefCell::new(None) };
}

/// The calling thread's task context, if it belongs to an active run.
pub(crate) fn current() -> Option<Arc<TaskCtx>> {
    CURRENT.with(|c| c.borrow().clone())
}

impl TaskCtx {
    /// Tears this task down: detach from the shim (so lock operations in
    /// drop-glue during the unwind fall back to real blocking `std` locks,
    /// which serializes concurrently-unwinding tasks correctly) and
    /// unwind to the task's `catch_unwind`.
    fn abort_unwind(&self) -> ! {
        model::uninstall();
        CURRENT.with(|c| *c.borrow_mut() = None);
        panic::resume_unwind(Box::new(AbortToken));
    }

    /// Parks until granted the token; returns the op's result flag.
    fn park(&self, mut s: StdMutexGuard<'_, Sched>) -> bool {
        loop {
            if s.aborted {
                drop(s);
                self.abort_unwind();
            }
            if matches!(s.tasks[self.id].state, TaskState::Running) {
                return s.tasks[self.id].flag;
            }
            s = self.shared.wait(s);
        }
    }

    /// Posts `op` as this task's next step, releases the token, and parks
    /// until the controller grants it. Returns the op's result flag.
    fn yield_op(&self, op: Pending) -> bool {
        let mut s = self.shared.sched();
        if s.aborted {
            drop(s);
            self.abort_unwind();
        }
        s.tasks[self.id].state = TaskState::Ready(op);
        s.running = None;
        self.shared.cv.notify_all();
        self.park(s)
    }

    /// First park after spawn (the `Start` op was posted at registration).
    fn park_until_running(&self) {
        let s = self.shared.sched();
        self.park(s);
    }

    /// Releases a lock resource. Never blocks, never unwinds: it runs
    /// inside guard drops, possibly during an abort unwind, where a second
    /// panic would abort the process.
    fn release(&self, addr: usize, excl: bool) {
        let mut s = self.shared.sched();
        if let Some(r) = s.resources.get_mut(&addr) {
            if excl {
                if r.writer == Some(self.id) {
                    r.writer = None;
                }
            } else {
                r.readers = r.readers.saturating_sub(1);
            }
        }
    }

    /// Marks this task finished and gives up the token.
    fn finish(&self) {
        let mut s = self.shared.sched();
        self.finish_locked(&mut s);
        drop(s);
        self.shared.cv.notify_all();
    }

    fn finish_locked(&self, s: &mut Sched) {
        s.tasks[self.id].state = TaskState::Finished;
        if s.running == Some(self.id) {
            s.running = None;
        }
    }
}

impl ModelHooks for TaskCtx {
    fn mutex_lock(&self, addr: usize, name: Option<&'static str>) {
        self.yield_op(Pending::Lock {
            addr,
            name,
            excl: true,
        });
    }

    fn mutex_try_lock(&self, addr: usize, _name: Option<&'static str>) -> bool {
        self.yield_op(Pending::TryLock { addr })
    }

    fn mutex_unlock(&self, addr: usize) {
        self.release(addr, true);
    }

    fn rw_lock(&self, addr: usize, name: Option<&'static str>, exclusive: bool) {
        self.yield_op(Pending::Lock {
            addr,
            name,
            excl: exclusive,
        });
    }

    fn rw_unlock(&self, addr: usize, exclusive: bool) {
        self.release(addr, exclusive);
    }

    fn condvar_wait(
        &self,
        cv: usize,
        name: Option<&'static str>,
        mutex: usize,
        timed: bool,
    ) -> bool {
        let mut s = self.shared.sched();
        if s.aborted {
            drop(s);
            self.abort_unwind();
        }
        // Release the mutex and become a waiter in one critical section —
        // the condvar contract's atomic release-and-wait.
        if let Some(r) = s.resources.get_mut(&mutex) {
            if r.writer == Some(self.id) {
                r.writer = None;
            }
        }
        s.tasks[self.id].state = TaskState::Ready(Pending::CvWait {
            cv,
            name,
            mutex,
            timed,
            notified: false,
        });
        s.running = None;
        self.shared.cv.notify_all();
        self.park(s)
    }

    fn condvar_notify(&self, cv: usize, _name: Option<&'static str>, all: bool) {
        self.yield_op(Pending::Notify { cv, all });
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// The body every task thread runs: install hooks, wait for the first
/// grant, run, report panics, mark finished.
pub(crate) fn task_main(ctx: Arc<TaskCtx>, body: impl FnOnce()) {
    model::install(ctx.clone() as Arc<dyn ModelHooks>);
    CURRENT.with(|c| *c.borrow_mut() = Some(ctx.clone()));
    let result = panic::catch_unwind(AssertUnwindSafe(|| {
        ctx.park_until_running();
        body();
    }));
    model::uninstall();
    CURRENT.with(|c| *c.borrow_mut() = None);
    if let Err(payload) = result {
        if payload.downcast_ref::<AbortToken>().is_none() {
            let msg = panic_message(payload.as_ref());
            let mut s = ctx.shared.sched();
            if s.failure.is_none() {
                s.failure = Some((
                    FailureKind::Panic,
                    format!("task {} panicked: {msg}", ctx.id),
                ));
            }
            s.aborted = true;
        }
    }
    ctx.finish();
}

/// Registers a new task (state `Ready(Start)`) and returns its id. Called
/// with the token held (from the spawning task) or before the run starts.
pub(crate) fn register_task(shared: &Arc<RunShared>) -> TaskId {
    let mut s = shared.sched();
    s.tasks.push(Task::new());
    s.tasks.len() - 1
}

/// Records a spawned task thread's OS handle for end-of-run joining.
pub(crate) fn register_handle(shared: &Arc<RunShared>, h: std::thread::JoinHandle<()>) {
    shared
        .handles
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .push(h);
}

/// Posts a `Join` op for the current task (used by `thread::JoinHandle`).
pub(crate) fn join_task(ctx: &TaskCtx, target: TaskId) {
    ctx.yield_op(Pending::Join { target });
}

/// An explicit scheduling point for the current task, if any. The atomic
/// wrappers call this before every operation, making lock-free
/// read-modify-write sequences explorable.
pub fn yield_now() {
    if let Some(ctx) = current() {
        ctx.yield_op(Pending::Yield);
    }
}

enum RunOutcome {
    Complete(Vec<Decision>),
    Failed(Failure),
}

fn seed_of_log(log: &[Decision]) -> String {
    let choices: Vec<String> = log.iter().map(|d| d.chosen.to_string()).collect();
    format!("v1:{}", choices.join("."))
}

fn parse_seed(seed: &str) -> Result<Vec<usize>, String> {
    let rest = seed
        .strip_prefix("v1:")
        .ok_or_else(|| format!("seed {seed:?} does not start with \"v1:\""))?;
    if rest.is_empty() {
        return Ok(Vec::new());
    }
    rest.split('.')
        .map(|t| {
            t.parse::<usize>()
                .map_err(|e| format!("bad seed element {t:?}: {e}"))
        })
        .collect()
}

/// Whether picking `choice` at decision `d` preempts a still-eligible
/// previous task.
fn is_preemption(d: &Decision, choice: usize) -> bool {
    match d.prev {
        Some(p) => d.eligible.contains(&p) && d.eligible[choice] != p,
        None => false,
    }
}

/// The index the default policy picks at decision `d`: keep running the
/// previous task if it is still eligible, else the lowest task id.
fn default_idx(d: &Decision) -> usize {
    d.prev
        .and_then(|p| d.eligible.iter().position(|&e| e == p))
        .unwrap_or(0)
}

/// The canonical try-order of choices at a decision: the default first
/// (what an unforced run does), then the remaining indices ascending.
/// `next_prefix` advances along this order, so it must match what `drive`
/// picks when the prefix runs out.
fn canonical_order(d: &Decision) -> impl Iterator<Item = usize> + '_ {
    let def = default_idx(d);
    std::iter::once(def).chain((0..d.eligible.len()).filter(move |&j| j != def))
}

/// DFS successor: the prefix of the next schedule to try, or `None` when
/// the (bounded) space is exhausted. Walks the completed run's log from
/// the deepest decision looking for an untried alternative (later in the
/// decision's canonical order than what this run chose) whose cumulative
/// preemption count stays within the bound; the default policy past the
/// prefix adds no preemptions, so prefix-feasibility is
/// schedule-feasibility.
fn next_prefix(log: &[Decision], bound: Option<usize>) -> Option<Vec<usize>> {
    let mut cum = vec![0usize; log.len() + 1];
    for (i, d) in log.iter().enumerate() {
        cum[i + 1] = cum[i] + usize::from(is_preemption(d, d.chosen));
    }
    for i in (0..log.len()).rev() {
        let d = &log[i];
        let pos = canonical_order(d)
            .position(|j| j == d.chosen)
            .expect("chosen index is in the canonical order");
        for j in canonical_order(d).skip(pos + 1) {
            let preemptions = cum[i] + usize::from(is_preemption(d, j));
            if bound.is_none_or(|b| preemptions <= b) {
                let mut prefix: Vec<usize> = log[..i].iter().map(|d| d.chosen).collect();
                prefix.push(j);
                return Some(prefix);
            }
        }
    }
    None
}

/// Runs the scenario once under the schedule forced by `prefix` (default
/// policy beyond it).
fn run_once(
    config: &Config,
    prefix: &[usize],
    scenario: &Arc<dyn Fn() + Send + Sync>,
) -> RunOutcome {
    let shared = Arc::new(RunShared::new());
    let root_id = register_task(&shared);
    debug_assert_eq!(root_id, 0);
    let root = Arc::new(TaskCtx {
        id: root_id,
        shared: Arc::clone(&shared),
    });
    {
        let body = Arc::clone(scenario);
        // nestlint: allow(conn-spawn): model task threads, not connection handlers
        let h = std::thread::spawn(move || task_main(root, move || body()));
        register_handle(&shared, h);
    }

    let outcome = drive(&shared, config, prefix);

    // Teardown: wake every parked task into its abort unwind, then join
    // all task threads of this run (tasks can spawn while draining, so
    // loop until the handle list is empty).
    {
        let mut s = shared.sched();
        s.aborted = true;
        shared.cv.notify_all();
    }
    loop {
        let h = shared
            .handles
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop();
        match h {
            Some(h) => {
                let _ = h.join();
            }
            None => break,
        }
    }
    outcome
}

/// The controller loop: wait for quiescence, check, decide, grant.
fn drive(shared: &Arc<RunShared>, config: &Config, prefix: &[usize]) -> RunOutcome {
    let mut s = shared.sched();
    loop {
        while s.running.is_some() && !s.aborted {
            s = shared.wait(s);
        }
        if s.aborted || s.failure.is_some() {
            let (kind, message) = s
                .failure
                .take()
                .unwrap_or((FailureKind::Panic, "run aborted".to_owned()));
            return RunOutcome::Failed(Failure {
                kind,
                seed: seed_of_log(&s.log),
                message,
            });
        }
        if let Some(inv) = &config.invariant {
            if let Err(message) = inv() {
                return RunOutcome::Failed(Failure {
                    kind: FailureKind::Invariant,
                    seed: seed_of_log(&s.log),
                    message,
                });
            }
        }
        let eligible = s.eligible();
        if eligible.is_empty() {
            if s.tasks
                .iter()
                .all(|t| matches!(t.state, TaskState::Finished))
            {
                return RunOutcome::Complete(std::mem::take(&mut s.log));
            }
            let (kind, message) = s.stuck_failure();
            return RunOutcome::Failed(Failure {
                kind,
                seed: seed_of_log(&s.log),
                message,
            });
        }
        s.steps += 1;
        if s.steps > config.max_steps {
            return RunOutcome::Failed(Failure {
                kind: FailureKind::StepBudget,
                seed: seed_of_log(&s.log),
                message: format!(
                    "schedule exceeded {} decisions; likely a livelock (e.g. an unbounded timed-wait loop)",
                    config.max_steps
                ),
            });
        }
        let di = s.log.len();
        let chosen = if di < prefix.len() {
            if prefix[di] >= eligible.len() {
                return RunOutcome::Failed(Failure {
                    kind: FailureKind::ReplayDivergence,
                    seed: seed_of_log(&s.log),
                    message: format!(
                        "decision {di}: seed chose index {} but only {} tasks are eligible — \
                         the scenario is nondeterministic beyond scheduling",
                        prefix[di],
                        eligible.len()
                    ),
                });
            }
            prefix[di]
        } else {
            s.last_ran
                .and_then(|p| eligible.iter().position(|&e| e == p))
                .unwrap_or(0)
        };
        let tid = eligible[chosen];
        let prev = s.last_ran;
        s.log.push(Decision {
            eligible,
            prev,
            chosen,
        });
        s.grant(tid);
        shared.cv.notify_all();
    }
}

/// Explores the scenario's schedule space under `config`, stopping at the
/// first failure.
pub fn explore(config: &Config, scenario: impl Fn() + Send + Sync + 'static) -> Report {
    let scenario: Arc<dyn Fn() + Send + Sync> = Arc::new(scenario);
    let start = Instant::now();
    let mut prefix: Vec<usize> = Vec::new();
    let mut schedules = 0usize;
    loop {
        let outcome = run_once(config, &prefix, &scenario);
        schedules += 1;
        match outcome {
            RunOutcome::Failed(failure) => {
                return Report {
                    schedules,
                    complete: false,
                    failure: Some(failure),
                };
            }
            RunOutcome::Complete(log) => match next_prefix(&log, config.preemption_bound) {
                None => {
                    return Report {
                        schedules,
                        complete: true,
                        failure: None,
                    };
                }
                Some(p) => prefix = p,
            },
        }
        if schedules >= config.max_schedules || start.elapsed() >= config.max_duration {
            return Report {
                schedules,
                complete: false,
                failure: None,
            };
        }
    }
}

/// Explores and panics (with the replay seed) on any failure; the assert
/// form for scenarios expected to be clean.
pub fn check(config: &Config, scenario: impl Fn() + Send + Sync + 'static) -> Report {
    let report = explore(config, scenario);
    if let Some(failure) = &report.failure {
        panic!(
            "model check failed after {} schedule(s)\n{failure}",
            report.schedules
        );
    }
    report
}

/// Re-runs the single schedule identified by `seed`. Returns the failure
/// it reproduces, or `None` if that schedule completes cleanly.
pub fn replay(
    config: &Config,
    seed: &str,
    scenario: impl Fn() + Send + Sync + 'static,
) -> Option<Failure> {
    let prefix = match parse_seed(seed) {
        Ok(p) => p,
        Err(message) => {
            return Some(Failure {
                kind: FailureKind::ReplayDivergence,
                seed: seed.to_owned(),
                message,
            });
        }
    };
    let scenario: Arc<dyn Fn() + Send + Sync> = Arc::new(scenario);
    match run_once(config, &prefix, &scenario) {
        RunOutcome::Complete(_) => None,
        RunOutcome::Failed(f) => Some(f),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thread;
    use parking_lot::{Condvar, Mutex};
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Two tasks incrementing through a shim mutex: every schedule
    /// conserves the count.
    #[test]
    fn mutex_counter_is_clean_exhaustively() {
        let report = check(&Config::exhaustive(), || {
            let m = Arc::new(Mutex::new(0u32));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let m = Arc::clone(&m);
                    thread::spawn(move || {
                        for _ in 0..2 {
                            *m.lock() += 1;
                        }
                    })
                })
                .collect();
            for h in hs {
                h.join();
            }
            assert_eq!(*m.lock(), 4);
        });
        assert!(report.complete, "exhaustive exploration should finish");
        assert!(report.schedules > 1, "interleavings were explored");
    }

    /// A classic AB/BA lock cycle: found as a deadlock, and the seed
    /// replays it.
    #[test]
    fn ab_ba_deadlock_is_found_and_replays() {
        fn scenario() {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t1 = thread::spawn(move || {
                let _ga = a2.lock();
                let _gb = b2.lock();
            });
            let (a3, b3) = (Arc::clone(&a), Arc::clone(&b));
            let t2 = thread::spawn(move || {
                let _gb = b3.lock();
                let _ga = a3.lock();
            });
            t1.join();
            t2.join();
        }
        let report = explore(&Config::default(), scenario);
        let failure = report.failure.expect("deadlock found");
        assert_eq!(failure.kind, FailureKind::Deadlock);
        let replayed = replay(&Config::default(), &failure.seed, scenario)
            .expect("seed reproduces the deadlock");
        assert_eq!(replayed.kind, FailureKind::Deadlock);
        // And the schedule right before it (default policy, empty seed)
        // is clean: the bug needs a specific interleaving.
        assert!(replay(&Config::default(), "v1:", scenario).is_none());
    }

    /// A wait with no notify in any extension is classified as a lost
    /// wakeup, not a deadlock.
    #[test]
    fn missed_flag_check_is_a_lost_wakeup() {
        let report = explore(&Config::default(), || {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let p2 = Arc::clone(&pair);
            let waiter = thread::spawn(move || {
                let (m, cv) = &*p2;
                let mut g = m.lock();
                // BUG: no while-loop re-check before the first wait — if
                // the setter already ran, the notify is gone forever.
                if !*g {
                    cv.wait(&mut g);
                }
                assert!(*g);
            });
            let p3 = Arc::clone(&pair);
            let setter = thread::spawn(move || {
                let (m, cv) = &*p3;
                *m.lock() = true;
                cv.notify_one();
            });
            waiter.join();
            setter.join();
        });
        // Wrong-order schedule: setter's notify lands before the waiter
        // waits; waiter sees flag true and never waits → clean. The lost
        // wakeup needs: waiter locks, sees false... then setter cannot
        // run (mutex held) until the wait releases it — but the notify
        // then arrives while waiting → clean too. The genuinely lost
        // schedule is waiter-checks / waits, setter runs fully, THEN a
        // second waiter-like wait... with this shape the wait always has
        // a pending notify, so the explorer must prove it clean instead.
        // (See `lost_wakeup_without_notify` for the positive case.)
        if let Some(f) = &report.failure {
            assert_eq!(f.kind, FailureKind::LostWakeup, "unexpected: {f}");
        }
    }

    /// The unambiguous lost wakeup: a waiter nobody ever notifies.
    #[test]
    fn lost_wakeup_without_notify() {
        let report = explore(&Config::default(), || {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let p2 = Arc::clone(&pair);
            let waiter = thread::spawn(move || {
                let (m, cv) = &*p2;
                let mut g = m.lock();
                while !*g {
                    cv.wait(&mut g);
                }
            });
            waiter.join();
        });
        let failure = report.failure.expect("lost wakeup found");
        assert_eq!(failure.kind, FailureKind::LostWakeup);
        assert!(failure.message.contains("never notified"), "{failure}");
    }

    /// Timed waits explore the timeout path: a wait_for with no notifier
    /// completes (times out) instead of wedging.
    #[test]
    fn timed_wait_can_time_out() {
        let report = check(&Config::exhaustive(), || {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let p2 = Arc::clone(&pair);
            let waiter = thread::spawn(move || {
                let (m, cv) = &*p2;
                let mut g = m.lock();
                if !*g {
                    let r = cv.wait_for(&mut g, Duration::from_millis(1));
                    assert!(r.timed_out());
                }
            });
            waiter.join();
        });
        assert!(report.complete);
    }

    /// try_lock explores both outcomes across schedules.
    #[test]
    fn try_lock_sees_both_outcomes() {
        let hits = Arc::new(AtomicUsize::new(0));
        let misses = Arc::new(AtomicUsize::new(0));
        let (h2, m2) = (Arc::clone(&hits), Arc::clone(&misses));
        let report = check(&Config::exhaustive(), move || {
            let m = Arc::new(Mutex::new(()));
            let m_held = Arc::clone(&m);
            let (h3, m3) = (Arc::clone(&h2), Arc::clone(&m2));
            let holder = thread::spawn(move || {
                let _g = m_held.lock();
                crate::yield_now();
            });
            match m.try_lock() {
                Some(_) => h3.fetch_add(1, Ordering::Relaxed),
                None => m3.fetch_add(1, Ordering::Relaxed),
            };
            holder.join();
        });
        assert!(report.complete);
        assert!(
            hits.load(Ordering::Relaxed) > 0,
            "some schedule won the try_lock"
        );
        assert!(
            misses.load(Ordering::Relaxed) > 0,
            "some schedule lost the try_lock"
        );
    }

    /// The model atomics expose a load/store race that plain `fetch_add`
    /// code would not have: a lost update is found and its seed replays.
    #[test]
    fn atomic_lost_update_is_found() {
        fn scenario() {
            let c = Arc::new(crate::atomic::AtomicUsize::new(0));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let c = Arc::clone(&c);
                    thread::spawn(move || {
                        // BUG: read-modify-write without atomicity.
                        let v = c.load(Ordering::SeqCst);
                        c.store(v + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in hs {
                h.join();
            }
            assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
        }
        let report = explore(&Config::default(), scenario);
        let failure = report.failure.expect("lost update found");
        assert_eq!(failure.kind, FailureKind::Panic);
        assert!(failure.message.contains("lost update"), "{failure}");
        let replayed =
            replay(&Config::default(), &failure.seed, scenario).expect("seed reproduces");
        assert!(replayed.message.contains("lost update"));
    }

    /// The invariant hook sees intermediate states (runs at every
    /// decision, not only at the end).
    #[test]
    fn invariant_hook_catches_transient_state() {
        let gauge = Arc::new(AtomicUsize::new(0));
        let g2 = Arc::clone(&gauge);
        let config = Config {
            invariant: Some(Arc::new(move || {
                if g2.load(Ordering::SeqCst) > 1 {
                    Err("gauge exceeded 1".to_owned())
                } else {
                    Ok(())
                }
            })),
            ..Config::default()
        };
        let g3 = Arc::clone(&gauge);
        let report = explore(&config, move || {
            let g = Arc::clone(&g3);
            g.store(0, Ordering::SeqCst);
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let g = Arc::clone(&g);
                    thread::spawn(move || {
                        g.fetch_add(1, Ordering::SeqCst);
                        crate::yield_now();
                        g.fetch_sub(1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in hs {
                h.join();
            }
        });
        let failure = report.failure.expect("transient overshoot found");
        assert_eq!(failure.kind, FailureKind::Invariant);
    }

    /// Replay of a garbage seed reports divergence rather than panicking.
    #[test]
    fn bad_seeds_are_reported() {
        let f = replay(&Config::default(), "v1:9.9.9.9", || {
            let m = Mutex::new(0u8);
            *m.lock() += 1;
        })
        .expect("divergence reported");
        assert_eq!(f.kind, FailureKind::ReplayDivergence);
        let f = replay(&Config::default(), "not-a-seed", || {}).expect("parse error reported");
        assert_eq!(f.kind, FailureKind::ReplayDivergence);
    }

    /// The preemption bound prunes: bound 0 explores fewer schedules than
    /// exhaustive on the same scenario, and both stay clean.
    #[test]
    fn preemption_bound_prunes_schedules() {
        fn scenario() {
            let m = Arc::new(Mutex::new(0u32));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let m = Arc::clone(&m);
                    thread::spawn(move || {
                        for _ in 0..2 {
                            *m.lock() += 1;
                        }
                    })
                })
                .collect();
            for h in hs {
                h.join();
            }
        }
        let bounded = check(
            &Config {
                preemption_bound: Some(0),
                ..Config::default()
            },
            scenario,
        );
        let full = check(&Config::exhaustive(), scenario);
        assert!(bounded.complete && full.complete);
        assert!(
            bounded.schedules < full.schedules,
            "bound 0: {} vs exhaustive: {}",
            bounded.schedules,
            full.schedules
        );
    }
}
