//! `nest-model` — a deterministic interleaving explorer (loom-style
//! stateless model checker) for the workspace's vendored sync shims.
//!
//! ## What it does
//!
//! A *scenario* is a closure that spawns a handful of threads through
//! [`thread::spawn`] and exercises production types (stride scheduler,
//! `BufPool`, `HandleCache`, `MemTier`, admission counters) exactly as the
//! appliance does. Under the `model` cargo feature every shim sync
//! operation — `Mutex::lock`, `RwLock::read`/`write`, `Condvar` waits and
//! notifies — plus [`atomic`] wrapper operations and explicit
//! [`yield_now`] calls become *scheduling points*: the thread parks and a
//! cooperative scheduler decides which thread runs next. [`explore`]
//! re-runs the scenario under every schedule reachable within a
//! configurable preemption bound (or truly exhaustively), so a race that a
//! stress test hits once a week is hit deterministically on the first
//! schedule that exposes it.
//!
//! The explorer fails a schedule on:
//!
//! * **panic** — any task panicking, which includes the workspace's
//!   `invariant!` conservation checks firing inside the code under test;
//! * **deadlock** — no task is runnable and at least one is blocked on a
//!   lock (or a join);
//! * **lost wakeup** — every blocked task is an un-notified, untimed
//!   condvar waiter: no extension of the schedule can ever wake them;
//! * **invariant** — an optional lock-free global check
//!   ([`Config::invariant`]) evaluated at every scheduling point;
//! * **step budget** — a runaway schedule (livelock backstop).
//!
//! Every failure carries a replay **seed** (`v1:0.1.2…` — the index chosen
//! at each scheduling decision). [`replay`] re-runs exactly that schedule;
//! because scheduling is fully deterministic, a seed printed by CI
//! reproduces the bug locally on the first try.
//!
//! ## What it can catch that the lock-order detector cannot
//!
//! The shim's Eraser-style lock-order detector (DESIGN.md §11) sees only
//! *acquisition-order edges between locks*. A cycle that spans a condvar
//! wait — thread 1 holds lock B and waits on a condvar, thread 2 needs B
//! to reach the notify — never records conflicting edges, so the detector
//! stays silent while the system wedges. The model checker finds the
//! terminal stuck state itself, whatever combination of locks, waits, and
//! atomics produced it. The trade-off: the detector watches full-size
//! production runs for free, while the explorer needs a small closed
//! scenario. See DESIGN.md §16.
//!
//! ## Feature gating
//!
//! Without the `model` feature this crate compiles to (almost) nothing and
//! the shim is byte-for-byte the ordinary one; `cargo test -q` at the
//! workspace root never pays for any of this. `scripts/check.sh` runs
//! `cargo test -p nest-model --features model` as its own gate.

#[cfg(feature = "model")]
pub mod atomic;
#[cfg(feature = "model")]
mod sched;
#[cfg(feature = "model")]
pub mod thread;

#[cfg(feature = "model")]
pub use sched::{check, explore, replay, yield_now, Config, Failure, FailureKind, Report};
