//! Model-instrumented atomics.
//!
//! Each operation is a scheduling point *before* it executes, so
//! check-then-act sequences over lock-free counters (the session
//! admission protocol's `fetch_add` / check / compensating `fetch_sub`,
//! epoch mirrors, wakeup flags) are explored under every interleaving.
//! The memory `Ordering` argument is accepted for signature compatibility
//! but has no modeled effect: tasks run one at a time with a full fence
//! (the scheduler's own mutex) between steps, so the model explores
//! sequentially-consistent interleavings only. That is exactly the right
//! strength for *logic* races (lost updates, transient overshoots); weak-
//! memory reorderings are out of scope and stay the province of TSan.
//!
//! Outside a model run the wrappers degrade to the plain `std` atomic at
//! zero cost, so helper types built on them stay usable in normal tests.

use crate::sched;
use std::sync::atomic::Ordering;

macro_rules! model_atomic {
    ($(#[$doc:meta])* $name:ident, $std:ty, $ty:ty) => {
        $(#[$doc])*
        #[derive(Debug, Default)]
        pub struct $name {
            inner: $std,
        }

        impl $name {
            /// Creates a new atomic with the given initial value.
            pub const fn new(v: $ty) -> Self {
                Self { inner: <$std>::new(v) }
            }

            /// Loads the value (a scheduling point under the model).
            pub fn load(&self, order: Ordering) -> $ty {
                sched::yield_now();
                self.inner.load(order)
            }

            /// Stores a value (a scheduling point under the model).
            pub fn store(&self, v: $ty, order: Ordering) {
                sched::yield_now();
                self.inner.store(v, order);
            }

            /// Swaps the value (a scheduling point under the model).
            pub fn swap(&self, v: $ty, order: Ordering) -> $ty {
                sched::yield_now();
                self.inner.swap(v, order)
            }

            /// Compare-and-exchange (a scheduling point under the model).
            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                sched::yield_now();
                self.inner.compare_exchange(current, new, success, failure)
            }

            /// The value with the model out of the picture (no yield);
            /// for assertions after all tasks joined.
            pub fn get(&self) -> $ty {
                self.inner.load(Ordering::SeqCst)
            }
        }
    };
}

macro_rules! model_atomic_int {
    ($(#[$doc:meta])* $name:ident, $std:ty, $ty:ty) => {
        model_atomic!($(#[$doc])* $name, $std, $ty);

        impl $name {
            /// Adds, returning the previous value (a scheduling point).
            pub fn fetch_add(&self, v: $ty, order: Ordering) -> $ty {
                sched::yield_now();
                self.inner.fetch_add(v, order)
            }

            /// Subtracts, returning the previous value (a scheduling
            /// point).
            pub fn fetch_sub(&self, v: $ty, order: Ordering) -> $ty {
                sched::yield_now();
                self.inner.fetch_sub(v, order)
            }

            /// Maximum, returning the previous value (a scheduling
            /// point).
            pub fn fetch_max(&self, v: $ty, order: Ordering) -> $ty {
                sched::yield_now();
                self.inner.fetch_max(v, order)
            }
        }
    };
}

model_atomic_int!(
    /// Model-instrumented [`std::sync::atomic::AtomicUsize`].
    AtomicUsize,
    std::sync::atomic::AtomicUsize,
    usize
);
model_atomic_int!(
    /// Model-instrumented [`std::sync::atomic::AtomicU64`].
    AtomicU64,
    std::sync::atomic::AtomicU64,
    u64
);
model_atomic_int!(
    /// Model-instrumented [`std::sync::atomic::AtomicI64`].
    AtomicI64,
    std::sync::atomic::AtomicI64,
    i64
);
model_atomic!(
    /// Model-instrumented [`std::sync::atomic::AtomicBool`].
    AtomicBool,
    std::sync::atomic::AtomicBool,
    bool
);
