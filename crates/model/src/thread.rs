//! Instrumented `thread::spawn` for model scenarios.
//!
//! Threads spawned here become *tasks* of the calling thread's model run:
//! they start parked, run only when the scheduler grants them the token,
//! and `join` is a scheduling point that becomes eligible when the target
//! task finishes. Spawning itself is not a scheduling point — the child
//! cannot observably run before the parent's next sync operation anyway,
//! since that is the first point at which the parent could have released
//! anything the child can see.

use crate::sched::{self, TaskCtx, TaskId};
// nestlint: allow(raw-std-sync): result cell for a joined model task; the scheduler owns blocking
use std::sync::{Arc, Mutex as StdMutex};

/// Handle to a spawned model task; see [`spawn`].
pub struct JoinHandle<T> {
    task: TaskId,
    result: Arc<StdMutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    /// Blocks (in model time) until the task finishes and returns its
    /// result. Unlike `std`, panics in the task are not returned here:
    /// any task panic fails the whole schedule with a replay seed, which
    /// is the diagnostic a model run exists to produce.
    pub fn join(self) -> T {
        let ctx = sched::current().expect("JoinHandle::join called outside a model run");
        sched::join_task(&ctx, self.task);
        self.result
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
            .expect("joined task stored its result")
    }
}

/// Spawns `f` as a new task of the current model run. Panics if the
/// calling thread is not itself a model task (scenarios are entered
/// through [`crate::explore`], which runs the scenario closure as the
/// root task).
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let parent = sched::current().expect("nest_model::thread::spawn called outside a model run");
    let shared = Arc::clone(&parent.shared);
    let id = sched::register_task(&shared);
    // nestlint: allow(unnamed-lock): std result cell, not a shim lock
    let result = Arc::new(StdMutex::new(None));
    let slot = Arc::clone(&result);
    let ctx = Arc::new(TaskCtx {
        id,
        shared: Arc::clone(&shared),
    });
    let os = std::thread::spawn(move || {
        sched::task_main(ctx, move || {
            let value = f();
            *slot
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(value);
        });
    });
    sched::register_handle(&shared, os);
    JoinHandle { task: id, result }
}
