//! Seeded concurrency bugs the explorer must find deterministically —
//! the two acceptance bugs from the model-checker issue:
//!
//! 1. **A condvar-spanning AB/BA deadlock** the Eraser-style lock-order
//!    detector provably cannot see: the cycle runs through a condvar
//!    wait, so only consistent `B → A` acquisition edges are ever
//!    recorded. A sequential companion test drives the detector over
//!    both threads' exact acquisition sequences and shows it stays
//!    silent.
//! 2. **The PR 7 batched-dispatch completion/instrument race**: the
//!    engine records its pass instrument *after* posting completion, so
//!    a waiter woken by the completion condvar can assert on the
//!    instruments before the record lands (`transfer::manager` works
//!    around this by joining the engine before asserting — see the
//!    "Pass instruments are recorded after each drained batch" comment
//!    there). The explorer finds the race, prints a replayable seed,
//!    the recorded seed reproduces it as a pinned regression, and the
//!    production fix (join before asserting) explores clean.
#![cfg(feature = "model")]

use nest_model::{check, explore, replay, thread, Config, FailureKind};
use parking_lot::{lock_order, Condvar, Mutex};
use std::sync::Arc;

/// T1 takes `outer` (B), then `flag` (A), and waits on the condvar —
/// releasing A but still *holding B across the wait*. T2 must take B
/// before it can set the flag and notify. Schedules where T1 reaches
/// the wait first wedge forever: T1 is an un-notified waiter, T2 is
/// blocked on B. The explorer classifies that as a deadlock (a blocked
/// lock acquisition exists) and hands back a seed that replays it.
fn abba_scenario() {
    let flag = Arc::new(Mutex::named("model.abba.flag", 910, false));
    let outer = Arc::new(Mutex::named("model.abba.outer", 911, ()));
    let cv = Arc::new(Condvar::named("model.abba.cv", 912));

    let waiter = {
        let flag = Arc::clone(&flag);
        let outer = Arc::clone(&outer);
        let cv = Arc::clone(&cv);
        thread::spawn(move || {
            let _held_across_wait = outer.lock();
            let mut ga = flag.lock();
            while !*ga {
                cv.wait(&mut ga);
            }
        })
    };
    let setter = {
        let flag = Arc::clone(&flag);
        let outer = Arc::clone(&outer);
        let cv = Arc::clone(&cv);
        thread::spawn(move || {
            let _gb = outer.lock(); // BUG: needs B to reach the notify
            let mut ga = flag.lock();
            *ga = true;
            cv.notify_one();
        })
    };
    waiter.join();
    setter.join();
}

#[test]
fn condvar_spanning_abba_deadlock_is_found_and_replays() {
    let report = explore(&Config::default(), abba_scenario);
    let failure = report
        .failure
        .expect("the condvar-spanning AB/BA deadlock must be found");
    assert_eq!(failure.kind, FailureKind::Deadlock, "{failure}");
    assert!(
        failure.message.contains("model.abba.outer"),
        "the stuck report names the lock the setter is blocked on: {failure}"
    );

    // The seed alone reproduces the wedge.
    let replayed = replay(&Config::default(), &failure.seed, abba_scenario)
        .expect("recorded seed replays the deadlock");
    assert_eq!(replayed.kind, FailureKind::Deadlock);
}

/// Companion proof that the lock-order detector misses the cycle above:
/// run both threads' acquisition sequences sequentially (a superset of
/// every edge either thread can ever record) with detection enabled.
/// Both sequences acquire `outer` before `flag`, so the graph holds
/// one consistent edge and the detector — correctly, by its own rules —
/// never panics. The wait-edge (T1 parked on the condvar *while
/// holding* `outer`) is invisible to it; only the model checker above
/// sees the wedge itself.
#[test]
fn lock_order_detector_misses_the_condvar_cycle() {
    let flag = Mutex::named("model.abba.flag", 910, false);
    let outer = Mutex::named("model.abba.outer", 911, ());

    lock_order::enable();
    // T1's acquisition order up to the wait: outer, then flag.
    {
        let _gb = outer.lock();
        let _ga = flag.lock();
        // (cv.wait would release `flag` here; no new edge.)
    }
    // T2's acquisition order: outer, then flag — the same edge again.
    {
        let _gb = outer.lock();
        let mut ga = flag.lock();
        *ga = true;
    }
    lock_order::disable();
    // Reaching this point IS the assertion: check_acquire panics on a
    // cycle, and no panic fired for either sequence.
}

/// The batched-dispatch shape: the engine drains a batch, posts
/// completion (set + notify), and only then records the pass
/// instrument. `fixed` models the production workaround: the observer
/// joins the engine before asserting on instruments.
fn dispatch_scenario(fixed: bool) {
    let done = Arc::new(Mutex::named("model.dispatch.done", 920, false));
    let cv = Arc::new(Condvar::named("model.dispatch.cv", 921));
    let instruments = Arc::new(Mutex::named("model.dispatch.instr", 922, 0u32));

    let engine = {
        let done = Arc::clone(&done);
        let cv = Arc::clone(&cv);
        let instruments = Arc::clone(&instruments);
        thread::spawn(move || {
            // Batch drained: post completion first...
            {
                let mut g = done.lock();
                *g = true;
                cv.notify_one();
            }
            // ...then record the pass instrument (the PR 7 ordering).
            *instruments.lock() += 1;
        })
    };

    // Observer: wake on completion, then read the instruments.
    {
        let mut g = done.lock();
        while !*g {
            cv.wait(&mut g);
        }
    }
    if fixed {
        engine.join(); // production fix: join before asserting
        assert_eq!(*instruments.lock(), 1);
    } else {
        assert_eq!(
            *instruments.lock(),
            1,
            "completion wakeup arrived before the pass instrument"
        );
        engine.join();
    }
}

/// The seed the explorer prints for the race below. Exploration is a
/// deterministic DFS, so this is stable for a given scenario shape; the
/// test above re-derives it and asserts it still matches.
const DISPATCH_RACE_SEED: &str = "v1:0.0.0.0.0.0.0";

#[test]
fn batched_dispatch_race_is_found() {
    let report = explore(&Config::default(), || dispatch_scenario(false));
    let failure = report
        .failure
        .expect("the completion/instrument race must be found");
    assert_eq!(failure.kind, FailureKind::Panic, "{failure}");
    assert!(
        failure.message.contains("completion wakeup arrived"),
        "the panic is the observer's assert: {failure}"
    );
    assert_eq!(
        failure.seed, DISPATCH_RACE_SEED,
        "DFS is deterministic; update DISPATCH_RACE_SEED if the \
         scenario shape changed"
    );
}

/// Regression pin: the recorded seed from the first exploration of the
/// PR 7 flake replays the failure directly — no search — so this stays
/// fast forever and documents the exact interleaving.
#[test]
fn batched_dispatch_race_replays_from_recorded_seed() {
    let failure = replay(&Config::default(), DISPATCH_RACE_SEED, || {
        dispatch_scenario(false)
    })
    .expect("recorded seed reproduces the dispatch race");
    assert_eq!(failure.kind, FailureKind::Panic, "{failure}");
}

/// The production fix — join the engine before asserting — is clean
/// under *exhaustive* exploration, not just the default bound.
#[test]
fn batched_dispatch_fixed_is_clean() {
    let report = check(&Config::exhaustive(), || dispatch_scenario(true));
    assert!(report.complete);
    assert!(report.failure.is_none());
}
