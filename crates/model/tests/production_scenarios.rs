//! Model-checked scenarios for the five most-contended lock classes in
//! the appliance, run **unmodified** production types under exhaustive
//! interleaving exploration:
//!
//! | scenario            | lock class(es) under test                      |
//! |---------------------|------------------------------------------------|
//! | stride scheduler    | `transfer.sched` (scheduler behind one mutex)  |
//! | buffer pool         | `transfer.bufpool.free` / `.instruments`       |
//! | handle cache        | `storage.handle_cache.state` epoch guard       |
//! | memory tier         | `storage.memtier.state` flush vs. evict        |
//! | session admission   | lock-free `active` counter protocol            |
//!
//! Every schedule executes the real crate code; the `invariant!`
//! conservation checks inside it (stride ticket conservation, bufpool
//! outstanding/idle accounting, handle-cache capacity, mem-tier budget)
//! fire under *every* interleaving, not just the ones a stress test
//! happens to hit. All five explore exhaustively (no preemption bound):
//! the scenarios are sized so the full schedule space fits the
//! `scripts/check.sh` wall-clock budget.
#![cfg(feature = "model")]

use nest_model::{check, thread, Config};
use parking_lot::Mutex;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// The flush/evict scenario's persist sink: (version, bytes) records.
type PersistLog = Arc<Mutex<Vec<(u64, Vec<u8>)>>>;

/// Stride scheduler behind one named mutex: one thread retunes class
/// tickets (the manager's knob path) while another drains passes (the
/// engine path). `set_tickets` carries flow-conservation and
/// pass-rescale `invariant!`s that must hold at every interleaving.
#[test]
fn stride_retune_vs_drain_is_clean() {
    use nest_transfer::flow::{FlowId, FlowMeta};
    use nest_transfer::sched::{Scheduler, StrideScheduler};

    let report = check(&Config::exhaustive(), || {
        let sched = Arc::new(Mutex::named("model.stride", 900, StrideScheduler::new()));
        {
            let mut s = sched.lock();
            s.admit(&FlowMeta::new(FlowId(1), "http", Some(1 << 20)));
            s.admit(&FlowMeta::new(FlowId(2), "ftp", Some(1 << 20)));
        }
        let tuner = {
            let sched = Arc::clone(&sched);
            thread::spawn(move || {
                sched.lock().set_tickets("http", 300);
                sched.lock().set_tickets("ftp", 50);
            })
        };
        let engine = {
            let sched = Arc::clone(&sched);
            thread::spawn(move || {
                for _ in 0..2 {
                    let mut s = sched.lock();
                    if let Some(id) = s.next() {
                        s.account(id, 4096);
                    }
                }
            })
        };
        tuner.join();
        engine.join();
        // Nothing completed, so both flows must still be runnable no
        // matter how the retune interleaved with the passes.
        assert_eq!(sched.lock().runnable(), 2);
    });
    assert!(report.complete, "exploration hit a budget: {report:?}");
    assert!(report.failure.is_none());
}

/// Two threads checking out and returning pooled buffers. `note_return`
/// asserts `outstanding >= 0` and `free.len() <= max_idle`; with
/// `max_idle = 1` the interleavings where both returns race decide which
/// buffer is retired, and the accounting must survive all of them.
#[test]
fn bufpool_concurrent_checkout_return_is_clean() {
    use nest_transfer::BufPool;

    let report = check(&Config::exhaustive(), || {
        let pool = Arc::new(BufPool::new(1024, 1));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let pool = Arc::clone(&pool);
                thread::spawn(move || {
                    let buf = pool.checkout();
                    drop(buf);
                })
            })
            .collect();
        for w in workers {
            w.join();
        }
        let stats = pool.stats();
        assert_eq!(stats.outstanding, 0);
        assert!(stats.idle <= 1);
    });
    assert!(report.complete, "exploration hit a budget: {report:?}");
    assert!(report.failure.is_none());
}

/// The handle-cache epoch guard: an opener races `invalidate`. The
/// stale-handle hazard is an opener that looked up at epoch `e`, opened
/// the file, and inserts after an invalidation bumped the epoch — the
/// guard must drop that insert. The cached-handle postcondition is
/// exact: the final lookup hits **iff** the opener's captured epoch
/// equals the final epoch (i.e. the open happened entirely after the
/// invalidation).
#[test]
fn handle_cache_epoch_guard_never_caches_stale() {
    use nest_storage::handle_cache::{HandleCache, Lookup};
    use nest_storage::VPath;
    use std::fs::File;

    // One real file, created once; every schedule re-opens it.
    let dir = std::env::temp_dir().join(format!("nest-model-hc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let host = dir.join("obj");
    std::fs::write(&host, b"payload").expect("write scratch file");

    let report = check(&Config::exhaustive(), move || {
        let cache = Arc::new(HandleCache::new(4));
        let path = VPath::parse("/model/obj").expect("valid vpath");

        let opener = {
            let cache = Arc::clone(&cache);
            let path = path.clone();
            let host = host.clone();
            thread::spawn(move || {
                let Lookup::Miss { epoch } = cache.lookup(&path, false) else {
                    panic!("fresh cache cannot hit");
                };
                let file = Arc::new(File::open(&host).expect("open"));
                cache.insert(&path, file, false, epoch);
                epoch
            })
        };
        let invalidator = {
            let cache = Arc::clone(&cache);
            let path = path.clone();
            thread::spawn(move || cache.invalidate(&path))
        };
        let opened_at = opener.join();
        invalidator.join();

        let hit = matches!(cache.lookup(&path, false), Lookup::Hit(_));
        let guard_allows = opened_at == cache.epoch();
        assert_eq!(
            hit,
            guard_allows,
            "handle cached across an invalidation (opened at epoch \
             {opened_at}, final epoch {})",
            cache.epoch()
        );
    });
    assert!(report.complete, "exploration hit a budget: {report:?}");
    assert!(report.failure.is_none());
    std::fs::remove_dir_all(&dir).ok();
}

/// The mem-tier write-back conservation property (flush vs. evict vs. a
/// concurrent overwrite): dirty bytes are never lost and never
/// double-flushed.
///
/// Three tasks race over one object seeded dirty at version 1:
/// a *writer* overwrites it (version 2), a *flusher* runs the
/// snapshot → persist → `mark_clean` protocol, and an *evictor* runs
/// `invalidate`, persisting the dirty copy it gets back. Afterwards:
///
/// * every surviving resident that is **clean** has had its exact
///   version persisted (`mark_clean`'s version guard — a flush of v1
///   must not launder a concurrent v2 into "clean");
/// * if nothing dirty survives in the tier, the **newest** version ever
///   written is among the persisted copies (nothing lost);
/// * `writeback_flushes` never exceeds the number of distinct persisted
///   versions (nothing counted twice).
#[test]
fn mem_tier_flush_vs_evict_conserves_dirty_bytes() {
    use nest_storage::{MemTier, VPath};

    let report = check(&Config::exhaustive(), || {
        let tier = Arc::new(MemTier::new(1 << 20));
        let path = VPath::parse("/model/dirty").expect("valid vpath");
        let persisted: PersistLog = Arc::new(Mutex::named("model.persist_log", 901, Vec::new()));

        // Seed: version 1, dirty, before any task races.
        let seeded = tier
            .write_back(&path, 0, &[1u8; 64], Some(Vec::new()), false)
            .is_some();
        assert!(seeded, "seed write must be absorbed");

        let writer = {
            let tier = Arc::clone(&tier);
            let path = path.clone();
            // `None` base: if the evictor already removed the object the
            // tier refuses (caller would write through); report whether
            // version 2 actually entered the tier.
            thread::spawn(move || tier.write_back(&path, 0, &[2u8; 64], None, false).is_some())
        };
        let flusher = {
            let tier = Arc::clone(&tier);
            let persisted = Arc::clone(&persisted);
            thread::spawn(move || {
                if let Some(d) = tier.snapshot_dirty().into_iter().next() {
                    persisted.lock().push((d.version, d.data.to_vec()));
                    tier.mark_clean(&d.path, d.version);
                }
            })
        };
        let evictor = {
            let tier = Arc::clone(&tier);
            let path = path.clone();
            let persisted = Arc::clone(&persisted);
            thread::spawn(move || {
                if let Some(d) = tier.invalidate(&path) {
                    persisted.lock().push((d.version, d.data.to_vec()));
                }
            })
        };
        let wrote_v2 = writer.join();
        flusher.join();
        evictor.join();

        let persisted = persisted.lock().clone();
        let newest = if wrote_v2 { 2 } else { 1 };
        let resident = tier.snapshot_dirty();

        // Distinct versions persisted, and byte-identity per version:
        // persisting the same version twice (flush and evict can both
        // hand out v1) is idempotent, but the copies must agree.
        let mut versions: Vec<u64> = persisted.iter().map(|(v, _)| *v).collect();
        versions.sort_unstable();
        for pair in persisted.iter() {
            for other in persisted.iter() {
                if pair.0 == other.0 {
                    assert_eq!(
                        pair.1, other.1,
                        "version {} persisted with diverging bytes",
                        pair.0
                    );
                }
            }
        }
        versions.dedup();

        // Conservation: the newest write is either still dirty in the
        // tier (awaiting a later flush pass) or already persisted.
        let newest_dirty_resident = resident.iter().any(|d| d.version == newest);
        if !newest_dirty_resident {
            assert!(
                versions.contains(&newest),
                "version {newest} lost: not dirty in tier, never persisted \
                 (persisted: {versions:?})"
            );
        }

        // No double-count: each `mark_clean` success is one flush, and
        // the version guard means at most one success per version.
        let flushes = tier.stats().writeback_flushes;
        assert!(
            flushes as usize <= versions.len(),
            "{flushes} flushes recorded for {} distinct persisted versions",
            versions.len()
        );
    });
    assert!(report.complete, "exploration hit a budget: {report:?}");
    assert!(report.failure.is_none());
}

/// The session admission counter protocol (`core::session`): admitters
/// run `fetch_add` / check-over-cap / compensating `fetch_sub`, and
/// admitted sessions `fetch_sub` on release. Modeled with
/// [`nest_model::atomic::AtomicUsize`] so every individual atomic op is
/// a scheduling point. A [`Config::invariant`] hook checks at **every**
/// step that the number of concurrently admitted sessions never exceeds
/// the cap — the transient overshoot of `active` itself (each admitter
/// adds before checking) is the allowed slack the compensation exists
/// to repair.
#[test]
fn session_admission_never_overshoots_cap() {
    use nest_model::atomic::AtomicUsize;

    const CAP: usize = 1;
    const ADMITTERS: usize = 2;

    // Shared across schedules (reset by the scenario root); the
    // invariant hook reads them lock-free from the controller.
    let active = Arc::new(AtomicUsize::new(0));
    let admitted = Arc::new(AtomicUsize::new(0));

    let inv_admitted = Arc::clone(&admitted);
    let inv_active = Arc::clone(&active);
    let config = Config {
        invariant: Some(Arc::new(move || {
            let now = inv_admitted.get();
            if now > CAP {
                return Err(format!("{now} sessions admitted concurrently (cap {CAP})"));
            }
            if inv_active.get() > CAP + ADMITTERS {
                return Err("active counter exceeds cap + in-flight".into());
            }
            Ok(())
        })),
        ..Config::exhaustive()
    };

    let scenario_active = Arc::clone(&active);
    let scenario_admitted = Arc::clone(&admitted);
    let report = check(&config, move || {
        scenario_active.store(0, Ordering::SeqCst);
        scenario_admitted.store(0, Ordering::SeqCst);
        let workers: Vec<_> = (0..ADMITTERS)
            .map(|_| {
                let active = Arc::clone(&scenario_active);
                let admitted = Arc::clone(&scenario_admitted);
                thread::spawn(move || {
                    // session.rs admit(): add first, check, compensate.
                    let prev = active.fetch_add(1, Ordering::SeqCst);
                    if prev >= CAP {
                        active.fetch_sub(1, Ordering::SeqCst);
                        return false; // rejected with the overload reply
                    }
                    admitted.fetch_add(1, Ordering::SeqCst);
                    // ... session runs; on_closed() releases both.
                    admitted.fetch_sub(1, Ordering::SeqCst);
                    active.fetch_sub(1, Ordering::SeqCst);
                    true
                })
            })
            .collect();
        let admitted_count = workers
            .into_iter()
            .map(|w| w.join())
            .filter(|ok| *ok)
            .count();
        // The cap admits at least one: both racing admitters cannot
        // reject each other (the first `fetch_add` to land sees prev 0).
        assert!(admitted_count >= 1, "admission starved under cap {CAP}");
        assert_eq!(scenario_active.get(), 0, "active counter leaked");
    });
    assert!(report.complete, "exploration hit a budget: {report:?}");
    assert!(report.failure.is_none());
}
