//! Model-checked scenarios for the most-contended lock classes in
//! the appliance, run **unmodified** production types under exhaustive
//! interleaving exploration:
//!
//! | scenario            | lock class(es) under test                      |
//! |---------------------|------------------------------------------------|
//! | stride scheduler    | `transfer.sched` (scheduler behind one mutex)  |
//! | buffer pool         | `transfer.bufpool.free` / `.instruments`       |
//! | handle cache        | `storage.handle_cache.state` epoch guard       |
//! | memory tier         | `storage.memtier.state` flush vs. evict        |
//! | session admission   | lock-free `active` counter protocol            |
//! | striped lot table   | `storage.lot` cells + sloppy `committed` bound |
//! | sharded live map    | striped registry walk vs. self-removal         |
//!
//! Every schedule executes the real crate code; the `invariant!`
//! conservation checks inside it (stride ticket conservation, bufpool
//! outstanding/idle accounting, handle-cache capacity, mem-tier budget,
//! per-lot byte conservation) fire under *every* interleaving, not just
//! the ones a stress test happens to hit. All scenarios explore
//! exhaustively (no preemption bound): they are sized so the full
//! schedule space fits the `scripts/check.sh` wall-clock budget.
#![cfg(feature = "model")]

use nest_model::{check, thread, Config};
use parking_lot::Mutex;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// The flush/evict scenario's persist sink: (version, bytes) records.
type PersistLog = Arc<Mutex<Vec<(u64, Vec<u8>)>>>;

/// Stride scheduler behind one named mutex: one thread retunes class
/// tickets (the manager's knob path) while another drains passes (the
/// engine path). `set_tickets` carries flow-conservation and
/// pass-rescale `invariant!`s that must hold at every interleaving.
#[test]
fn stride_retune_vs_drain_is_clean() {
    use nest_transfer::flow::{FlowId, FlowMeta};
    use nest_transfer::sched::{Scheduler, StrideScheduler};

    let report = check(&Config::exhaustive(), || {
        let sched = Arc::new(Mutex::named("model.stride", 900, StrideScheduler::new()));
        {
            let mut s = sched.lock();
            s.admit(&FlowMeta::new(FlowId(1), "http", Some(1 << 20)));
            s.admit(&FlowMeta::new(FlowId(2), "ftp", Some(1 << 20)));
        }
        let tuner = {
            let sched = Arc::clone(&sched);
            thread::spawn(move || {
                sched.lock().set_tickets("http", 300);
                sched.lock().set_tickets("ftp", 50);
            })
        };
        let engine = {
            let sched = Arc::clone(&sched);
            thread::spawn(move || {
                for _ in 0..2 {
                    let mut s = sched.lock();
                    if let Some(id) = s.next() {
                        s.account(id, 4096);
                    }
                }
            })
        };
        tuner.join();
        engine.join();
        // Nothing completed, so both flows must still be runnable no
        // matter how the retune interleaved with the passes.
        assert_eq!(sched.lock().runnable(), 2);
    });
    assert!(report.complete, "exploration hit a budget: {report:?}");
    assert!(report.failure.is_none());
}

/// Two threads checking out and returning pooled buffers. `note_return`
/// asserts `outstanding >= 0` and `free.len() <= max_idle`; with
/// `max_idle = 1` the interleavings where both returns race decide which
/// buffer is retired, and the accounting must survive all of them.
#[test]
fn bufpool_concurrent_checkout_return_is_clean() {
    use nest_transfer::BufPool;

    let report = check(&Config::exhaustive(), || {
        let pool = Arc::new(BufPool::new(1024, 1));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let pool = Arc::clone(&pool);
                thread::spawn(move || {
                    let buf = pool.checkout();
                    drop(buf);
                })
            })
            .collect();
        for w in workers {
            w.join();
        }
        let stats = pool.stats();
        assert_eq!(stats.outstanding, 0);
        assert!(stats.idle <= 1);
    });
    assert!(report.complete, "exploration hit a budget: {report:?}");
    assert!(report.failure.is_none());
}

/// The handle-cache epoch guard: an opener races `invalidate`. The
/// stale-handle hazard is an opener that looked up at epoch `e`, opened
/// the file, and inserts after an invalidation bumped the epoch — the
/// guard must drop that insert. The cached-handle postcondition is
/// exact: the final lookup hits **iff** the opener's captured epoch
/// equals the final epoch (i.e. the open happened entirely after the
/// invalidation).
#[test]
fn handle_cache_epoch_guard_never_caches_stale() {
    use nest_storage::handle_cache::{HandleCache, Lookup};
    use nest_storage::VPath;
    use std::fs::File;

    // One real file, created once; every schedule re-opens it.
    let dir = std::env::temp_dir().join(format!("nest-model-hc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let host = dir.join("obj");
    std::fs::write(&host, b"payload").expect("write scratch file");

    let report = check(&Config::exhaustive(), move || {
        let cache = Arc::new(HandleCache::new(4));
        let path = VPath::parse("/model/obj").expect("valid vpath");

        let opener = {
            let cache = Arc::clone(&cache);
            let path = path.clone();
            let host = host.clone();
            thread::spawn(move || {
                let Lookup::Miss { epoch } = cache.lookup(&path, false) else {
                    panic!("fresh cache cannot hit");
                };
                let file = Arc::new(File::open(&host).expect("open"));
                cache.insert(&path, file, false, epoch);
                epoch
            })
        };
        let invalidator = {
            let cache = Arc::clone(&cache);
            let path = path.clone();
            thread::spawn(move || cache.invalidate(&path))
        };
        let opened_at = opener.join();
        invalidator.join();

        let hit = matches!(cache.lookup(&path, false), Lookup::Hit(_));
        let guard_allows = opened_at == cache.epoch();
        assert_eq!(
            hit,
            guard_allows,
            "handle cached across an invalidation (opened at epoch \
             {opened_at}, final epoch {})",
            cache.epoch()
        );
    });
    assert!(report.complete, "exploration hit a budget: {report:?}");
    assert!(report.failure.is_none());
    std::fs::remove_dir_all(&dir).ok();
}

/// The mem-tier write-back conservation property (flush vs. evict vs. a
/// concurrent overwrite): dirty bytes are never lost and never
/// double-flushed.
///
/// Three tasks race over one object seeded dirty at version 1:
/// a *writer* overwrites it (version 2), a *flusher* runs the
/// snapshot → persist → `mark_clean` protocol, and an *evictor* runs
/// `invalidate`, persisting the dirty copy it gets back. Afterwards:
///
/// * every surviving resident that is **clean** has had its exact
///   version persisted (`mark_clean`'s version guard — a flush of v1
///   must not launder a concurrent v2 into "clean");
/// * if nothing dirty survives in the tier, the **newest** version ever
///   written is among the persisted copies (nothing lost);
/// * `writeback_flushes` never exceeds the number of distinct persisted
///   versions (nothing counted twice).
#[test]
fn mem_tier_flush_vs_evict_conserves_dirty_bytes() {
    use nest_storage::{MemTier, VPath};

    let report = check(&Config::exhaustive(), || {
        let tier = Arc::new(MemTier::new(1 << 20));
        let path = VPath::parse("/model/dirty").expect("valid vpath");
        let persisted: PersistLog = Arc::new(Mutex::named("model.persist_log", 901, Vec::new()));

        // Seed: version 1, dirty, before any task races.
        let seeded = tier
            .write_back(&path, 0, &[1u8; 64], Some(Vec::new()), false)
            .is_some();
        assert!(seeded, "seed write must be absorbed");

        let writer = {
            let tier = Arc::clone(&tier);
            let path = path.clone();
            // `None` base: if the evictor already removed the object the
            // tier refuses (caller would write through); report whether
            // version 2 actually entered the tier.
            thread::spawn(move || tier.write_back(&path, 0, &[2u8; 64], None, false).is_some())
        };
        let flusher = {
            let tier = Arc::clone(&tier);
            let persisted = Arc::clone(&persisted);
            thread::spawn(move || {
                if let Some(d) = tier.snapshot_dirty().into_iter().next() {
                    persisted.lock().push((d.version, d.data.to_vec()));
                    tier.mark_clean(&d.path, d.version);
                }
            })
        };
        let evictor = {
            let tier = Arc::clone(&tier);
            let path = path.clone();
            let persisted = Arc::clone(&persisted);
            thread::spawn(move || {
                if let Some(d) = tier.invalidate(&path) {
                    persisted.lock().push((d.version, d.data.to_vec()));
                }
            })
        };
        let wrote_v2 = writer.join();
        flusher.join();
        evictor.join();

        let persisted = persisted.lock().clone();
        let newest = if wrote_v2 { 2 } else { 1 };
        let resident = tier.snapshot_dirty();

        // Distinct versions persisted, and byte-identity per version:
        // persisting the same version twice (flush and evict can both
        // hand out v1) is idempotent, but the copies must agree.
        let mut versions: Vec<u64> = persisted.iter().map(|(v, _)| *v).collect();
        versions.sort_unstable();
        for pair in persisted.iter() {
            for other in persisted.iter() {
                if pair.0 == other.0 {
                    assert_eq!(
                        pair.1, other.1,
                        "version {} persisted with diverging bytes",
                        pair.0
                    );
                }
            }
        }
        versions.dedup();

        // Conservation: the newest write is either still dirty in the
        // tier (awaiting a later flush pass) or already persisted.
        let newest_dirty_resident = resident.iter().any(|d| d.version == newest);
        if !newest_dirty_resident {
            assert!(
                versions.contains(&newest),
                "version {newest} lost: not dirty in tier, never persisted \
                 (persisted: {versions:?})"
            );
        }

        // No double-count: each `mark_clean` success is one flush, and
        // the version guard means at most one success per version.
        let flushes = tier.stats().writeback_flushes;
        assert!(
            flushes as usize <= versions.len(),
            "{flushes} flushes recorded for {} distinct persisted versions",
            versions.len()
        );
    });
    assert!(report.complete, "exploration hit a budget: {report:?}");
    assert!(report.failure.is_none());
}

/// The session admission counter protocol (`core::session`): admitters
/// run `fetch_add` / check-over-cap / compensating `fetch_sub`, and
/// admitted sessions `fetch_sub` on release. Modeled with
/// [`nest_model::atomic::AtomicUsize`] so every individual atomic op is
/// a scheduling point. A [`Config::invariant`] hook checks at **every**
/// step that the number of concurrently admitted sessions never exceeds
/// the cap — the transient overshoot of `active` itself (each admitter
/// adds before checking) is the allowed slack the compensation exists
/// to repair.
#[test]
fn session_admission_never_overshoots_cap() {
    use nest_model::atomic::AtomicUsize;

    const CAP: usize = 1;
    const ADMITTERS: usize = 2;

    // Shared across schedules (reset by the scenario root); the
    // invariant hook reads them lock-free from the controller.
    let active = Arc::new(AtomicUsize::new(0));
    let admitted = Arc::new(AtomicUsize::new(0));

    let inv_admitted = Arc::clone(&admitted);
    let inv_active = Arc::clone(&active);
    let config = Config {
        invariant: Some(Arc::new(move || {
            let now = inv_admitted.get();
            if now > CAP {
                return Err(format!("{now} sessions admitted concurrently (cap {CAP})"));
            }
            if inv_active.get() > CAP + ADMITTERS {
                return Err("active counter exceeds cap + in-flight".into());
            }
            Ok(())
        })),
        ..Config::exhaustive()
    };

    let scenario_active = Arc::clone(&active);
    let scenario_admitted = Arc::clone(&admitted);
    let report = check(&config, move || {
        scenario_active.store(0, Ordering::SeqCst);
        scenario_admitted.store(0, Ordering::SeqCst);
        let workers: Vec<_> = (0..ADMITTERS)
            .map(|_| {
                let active = Arc::clone(&scenario_active);
                let admitted = Arc::clone(&scenario_admitted);
                thread::spawn(move || {
                    // session.rs admit(): add first, check, compensate.
                    let prev = active.fetch_add(1, Ordering::SeqCst);
                    if prev >= CAP {
                        active.fetch_sub(1, Ordering::SeqCst);
                        return false; // rejected with the overload reply
                    }
                    admitted.fetch_add(1, Ordering::SeqCst);
                    // ... session runs; on_closed() releases both.
                    admitted.fetch_sub(1, Ordering::SeqCst);
                    active.fetch_sub(1, Ordering::SeqCst);
                    true
                })
            })
            .collect();
        let admitted_count = workers
            .into_iter()
            .map(|w| w.join())
            .filter(|ok| *ok)
            .count();
        // The cap admits at least one: both racing admitters cannot
        // reject each other (the first `fetch_add` to land sees prev 0).
        assert!(admitted_count >= 1, "admission starved under cap {CAP}");
        assert_eq!(scenario_active.get(), 0, "active counter leaked");
    });
    assert!(report.complete, "exploration hit a budget: {report:?}");
    assert!(report.failure.is_none());
}

/// Striped-lot byte conservation (`storage.lot` over two cells): a
/// charge into the active lot (per-cell fast path), a release of an
/// earlier charge (peek-then-widen cross-cell path), and an admission
/// that fails the sloppy `committed` CAS and must take the all-cells
/// reclaim path — evicting the expired best-effort lot — all race.
/// Under every interleaving the global promise invariant
/// Σ active capacities + Σ best-effort used ≤ total capacity holds, the
/// charge and release each land exactly once, and reclamation removes
/// exactly the expired victim.
#[test]
fn striped_lot_charge_release_evict_conserves_bytes() {
    use nest_storage::lot::{LotManager, LotOwner, ReclaimPolicy};
    use nest_storage::VPath;
    use std::collections::HashSet;

    let report = check(&Config::exhaustive(), || {
        // Two cells; lot ids start at 1 and map to cells by `id % 2`.
        let mgr = Arc::new(LotManager::with_shards(100, ReclaimPolicy::ExpiredFirst, 2));
        let f0 = VPath::parse("/model/f0").expect("valid vpath");
        let f1 = VPath::parse("/model/f1").expect("valid vpath");
        let f2 = VPath::parse("/model/f2").expect("valid vpath");
        let no_groups = HashSet::new();

        // Lot 1 (cell 1): active for user "u", pre-charged 5 bytes (f0).
        // Lot 2 (cell 0): expires at t=1 holding 25 bytes (f2) — the
        // best-effort reclaim victim once the clock reads 10.
        let (active_id, _) = mgr
            .create(LotOwner::User("u".into()), 40, 1000, 0)
            .expect("active lot");
        let (victim_id, _) = mgr
            .create(LotOwner::User("v".into()), 40, 1, 0)
            .expect("victim lot");
        assert_eq!((active_id.0 % 2, victim_id.0 % 2), (1, 0));
        mgr.charge_file("u", &no_groups, &f0, 5, 0)
            .expect("seed f0");
        mgr.charge_file("v", &no_groups, &f2, 25, 0)
            .expect("seed f2");

        let charger = {
            let mgr = Arc::clone(&mgr);
            let f1 = f1.clone();
            thread::spawn(move || mgr.charge_file("u", &HashSet::new(), &f1, 30, 10))
        };
        let releaser = {
            let mgr = Arc::clone(&mgr);
            let f0 = f0.clone();
            thread::spawn(move || mgr.release_file(&f0))
        };
        // committed = 80, so the 55-byte CAS fast path cannot admit;
        // the slow path holds every cell, reclaims lot 2 (expired, 25
        // used), and recomputes the exact bound.
        let admitter = {
            let mgr = Arc::clone(&mgr);
            thread::spawn(move || mgr.create(LotOwner::User("w".into()), 55, 1000, 10))
        };
        charger
            .join()
            .expect("30-byte charge always fits the active lot");
        assert_eq!(releaser.join(), 5, "release returns the exact charge");
        let (_, evicted) = admitter.join().expect("admission fits after reclaim");
        assert_eq!(evicted.lots, vec![victim_id], "only the expired lot dies");
        assert_eq!(evicted.files, vec![f2.clone()], "its file is handed back");

        // Conservation, whatever the schedule: active lots promise their
        // capacity, best-effort lots their occupancy, and the total never
        // exceeds physical capacity.
        let lots = mgr.all_lots();
        let promised: u64 = lots
            .iter()
            .map(|l| if l.is_expired(10) { l.used } else { l.capacity })
            .sum();
        assert!(
            promised <= mgr.total_capacity(),
            "over-promised: {promised} > {}",
            mgr.total_capacity()
        );
        let active = lots
            .iter()
            .find(|l| l.id == active_id)
            .expect("active lot survives reclamation");
        assert_eq!(active.used, 30, "f0 released and f1 charged exactly once");
        assert!(!lots.iter().any(|l| l.id == victim_id), "victim is gone");
    });
    assert!(report.complete, "exploration hit a budget: {report:?}");
    assert!(report.failure.is_none());
}

/// The sharded session registry's admit-vs-drain consistency: `serve()`
/// removes a finished connection from its id's cell while `drain` walks
/// the cells one at a time (the production [`parking_lot::ShardedMutex`]
/// primitive, two cells) hard-closing whatever is still present. Under
/// every interleaving of the walk with concurrent self-removal, each
/// admitted connection deregisters exactly once, the registry ends
/// empty, and the walk never counts a connection that had already left
/// its cell.
#[test]
fn sharded_live_registry_walk_vs_removal_is_consistent() {
    use parking_lot::ShardedMutex;
    use std::collections::HashMap;
    use std::sync::atomic::AtomicUsize;

    let report = check(&Config::exhaustive(), || {
        let live: Arc<ShardedMutex<HashMap<u64, ()>>> =
            Arc::new(ShardedMutex::new("model.session.live", 902, 2, |_| {
                HashMap::new()
            }));
        let active = Arc::new(AtomicUsize::new(0));
        let hard_closed = Arc::new(AtomicUsize::new(0));

        // Two connections, one per cell (`lock` shards by the id), both
        // admitted before the drain begins — the stop-accepting barrier
        // in the real layer guarantees no admissions race the walk.
        for id in [0u64, 1u64] {
            active.fetch_add(1, Ordering::SeqCst);
            live.lock(id).insert(id, ());
        }

        let workers: Vec<_> = [0u64, 1u64]
            .into_iter()
            .map(|id| {
                let live = Arc::clone(&live);
                let active = Arc::clone(&active);
                thread::spawn(move || {
                    // serve(): the request stream ends (naturally or cut
                    // by the drain's shutdown) and the worker deregisters.
                    let was_live = live.lock(id).remove(&id).is_some();
                    assert!(was_live, "a connection deregisters exactly once");
                    active.fetch_sub(1, Ordering::SeqCst);
                })
            })
            .collect();
        let drainer = {
            let live = Arc::clone(&live);
            let hard_closed = Arc::clone(&hard_closed);
            thread::spawn(move || {
                // drain(): walk cells sequentially; every entry still
                // present gets its stream shut down and counted.
                live.for_each_cell(|_, cell| {
                    hard_closed.fetch_add(cell.len(), Ordering::SeqCst);
                });
            })
        };
        for w in workers {
            w.join();
        }
        drainer.join();

        assert_eq!(
            active.load(Ordering::SeqCst),
            0,
            "every admission released exactly once"
        );
        let leftover: usize = live.for_each_cell(|_, c| c.len()).into_iter().sum();
        assert_eq!(leftover, 0, "registry drains to empty");
        assert!(
            hard_closed.load(Ordering::SeqCst) <= 2,
            "the walk never double-counts a connection"
        );
    });
    assert!(report.complete, "exploration hit a budget: {report:?}");
    assert!(report.failure.is_none());
}
