//! A thin anonymous FTP server — the wu-ftpd stand-in. Stream mode and
//! passive connections only.

use crate::common::{MiniServer, SharedRoot};
use nest_core::front::ProtocolFront;
use nest_core::session::{Await, OverloadReply, SessionCtx};
use nest_proto::ftp::{format_pasv_reply, parse_command, FtpCommand, FtpReply};
use nest_proto::request::NestError;
use nest_proto::wire::{read_line, write_line};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The standalone FTP front (RFC 959 over a bare root).
struct FtpdFront {
    root: SharedRoot,
}

impl ProtocolFront for FtpdFront {
    fn name(&self) -> &'static str {
        "jbos-ftpd"
    }
    fn default_port(&self) -> Option<u16> {
        None
    }
    fn overload_reply(&self) -> OverloadReply {
        OverloadReply::Ftp421
    }
    fn serve_conn(&self, stream: TcpStream, ctx: &SessionCtx) -> io::Result<()> {
        serve(&self.root, stream, ctx)
    }
    fn render_error(&self, e: NestError) -> Vec<u8> {
        let (code, text) = match e {
            NestError::Denied => (550, "Permission denied"),
            NestError::NotFound => (550, "No such file or directory"),
            NestError::Exists => (553, "Already exists"),
            NestError::NoSpace => (452, "Insufficient storage space"),
            NestError::BadRequest => (501, "Syntax error in parameters"),
            NestError::Invalid => (550, "Requested action not taken"),
            NestError::Internal => (451, "Local error in processing"),
        };
        format!("{code} {text}\r\n").into_bytes()
    }
}

/// The mini FTP daemon.
pub struct MiniFtpd {
    server: MiniServer,
}

impl MiniFtpd {
    /// Starts the server over the shared root.
    pub fn start(root: SharedRoot) -> io::Result<Self> {
        let server = MiniServer::serve(Arc::new(FtpdFront { root }))?;
        Ok(Self { server })
    }

    /// Bound address.
    pub fn addr(&self) -> SocketAddr {
        self.server.addr
    }

    /// Stops the server.
    pub fn shutdown(self) {
        self.server.shutdown();
    }
}

fn reply(stream: &mut TcpStream, code: u16, text: &str) -> io::Result<()> {
    write_line(stream, &FtpReply::new(code, text).to_string())
}

fn accept_data(pasv: &mut Option<TcpListener>) -> io::Result<TcpStream> {
    let listener = pasv
        .take()
        .ok_or_else(|| io::Error::new(io::ErrorKind::NotConnected, "no PASV issued"))?;
    listener.set_nonblocking(true)?;
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match listener.accept() {
            Ok((conn, _)) => {
                conn.set_nonblocking(false)?;
                return Ok(conn);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if Instant::now() > deadline {
                    return Err(io::Error::new(io::ErrorKind::TimedOut, "no data conn"));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => return Err(e),
        }
    }
}

fn serve(root: &SharedRoot, mut stream: TcpStream, ctx: &SessionCtx) -> io::Result<()> {
    stream.set_nodelay(true)?;
    let mut pasv: Option<TcpListener> = None;
    let mut rnfr: Option<String> = None;
    reply(&mut stream, 220, "jbos-ftpd ready")?;
    loop {
        match ctx.await_request(&stream)? {
            Await::Ready => {}
            _ => return Ok(()),
        }
        let Some(line) = read_line(&mut stream)? else {
            return Ok(());
        };
        match parse_command(&line) {
            FtpCommand::User(_) => reply(&mut stream, 331, "Any password works")?,
            FtpCommand::Pass(_) => reply(&mut stream, 230, "Logged in")?,
            FtpCommand::Syst => reply(&mut stream, 215, "UNIX Type: L8 (jbos)")?,
            FtpCommand::Type(_) => reply(&mut stream, 200, "Binary")?,
            FtpCommand::Noop => reply(&mut stream, 200, "NOOP")?,
            FtpCommand::Pwd => reply(&mut stream, 257, "\"/\"")?,
            FtpCommand::Cwd(_) => reply(&mut stream, 250, "OK (flat namespace)")?,
            FtpCommand::Quit => {
                reply(&mut stream, 221, "Bye")?;
                return Ok(());
            }
            FtpCommand::Pasv => {
                let listener = TcpListener::bind("127.0.0.1:0")?;
                let addr = listener.local_addr()?;
                pasv = Some(listener);
                write_line(&mut stream, &format_pasv_reply(addr).to_string())?;
            }
            FtpCommand::Size(path) => {
                match root.parse(&path).and_then(|p| root.backend().stat(&p)) {
                    Ok(st) => reply(&mut stream, 213, &st.size.to_string())?,
                    Err(_) => reply(&mut stream, 550, "No such file")?,
                }
            }
            FtpCommand::Mkd(path) => {
                match root.parse(&path).and_then(|p| root.backend().mkdir(&p)) {
                    Ok(()) => reply(&mut stream, 257, "Created")?,
                    Err(_) => reply(&mut stream, 550, "Failed")?,
                }
            }
            FtpCommand::Rmd(path) => {
                match root.parse(&path).and_then(|p| root.backend().rmdir(&p)) {
                    Ok(()) => reply(&mut stream, 250, "Removed")?,
                    Err(_) => reply(&mut stream, 550, "Failed")?,
                }
            }
            FtpCommand::Dele(path) => {
                match root.parse(&path).and_then(|p| root.backend().remove(&p)) {
                    Ok(()) => reply(&mut stream, 250, "Deleted")?,
                    Err(_) => reply(&mut stream, 550, "Failed")?,
                }
            }
            FtpCommand::Rnfr(path) => {
                rnfr = Some(path);
                reply(&mut stream, 350, "RNFR ok")?;
            }
            FtpCommand::Rnto(to) => match rnfr.take() {
                Some(from) => {
                    let result = root
                        .parse(&from)
                        .and_then(|f| root.parse(&to).and_then(|t| root.backend().rename(&f, &t)));
                    match result {
                        Ok(()) => reply(&mut stream, 250, "Renamed")?,
                        Err(_) => reply(&mut stream, 550, "Failed")?,
                    }
                }
                None => reply(&mut stream, 503, "RNTO without RNFR")?,
            },
            FtpCommand::List(path) | FtpCommand::Nlst(path) => {
                let target = path.unwrap_or_else(|| "/".to_owned());
                match root.parse(&target).and_then(|p| root.backend().list(&p)) {
                    Ok(mut names) => {
                        names.sort();
                        reply(&mut stream, 150, "Listing")?;
                        let mut data = accept_data(&mut pasv)?;
                        for n in names {
                            write_line(&mut data, &n)?;
                        }
                        drop(data);
                        reply(&mut stream, 226, "Done")?;
                    }
                    Err(_) => reply(&mut stream, 550, "No such directory")?,
                }
            }
            FtpCommand::Retr(path) => match root.parse(&path).and_then(|p| root.read_all(&p)) {
                Ok(body) => {
                    reply(&mut stream, 150, "Sending")?;
                    let mut data = accept_data(&mut pasv)?;
                    data.write_all(&body)?;
                    drop(data);
                    reply(&mut stream, 226, "Done")?;
                }
                Err(_) => reply(&mut stream, 550, "No such file")?,
            },
            FtpCommand::Stor(path) => match root.parse(&path) {
                Ok(p) => {
                    reply(&mut stream, 150, "Receiving")?;
                    let mut data = accept_data(&mut pasv)?;
                    let mut body = Vec::new();
                    data.read_to_end(&mut body)?;
                    drop(data);
                    match root.write_all(&p, &body) {
                        Ok(()) => reply(&mut stream, 226, "Stored")?,
                        Err(_) => reply(&mut stream, 451, "Store failed")?,
                    }
                }
                Err(_) => reply(&mut stream, 553, "Bad path")?,
            },
            _ => reply(&mut stream, 502, "Not implemented")?,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nest_proto::ftp::FtpClient;

    #[test]
    fn ftpd_roundtrip() {
        let root = SharedRoot::in_memory();
        let server = MiniFtpd::start(root).unwrap();
        let mut client = FtpClient::connect(server.addr()).unwrap();
        client.login("anonymous", "x").unwrap();
        client.stor_bytes("/f.bin", b"jbos ftp").unwrap();
        assert_eq!(client.retr_bytes("/f.bin").unwrap(), b"jbos ftp");
        assert_eq!(client.size("/f.bin").unwrap(), 8);
        assert_eq!(client.nlst(Some("/")).unwrap(), vec!["f.bin"]);
        client.dele("/f.bin").unwrap();
        client.quit().unwrap();
        server.shutdown();
    }
}
