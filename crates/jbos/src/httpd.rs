//! A thin HTTP file server — the Apache stand-in.

use crate::common::{MiniServer, SharedRoot};
use nest_core::front::ProtocolFront;
use nest_core::session::{Await, OverloadReply, SessionCtx};
use nest_proto::http::{
    render_response_head, status_for_error, HttpMethod, HttpRequestHead, HttpResponseHead,
};
use nest_proto::request::NestError;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

/// The standalone HTTP front (same dialect declarations as NeST's, but
/// served from a bare shared root instead of the dispatcher).
struct HttpdFront {
    root: SharedRoot,
}

impl ProtocolFront for HttpdFront {
    fn name(&self) -> &'static str {
        "jbos-httpd"
    }
    fn default_port(&self) -> Option<u16> {
        None
    }
    fn overload_reply(&self) -> OverloadReply {
        OverloadReply::Http503
    }
    fn serve_conn(&self, stream: TcpStream, ctx: &SessionCtx) -> io::Result<()> {
        serve(&self.root, stream, ctx)
    }
    fn render_error(&self, e: NestError) -> Vec<u8> {
        let (code, reason) = status_for_error(e);
        render_response_head(&HttpResponseHead::with_length(code, reason, 0)).into_bytes()
    }
}

/// The mini HTTP daemon.
pub struct MiniHttpd {
    server: MiniServer,
}

impl MiniHttpd {
    /// Starts the server over the shared root.
    pub fn start(root: SharedRoot) -> io::Result<Self> {
        let server = MiniServer::serve(Arc::new(HttpdFront { root }))?;
        Ok(Self { server })
    }

    /// Bound address.
    pub fn addr(&self) -> SocketAddr {
        self.server.addr
    }

    /// Stops the server.
    pub fn shutdown(self) {
        self.server.shutdown();
    }
}

fn serve(root: &SharedRoot, mut stream: TcpStream, ctx: &SessionCtx) -> io::Result<()> {
    stream.set_nodelay(true)?;
    loop {
        match ctx.await_request(&stream)? {
            Await::Ready => {}
            _ => return Ok(()),
        }
        let Some(head) = HttpRequestHead::read(&mut stream)? else {
            return Ok(());
        };
        match head.method {
            HttpMethod::Get => match root.parse(&head.path).and_then(|p| root.read_all(&p)) {
                Ok(body) => {
                    let resp = HttpResponseHead::with_length(200, "OK", body.len() as u64);
                    stream.write_all(render_response_head(&resp).as_bytes())?;
                    stream.write_all(&body)?;
                }
                Err(_) => not_found(&mut stream)?,
            },
            HttpMethod::Head => {
                match root.parse(&head.path).and_then(|p| root.backend().stat(&p)) {
                    Ok(st) => {
                        let resp = HttpResponseHead::with_length(200, "OK", st.size);
                        stream.write_all(render_response_head(&resp).as_bytes())?;
                    }
                    Err(_) => not_found(&mut stream)?,
                }
            }
            HttpMethod::Put => {
                let Some(length) = head.content_length() else {
                    let resp = HttpResponseHead::with_length(411, "Length Required", 0);
                    stream.write_all(render_response_head(&resp).as_bytes())?;
                    continue;
                };
                let body = nest_proto::wire::read_exact_vec(&mut stream, length)?;
                match root
                    .parse(&head.path)
                    .and_then(|p| root.write_all(&p, &body))
                {
                    Ok(()) => {
                        let resp = HttpResponseHead::with_length(201, "Created", 0);
                        stream.write_all(render_response_head(&resp).as_bytes())?;
                    }
                    Err(_) => not_found(&mut stream)?,
                }
            }
            HttpMethod::Delete => {
                match root
                    .parse(&head.path)
                    .and_then(|p| root.backend().remove(&p))
                {
                    Ok(()) => {
                        let resp = HttpResponseHead::with_length(204, "No Content", 0);
                        stream.write_all(render_response_head(&resp).as_bytes())?;
                    }
                    Err(_) => not_found(&mut stream)?,
                }
            }
        }
        stream.flush()?;
    }
}

fn not_found(stream: &mut TcpStream) -> io::Result<()> {
    let resp = HttpResponseHead::with_length(404, "Not Found", 0);
    stream.write_all(render_response_head(&resp).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nest_proto::http::HttpClient;

    #[test]
    fn httpd_roundtrip() {
        let root = SharedRoot::in_memory();
        let server = MiniHttpd::start(root).unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        assert_eq!(client.put_bytes("/a.txt", b"jbos").unwrap(), 201);
        assert_eq!(client.get_bytes("/a.txt").unwrap(), b"jbos");
        assert_eq!(client.head_request("/a.txt").unwrap(), (200, Some(4)));
        assert_eq!(client.delete("/a.txt").unwrap(), 204);
        assert_eq!(client.head_request("/a.txt").unwrap().0, 404);
        server.shutdown();
    }
}
