//! A thin user-level NFSv2 server — the in-kernel nfsd stand-in.

use crate::common::{MiniServer, SharedRoot};
use nest_core::front::ProtocolFront;
use nest_core::session::{OverloadReply, SessionCtx};
use nest_proto::nfs::types::{FileHandle, NfsAttr, NfsStat};
use nest_proto::nfs::wire::{
    mountproc, proc, AttrStat, CreateArgs, DirEntry, DirOpArgs, DirOpRes, FhStatus, ReadArgs,
    ReadDirArgs, ReadDirRes, ReadRes, RenameArgs, WriteArgs, MOUNT_PROGRAM, MOUNT_VERSION,
    NFS_PROGRAM, NFS_VERSION,
};
use nest_proto::request::NestError;
use nest_storage::backend::FileKind;
use nest_storage::VPath;
use nest_sunrpc::rpc::{AcceptStat, CallBody};
use nest_sunrpc::server::{RpcHandler, RpcServer, SpawnedRpcServer};
use nest_sunrpc::xdr::{XdrDecoder, XdrEncoder};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

/// The standalone NFS-over-TCP front (record streams into the RPC server).
struct NfsdFront {
    rpc: Arc<RpcServer>,
}

impl ProtocolFront for NfsdFront {
    fn name(&self) -> &'static str {
        "jbos-nfsd"
    }
    fn default_port(&self) -> Option<u16> {
        None
    }
    fn overload_reply(&self) -> OverloadReply {
        // NFS clients retry silently, so overload = drop (no wire reply).
        OverloadReply::Drop
    }
    fn serve_conn(&self, stream: TcpStream, ctx: &SessionCtx) -> io::Result<()> {
        let peer = stream.peer_addr()?;
        self.rpc
            .serve_tcp_conn_until(stream, peer, &|| ctx.draining(), ctx.idle_timeout())
    }
    fn render_error(&self, e: NestError) -> Vec<u8> {
        // Errors travel as XDR status words; render the decimal nfsstat.
        let st = match e {
            NestError::Denied => NfsStat::Acces,
            NestError::NotFound => NfsStat::NoEnt,
            NestError::Exists => NfsStat::Exist,
            NestError::NoSpace => NfsStat::NoSpc,
            NestError::Invalid => NfsStat::NotEmpty,
            NestError::BadRequest | NestError::Internal => NfsStat::Io,
        };
        format!("{}", st as u32).into_bytes()
    }
}

/// The mini NFS daemon (UDP RPC, plus TCP record streams accepted through
/// the shared session layer).
pub struct MiniNfsd {
    rpc: SpawnedRpcServer,
    tcp_front: MiniServer,
}

impl MiniNfsd {
    /// Starts the server over the shared root.
    pub fn start(root: SharedRoot) -> io::Result<Self> {
        let state = Arc::new(NfsState::new(root));
        let mut server = RpcServer::new();
        server.register(NFS_PROGRAM, NFS_VERSION, Handler(Arc::clone(&state)));
        server.register(MOUNT_PROGRAM, MOUNT_VERSION, Mount(state));
        let rpc = SpawnedRpcServer::spawn(server)?;
        let tcp_front = MiniServer::serve(Arc::new(NfsdFront {
            rpc: Arc::clone(rpc.server()),
        }))?;
        Ok(Self { rpc, tcp_front })
    }

    /// Bound UDP address.
    pub fn addr(&self) -> SocketAddr {
        self.rpc.udp_addr
    }

    /// Bound TCP address (same RPC programs over record streams).
    pub fn tcp_addr(&self) -> SocketAddr {
        self.tcp_front.addr
    }

    /// Stops the server.
    pub fn shutdown(self) {
        self.tcp_front.shutdown();
        self.rpc.shutdown();
    }
}

struct NfsState {
    root: SharedRoot,
    fhs: Mutex<FhMap>,
}

struct FhMap {
    next: u64,
    by_path: HashMap<VPath, u64>,
    by_id: HashMap<u64, VPath>,
}

impl NfsState {
    fn new(root: SharedRoot) -> Self {
        let mut by_path = HashMap::new();
        let mut by_id = HashMap::new();
        by_path.insert(VPath::root(), 1);
        by_id.insert(1, VPath::root());
        Self {
            root,
            fhs: Mutex::named(
                "jbos.nfsd.fhs",
                115,
                FhMap {
                    next: 2,
                    by_path,
                    by_id,
                },
            ),
        }
    }

    fn handle_for(&self, path: &VPath) -> FileHandle {
        let mut fhs = self.fhs.lock();
        if let Some(&id) = fhs.by_path.get(path) {
            return FileHandle::from_id(id, 1);
        }
        let id = fhs.next;
        fhs.next += 1;
        fhs.by_path.insert(path.clone(), id);
        fhs.by_id.insert(id, path.clone());
        FileHandle::from_id(id, 1)
    }

    fn resolve(&self, fh: &FileHandle) -> Result<VPath, NfsStat> {
        self.fhs
            .lock()
            .by_id
            .get(&fh.id())
            .cloned()
            .ok_or(NfsStat::Stale)
    }

    fn attr_for(&self, path: &VPath) -> Result<NfsAttr, NfsStat> {
        let st = self.root.backend().stat(path).map_err(io_stat)?;
        let fileid = (self.handle_for(path).id() & 0xFFFF_FFFF) as u32;
        Ok(match st.kind {
            FileKind::File => NfsAttr::file(st.size.min(u32::MAX as u64) as u32, fileid),
            FileKind::Dir => NfsAttr::dir(fileid),
        })
    }
}

fn io_stat(e: io::Error) -> NfsStat {
    match e.kind() {
        io::ErrorKind::NotFound => NfsStat::NoEnt,
        io::ErrorKind::AlreadyExists => NfsStat::Exist,
        io::ErrorKind::DirectoryNotEmpty => NfsStat::NotEmpty,
        io::ErrorKind::InvalidInput => NfsStat::NotDir,
        _ => NfsStat::Io,
    }
}

struct Handler(Arc<NfsState>);

impl RpcHandler for Handler {
    fn handle(&self, call: &CallBody, _peer: SocketAddr) -> Result<Vec<u8>, AcceptStat> {
        let s = &self.0;
        let mut d = XdrDecoder::new(&call.args);
        let mut e = XdrEncoder::new();
        match call.proc {
            proc::NULL => {}
            proc::GETATTR => {
                let fh = FileHandle::decode(&mut d).map_err(|_| AcceptStat::GarbageArgs)?;
                match s.resolve(&fh).and_then(|p| s.attr_for(&p)) {
                    Ok(attr) => AttrStat::ok(attr).encode(&mut e),
                    Err(st) => AttrStat::err(st).encode(&mut e),
                }
            }
            proc::LOOKUP => {
                let args = DirOpArgs::decode(&mut d).map_err(|_| AcceptStat::GarbageArgs)?;
                let res = (|| {
                    let dir = s.resolve(&args.dir)?;
                    let path = dir.join(&args.name).map_err(|_| NfsStat::NoEnt)?;
                    let attr = s.attr_for(&path)?;
                    Ok::<_, NfsStat>(DirOpRes::ok(s.handle_for(&path), attr))
                })()
                .unwrap_or_else(DirOpRes::err);
                res.encode(&mut e);
            }
            proc::READ => {
                let args = ReadArgs::decode(&mut d).map_err(|_| AcceptStat::GarbageArgs)?;
                let res = (|| {
                    let path = s.resolve(&args.fh)?;
                    let mut buf = vec![0u8; args.count.min(8192) as usize];
                    let n = s
                        .root
                        .backend()
                        .read_at(&path, args.offset as u64, &mut buf)
                        .map_err(io_stat)?;
                    buf.truncate(n);
                    let attr = s.attr_for(&path)?;
                    Ok::<_, NfsStat>(ReadRes {
                        status: NfsStat::Ok,
                        attr: Some(attr),
                        data: buf,
                    })
                })()
                .unwrap_or_else(|st| ReadRes {
                    status: st,
                    attr: None,
                    data: Vec::new(),
                });
                res.encode(&mut e);
            }
            proc::WRITE => {
                let args = WriteArgs::decode(&mut d).map_err(|_| AcceptStat::GarbageArgs)?;
                let res = (|| {
                    let path = s.resolve(&args.fh)?;
                    s.root
                        .backend()
                        .write_at(&path, args.offset as u64, &args.data)
                        .map_err(io_stat)?;
                    s.attr_for(&path).map(AttrStat::ok)
                })()
                .unwrap_or_else(AttrStat::err);
                res.encode(&mut e);
            }
            proc::CREATE | proc::MKDIR => {
                let args = CreateArgs::decode(&mut d).map_err(|_| AcceptStat::GarbageArgs)?;
                let res = (|| {
                    let dir = s.resolve(&args.wher.dir)?;
                    let path = dir.join(&args.wher.name).map_err(|_| NfsStat::Io)?;
                    if call.proc == proc::MKDIR {
                        s.root.backend().mkdir(&path).map_err(io_stat)?;
                    } else {
                        s.root.backend().create(&path).map_err(io_stat)?;
                    }
                    let attr = s.attr_for(&path)?;
                    Ok::<_, NfsStat>(DirOpRes::ok(s.handle_for(&path), attr))
                })()
                .unwrap_or_else(DirOpRes::err);
                res.encode(&mut e);
            }
            proc::REMOVE | proc::RMDIR => {
                let args = DirOpArgs::decode(&mut d).map_err(|_| AcceptStat::GarbageArgs)?;
                let status = (|| {
                    let dir = s.resolve(&args.dir)?;
                    let path = dir.join(&args.name).map_err(|_| NfsStat::NoEnt)?;
                    if call.proc == proc::RMDIR {
                        s.root.backend().rmdir(&path).map_err(io_stat)?;
                    } else {
                        s.root.backend().remove(&path).map_err(io_stat)?;
                    }
                    Ok::<_, NfsStat>(NfsStat::Ok)
                })()
                .unwrap_or_else(|st| st);
                e.put_u32(status as u32);
            }
            proc::RENAME => {
                let args = RenameArgs::decode(&mut d).map_err(|_| AcceptStat::GarbageArgs)?;
                let status = (|| {
                    let from_dir = s.resolve(&args.from.dir)?;
                    let to_dir = s.resolve(&args.to.dir)?;
                    let from = from_dir.join(&args.from.name).map_err(|_| NfsStat::NoEnt)?;
                    let to = to_dir.join(&args.to.name).map_err(|_| NfsStat::Io)?;
                    s.root.backend().rename(&from, &to).map_err(io_stat)?;
                    Ok::<_, NfsStat>(NfsStat::Ok)
                })()
                .unwrap_or_else(|st| st);
                e.put_u32(status as u32);
            }
            proc::READDIR => {
                let args = ReadDirArgs::decode(&mut d).map_err(|_| AcceptStat::GarbageArgs)?;
                let res = (|| {
                    let dir = s.resolve(&args.fh)?;
                    let mut names = s.root.backend().list(&dir).map_err(io_stat)?;
                    names.sort();
                    let entries = names
                        .into_iter()
                        .enumerate()
                        .skip(args.cookie as usize)
                        .map(|(i, name)| DirEntry {
                            fileid: (i + 2) as u32,
                            name,
                            cookie: (i + 1) as u32,
                        })
                        .collect();
                    Ok::<_, NfsStat>(ReadDirRes {
                        status: NfsStat::Ok,
                        entries,
                        eof: true,
                    })
                })()
                .unwrap_or_else(|st| ReadDirRes {
                    status: st,
                    entries: Vec::new(),
                    eof: true,
                });
                res.encode(&mut e);
            }
            _ => return Err(AcceptStat::ProcUnavail),
        }
        Ok(e.into_bytes())
    }
}

struct Mount(#[allow(dead_code)] Arc<NfsState>);

impl RpcHandler for Mount {
    fn handle(&self, call: &CallBody, _peer: SocketAddr) -> Result<Vec<u8>, AcceptStat> {
        match call.proc {
            mountproc::NULL | mountproc::UMNT => Ok(Vec::new()),
            mountproc::MNT => {
                let mut e = XdrEncoder::new();
                FhStatus {
                    status: 0,
                    fh: Some(FileHandle::from_id(1, 1)),
                }
                .encode(&mut e);
                Ok(e.into_bytes())
            }
            _ => Err(AcceptStat::ProcUnavail),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nest_proto::nfs::{MountClient, NfsClient};

    #[test]
    fn nfsd_roundtrip() {
        let root = SharedRoot::in_memory();
        let server = MiniNfsd::start(root).unwrap();
        let addr = server.addr();
        let mut mount = MountClient::connect(addr).unwrap();
        let rootfh = mount.mount("/").unwrap();
        let mut nfs = NfsClient::connect(addr).unwrap();
        nfs.null().unwrap();
        let payload = vec![3u8; 20_000];
        nfs.write_file(rootfh, "x.bin", &mut std::io::Cursor::new(payload.clone()))
            .unwrap();
        let (fh, attr) = nfs.lookup(rootfh, "x.bin").unwrap();
        assert_eq!(attr.size as usize, payload.len());
        let mut back = Vec::new();
        nfs.read_file(fh, &mut back).unwrap();
        assert_eq!(back, payload);
        assert_eq!(nfs.readdir(rootfh).unwrap(), vec!["x.bin"]);
        nfs.remove(rootfh, "x.bin").unwrap();
        server.shutdown();
    }
}
