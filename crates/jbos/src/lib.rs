//! # nest-jbos
//!
//! "Just a Bunch Of Servers" — the baseline NeST is compared against
//! (paper §3, §7.1). JBOS runs one independent, single-protocol server per
//! protocol: the paper used Apache (HTTP), wu-ftpd (FTP), the in-kernel
//! Linux nfsd (NFS) and a standalone Chirp server.
//!
//! The mini-servers here play those roles: each is a deliberately *thin*
//! native-style implementation — thread per connection, direct file I/O, no
//! shared transfer manager, no lots, no ACLs, no cross-protocol anything.
//! That absence of shared machinery is precisely the property Figures 3
//! and 4 contrast: a JBOS deployment cannot schedule across protocols, so
//! "proportional-share scheduling in NeST ... cannot be applied to other
//! traffic streams in a JBOS environment."
//!
//! All four serve the same [`SharedRoot`], so a JBOS deployment exports one
//! namespace over many ports — like pointing Apache and wu-ftpd at the same
//! directory.

pub mod chirpd;
pub mod common;
pub mod ftpd;
pub mod httpd;
pub mod nfsd;

pub use chirpd::MiniChirpd;
pub use common::SharedRoot;
pub use ftpd::MiniFtpd;
pub use httpd::MiniHttpd;
pub use nfsd::MiniNfsd;

/// A complete JBOS deployment: four independent servers over one shared
/// directory tree.
pub struct JbosFleet {
    /// The Chirp server.
    pub chirpd: MiniChirpd,
    /// The HTTP server.
    pub httpd: MiniHttpd,
    /// The FTP server.
    pub ftpd: MiniFtpd,
    /// The NFS server.
    pub nfsd: MiniNfsd,
}

impl JbosFleet {
    /// Starts all four servers over a shared in-memory root.
    pub fn start(root: SharedRoot) -> std::io::Result<Self> {
        Ok(Self {
            chirpd: MiniChirpd::start(root.clone())?,
            httpd: MiniHttpd::start(root.clone())?,
            ftpd: MiniFtpd::start(root.clone())?,
            nfsd: MiniNfsd::start(root)?,
        })
    }

    /// Stops every server.
    pub fn shutdown(self) {
        self.chirpd.shutdown();
        self.httpd.shutdown();
        self.ftpd.shutdown();
        self.nfsd.shutdown();
    }
}
