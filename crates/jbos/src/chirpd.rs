//! A standalone Chirp server — the native Chirp stand-in. Speaks the same
//! wire protocol as NeST's handler but has no lots, ACLs or transfer
//! manager (lot requests are answered with `invalid`).

use crate::common::{MiniServer, SharedRoot};
use nest_core::front::ProtocolFront;
use nest_core::session::{Await, OverloadReply, SessionCtx};
use nest_proto::chirp::{parse_command, status_line, ChirpCommand};
use nest_proto::request::{NestError, NestRequest, NestResponse};
use nest_proto::wire::{copy_exact, read_line, write_line};
use std::io::{self, Cursor};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

/// The standalone Chirp front (NeST's wire dialect over a bare root).
struct ChirpdFront {
    root: SharedRoot,
}

impl ProtocolFront for ChirpdFront {
    fn name(&self) -> &'static str {
        "jbos-chirpd"
    }
    fn default_port(&self) -> Option<u16> {
        None
    }
    fn overload_reply(&self) -> OverloadReply {
        OverloadReply::ChirpBusy
    }
    fn serve_conn(&self, stream: TcpStream, ctx: &SessionCtx) -> io::Result<()> {
        serve(&self.root, stream, ctx)
    }
    fn render_error(&self, e: NestError) -> Vec<u8> {
        format!("{}\r\n", status_line(&NestResponse::Error(e))).into_bytes()
    }
}

/// The mini Chirp daemon.
pub struct MiniChirpd {
    server: MiniServer,
}

impl MiniChirpd {
    /// Starts the server over the shared root.
    pub fn start(root: SharedRoot) -> io::Result<Self> {
        let server = MiniServer::serve(Arc::new(ChirpdFront { root }))?;
        Ok(Self { server })
    }

    /// Bound address.
    pub fn addr(&self) -> SocketAddr {
        self.server.addr
    }

    /// Stops the server.
    pub fn shutdown(self) {
        self.server.shutdown();
    }
}

fn err_for(e: &io::Error) -> NestError {
    match e.kind() {
        io::ErrorKind::NotFound => NestError::NotFound,
        io::ErrorKind::AlreadyExists => NestError::Exists,
        io::ErrorKind::InvalidInput => NestError::BadRequest,
        io::ErrorKind::DirectoryNotEmpty => NestError::Invalid,
        _ => NestError::Internal,
    }
}

fn serve(root: &SharedRoot, mut stream: TcpStream, ctx: &SessionCtx) -> io::Result<()> {
    stream.set_nodelay(true)?;
    loop {
        match ctx.await_request(&stream)? {
            Await::Ready => {}
            _ => return Ok(()),
        }
        let Some(line) = read_line(&mut stream)? else {
            return Ok(());
        };
        if line.is_empty() {
            continue;
        }
        match parse_command(&line) {
            Some(ChirpCommand::Version) => write_line(&mut stream, "0 jbos-chirpd/0.9")?,
            Some(ChirpCommand::Stats) => {
                // The bag-of-services ensemble has no shared metrics
                // registry (compare: NeST's integrated snapshot).
                write_line(&mut stream, "0 0")?;
            }
            Some(ChirpCommand::Auth(_)) => {
                // The standalone server trusts everyone (compare: NeST
                // verifies against a CA and grid-mapfile).
                write_line(&mut stream, "0 anonymous")?;
            }
            Some(ChirpCommand::Request(NestRequest::Quit)) => {
                write_line(&mut stream, "0 bye")?;
                return Ok(());
            }
            Some(ChirpCommand::Request(req)) => handle(root, &mut stream, req)?,
            None => write_line(
                &mut stream,
                &status_line(&NestResponse::Error(NestError::BadRequest)),
            )?,
        }
    }
}

fn handle(root: &SharedRoot, stream: &mut TcpStream, req: NestRequest) -> io::Result<()> {
    let result: Result<(), NestError> = (|| {
        match req {
            NestRequest::Mkdir { path } => {
                let p = root.parse(&path).map_err(|e| err_for(&e))?;
                root.backend().mkdir(&p).map_err(|e| err_for(&e))?;
                write_line(stream, &status_line(&NestResponse::Ok)).ok();
            }
            NestRequest::Rmdir { path } => {
                let p = root.parse(&path).map_err(|e| err_for(&e))?;
                root.backend().rmdir(&p).map_err(|e| err_for(&e))?;
                write_line(stream, &status_line(&NestResponse::Ok)).ok();
            }
            NestRequest::ListDir { path, .. } => {
                let p = root.parse(&path).map_err(|e| err_for(&e))?;
                let mut names = root.backend().list(&p).map_err(|e| err_for(&e))?;
                names.sort();
                write_line(stream, &format!("0 {}", names.len())).ok();
                for n in names {
                    write_line(stream, &n).ok();
                }
            }
            NestRequest::Stat { path } => {
                let p = root.parse(&path).map_err(|e| err_for(&e))?;
                let st = root.backend().stat(&p).map_err(|e| err_for(&e))?;
                write_line(stream, &format!("0 {}", st.size)).ok();
            }
            NestRequest::Delete { path } => {
                let p = root.parse(&path).map_err(|e| err_for(&e))?;
                root.backend().remove(&p).map_err(|e| err_for(&e))?;
                write_line(stream, &status_line(&NestResponse::Ok)).ok();
            }
            NestRequest::Rename { from, to } => {
                let f = root.parse(&from).map_err(|e| err_for(&e))?;
                let t = root.parse(&to).map_err(|e| err_for(&e))?;
                root.backend().rename(&f, &t).map_err(|e| err_for(&e))?;
                write_line(stream, &status_line(&NestResponse::Ok)).ok();
            }
            NestRequest::Get { path } => {
                let p = root.parse(&path).map_err(|e| err_for(&e))?;
                let data = root.read_all(&p).map_err(|e| err_for(&e))?;
                write_line(stream, &format!("0 {}", data.len())).ok();
                copy_exact(
                    &mut Cursor::new(data.as_slice()),
                    stream,
                    data.len() as u64,
                    64 * 1024,
                )
                .map_err(|_| NestError::Internal)?;
            }
            NestRequest::Put { path, size } => {
                let p = root.parse(&path).map_err(|e| err_for(&e))?;
                let size = size.unwrap_or(0);
                write_line(stream, "0 ready").ok();
                let data = nest_proto::wire::read_exact_vec(stream, size)
                    .map_err(|_| NestError::Internal)?;
                root.write_all(&p, &data).map_err(|e| err_for(&e))?;
                write_line(stream, &status_line(&NestResponse::Ok)).ok();
            }
            // No lot / ACL / third-party support in the standalone server.
            _ => return Err(NestError::Invalid),
        }
        Ok(())
    })();
    if let Err(e) = result {
        write_line(stream, &status_line(&NestResponse::Error(e)))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nest_proto::chirp::ChirpClient;

    #[test]
    fn chirpd_roundtrip() {
        let root = SharedRoot::in_memory();
        let server = MiniChirpd::start(root).unwrap();
        let mut client = ChirpClient::connect(server.addr()).unwrap();
        assert!(client.version().unwrap().contains("jbos"));
        client.mkdir("/d").unwrap();
        client.put_bytes("/d/f", b"data").unwrap();
        assert_eq!(client.get_bytes("/d/f").unwrap(), b"data");
        assert_eq!(client.ls("/d").unwrap(), vec!["f"]);
        // Lot management is NeST-only.
        assert!(client.lot_create(100, 10).is_err());
        client.quit().unwrap();
        server.shutdown();
    }
}
