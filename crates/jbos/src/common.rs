//! Shared plumbing for the JBOS mini-servers.

use nest_core::front::{FrontRegistry, ProtocolFront};
use nest_core::session::SessionConfig;
use nest_obs::Obs;
use nest_storage::{MemBackend, StorageBackend, VPath};
use std::io;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

/// The directory tree every JBOS server exports — the analogue of pointing
/// Apache, wu-ftpd and nfsd at one filesystem directory. Backed by the
/// same [`StorageBackend`] abstraction NeST uses so benchmarks compare the
/// protocol/server layers, not the disks.
#[derive(Clone)]
pub struct SharedRoot {
    backend: Arc<dyn StorageBackend>,
}

impl SharedRoot {
    /// An in-memory shared root.
    pub fn in_memory() -> Self {
        Self {
            backend: Arc::new(MemBackend::new()),
        }
    }

    /// A shared root over an arbitrary backend.
    pub fn over(backend: Arc<dyn StorageBackend>) -> Self {
        Self { backend }
    }

    /// The underlying backend.
    pub fn backend(&self) -> &Arc<dyn StorageBackend> {
        &self.backend
    }

    /// Parses a client path.
    pub fn parse(&self, raw: &str) -> io::Result<VPath> {
        VPath::parse(raw).map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))
    }

    /// Reads a whole file.
    pub fn read_all(&self, path: &VPath) -> io::Result<Vec<u8>> {
        let size = self.backend.stat(path)?.size;
        let mut out = vec![0u8; size as usize];
        let mut offset = 0usize;
        while offset < out.len() {
            let n = self
                .backend
                .read_at(path, offset as u64, &mut out[offset..])?;
            if n == 0 {
                break;
            }
            offset += n;
        }
        out.truncate(offset);
        Ok(out)
    }

    /// Creates/overwrites a file with the given contents.
    pub fn write_all(&self, path: &VPath, data: &[u8]) -> io::Result<()> {
        match self.backend.create(path) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                self.backend.truncate(path, 0)?;
            }
            Err(e) => return Err(e),
        }
        self.backend.write_at(path, 0, data)
    }
}

/// How long a JBOS mini-server waits for in-flight connections on drain.
const JBOS_DRAIN_DEADLINE: Duration = Duration::from_secs(2);

/// A single-protocol server's connection front and lifecycle.
///
/// Even the "just a bunch of servers" ensemble accepts through the shared
/// nest-core session layer now: one poller, a bounded worker pool, and a
/// graceful drain — the ensemble's flaw is its lack of *shared* policy
/// across servers (paper §4), not a per-server accept loop bug.
pub struct MiniServer {
    /// The bound address.
    pub addr: SocketAddr,
    registry: FrontRegistry,
    /// The server's private metrics registry (each JBOS process stands
    /// alone — compare NeST's appliance-wide registry).
    obs: Arc<Obs>,
}

impl MiniServer {
    /// Binds an ephemeral loopback listener for the front and serves its
    /// connections from a bounded worker pool, rejecting with the front's
    /// overload dialect under overload. Even the mini-servers go through
    /// the [`FrontRegistry`]: one registry, one front each.
    pub fn serve(front: Arc<dyn ProtocolFront>) -> io::Result<Self> {
        let obs = Obs::new();
        let mut registry = FrontRegistry::new(Arc::clone(&obs), SessionConfig::default());
        let addr = registry.register_on(front, 0)?;
        registry.start()?;
        Ok(Self {
            addr,
            registry,
            obs,
        })
    }

    /// The server's metrics registry (session-layer instruments).
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// Gracefully drains the connection front.
    pub fn shutdown(mut self) {
        self.registry.drain(JBOS_DRAIN_DEADLINE);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_root_read_write() {
        let root = SharedRoot::in_memory();
        let p = root.parse("/f").unwrap();
        root.write_all(&p, b"hello").unwrap();
        assert_eq!(root.read_all(&p).unwrap(), b"hello");
        // Overwrite truncates.
        root.write_all(&p, b"x").unwrap();
        assert_eq!(root.read_all(&p).unwrap(), b"x");
    }

    #[test]
    fn shared_root_rejects_escapes() {
        let root = SharedRoot::in_memory();
        assert!(root.parse("/../etc/passwd").is_err());
    }
}
