//! Shared plumbing for the JBOS mini-servers.

use nest_storage::{MemBackend, StorageBackend, VPath};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// The directory tree every JBOS server exports — the analogue of pointing
/// Apache, wu-ftpd and nfsd at one filesystem directory. Backed by the
/// same [`StorageBackend`] abstraction NeST uses so benchmarks compare the
/// protocol/server layers, not the disks.
#[derive(Clone)]
pub struct SharedRoot {
    backend: Arc<dyn StorageBackend>,
}

impl SharedRoot {
    /// An in-memory shared root.
    pub fn in_memory() -> Self {
        Self {
            backend: Arc::new(MemBackend::new()),
        }
    }

    /// A shared root over an arbitrary backend.
    pub fn over(backend: Arc<dyn StorageBackend>) -> Self {
        Self { backend }
    }

    /// The underlying backend.
    pub fn backend(&self) -> &Arc<dyn StorageBackend> {
        &self.backend
    }

    /// Parses a client path.
    pub fn parse(&self, raw: &str) -> io::Result<VPath> {
        VPath::parse(raw).map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))
    }

    /// Reads a whole file.
    pub fn read_all(&self, path: &VPath) -> io::Result<Vec<u8>> {
        let size = self.backend.stat(path)?.size;
        let mut out = vec![0u8; size as usize];
        let mut offset = 0usize;
        while offset < out.len() {
            let n = self
                .backend
                .read_at(path, offset as u64, &mut out[offset..])?;
            if n == 0 {
                break;
            }
            offset += n;
        }
        out.truncate(offset);
        Ok(out)
    }

    /// Creates/overwrites a file with the given contents.
    pub fn write_all(&self, path: &VPath, data: &[u8]) -> io::Result<()> {
        match self.backend.create(path) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                self.backend.truncate(path, 0)?;
            }
            Err(e) => return Err(e),
        }
        self.backend.write_at(path, 0, data)
    }
}

/// A single-protocol server's accept loop and lifecycle.
pub struct MiniServer {
    /// The bound address.
    pub addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl MiniServer {
    /// Binds an ephemeral loopback listener and serves each connection on
    /// its own thread (the classic inetd/Apache-prefork shape).
    pub fn spawn<F>(name: &str, handler: F) -> io::Result<Self>
    where
        F: Fn(TcpStream) + Send + Sync + 'static,
    {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handler = Arc::new(handler);
        let acceptor = std::thread::Builder::new()
            .name(name.to_owned())
            .spawn(move || {
                let mut workers: Vec<JoinHandle<()>> = Vec::new();
                while !stop2.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let _ = stream.set_nonblocking(false);
                            let h = Arc::clone(&handler);
                            workers.push(std::thread::spawn(move || h(stream)));
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                    workers.retain(|w| !w.is_finished());
                }
            })?;
        Ok(Self {
            addr,
            stop,
            acceptor: Some(acceptor),
        })
    }

    /// Stops the accept loop.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.acceptor.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MiniServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.acceptor.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_root_read_write() {
        let root = SharedRoot::in_memory();
        let p = root.parse("/f").unwrap();
        root.write_all(&p, b"hello").unwrap();
        assert_eq!(root.read_all(&p).unwrap(), b"hello");
        // Overwrite truncates.
        root.write_all(&p, b"x").unwrap();
        assert_eq!(root.read_all(&p).unwrap(), b"x");
    }

    #[test]
    fn shared_root_rejects_escapes() {
        let root = SharedRoot::in_memory();
        assert!(root.parse("/../etc/passwd").is_err());
    }
}
