//! The Figure 6 write-path model: lot (quota) bookkeeping overhead.
//!
//! The paper implements lots on the kernel quota mechanism and measures
//! that "with quotas enabled, write performance to disk decreases by
//! roughly 50% in the worst case (under a single, sequential write
//! stream)" while "for small files, the cost is negligible but increases
//! quickly with file size."
//!
//! The mechanism: a write first lands in the buffer cache at near wire
//! speed; once the stream outgrows the cache's dirty-data headroom the
//! disk becomes the bottleneck, and with quotas enabled every block's
//! charge forces synchronous quota bookkeeping that roughly halves the
//! effective disk bandwidth. Small writes never leave the cache before
//! the measurement completes, so the cost is invisible; large writes are
//! disk-bound, so the full bookkeeping penalty shows.

/// Parameters for the write-path model.
#[derive(Debug, Clone)]
pub struct WritePathModel {
    /// Wire/CPU-limited ingest bandwidth, bytes/second.
    pub net_bps: f64,
    /// Sustained disk write bandwidth, bytes/second.
    pub disk_bps: f64,
    /// Dirty-data headroom the buffer cache absorbs before writes become
    /// disk-bound.
    pub cache_bytes: f64,
    /// Multiplier (>1) on disk time when quota bookkeeping is enabled:
    /// synchronous quota-file updates interleave with data writes.
    pub quota_penalty: f64,
}

impl WritePathModel {
    /// Calibrated to the paper's Figure 6 axes: both curves start ~22 MB/s
    /// at 20 MB; the quota-enabled curve falls toward half as the write
    /// grows to 200 MB.
    pub fn linux_2002() -> Self {
        Self {
            net_bps: 23.0e6,
            disk_bps: 22.0e6,
            cache_bytes: 24.0e6,
            quota_penalty: 2.0,
        }
    }

    /// Time to absorb a sequential write of `size` bytes. Ingest from the
    /// network and write-back to disk overlap (the kernel flushes dirty
    /// pages while the server keeps receiving), so the stream finishes at
    /// the *slower* of the two paced stages; the first `cache_bytes` never
    /// need to reach the disk within the measurement.
    pub fn write_time(&self, size: f64, quotas: bool) -> f64 {
        let ingest = size / self.net_bps;
        let disk_bound = (size - self.cache_bytes).max(0.0);
        let disk_factor = if quotas { self.quota_penalty } else { 1.0 };
        ingest.max(disk_bound * disk_factor / self.disk_bps)
    }

    /// Delivered bandwidth (bytes/second) for a write of `size` bytes.
    pub fn bandwidth(&self, size: f64, quotas: bool) -> f64 {
        size / self.write_time(size, quotas)
    }

    /// Read bandwidth is unaffected by quotas (paper: "read performance is
    /// unaffected (not surprisingly)").
    pub fn read_bandwidth(&self, size: f64, cached: bool) -> f64 {
        if cached {
            self.net_bps
        } else {
            // Disk reads overlap with sending; the slower stage paces.
            let t = (size / self.net_bps).max(size / self.disk_bps);
            size / t
        }
    }
}

/// Convenience: bandwidth in MB/s for a write of `size_mb` megabytes.
pub fn write_bandwidth(model: &WritePathModel, size_mb: f64, quotas: bool) -> f64 {
    model.bandwidth(size_mb * 1.0e6, quotas) / 1.0e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_writes_pay_nothing() {
        let m = WritePathModel::linux_2002();
        let no_q = write_bandwidth(&m, 20.0, false);
        let q = write_bandwidth(&m, 20.0, true);
        // At 20 MB the gap is small (cache absorbs most of the stream).
        assert!((no_q - q) / no_q < 0.10, "no_q {} q {}", no_q, q);
    }

    #[test]
    fn large_writes_approach_half_bandwidth() {
        let m = WritePathModel::linux_2002();
        let no_q = write_bandwidth(&m, 200.0, false);
        let q = write_bandwidth(&m, 200.0, true);
        let ratio = q / no_q;
        assert!(
            ratio > 0.45 && ratio < 0.62,
            "quota/noquota ratio {} at 200 MB (no_q {}, q {})",
            ratio,
            no_q,
            q
        );
    }

    #[test]
    fn gap_widens_monotonically_with_size() {
        let m = WritePathModel::linux_2002();
        let mut last_ratio = 1.0;
        for size in [20.0, 40.0, 80.0, 120.0, 160.0, 200.0] {
            let ratio = write_bandwidth(&m, size, true) / write_bandwidth(&m, size, false);
            assert!(
                ratio <= last_ratio + 1e-9,
                "ratio increased at {} MB: {} -> {}",
                size,
                last_ratio,
                ratio
            );
            last_ratio = ratio;
        }
        assert!(last_ratio < 0.62);
    }

    #[test]
    fn reads_unaffected_by_quotas() {
        let m = WritePathModel::linux_2002();
        // There is no quota parameter on reads at all; assert the cached
        // path hits wire speed and the cold path blends in the disk.
        assert!(m.read_bandwidth(100e6, true) > m.read_bandwidth(100e6, false));
    }

    #[test]
    fn absolute_values_match_figure_axes() {
        // Figure 6's y-axis tops out around 22–24 MB/s.
        let m = WritePathModel::linux_2002();
        let start = write_bandwidth(&m, 20.0, false);
        assert!(start > 18.0 && start < 24.0, "start {}", start);
        // The quota-off curve stays near the wire rate for every size.
        let end_no_q = write_bandwidth(&m, 200.0, false);
        assert!(end_no_q > 18.0, "no-quota end {}", end_no_q);
        let end_q = write_bandwidth(&m, 200.0, true);
        assert!(end_q > 6.0 && end_q < 14.0, "end {}", end_q);
    }
}
