//! Simulation statistics.

use std::collections::HashMap;

/// Per-class accounting for one simulation run.
#[derive(Debug, Clone, Default)]
pub struct ClassStats {
    /// Payload bytes delivered.
    pub bytes: u64,
    /// Completed requests (whole files or blocks, per the client mode).
    pub completions: u64,
    /// Completed whole files (for latency reporting on file workloads).
    pub files: u64,
    /// Sum of request latencies in seconds.
    pub latency_sum: f64,
    /// Individual request latencies (seconds, f32 to stay compact), for
    /// percentile reporting.
    pub latencies: Vec<f32>,
}

/// The result of a simulation run.
#[derive(Debug, Clone, Default)]
pub struct SimStats {
    /// Virtual seconds simulated.
    pub elapsed: f64,
    /// Per-protocol-class stats.
    pub classes: HashMap<String, ClassStats>,
    /// Completions per concurrency model name.
    pub per_model: HashMap<&'static str, u64>,
}

impl SimStats {
    /// Delivered bandwidth for one class, bytes/second.
    pub fn bandwidth(&self, class: &str) -> f64 {
        if self.elapsed <= 0.0 {
            return 0.0;
        }
        self.classes
            .get(class)
            .map_or(0.0, |c| c.bytes as f64 / self.elapsed)
    }

    /// Total delivered bandwidth, bytes/second.
    pub fn total_bandwidth(&self) -> f64 {
        if self.elapsed <= 0.0 {
            return 0.0;
        }
        self.classes.values().map(|c| c.bytes).sum::<u64>() as f64 / self.elapsed
    }

    /// Mean request latency for a class, seconds.
    pub fn mean_latency(&self, class: &str) -> f64 {
        self.classes.get(class).map_or(0.0, |c| {
            if c.completions == 0 {
                0.0
            } else {
                c.latency_sum / c.completions as f64
            }
        })
    }

    /// The q-th latency percentile (0.0..=1.0) for a class, seconds.
    /// Returns 0.0 when no requests completed.
    pub fn latency_percentile(&self, class: &str, q: f64) -> f64 {
        let Some(c) = self.classes.get(class) else {
            return 0.0;
        };
        if c.latencies.is_empty() {
            return 0.0;
        }
        let mut sorted = c.latencies.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        sorted[idx] as f64
    }

    /// Mean latency across every class.
    pub fn overall_mean_latency(&self) -> f64 {
        let (sum, n) = self.classes.values().fold((0.0, 0u64), |(s, n), c| {
            (s + c.latency_sum, n + c.completions)
        });
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Mutable class accessor.
    pub fn class_mut(&mut self, class: &str) -> &mut ClassStats {
        if !self.classes.contains_key(class) {
            self.classes.insert(class.to_owned(), ClassStats::default());
        }
        self.classes.get_mut(class).unwrap()
    }
}

/// Formats bytes/second as MB/s (decimal, as the paper's axes do).
pub fn mbps(bps: f64) -> f64 {
    bps / 1.0e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_and_latency_math() {
        let mut s = SimStats {
            elapsed: 2.0,
            ..Default::default()
        };
        {
            let c = s.class_mut("http");
            c.bytes = 20_000_000;
            c.completions = 4;
            c.latency_sum = 1.0;
            c.latencies = vec![0.1, 0.2, 0.3, 0.4];
        }
        assert!((s.bandwidth("http") - 10_000_000.0).abs() < 1e-9);
        assert!((s.total_bandwidth() - 10_000_000.0).abs() < 1e-9);
        assert!((s.mean_latency("http") - 0.25).abs() < 1e-12);
        assert_eq!(s.bandwidth("nfs"), 0.0);
        assert!((mbps(35_000_000.0) - 35.0).abs() < 1e-12);
        // Percentiles from the recorded samples.
        assert!((s.latency_percentile("http", 0.0) - 0.1).abs() < 1e-6);
        assert!((s.latency_percentile("http", 1.0) - 0.4).abs() < 1e-6);
        assert!((s.latency_percentile("http", 0.5) - 0.3).abs() < 1e-6);
        assert_eq!(s.latency_percentile("nfs", 0.5), 0.0);
    }

    #[test]
    fn zero_elapsed_is_safe() {
        let s = SimStats::default();
        assert_eq!(s.total_bandwidth(), 0.0);
        assert_eq!(s.overall_mean_latency(), 0.0);
    }
}
