//! The simulated NeST appliance.
//!
//! One shared machine (link + disk + CPU), one scheduler over every
//! protocol's flows — the property that lets NeST schedule across
//! protocols. The scheduler, adaptive selector and cache model are the
//! production implementations from `nest-transfer`; this module only
//! assigns costs to their decisions under a virtual clock.

use crate::platform::PlatformProfile;
use crate::stats::SimStats;
use crate::workload::{ClientSpec, RequestMode};
use nest_transfer::adaptive::AdaptiveSelector;
use nest_transfer::cache::CacheModel;
use nest_transfer::flow::{FlowId, FlowMeta};
use nest_transfer::sched::{CacheAwareScheduler, FcfsScheduler, Scheduler, StrideScheduler};
use nest_transfer::ModelKind;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Fixed CPU cost of NeST's virtual protocol layer per request: the
/// translation into the common request format. Small — Figure 3's point is
/// that multi-protocol support "incurs little overhead".
const VIRTUAL_LAYER_COST: f64 = 8e-6;

/// Chunk size the event engine moves per quantum.
const CHUNK: u64 = 64 * 1024;

/// Scheduling policy for a simulated server.
#[derive(Debug, Clone)]
pub enum SimPolicy {
    /// FIFO (NeST's default).
    Fcfs,
    /// Proportional share across protocol classes.
    Stride {
        /// `(class, tickets)` pairs.
        tickets: Vec<(String, u32)>,
        /// Work-conserving or idle-waiting.
        work_conserving: bool,
    },
    /// Cache-aware two-band scheduling.
    CacheAware,
}

/// Concurrency-model selection for a simulated server.
#[derive(Debug, Clone)]
pub enum SimModel {
    /// Every request under one model.
    Fixed(ModelKind),
    /// The production adaptive selector chooses per request.
    Adaptive(Vec<ModelKind>),
}

struct SimFlow {
    class: String,
    remaining: u64,
    total: u64,
    model: ModelKind,
    cached: bool,
    first_chunk: bool,
    started: u64,
    client: usize,
}

struct ClientState {
    spec: ClientSpec,
    /// Which file of the working set is next.
    file_cursor: usize,
    /// Block-mode: offset of the next block within the current file.
    offset: u64,
    /// Block-mode: whether this pass over the file was predicted cached.
    pass_cached: bool,
    /// Virtual time when this client's current file began (for file
    /// latency under block mode).
    file_started: u64,
}

fn ns(seconds: f64) -> u64 {
    (seconds * 1e9).round() as u64
}

/// The simulated appliance.
///
/// ```
/// use nest_simenv::server::{SimModel, SimPolicy};
/// use nest_simenv::{ClientSpec, PlatformProfile, SimServer};
/// use nest_transfer::ModelKind;
///
/// let clients = ClientSpec::paper_single_protocol("http");
/// let mut server = SimServer::nest(
///     PlatformProfile::linux_gige(),
///     SimPolicy::Fcfs,
///     SimModel::Fixed(ModelKind::Events),
/// );
/// server.warm_cache(&clients);
/// let stats = server.run(&clients, 2.0);
/// // In-cache HTTP serves near the link peak (~38 MB/s calibrated).
/// assert!(stats.bandwidth("http") > 30.0e6);
/// ```
pub struct SimServer {
    profile: PlatformProfile,
    scheduler: Box<dyn Scheduler>,
    selector: Option<AdaptiveSelector>,
    fixed_model: Option<ModelKind>,
    cache: CacheModel,
    /// True when modelling JBOS (no shared virtual layer cost; the
    /// scheduler passed in is the per-class round-robin).
    jbos: bool,
}

impl SimServer {
    /// Builds a NeST model with the given policy and model selection.
    pub fn nest(profile: PlatformProfile, policy: SimPolicy, model: SimModel) -> Self {
        let scheduler: Box<dyn Scheduler> = match &policy {
            SimPolicy::Fcfs => Box::new(FcfsScheduler::new()),
            SimPolicy::Stride {
                tickets,
                work_conserving,
            } => {
                let mut s = if *work_conserving {
                    StrideScheduler::new()
                } else {
                    StrideScheduler::non_work_conserving(8)
                };
                for (class, t) in tickets {
                    s.set_tickets(class, *t);
                }
                Box::new(s)
            }
            SimPolicy::CacheAware => Box::new(CacheAwareScheduler::new()),
        };
        Self::build(profile, scheduler, model, false)
    }

    pub(crate) fn build(
        profile: PlatformProfile,
        scheduler: Box<dyn Scheduler>,
        model: SimModel,
        jbos: bool,
    ) -> Self {
        let (selector, fixed_model) = match model {
            SimModel::Fixed(m) => (None, Some(m)),
            SimModel::Adaptive(models) => (Some(AdaptiveSelector::new(models)), None),
        };
        let cache = CacheModel::new(profile.cache_bytes);
        Self {
            profile,
            scheduler,
            selector,
            fixed_model,
            cache,
            jbos,
        }
    }

    /// Pre-warms the cache with each client's working set, modelling files
    /// already served once (the paper's in-cache experiments).
    pub fn warm_cache(&mut self, clients: &[ClientSpec]) {
        for (idx, c) in clients.iter().enumerate() {
            for f in 0..c.working_set {
                self.cache.observe_access(&file_key(idx, f), c.file_size);
            }
        }
    }

    /// Runs the workload for `duration` virtual seconds.
    pub fn run(&mut self, clients: &[ClientSpec], duration: f64) -> SimStats {
        let duration_ns = ns(duration);
        let mut now: u64 = 0;
        let mut stats = SimStats::default();
        let mut flows: HashMap<FlowId, SimFlow> = HashMap::new();
        let mut next_flow_id: u64 = 1;
        // (time, seq, client) — seq keeps the heap deterministic on ties.
        let mut arrivals: BinaryHeap<Reverse<(u64, u64, usize)>> = BinaryHeap::new();
        let mut seq: u64 = 0;

        let mut states: Vec<ClientState> = clients
            .iter()
            .enumerate()
            .map(|(idx, spec)| {
                arrivals.push(Reverse((0, seq, idx)));
                seq += 1;
                let pass_cached = self
                    .cache
                    .predict_resident(&file_key(idx, 0), spec.file_size);
                ClientState {
                    spec: spec.clone(),
                    file_cursor: 0,
                    offset: 0,
                    pass_cached,
                    file_started: 0,
                }
            })
            .collect();

        while now < duration_ns {
            // Admit all arrivals due now.
            while let Some(&Reverse((t, _, _))) = arrivals.peek() {
                if t > now {
                    break;
                }
                let Reverse((_, _, client)) = arrivals.pop().unwrap();
                let id = FlowId(next_flow_id);
                next_flow_id += 1;
                let flow = self.admit(client, &mut states[client], id, now);
                self.scheduler.admit(&meta_of(&flow, id));
                flows.insert(id, flow);
            }

            if self.scheduler.runnable() == 0 {
                // Idle: jump to the next arrival.
                match arrivals.peek() {
                    Some(&Reverse((t, _, _))) => {
                        now = t;
                        continue;
                    }
                    None => break,
                }
            }

            match self.scheduler.next() {
                None => {
                    // Non-work-conserving idle quantum: wait for the next
                    // arrival or a short interval.
                    let idle = ns(200e-6);
                    now = match arrivals.peek() {
                        Some(&Reverse((t, _, _))) => (now + idle).min(t.max(now + 1)),
                        None => now + idle,
                    };
                }
                Some(id) => {
                    let flow = flows.get_mut(&id).expect("scheduled flow exists");
                    let chunk = flow.remaining.min(CHUNK);
                    let dt = self.service_time(flow, chunk);
                    now += ns(dt);
                    flow.remaining -= chunk;
                    flow.first_chunk = false;
                    self.scheduler.account(id, chunk);
                    stats.class_mut(&flow.class).bytes += chunk;

                    if flow.remaining == 0 {
                        self.scheduler.done(id);
                        let flow = flows.remove(&id).unwrap();
                        self.complete(flow, now, &mut stats, &mut states, &mut arrivals, &mut seq);
                    }
                }
            }
        }
        stats.elapsed = (now.min(duration_ns)) as f64 / 1e9;
        stats
    }

    fn admit(&mut self, client: usize, state: &mut ClientState, _id: FlowId, now: u64) -> SimFlow {
        let (size, cached) = match state.spec.mode {
            RequestMode::WholeFile => {
                let key = file_key(client, state.file_cursor);
                let cached = self.cache.predict_resident(&key, state.spec.file_size);
                state.file_started = now;
                (state.spec.file_size, cached)
            }
            RequestMode::Blocks { block } => {
                if state.offset == 0 {
                    state.file_started = now;
                    let key = file_key(client, state.file_cursor);
                    state.pass_cached = self.cache.predict_resident(&key, state.spec.file_size);
                }
                let remaining_in_file = state.spec.file_size - state.offset;
                (block.min(remaining_in_file), state.pass_cached)
            }
        };
        let model = match (&mut self.selector, self.fixed_model) {
            (_, Some(m)) => m,
            (Some(sel), None) => sel.choose(),
            (None, None) => ModelKind::Events,
        };
        SimFlow {
            class: state.spec.protocol.clone(),
            remaining: size,
            total: size,
            model,
            cached,
            first_chunk: true,
            started: now,
            client,
        }
    }

    fn service_time(&self, flow: &SimFlow, chunk: u64) -> f64 {
        let costs = self.profile.model_costs(flow.model);
        let net_t = chunk as f64 / self.profile.net_bps;
        let disk_t = if flow.cached {
            0.0
        } else {
            chunk as f64 / self.profile.disk_bps
        };
        let io_t = if costs.overlapped_io {
            net_t.max(disk_t)
        } else {
            net_t + disk_t
        };
        let mut dt = costs.per_chunk + io_t + self.profile.chunk_overhead(&flow.class);
        if flow.first_chunk {
            dt += self.profile.overhead(&flow.class) + costs.dispatch;
            if !self.jbos {
                dt += VIRTUAL_LAYER_COST;
            }
            if !flow.cached {
                dt += self.profile.disk_seek;
            }
        }
        dt
    }

    fn complete(
        &mut self,
        flow: SimFlow,
        now: u64,
        stats: &mut SimStats,
        states: &mut [ClientState],
        arrivals: &mut BinaryHeap<Reverse<(u64, u64, usize)>>,
        seq: &mut u64,
    ) {
        let latency = (now - flow.started) as f64 / 1e9;
        {
            let c = stats.class_mut(&flow.class);
            c.completions += 1;
            c.latency_sum += latency;
            c.latencies.push(latency as f32);
        }
        *stats.per_model.entry(model_name(flow.model)).or_insert(0) += 1;
        if let Some(sel) = &mut self.selector {
            sel.report(flow.model, flow.total, latency.max(1e-9));
        }

        let state = &mut states[flow.client];
        let turnaround = ns(self.profile.turnaround(&flow.class));
        match state.spec.mode {
            RequestMode::WholeFile => {
                let key = file_key(flow.client, state.file_cursor);
                self.cache.observe_access(&key, state.spec.file_size);
                stats.class_mut(&flow.class).files += 1;
                state.file_cursor = (state.file_cursor + 1) % state.spec.working_set;
                arrivals.push(Reverse((now + turnaround, *seq, flow.client)));
                *seq += 1;
            }
            RequestMode::Blocks { .. } => {
                state.offset += flow.total;
                if state.offset >= state.spec.file_size {
                    // Finished a pass over the file.
                    let key = file_key(flow.client, state.file_cursor);
                    self.cache.observe_access(&key, state.spec.file_size);
                    stats.class_mut(&flow.class).files += 1;
                    state.offset = 0;
                    state.file_cursor = (state.file_cursor + 1) % state.spec.working_set;
                }
                arrivals.push(Reverse((now + turnaround, *seq, flow.client)));
                *seq += 1;
            }
        }
    }
}

fn file_key(client: usize, cursor: usize) -> String {
    format!("client{}-file{}", client, cursor)
}

fn meta_of(flow: &SimFlow, id: FlowId) -> FlowMeta {
    let mut m = FlowMeta::new(id, flow.class.clone(), Some(flow.total));
    m.predicted_cached = flow.cached;
    m
}

fn model_name(m: ModelKind) -> &'static str {
    match m {
        ModelKind::Events => "events",
        ModelKind::Threads => "threads",
        ModelKind::Processes => "processes",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::mbps;

    fn nest_fcfs_events(profile: PlatformProfile) -> SimServer {
        SimServer::nest(profile, SimPolicy::Fcfs, SimModel::Fixed(ModelKind::Events))
    }

    #[test]
    fn single_http_client_near_link_peak_when_cached() {
        let clients = vec![ClientSpec::file_client("http", 10 << 20)];
        let mut server = nest_fcfs_events(PlatformProfile::linux_gige());
        server.warm_cache(&clients);
        let stats = server.run(&clients, 5.0);
        let bw = mbps(stats.bandwidth("http"));
        assert!(bw > 28.0 && bw < 40.0, "http bandwidth {}", bw);
    }

    #[test]
    fn nfs_block_protocol_delivers_less_than_file_protocols() {
        let profile = PlatformProfile::linux_gige();
        let mut s1 = nest_fcfs_events(profile.clone());
        let http = ClientSpec::paper_single_protocol("http");
        s1.warm_cache(&http);
        let http_bw = s1.run(&http, 5.0).bandwidth("http");

        let mut s2 = nest_fcfs_events(profile);
        let nfs = ClientSpec::paper_single_protocol("nfs");
        s2.warm_cache(&nfs);
        let nfs_bw = s2.run(&nfs, 5.0).bandwidth("nfs");

        let ratio = nfs_bw / http_bw;
        assert!(
            ratio > 0.3 && ratio < 0.75,
            "nfs/http ratio {} (nfs {} MB/s, http {} MB/s)",
            ratio,
            mbps(nfs_bw),
            mbps(http_bw)
        );
    }

    #[test]
    fn uncached_files_pay_disk() {
        let clients = vec![ClientSpec::file_client("http", 10 << 20).with_working_set(100)];
        let mut cold = nest_fcfs_events(PlatformProfile::linux_gige());
        // Working set of 100×10 MB exceeds the 256 MB cache: mostly misses.
        let cold_bw = cold.run(&clients, 10.0).bandwidth("http");
        let warm_clients = vec![ClientSpec::file_client("http", 10 << 20)];
        let mut warm = nest_fcfs_events(PlatformProfile::linux_gige());
        warm.warm_cache(&warm_clients);
        let warm_bw = warm.run(&warm_clients, 10.0).bandwidth("http");
        assert!(
            cold_bw < warm_bw * 0.8,
            "cold {} vs warm {}",
            mbps(cold_bw),
            mbps(warm_bw)
        );
    }

    #[test]
    fn simulation_is_deterministic() {
        let clients = ClientSpec::paper_mixed_workload();
        let run = || {
            let mut s = nest_fcfs_events(PlatformProfile::linux_gige());
            s.warm_cache(&clients);
            let st = s.run(&clients, 3.0);
            (
                st.classes
                    .iter()
                    .map(|(k, v)| (k.clone(), v.bytes))
                    .collect::<std::collections::BTreeMap<_, _>>(),
                st.elapsed.to_bits(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn stride_policy_balances_mixed_workload() {
        let clients = ClientSpec::paper_mixed_workload();
        let mut s = SimServer::nest(
            PlatformProfile::linux_gige(),
            SimPolicy::Stride {
                tickets: vec![
                    ("chirp".into(), 100),
                    ("gridftp".into(), 100),
                    ("http".into(), 100),
                    ("nfs".into(), 100),
                ],
                work_conserving: true,
            },
            SimModel::Fixed(ModelKind::Events),
        );
        s.warm_cache(&clients);
        let stats = s.run(&clients, 5.0);
        // With equal tickets, chirp/http/gridftp should be near-equal.
        let chirp = stats.bandwidth("chirp");
        let http = stats.bandwidth("http");
        assert!(
            (chirp / http - 1.0).abs() < 0.15,
            "chirp {} http {}",
            mbps(chirp),
            mbps(http)
        );
    }

    #[test]
    fn adaptive_assigns_all_models_then_biases() {
        let clients = vec![ClientSpec::file_client("chirp", 1 << 20)];
        let mut s = SimServer::nest(
            PlatformProfile::linux_gige(),
            SimPolicy::Fcfs,
            SimModel::Adaptive(vec![ModelKind::Events, ModelKind::Threads]),
        );
        s.warm_cache(&clients);
        let stats = s.run(&clients, 5.0);
        assert!(stats.per_model.get("events").copied().unwrap_or(0) > 0);
        assert!(stats.per_model.get("threads").copied().unwrap_or(0) > 0);
    }
}
