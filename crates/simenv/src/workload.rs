//! Workload descriptions: the client side of the simulation.
//!
//! The paper's §7.1–7.2 workload is "four clients request 10 MB files for
//! each protocol". A client is a closed loop: it keeps one request
//! outstanding, issuing the next as soon as the previous completes (file
//! protocols) or the next block as soon as the previous block returns
//! plus a turnaround gap (NFS). That closed-loop block behaviour is what
//! limits NFS bandwidth and what makes the 1:1:1:4 proportional target in
//! Figure 4 unreachable.

/// How a client's protocol maps onto server requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestMode {
    /// One request per whole file (Chirp, HTTP, FTP, GridFTP).
    WholeFile,
    /// One request per block; the client walks the file block by block
    /// (NFS). The payload is the block size.
    Blocks {
        /// Block size in bytes (8192 for NFSv2).
        block: u64,
    },
}

/// One simulated client.
#[derive(Debug, Clone)]
pub struct ClientSpec {
    /// Protocol class ("chirp", "gridftp", "http", "nfs", "ftp").
    pub protocol: String,
    /// File size requested repeatedly.
    pub file_size: u64,
    /// Request mode.
    pub mode: RequestMode,
    /// How many distinct files this client cycles through (affects cache
    /// behaviour: 1 = always the same hot file).
    pub working_set: usize,
}

impl ClientSpec {
    /// A whole-file client for the given protocol.
    pub fn file_client(protocol: &str, file_size: u64) -> Self {
        Self {
            protocol: protocol.to_owned(),
            file_size,
            mode: RequestMode::WholeFile,
            working_set: 1,
        }
    }

    /// An NFS block client (8 KB NFSv2 blocks).
    pub fn nfs_client(file_size: u64) -> Self {
        Self {
            protocol: "nfs".to_owned(),
            file_size,
            mode: RequestMode::Blocks { block: 8192 },
            working_set: 1,
        }
    }

    /// Spreads the client over a working set of `n` files.
    pub fn with_working_set(mut self, n: usize) -> Self {
        self.working_set = n.max(1);
        self
    }

    /// The paper's Figure 3/4 mixed workload: four clients per protocol,
    /// 10 MB files, over the four protocols NeST compares.
    pub fn paper_mixed_workload() -> Vec<ClientSpec> {
        let mut clients = Vec::new();
        for proto in ["chirp", "gridftp", "http"] {
            for _ in 0..4 {
                clients.push(ClientSpec::file_client(proto, 10 << 20));
            }
        }
        for _ in 0..4 {
            clients.push(ClientSpec::nfs_client(10 << 20));
        }
        clients
    }

    /// The mixed workload with four S3 clients riding along — the
    /// beyond-paper variant proving the plugin front schedules like the
    /// native five. S3 clients are whole-file request/response, like
    /// HTTP with a costlier per-request envelope.
    pub fn mixed_workload_with_s3() -> Vec<ClientSpec> {
        let mut clients = Self::paper_mixed_workload();
        for _ in 0..4 {
            clients.push(ClientSpec::file_client("s3", 10 << 20));
        }
        clients
    }

    /// A single-protocol slice of the paper workload.
    pub fn paper_single_protocol(proto: &str) -> Vec<ClientSpec> {
        (0..4)
            .map(|_| {
                if proto == "nfs" {
                    ClientSpec::nfs_client(10 << 20)
                } else {
                    ClientSpec::file_client(proto, 10 << 20)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_workload_shape() {
        let w = ClientSpec::paper_mixed_workload();
        assert_eq!(w.len(), 16);
        assert_eq!(w.iter().filter(|c| c.protocol == "nfs").count(), 4);
        assert!(w
            .iter()
            .filter(|c| c.protocol == "nfs")
            .all(|c| matches!(c.mode, RequestMode::Blocks { block: 8192 })));
        assert!(w
            .iter()
            .filter(|c| c.protocol != "nfs")
            .all(|c| c.mode == RequestMode::WholeFile && c.file_size == 10 << 20));
    }

    #[test]
    fn s3_extension_rides_along() {
        let w = ClientSpec::mixed_workload_with_s3();
        assert_eq!(w.len(), 20);
        assert_eq!(w.iter().filter(|c| c.protocol == "s3").count(), 4);
        assert!(w
            .iter()
            .filter(|c| c.protocol == "s3")
            .all(|c| c.mode == RequestMode::WholeFile && c.file_size == 10 << 20));
    }

    #[test]
    fn single_protocol_slice() {
        let w = ClientSpec::paper_single_protocol("http");
        assert_eq!(w.len(), 4);
        assert!(w.iter().all(|c| c.protocol == "http"));
    }
}
