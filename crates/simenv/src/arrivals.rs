//! Arrival-process and size generators for the scale lab.
//!
//! The 10k-session scale benchmark (`crates/bench/src/bin/scale.rs`) and
//! the simulated twin both need the same two ingredients the paper's
//! grid workloads exhibit:
//!
//! * **Flash crowds** — a stampede of sessions arriving in a short burst
//!   on top of a steady base rate (a batch system releasing a wave of
//!   jobs that all open their input files at once).
//! * **Heavy-tailed file sizes** — most files are small, a few are
//!   enormous; a bounded Pareto distribution is the standard model.
//!
//! Everything here is seeded and deterministic: the same seed yields the
//! same sequence on every host, so real-mode runs and the simenv twin
//! draw identical workloads and benchmark reps are reproducible. The
//! generator is a SplitMix64 PRNG — tiny, fast, and dependency-free.

/// SplitMix64: a small deterministic PRNG with a 64-bit state.
///
/// Good enough statistical quality for workload generation, trivially
/// seedable, and — critically — identical output on every platform.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform double in `[0, 1)` built from the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform integer in `[0, n)`. `n` must be non-zero.
    pub fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift range reduction; bias is negligible for the
        // workload sizes used here and the result stays deterministic.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// Bounded Pareto file-size sampler.
///
/// Samples sizes in `[min, max]` with tail index `alpha` via inverse
/// transform sampling. `alpha` around 1.1–1.3 matches measured grid /
/// web file-size distributions: mostly-small files with a heavy tail
/// that dominates total bytes.
#[derive(Debug, Clone)]
pub struct ParetoSizes {
    min: f64,
    max: f64,
    alpha: f64,
}

impl ParetoSizes {
    /// A bounded Pareto over `[min, max]` bytes with tail index `alpha`.
    ///
    /// `min` is clamped to at least 1 and `max` to at least `min`;
    /// `alpha` must be positive.
    pub fn new(min: u64, max: u64, alpha: f64) -> Self {
        assert!(alpha > 0.0, "pareto tail index must be positive");
        let min = min.max(1) as f64;
        let max = (max as f64).max(min);
        Self { min, max, alpha }
    }

    /// Draws one file size in bytes.
    pub fn sample(&self, rng: &mut SplitMix64) -> u64 {
        let u = rng.next_f64();
        // Inverse CDF of the bounded Pareto: interpolate between the
        // min^-a and max^-a quantiles, then invert the power.
        let la = self.min.powf(-self.alpha);
        let ha = self.max.powf(-self.alpha);
        let x = (la - u * (la - ha)).powf(-1.0 / self.alpha);
        (x as u64).clamp(self.min as u64, self.max as u64)
    }

    /// A size stream: `n` draws from one seeded generator.
    pub fn stream(&self, seed: u64, n: usize) -> Vec<u64> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| self.sample(&mut rng)).collect()
    }
}

/// Flash-crowd arrival-time generator.
///
/// Produces arrival offsets (in virtual microseconds from t=0) for `n`
/// sessions: a fraction arrives as a dense burst — the flash crowd —
/// near `burst_at_us`, the rest arrive uniformly over `[0, span_us)`
/// as the base load. Offsets are returned sorted ascending, ready to
/// drive an open-loop arrival schedule.
#[derive(Debug, Clone)]
pub struct FlashCrowd {
    /// Total schedule span in virtual microseconds.
    pub span_us: u64,
    /// Where the crowd spike lands within the span.
    pub burst_at_us: u64,
    /// Width of the spike (all burst arrivals land in this window).
    pub burst_width_us: u64,
    /// Fraction of sessions that belong to the spike, in `[0, 1]`.
    pub burst_fraction: f64,
}

impl FlashCrowd {
    /// A crowd profile: `burst_fraction` of arrivals land in a
    /// `burst_width_us` window at `burst_at_us`; the rest spread
    /// uniformly over `span_us`.
    pub fn new(span_us: u64, burst_at_us: u64, burst_width_us: u64, burst_fraction: f64) -> Self {
        Self {
            span_us: span_us.max(1),
            burst_at_us,
            burst_width_us: burst_width_us.max(1),
            burst_fraction: burst_fraction.clamp(0.0, 1.0),
        }
    }

    /// Arrival offsets for `n` sessions, sorted ascending.
    pub fn arrivals(&self, seed: u64, n: usize) -> Vec<u64> {
        let mut rng = SplitMix64::new(seed);
        let burst_n = (n as f64 * self.burst_fraction).round() as usize;
        let mut out = Vec::with_capacity(n);
        for _ in 0..burst_n.min(n) {
            let t = self.burst_at_us + rng.next_below(self.burst_width_us);
            out.push(t.min(self.span_us.saturating_sub(1)));
        }
        while out.len() < n {
            out.push(rng.next_below(self.span_us));
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..64).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..64).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = SplitMix64::new(43);
            (0..64).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b, "same seed must replay the same stream");
        assert_ne!(a, c, "different seeds must diverge");
    }

    #[test]
    fn uniform_outputs_stay_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
            assert!(r.next_below(17) < 17);
        }
    }

    #[test]
    fn pareto_sizes_are_bounded_and_heavy_tailed() {
        let dist = ParetoSizes::new(4 << 10, 256 << 20, 1.2);
        let sizes = dist.stream(99, 20_000);
        assert!(sizes.iter().all(|&s| (4 << 10..=256 << 20).contains(&s)));
        // Heavy tail: the median sits far below the mean.
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2] as f64;
        let mean = sizes.iter().map(|&s| s as f64).sum::<f64>() / sizes.len() as f64;
        assert!(
            mean > 2.0 * median,
            "expected heavy tail: mean {mean} vs median {median}"
        );
    }

    #[test]
    fn pareto_stream_is_deterministic() {
        let dist = ParetoSizes::new(1 << 10, 64 << 20, 1.1);
        assert_eq!(dist.stream(5, 1000), dist.stream(5, 1000));
        assert_ne!(dist.stream(5, 1000), dist.stream(6, 1000));
    }

    #[test]
    fn flash_crowd_concentrates_the_burst() {
        let crowd = FlashCrowd::new(10_000_000, 4_000_000, 100_000, 0.6);
        let arr = crowd.arrivals(11, 10_000);
        assert_eq!(arr.len(), 10_000);
        assert!(arr.windows(2).all(|w| w[0] <= w[1]), "sorted ascending");
        assert!(arr.iter().all(|&t| t < 10_000_000));
        // The burst window holds ~60% of arrivals; uniform background
        // would put only ~1% there.
        let in_burst = arr
            .iter()
            .filter(|&&t| (4_000_000..4_100_000).contains(&t))
            .count();
        assert!(
            in_burst as f64 > 0.55 * arr.len() as f64,
            "burst window held {in_burst} of {}",
            arr.len()
        );
    }

    #[test]
    fn flash_crowd_is_deterministic_per_seed() {
        let crowd = FlashCrowd::new(1_000_000, 300_000, 50_000, 0.5);
        assert_eq!(crowd.arrivals(1, 500), crowd.arrivals(1, 500));
        assert_ne!(crowd.arrivals(1, 500), crowd.arrivals(2, 500));
    }

    #[test]
    fn degenerate_parameters_are_clamped() {
        // Zero-width span / burst and out-of-range fractions must not
        // panic or divide by zero.
        let crowd = FlashCrowd::new(0, 0, 0, 2.0);
        let arr = crowd.arrivals(3, 10);
        assert_eq!(arr.len(), 10);
        assert!(arr.iter().all(|&t| t == 0));
        let dist = ParetoSizes::new(0, 0, 1.0);
        let mut rng = SplitMix64::new(0);
        assert_eq!(dist.sample(&mut rng), 1);
    }
}
