//! # nest-simenv
//!
//! A deterministic simulation substrate for regenerating the paper's
//! evaluation (§7) on any host. The authors measured on Linux 2.2.19 /
//! Solaris 8 clusters with IBM 9LZX disks and Gigabit Ethernet; per the
//! substitution policy in `DESIGN.md`, this crate models those platforms
//! with calibrated cost profiles and drives the *same* policy code the
//! real server runs:
//!
//! * the scheduler implementations from `nest-transfer::sched`
//!   (FCFS / stride / cache-aware),
//! * the adaptive concurrency selector from `nest-transfer::adaptive`,
//! * the gray-box cache model from `nest-transfer::cache`.
//!
//! What is simulated is only the *cost* of moving bytes (network, disk,
//! per-model CPU overheads, quota bookkeeping) under a virtual clock, so
//! results are exactly reproducible and host-independent, while the
//! decisions being evaluated are made by production code.
//!
//! * [`platform`] — calibrated platform profiles (Linux/GigE,
//!   Solaris/100 Mbit) and per-concurrency-model cost tables.
//! * [`workload`] — client request streams: file-based protocols issue
//!   whole-file requests; NFS issues one 8 KB block at a time with a
//!   client turnaround gap (the behaviour behind Figures 3 and 4).
//! * [`server`] — the NeST appliance model: one shared link, one
//!   scheduler over all protocols.
//! * [`jbos`] — the JBOS model: one independent FCFS server per protocol,
//!   sharing the host by OS time-slicing.
//! * [`writepath`] — the Figure 6 write-path model (buffer cache
//!   absorption, disk-bound tail, quota bookkeeping overhead).
//! * [`stats`] — bandwidth/latency accounting.
//! * [`arrivals`] — seeded flash-crowd arrival and bounded-Pareto size
//!   generators shared by the 10k-session scale lab (`bench/scale`) and
//!   its simulated twin.

pub mod arrivals;
pub mod jbos;
pub mod platform;
pub mod server;
pub mod stats;
pub mod workload;
pub mod writepath;

pub use arrivals::{FlashCrowd, ParetoSizes, SplitMix64};
pub use jbos::SimJbos;
pub use platform::PlatformProfile;
pub use server::{SimPolicy, SimServer};
pub use stats::SimStats;
pub use workload::{ClientSpec, RequestMode};
pub use writepath::{write_bandwidth, WritePathModel};
