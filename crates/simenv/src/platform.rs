//! Calibrated platform profiles.
//!
//! Calibration targets are the *observed* figures in the paper, not raw
//! hardware specs: the measured in-cache service peak on the Linux/GigE
//! cluster is ~35 MB/s (Figure 3), so the link+CPU budget is set to
//! saturate near there; the Solaris/100 Mbit cluster serves 1 KB requests
//! at millisecond-scale latencies (Figure 5, left).

use nest_transfer::ModelKind;

/// Per-concurrency-model costs (seconds).
#[derive(Debug, Clone, Copy)]
pub struct ModelCosts {
    /// One-time cost to start serving a request under this model
    /// (event registration / thread spawn / process dispatch).
    pub dispatch: f64,
    /// CPU charged per chunk moved (context switches, framing).
    pub per_chunk: f64,
    /// Whether disk and network transfers overlap (threads and processes
    /// overlap via blocking I/O in separate contexts; a single-threaded
    /// event loop serializes them).
    pub overlapped_io: bool,
}

/// A simulated host + OS.
#[derive(Debug, Clone)]
pub struct PlatformProfile {
    /// Profile name.
    pub name: &'static str,
    /// Deliverable network bandwidth, bytes/second.
    pub net_bps: f64,
    /// Sustained disk bandwidth, bytes/second.
    pub disk_bps: f64,
    /// Average disk positioning cost per file (seek + rotation).
    pub disk_seek: f64,
    /// Per-request protocol-processing cost, by protocol class.
    /// Block protocols (NFS) pay this per *block* request, which is why
    /// their delivered bandwidth is lower — the Figure 3 effect.
    pub proto_overhead: fn(&str) -> f64,
    /// Per-chunk (64 KB) data-channel cost, by protocol class. GridFTP
    /// pays MODE E framing plus GSI integrity per block, which is why its
    /// delivered bandwidth sits near half of the cheap protocols' in
    /// Figure 3.
    pub proto_chunk: fn(&str) -> f64,
    /// Per-model costs.
    pub costs: fn(ModelKind) -> ModelCosts,
    /// Modeled kernel buffer cache size in bytes.
    pub cache_bytes: u64,
    /// Client-side turnaround between a response and the client's next
    /// request, by protocol class. File clients loop almost immediately;
    /// an NFS client pays a kernel RPC round trip per block — the request
    /// scarcity behind Figure 4's 1:1:1:4 result.
    pub client_turnaround: fn(&str) -> f64,
}

impl PlatformProfile {
    /// The paper's main testbed: Linux 2.2.19, IBM 9LZX disks, GigE.
    pub fn linux_gige() -> Self {
        fn proto_overhead(class: &str) -> f64 {
            match class {
                // NFS pays RPC decode + reply per 8 KB block.
                "nfs" => 180e-6,
                // GridFTP pays GSI/framing per request and per-connection
                // setup amortized here.
                "gridftp" => 220e-6,
                "ftp" => 80e-6,
                // S3 is HTTP plus an auth-tag check and an XML reply
                // envelope per request.
                "s3" => 55e-6,
                // Chirp and HTTP are cheap single-line protocols.
                _ => 30e-6,
            }
        }
        fn proto_chunk(class: &str) -> f64 {
            match class {
                // MODE E block headers + GSI integrity per 64 KB chunk.
                "gridftp" => 1.65e-3,
                "ftp" => 60e-6,
                _ => 0.0,
            }
        }
        fn costs(model: ModelKind) -> ModelCosts {
            match model {
                ModelKind::Events => ModelCosts {
                    dispatch: 15e-6,
                    per_chunk: 6e-6,
                    overlapped_io: false,
                },
                ModelKind::Threads => ModelCosts {
                    dispatch: 180e-6,
                    per_chunk: 14e-6,
                    overlapped_io: true,
                },
                ModelKind::Processes => ModelCosts {
                    dispatch: 900e-6,
                    per_chunk: 22e-6,
                    overlapped_io: true,
                },
            }
        }
        fn client_turnaround(class: &str) -> f64 {
            match class {
                // Kernel RPC stack + wire round trip per 8 KB block.
                "nfs" => 1.6e-3,
                _ => 120e-6,
            }
        }
        Self {
            name: "linux-gige",
            // Calibrated so in-cache file service peaks near the paper's
            // ~35 MB/s (protocol + chunk CPU eat the rest of the wire).
            net_bps: 38.0e6,
            disk_bps: 22.0e6,
            disk_seek: 9e-3,
            proto_overhead,
            proto_chunk,
            costs,
            cache_bytes: 256 << 20,
            client_turnaround,
        }
    }

    /// The paper's second testbed: Netra T1s, Solaris 8, 100 Mbit/s.
    /// Thread dispatch on 2002-era Solaris was markedly more expensive
    /// than the event path, which is what Figure 5 (left) shows for 1 KB
    /// in-cache requests.
    pub fn solaris_100mbit() -> Self {
        fn proto_overhead(class: &str) -> f64 {
            match class {
                "nfs" => 200e-6,
                "gridftp" => 350e-6,
                "s3" => 170e-6,
                _ => 120e-6,
            }
        }
        fn proto_chunk(class: &str) -> f64 {
            match class {
                "gridftp" => 3.0e-3,
                "ftp" => 120e-6,
                _ => 0.0,
            }
        }
        fn costs(model: ModelKind) -> ModelCosts {
            match model {
                ModelKind::Events => ModelCosts {
                    dispatch: 60e-6,
                    per_chunk: 25e-6,
                    overlapped_io: false,
                },
                ModelKind::Threads => ModelCosts {
                    dispatch: 700e-6,
                    per_chunk: 60e-6,
                    overlapped_io: true,
                },
                ModelKind::Processes => ModelCosts {
                    dispatch: 4000e-6,
                    per_chunk: 120e-6,
                    overlapped_io: true,
                },
            }
        }
        fn client_turnaround(class: &str) -> f64 {
            match class {
                "nfs" => 2.2e-3,
                _ => 250e-6,
            }
        }
        Self {
            name: "solaris-100mbit",
            net_bps: 11.0e6,
            disk_bps: 15.0e6,
            disk_seek: 12e-3,
            proto_overhead,
            proto_chunk,
            costs,
            cache_bytes: 128 << 20,
            client_turnaround,
        }
    }

    /// Per-request protocol cost for a class.
    pub fn overhead(&self, class: &str) -> f64 {
        (self.proto_overhead)(class)
    }

    /// Per-chunk data-channel cost for a class.
    pub fn chunk_overhead(&self, class: &str) -> f64 {
        (self.proto_chunk)(class)
    }

    /// Client turnaround for a class.
    pub fn turnaround(&self, class: &str) -> f64 {
        (self.client_turnaround)(class)
    }

    /// Model costs lookup.
    pub fn model_costs(&self, model: ModelKind) -> ModelCosts {
        (self.costs)(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linux_profile_sane() {
        let p = PlatformProfile::linux_gige();
        assert!(p.net_bps > p.disk_bps);
        assert!(p.overhead("nfs") > p.overhead("chirp"));
        assert!(p.overhead("gridftp") > p.overhead("http"));
        // S3 costs a little more than plain HTTP but far less than the
        // block/framing-heavy protocols.
        assert!(p.overhead("s3") > p.overhead("http"));
        assert!(p.overhead("s3") < p.overhead("gridftp"));
        let ev = p.model_costs(ModelKind::Events);
        let th = p.model_costs(ModelKind::Threads);
        let pr = p.model_costs(ModelKind::Processes);
        assert!(ev.dispatch < th.dispatch && th.dispatch < pr.dispatch);
        assert!(!ev.overlapped_io && th.overlapped_io);
    }

    #[test]
    fn solaris_thread_dispatch_much_costlier_than_events() {
        let p = PlatformProfile::solaris_100mbit();
        let ev = p.model_costs(ModelKind::Events);
        let th = p.model_costs(ModelKind::Threads);
        assert!(th.dispatch / ev.dispatch > 10.0);
    }
}
