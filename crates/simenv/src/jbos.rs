//! The JBOS model: independent single-protocol servers on one host.
//!
//! The operating system time-slices the servers fairly, so at chunk
//! granularity the host round-robins between *servers* (protocol classes),
//! and each server serves its own queue FIFO. That is exactly a per-class
//! round-robin discipline — which is why, in the paper's Figure 3 mixed
//! workload, JBOS delivers NFS *more* bandwidth than FIFO NeST (the OS
//! shares the machine; NeST's FIFO lets file transfers crowd the block
//! protocol out), yet JBOS can never implement a cross-protocol
//! proportional policy (Figure 4).

use crate::platform::PlatformProfile;
use crate::server::{SimModel, SimServer};
use crate::stats::SimStats;
use crate::workload::ClientSpec;
use nest_transfer::flow::{FlowId, FlowMeta};
use nest_transfer::sched::Scheduler;
use nest_transfer::ModelKind;
use std::collections::{HashMap, VecDeque};

/// Fair sharing across protocol classes; FIFO within each class. Models N
/// independent FCFS servers time-sliced fairly by the OS: whenever several
/// servers have work, the host's capacity divides evenly between them, so
/// the scheduler picks the runnable class with the least delivered bytes
/// (deficit round-robin — byte-fair, which at equal chunk cost is
/// time-fair).
#[derive(Debug, Default)]
pub struct PerClassRoundRobin {
    queues: Vec<(String, VecDeque<FlowId>)>,
    class_of: HashMap<FlowId, String>,
    delivered: HashMap<String, u64>,
}

impl PerClassRoundRobin {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    fn queue_mut(&mut self, class: &str) -> &mut VecDeque<FlowId> {
        if let Some(idx) = self.queues.iter().position(|(c, _)| c == class) {
            return &mut self.queues[idx].1;
        }
        self.queues.push((class.to_owned(), VecDeque::new()));
        &mut self.queues.last_mut().unwrap().1
    }
}

impl Scheduler for PerClassRoundRobin {
    fn admit(&mut self, meta: &FlowMeta) {
        self.queue_mut(&meta.class).push_back(meta.id);
        self.class_of.insert(meta.id, meta.class.clone());
    }

    fn next(&mut self) -> Option<FlowId> {
        self.queues
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .min_by_key(|(class, _)| {
                (
                    self.delivered.get(class).copied().unwrap_or(0),
                    class.clone(),
                )
            })
            .and_then(|(_, q)| q.front().copied())
    }

    fn account(&mut self, id: FlowId, bytes: u64) {
        if let Some(class) = self.class_of.get(&id) {
            *self.delivered.entry(class.clone()).or_insert(0) += bytes;
        }
    }

    fn done(&mut self, id: FlowId) {
        if let Some(class) = self.class_of.remove(&id) {
            if let Some(idx) = self.queues.iter().position(|(c, _)| c == &class) {
                self.queues[idx].1.retain(|f| *f != id);
            }
        }
    }

    fn runnable(&self) -> usize {
        self.queues.iter().map(|(_, q)| q.len()).sum()
    }
}

/// The JBOS deployment model.
pub struct SimJbos {
    inner: SimServer,
}

impl SimJbos {
    /// Builds the JBOS model: per-class FCFS servers, OS time-slicing.
    /// Native servers are modelled with the cheap (events-like) dispatch
    /// path: the paper's comparators are tuned implementations — the
    /// in-kernel nfsd most of all — whose per-request costs match or beat
    /// NeST's best model, which is what lets Figure 3 conclude that NeST
    /// "incurs little overhead compared to native implementations".
    pub fn new(profile: PlatformProfile) -> Self {
        Self {
            inner: SimServer::build(
                profile,
                Box::new(PerClassRoundRobin::new()),
                SimModel::Fixed(ModelKind::Events),
                true,
            ),
        }
    }

    /// Pre-warms the cache (see [`SimServer::warm_cache`]).
    pub fn warm_cache(&mut self, clients: &[ClientSpec]) {
        self.inner.warm_cache(clients);
    }

    /// Runs the workload for `duration` virtual seconds.
    pub fn run(&mut self, clients: &[ClientSpec], duration: f64) -> SimStats {
        self.inner.run(clients, duration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::mbps;

    #[test]
    fn byte_fair_across_classes() {
        let mut s = PerClassRoundRobin::new();
        let m = |id: u64, class: &str| FlowMeta::new(FlowId(id), class, Some(1024));
        s.admit(&m(1, "http"));
        s.admit(&m(2, "nfs"));
        s.admit(&m(3, "http"));
        // http moves 64 KB per pick, nfs 8 KB: byte-fairness means nfs is
        // picked ~8x more often.
        let mut bytes: std::collections::HashMap<&str, u64> = Default::default();
        for _ in 0..900 {
            let id = s.next().unwrap();
            let (class, chunk) = if id == FlowId(2) {
                ("nfs", 8 * 1024)
            } else {
                ("http", 64 * 1024)
            };
            s.account(id, chunk);
            *bytes.entry(class).or_insert(0) += chunk;
        }
        let ratio = *bytes.get("http").unwrap() as f64 / *bytes.get("nfs").unwrap() as f64;
        assert!((ratio - 1.0).abs() < 0.1, "byte ratio {}", ratio);
        s.done(FlowId(1));
        s.done(FlowId(2));
        s.done(FlowId(3));
        assert_eq!(s.next(), None);
        assert_eq!(s.runnable(), 0);
    }

    #[test]
    fn jbos_mixed_workload_gives_nfs_more_than_nest_fifo() {
        let clients = ClientSpec::paper_mixed_workload();
        let mut jbos = SimJbos::new(PlatformProfile::linux_gige());
        jbos.warm_cache(&clients);
        let jbos_stats = jbos.run(&clients, 5.0);

        let mut nest = SimServer::nest(
            PlatformProfile::linux_gige(),
            crate::server::SimPolicy::Fcfs,
            SimModel::Fixed(ModelKind::Events),
        );
        nest.warm_cache(&clients);
        let nest_stats = nest.run(&clients, 5.0);

        let jbos_nfs = jbos_stats.bandwidth("nfs");
        let nest_nfs = nest_stats.bandwidth("nfs");
        assert!(
            jbos_nfs > nest_nfs,
            "JBOS nfs {} MB/s should exceed NeST-FIFO nfs {} MB/s",
            mbps(jbos_nfs),
            mbps(nest_nfs)
        );
        // Totals should be in the same ballpark (paper: 33–35 for both).
        let ratio = jbos_stats.total_bandwidth() / nest_stats.total_bandwidth();
        assert!(ratio > 0.7 && ratio < 1.4, "total ratio {}", ratio);
    }
}
