//! Property tests on the simulation substrate: conservation, determinism
//! and sanity bounds must hold for *any* workload, not just the paper's.

use nest_simenv::server::{SimModel, SimPolicy};
use nest_simenv::workload::RequestMode;
use nest_simenv::{ClientSpec, PlatformProfile, SimJbos, SimServer};
use nest_transfer::ModelKind;
use proptest::prelude::*;
use std::collections::BTreeMap;

fn arb_client() -> impl Strategy<Value = ClientSpec> {
    (
        prop_oneof![
            Just("chirp"),
            Just("gridftp"),
            Just("http"),
            Just("ftp"),
            Just("nfs")
        ],
        1u64..(4 << 20),
        1usize..4,
    )
        .prop_map(|(proto, file_size, working_set)| {
            let spec = if proto == "nfs" {
                ClientSpec::nfs_client(file_size)
            } else {
                ClientSpec::file_client(proto, file_size)
            };
            spec.with_working_set(working_set)
        })
}

fn arb_workload() -> impl Strategy<Value = Vec<ClientSpec>> {
    prop::collection::vec(arb_client(), 1..8)
}

fn arb_policy() -> impl Strategy<Value = SimPolicy> {
    prop_oneof![
        Just(SimPolicy::Fcfs),
        Just(SimPolicy::CacheAware),
        prop::collection::vec(1u32..8, 5).prop_map(|t| SimPolicy::Stride {
            tickets: ["chirp", "gridftp", "http", "ftp", "nfs"]
                .iter()
                .zip(t)
                .map(|(c, w)| ((*c).to_owned(), w * 100))
                .collect(),
            work_conserving: true,
        }),
    ]
}

fn arb_model() -> impl Strategy<Value = SimModel> {
    prop_oneof![
        Just(SimModel::Fixed(ModelKind::Events)),
        Just(SimModel::Fixed(ModelKind::Threads)),
        Just(SimModel::Fixed(ModelKind::Processes)),
        Just(SimModel::Adaptive(vec![
            ModelKind::Events,
            ModelKind::Threads
        ])),
    ]
}

fn snapshot(stats: &nest_simenv::SimStats) -> (BTreeMap<String, (u64, u64)>, u64) {
    (
        stats
            .classes
            .iter()
            .map(|(k, v)| (k.clone(), (v.bytes, v.completions)))
            .collect(),
        stats.elapsed.to_bits(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Bit-identical results across runs for any workload/policy/model.
    #[test]
    fn any_simulation_is_deterministic(
        clients in arb_workload(),
        policy in arb_policy(),
        model in arb_model(),
        warm in any::<bool>(),
    ) {
        let run = || {
            let mut s = SimServer::nest(PlatformProfile::linux_gige(), policy.clone(), model.clone());
            if warm {
                s.warm_cache(&clients);
            }
            snapshot(&s.run(&clients, 1.0))
        };
        prop_assert_eq!(run(), run());
    }

    /// Physical sanity: no class exceeds the link rate, elapsed time is
    /// bounded by the requested duration, and only admitted protocols
    /// appear in the stats.
    #[test]
    fn delivered_bandwidth_respects_the_link(
        clients in arb_workload(),
        policy in arb_policy(),
    ) {
        let profile = PlatformProfile::linux_gige();
        let net = profile.net_bps;
        let mut s = SimServer::nest(profile, policy, SimModel::Fixed(ModelKind::Events));
        s.warm_cache(&clients);
        let stats = s.run(&clients, 2.0);
        prop_assert!(stats.elapsed <= 2.0 + 1e-6);
        let protos: std::collections::HashSet<&str> =
            clients.iter().map(|c| c.protocol.as_str()).collect();
        for (class, cs) in &stats.classes {
            prop_assert!(protos.contains(class.as_str()), "unknown class {}", class);
            if stats.elapsed > 0.1 {
                let bw = cs.bytes as f64 / stats.elapsed;
                prop_assert!(
                    bw <= net * 1.05,
                    "class {} bandwidth {} exceeds link {}",
                    class, bw, net
                );
            }
        }
    }

    /// Block-mode accounting: every completed NFS file pass delivers
    /// exactly file_size bytes (completions × block accounting adds up).
    #[test]
    fn nfs_file_passes_account_exactly(
        file_size in 8192u64..1_000_000,
        duration in 1.0f64..3.0,
    ) {
        let clients = vec![ClientSpec::nfs_client(file_size)];
        let mut s = SimServer::nest(
            PlatformProfile::linux_gige(),
            SimPolicy::Fcfs,
            SimModel::Fixed(ModelKind::Events),
        );
        s.warm_cache(&clients);
        let stats = s.run(&clients, duration);
        let c = &stats.classes["nfs"];
        // Bytes delivered ≥ completed-file bytes; the tail is a partial
        // pass in flight when the clock ran out.
        prop_assert!(c.bytes >= c.files * file_size);
        prop_assert!(c.bytes < (c.files + 1) * file_size + 8192);
    }

    /// JBOS and NeST deliver comparable totals on any single-protocol
    /// workload (the Figure 3 equivalence, generalized).
    #[test]
    fn jbos_nest_equivalence_generalizes(
        proto in prop_oneof![Just("chirp"), Just("http"), Just("ftp")],
        file_size in 65_536u64..(4 << 20),
        n_clients in 1usize..6,
    ) {
        let clients: Vec<ClientSpec> = (0..n_clients)
            .map(|_| ClientSpec::file_client(proto, file_size))
            .collect();
        let mut nest = SimServer::nest(
            PlatformProfile::linux_gige(),
            SimPolicy::Fcfs,
            SimModel::Fixed(ModelKind::Events),
        );
        nest.warm_cache(&clients);
        let n = nest.run(&clients, 2.0).bandwidth(proto);
        let mut jbos = SimJbos::new(PlatformProfile::linux_gige());
        jbos.warm_cache(&clients);
        let j = jbos.run(&clients, 2.0).bandwidth(proto);
        let ratio = n / j.max(1.0);
        prop_assert!(
            (0.85..1.15).contains(&ratio),
            "{} x{} @{}: nest/jbos {}",
            proto, n_clients, file_size, ratio
        );
    }

    /// A client's block mode never yields blocks beyond the file size.
    #[test]
    fn client_spec_modes_consistent(spec in arb_client()) {
        match spec.mode {
            RequestMode::WholeFile => prop_assert!(spec.file_size > 0),
            RequestMode::Blocks { block } => {
                prop_assert_eq!(block, 8192);
                prop_assert!(spec.file_size > 0);
            }
        }
    }
}
