//! Runtime values produced by ClassAd expression evaluation.

use crate::ClassAd;
use std::cmp::Ordering;
use std::fmt;

/// The result of evaluating a ClassAd expression.
///
/// ClassAds are dynamically typed with two distinguished non-values:
/// `Undefined` (an attribute reference did not resolve) and `Error` (a type
/// error or other fault occurred). Strict operators propagate both.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// The distinguished "undefined" value.
    Undefined,
    /// The distinguished "error" value.
    Error,
    /// A boolean.
    Bool(bool),
    /// A 64-bit signed integer.
    Int(i64),
    /// A double-precision real.
    Real(f64),
    /// A string.
    Str(String),
    /// A list of values.
    List(Vec<Value>),
    /// A nested ClassAd.
    Ad(Box<ClassAd>),
}

impl Value {
    /// Constructs a string value.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// True for `Undefined`.
    pub fn is_undefined(&self) -> bool {
        matches!(self, Value::Undefined)
    }

    /// True for `Error`.
    pub fn is_error(&self) -> bool {
        matches!(self, Value::Error)
    }

    /// True for `Undefined` or `Error` (values that strict operators
    /// propagate).
    pub fn is_exceptional(&self) -> bool {
        self.is_undefined() || self.is_error()
    }

    /// Extracts a boolean, if this value is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Extracts an integer, if this value is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Extracts a numeric value as f64 (ints promote).
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Real(r) => Some(*r),
            _ => None,
        }
    }

    /// Extracts a string slice, if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The ClassAd type name of this value, used in diagnostics and by the
    /// `is`/`isnt` identity operators.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Undefined => "undefined",
            Value::Error => "error",
            Value::Bool(_) => "boolean",
            Value::Int(_) => "integer",
            Value::Real(_) => "real",
            Value::Str(_) => "string",
            Value::List(_) => "list",
            Value::Ad(_) => "classad",
        }
    }

    /// Numeric comparison helper implementing ClassAd ordering semantics:
    /// numbers compare numerically with int→real promotion; strings compare
    /// case-insensitively (per the ClassAd spec for `==` etc.); booleans
    /// compare as false < true. Returns `None` when the two values are not
    /// comparable (which evaluates to `Error` for ordering operators).
    pub fn partial_cmp_classad(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Int(a), Value::Real(b)) => (*a as f64).partial_cmp(b),
            (Value::Real(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)),
            (Value::Real(a), Value::Real(b)) => a.partial_cmp(b),
            (Value::Str(a), Value::Str(b)) => {
                Some(a.to_ascii_lowercase().cmp(&b.to_ascii_lowercase()))
            }
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// The `is` operator: exact identity including type, with
    /// `undefined is undefined` true. Strings compare case-sensitively here,
    /// unlike `==`.
    pub fn is_identical(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Undefined, Value::Undefined) => true,
            (Value::Error, Value::Error) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Real(a), Value::Real(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::List(a), Value::List(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.is_identical(y))
            }
            (Value::Ad(a), Value::Ad(b)) => a == b,
            _ => false,
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(r: f64) -> Self {
        Value::Real(r)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

/// Escapes a string for ClassAd string-literal syntax.
pub(crate) fn escape_str(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Undefined => write!(f, "undefined"),
            Value::Error => write!(f, "error"),
            Value::Bool(b) => write!(f, "{}", b),
            Value::Int(i) => write!(f, "{}", i),
            Value::Real(r) => {
                // Always print a decimal point or exponent so the literal
                // reparses as a real, not an integer.
                if r.fract() == 0.0 && r.is_finite() && r.abs() < 1e15 {
                    write!(f, "{:.1}", r)
                } else {
                    write!(f, "{}", r)
                }
            }
            Value::Str(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                escape_str(s, &mut buf);
                write!(f, "\"{}\"", buf)
            }
            Value::List(items) => {
                write!(f, "{{ ")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", item)?;
                }
                write!(f, " }}")
            }
            Value::Ad(ad) => write!(f, "{}", ad),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_names() {
        assert_eq!(Value::Undefined.type_name(), "undefined");
        assert_eq!(Value::Int(1).type_name(), "integer");
        assert_eq!(Value::Real(1.0).type_name(), "real");
        assert_eq!(Value::str("x").type_name(), "string");
    }

    #[test]
    fn mixed_numeric_comparison_promotes() {
        assert_eq!(
            Value::Int(2).partial_cmp_classad(&Value::Real(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Real(3.0).partial_cmp_classad(&Value::Int(3)),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn string_comparison_is_case_insensitive() {
        assert_eq!(
            Value::str("ABC").partial_cmp_classad(&Value::str("abc")),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn incomparable_types_return_none() {
        assert_eq!(Value::Int(1).partial_cmp_classad(&Value::str("1")), None);
        assert_eq!(Value::Bool(true).partial_cmp_classad(&Value::Int(1)), None);
    }

    #[test]
    fn is_identical_distinguishes_case_and_type() {
        assert!(Value::Undefined.is_identical(&Value::Undefined));
        assert!(!Value::str("A").is_identical(&Value::str("a")));
        assert!(!Value::Int(1).is_identical(&Value::Real(1.0)));
    }

    #[test]
    fn display_real_keeps_decimal_point() {
        assert_eq!(Value::Real(2.0).to_string(), "2.0");
        assert_eq!(Value::Real(2.5).to_string(), "2.5");
    }

    #[test]
    fn display_string_escapes() {
        assert_eq!(Value::str("a\"b\\c\n").to_string(), r#""a\"b\\c\n""#);
    }
}
