//! Built-in functions callable from ClassAd expressions.
//!
//! The set implemented here covers the functions NeST's ads and ACLs use
//! plus the common core of the ClassAd library: string manipulation, type
//! conversion and inspection, numeric helpers, and list membership.

use crate::value::Value;

/// Dispatches a built-in function call. Unknown functions evaluate to
/// `error`, as in the ClassAd library.
pub fn call(name: &str, args: &[Value]) -> Value {
    match name.to_ascii_lowercase().as_str() {
        "strcat" => strcat(args),
        "substr" => substr(args),
        "size" => size(args),
        "tolower" => map_str(args, |s| s.to_ascii_lowercase()),
        "toupper" => map_str(args, |s| s.to_ascii_uppercase()),
        "int" => to_int(args),
        "real" => to_real(args),
        "string" => to_string_fn(args),
        "floor" => round_fn(args, f64::floor),
        "ceiling" => round_fn(args, f64::ceil),
        "round" => round_fn(args, f64::round),
        "abs" => abs(args),
        "min" => fold_cmp(args, false),
        "max" => fold_cmp(args, true),
        "member" => member(args, false),
        "stringlistmember" => string_list_member(args),
        "anycompare" => member(args, false),
        "isundefined" => type_check(args, |v| v.is_undefined()),
        "iserror" => type_check(args, |v| v.is_error()),
        "isstring" => type_check(args, |v| matches!(v, Value::Str(_))),
        "isinteger" => type_check(args, |v| matches!(v, Value::Int(_))),
        "isreal" => type_check(args, |v| matches!(v, Value::Real(_))),
        "isboolean" => type_check(args, |v| matches!(v, Value::Bool(_))),
        "islist" => type_check(args, |v| matches!(v, Value::List(_))),
        "isclassad" => type_check(args, |v| matches!(v, Value::Ad(_))),
        _ => Value::Error,
    }
}

fn strcat(args: &[Value]) -> Value {
    let mut out = String::new();
    for a in args {
        match a {
            Value::Str(s) => out.push_str(s),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Real(r) => out.push_str(&r.to_string()),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Undefined => return Value::Undefined,
            _ => return Value::Error,
        }
    }
    Value::Str(out)
}

/// `substr(s, offset [, length])`. Negative offsets count from the end, as in
/// the ClassAd library. Out-of-range regions clamp.
fn substr(args: &[Value]) -> Value {
    let (s, off) = match args {
        [Value::Str(s), Value::Int(off)] | [Value::Str(s), Value::Int(off), _] => (s, *off),
        [a, b] | [a, b, _] if a.is_exceptional() || b.is_exceptional() => {
            return if a.is_undefined() || b.is_undefined() {
                Value::Undefined
            } else {
                Value::Error
            }
        }
        _ => return Value::Error,
    };
    let chars: Vec<char> = s.chars().collect();
    let n = chars.len() as i64;
    let start = if off < 0 {
        (n + off).max(0)
    } else {
        off.min(n)
    } as usize;
    let len = match args.get(2) {
        None => n as usize,
        Some(Value::Int(l)) if *l >= 0 => *l as usize,
        Some(Value::Int(l)) => {
            // Negative length: leave that many chars off the end.
            let end = (n + l).max(start as i64) as usize;
            return Value::Str(chars[start..end.min(chars.len())].iter().collect());
        }
        Some(Value::Undefined) => return Value::Undefined,
        Some(_) => return Value::Error,
    };
    let end = (start + len).min(chars.len());
    Value::Str(chars[start..end].iter().collect())
}

fn size(args: &[Value]) -> Value {
    match args {
        [Value::Str(s)] => Value::Int(s.chars().count() as i64),
        [Value::List(l)] => Value::Int(l.len() as i64),
        [Value::Ad(ad)] => Value::Int(ad.len() as i64),
        [Value::Undefined] => Value::Undefined,
        _ => Value::Error,
    }
}

fn map_str(args: &[Value], f: impl Fn(&str) -> String) -> Value {
    match args {
        [Value::Str(s)] => Value::Str(f(s)),
        [Value::Undefined] => Value::Undefined,
        _ => Value::Error,
    }
}

fn to_int(args: &[Value]) -> Value {
    match args {
        [Value::Int(i)] => Value::Int(*i),
        [Value::Real(r)] => Value::Int(*r as i64),
        [Value::Bool(b)] => Value::Int(*b as i64),
        [Value::Str(s)] => s
            .trim()
            .parse::<i64>()
            .map(Value::Int)
            .unwrap_or(Value::Error),
        [Value::Undefined] => Value::Undefined,
        _ => Value::Error,
    }
}

fn to_real(args: &[Value]) -> Value {
    match args {
        [Value::Int(i)] => Value::Real(*i as f64),
        [Value::Real(r)] => Value::Real(*r),
        [Value::Bool(b)] => Value::Real(*b as i64 as f64),
        [Value::Str(s)] => s
            .trim()
            .parse::<f64>()
            .map(Value::Real)
            .unwrap_or(Value::Error),
        [Value::Undefined] => Value::Undefined,
        _ => Value::Error,
    }
}

fn to_string_fn(args: &[Value]) -> Value {
    match args {
        [Value::Str(s)] => Value::Str(s.clone()),
        [Value::Int(i)] => Value::Str(i.to_string()),
        [Value::Real(r)] => Value::Str(r.to_string()),
        [Value::Bool(b)] => Value::Str(b.to_string()),
        [Value::Undefined] => Value::Undefined,
        _ => Value::Error,
    }
}

fn round_fn(args: &[Value], f: impl Fn(f64) -> f64) -> Value {
    match args {
        [Value::Int(i)] => Value::Int(*i),
        [Value::Real(r)] => {
            let rounded = f(*r);
            if rounded.is_finite() && rounded.abs() < i64::MAX as f64 {
                Value::Int(rounded as i64)
            } else {
                Value::Error
            }
        }
        [Value::Undefined] => Value::Undefined,
        _ => Value::Error,
    }
}

fn abs(args: &[Value]) -> Value {
    match args {
        [Value::Int(i)] => i.checked_abs().map_or(Value::Error, Value::Int),
        [Value::Real(r)] => Value::Real(r.abs()),
        [Value::Undefined] => Value::Undefined,
        _ => Value::Error,
    }
}

fn fold_cmp(args: &[Value], want_max: bool) -> Value {
    // min/max over either a single list argument or the argument vector.
    let items: &[Value] = match args {
        [Value::List(l)] => l,
        other => other,
    };
    if items.is_empty() {
        return Value::Undefined;
    }
    let mut best: Option<Value> = None;
    for item in items {
        if item.is_undefined() {
            return Value::Undefined;
        }
        if item.as_number().is_none() {
            return Value::Error;
        }
        best = Some(match best {
            None => item.clone(),
            Some(b) => {
                let bn = b.as_number().unwrap();
                let inum = item.as_number().unwrap();
                if (want_max && inum > bn) || (!want_max && inum < bn) {
                    item.clone()
                } else {
                    b
                }
            }
        });
    }
    best.unwrap()
}

/// `member(x, list)` — true if `x` compares equal (`==` semantics, so strings
/// are case-insensitive) to any list element.
fn member(args: &[Value], _any: bool) -> Value {
    match args {
        [x, Value::List(items)] => {
            if x.is_undefined() {
                return Value::Undefined;
            }
            for item in items {
                if let Some(std::cmp::Ordering::Equal) = x.partial_cmp_classad(item) {
                    return Value::Bool(true);
                }
            }
            Value::Bool(false)
        }
        [Value::Undefined, _] | [_, Value::Undefined] => Value::Undefined,
        _ => Value::Error,
    }
}

/// `stringListMember(x, "a,b,c")` — membership in a comma-separated string
/// list, case-insensitively. Used heavily in Condor-style ACL ads.
fn string_list_member(args: &[Value]) -> Value {
    match args {
        [Value::Str(x), Value::Str(list)] => Value::Bool(
            list.split(',')
                .map(str::trim)
                .any(|item| item.eq_ignore_ascii_case(x)),
        ),
        [Value::Undefined, _] | [_, Value::Undefined] => Value::Undefined,
        _ => Value::Error,
    }
}

fn type_check(args: &[Value], pred: impl Fn(&Value) -> bool) -> Value {
    match args {
        [v] => Value::Bool(pred(v)),
        _ => Value::Error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: &str) -> Value {
        Value::str(x)
    }

    #[test]
    fn strcat_mixes_types() {
        assert_eq!(
            call("strcat", &[s("nest://"), s("host:"), Value::Int(5893)]),
            s("nest://host:5893")
        );
    }

    #[test]
    fn substr_clamps_and_counts_from_end() {
        assert_eq!(call("substr", &[s("hello"), Value::Int(1)]), s("ello"));
        assert_eq!(
            call("substr", &[s("hello"), Value::Int(1), Value::Int(3)]),
            s("ell")
        );
        assert_eq!(call("substr", &[s("hello"), Value::Int(-3)]), s("llo"));
        assert_eq!(call("substr", &[s("hello"), Value::Int(99)]), s(""));
        assert_eq!(
            call("substr", &[s("hello"), Value::Int(1), Value::Int(-1)]),
            s("ell")
        );
    }

    #[test]
    fn size_of_string_list_ad() {
        assert_eq!(call("size", &[s("abc")]), Value::Int(3));
        assert_eq!(
            call("size", &[Value::List(vec![Value::Int(1), Value::Int(2)])]),
            Value::Int(2)
        );
    }

    #[test]
    fn case_mapping() {
        assert_eq!(call("toLower", &[s("NeST")]), s("nest"));
        assert_eq!(call("toUpper", &[s("NeST")]), s("NEST"));
    }

    #[test]
    fn conversions() {
        assert_eq!(call("int", &[s("42")]), Value::Int(42));
        assert_eq!(call("int", &[Value::Real(2.9)]), Value::Int(2));
        assert_eq!(call("real", &[Value::Int(2)]), Value::Real(2.0));
        assert_eq!(call("string", &[Value::Int(7)]), s("7"));
        assert_eq!(call("int", &[s("nope")]), Value::Error);
    }

    #[test]
    fn rounding() {
        assert_eq!(call("floor", &[Value::Real(2.9)]), Value::Int(2));
        assert_eq!(call("ceiling", &[Value::Real(2.1)]), Value::Int(3));
        assert_eq!(call("round", &[Value::Real(2.5)]), Value::Int(3));
    }

    #[test]
    fn min_max_over_args_and_lists() {
        assert_eq!(
            call("min", &[Value::Int(3), Value::Int(1), Value::Int(2)]),
            Value::Int(1)
        );
        assert_eq!(
            call("max", &[Value::List(vec![Value::Int(3), Value::Real(4.5)])]),
            Value::Real(4.5)
        );
        assert_eq!(call("min", &[]), Value::Undefined);
    }

    #[test]
    fn member_uses_equality_semantics() {
        let list = Value::List(vec![s("chirp"), s("NFS")]);
        assert_eq!(call("member", &[s("nfs"), list.clone()]), Value::Bool(true));
        assert_eq!(call("member", &[s("ftp"), list]), Value::Bool(false));
    }

    #[test]
    fn string_list_member_splits_and_trims() {
        assert_eq!(
            call("stringListMember", &[s("nfs"), s("chirp, NFS ,http")]),
            Value::Bool(true)
        );
        assert_eq!(
            call("stringListMember", &[s("gridftp"), s("chirp,nfs")]),
            Value::Bool(false)
        );
    }

    #[test]
    fn type_predicates() {
        assert_eq!(call("isUndefined", &[Value::Undefined]), Value::Bool(true));
        assert_eq!(call("isError", &[Value::Error]), Value::Bool(true));
        assert_eq!(call("isString", &[s("x")]), Value::Bool(true));
        assert_eq!(call("isInteger", &[Value::Real(1.0)]), Value::Bool(false));
    }

    #[test]
    fn unknown_function_is_error() {
        assert_eq!(call("no_such_fn", &[]), Value::Error);
    }

    #[test]
    fn undefined_propagates() {
        assert_eq!(call("strcat", &[Value::Undefined]), Value::Undefined);
        assert_eq!(call("toLower", &[Value::Undefined]), Value::Undefined);
    }
}
