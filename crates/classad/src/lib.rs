//! # nest-classad
//!
//! An implementation of the ClassAd (Classified Advertisement) language used
//! by the Condor high-throughput computing system, as required by NeST for
//! three purposes:
//!
//! 1. **Resource discovery** — a NeST periodically publishes an ad describing
//!    its available storage, protocols, and load into a matchmaker.
//! 2. **Access control** — NeST ACLs are built on collections of ClassAds.
//! 3. **Matchmaking** — the global execution manager matches job ads against
//!    storage ads bilaterally (both `requirements` expressions must be
//!    satisfied), then ranks candidates with `rank`.
//!
//! The dialect implemented here follows the "new ClassAds" concrete syntax:
//!
//! ```text
//! [
//!   Type = "Storage";
//!   FreeSpace = 40 * 1024 * 1024;
//!   Protocols = { "chirp", "http", "nfs" };
//!   Requirements = other.Type == "Job" && other.NeedSpace <= my.FreeSpace;
//!   Rank = other.Priority
//! ]
//! ```
//!
//! Expressions follow ClassAd three-valued logic: every strict operator
//! propagates `undefined` and `error`, while `&&`, `||` and the `is`/`isnt`
//! operators are non-strict, exactly as in the ClassAd specification.
//!
//! ## Example
//!
//! ```
//! use nest_classad::{ClassAd, Value};
//!
//! let server: ClassAd = "[ Type = \"Storage\"; FreeMb = 512; \
//!     Requirements = other.NeedMb <= my.FreeMb ]".parse().unwrap();
//! let job: ClassAd = "[ Type = \"Job\"; NeedMb = 100; \
//!     Requirements = other.Type == \"Storage\" ]".parse().unwrap();
//! assert!(nest_classad::matches(&server, &job));
//! ```

pub mod ast;
pub mod builtins;
pub mod eval;
pub mod lexer;
pub mod matchmaker;
pub mod parser;
pub mod value;

pub use ast::Expr;
pub use eval::EvalContext;
pub use matchmaker::{matches, rank, Matchmaker};
pub use parser::{parse_ad, parse_expr, ParseError};
pub use value::Value;

use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

/// A ClassAd: an ordered mapping from case-insensitive attribute names to
/// expressions.
///
/// Attribute names preserve their original spelling for display but compare
/// case-insensitively, per the ClassAd specification.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClassAd {
    /// Map from lower-cased attribute name to (original spelling, expression).
    attrs: BTreeMap<String, (String, Expr)>,
}

impl ClassAd {
    /// Creates an empty ad.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts an attribute, replacing any previous binding with the same
    /// (case-insensitive) name.
    pub fn insert(&mut self, name: impl Into<String>, expr: Expr) {
        let name = name.into();
        self.attrs.insert(name.to_ascii_lowercase(), (name, expr));
    }

    /// Convenience: inserts a literal value.
    pub fn insert_value(&mut self, name: impl Into<String>, value: Value) {
        self.insert(name, Expr::Literal(value));
    }

    /// Looks up an attribute expression by case-insensitive name.
    pub fn get(&self, name: &str) -> Option<&Expr> {
        self.attrs.get(&name.to_ascii_lowercase()).map(|(_, e)| e)
    }

    /// Removes an attribute; returns the removed expression if present.
    pub fn remove(&mut self, name: &str) -> Option<Expr> {
        self.attrs
            .remove(&name.to_ascii_lowercase())
            .map(|(_, e)| e)
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True if the ad has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Iterates over `(original_name, expr)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Expr)> {
        self.attrs.values().map(|(n, e)| (n.as_str(), e))
    }

    /// Evaluates the named attribute in the context of this ad alone.
    pub fn eval(&self, name: &str) -> Value {
        let ctx = EvalContext::new(self);
        ctx.eval_attr(name)
    }

    /// Evaluates an arbitrary expression in the context of this ad alone.
    pub fn eval_expr(&self, expr: &Expr) -> Value {
        EvalContext::new(self).eval(expr)
    }

    /// Evaluates the named attribute with `other`/`target` bound to another
    /// ad, as during matchmaking.
    pub fn eval_against(&self, name: &str, other: &ClassAd) -> Value {
        EvalContext::with_target(self, other).eval_attr(name)
    }
}

impl fmt::Display for ClassAd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[ ")?;
        let mut first = true;
        for (name, expr) in self.iter() {
            if !first {
                write!(f, "; ")?;
            }
            first = false;
            write!(f, "{} = {}", name, expr)?;
        }
        write!(f, " ]")
    }
}

impl FromStr for ClassAd {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        parse_ad(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get_case_insensitive() {
        let mut ad = ClassAd::new();
        ad.insert_value("FreeSpace", Value::Int(42));
        assert_eq!(ad.get("freespace"), Some(&Expr::Literal(Value::Int(42))));
        assert_eq!(ad.get("FREESPACE"), Some(&Expr::Literal(Value::Int(42))));
        assert!(ad.get("missing").is_none());
    }

    #[test]
    fn insert_replaces_previous_binding() {
        let mut ad = ClassAd::new();
        ad.insert_value("X", Value::Int(1));
        ad.insert_value("x", Value::Int(2));
        assert_eq!(ad.len(), 1);
        assert_eq!(ad.eval("X"), Value::Int(2));
    }

    #[test]
    fn display_roundtrips_through_parser() {
        let src = r#"[ A = 1; B = "two"; C = A + 1 ]"#;
        let ad: ClassAd = src.parse().unwrap();
        let printed = ad.to_string();
        let reparsed: ClassAd = printed.parse().unwrap();
        assert_eq!(ad, reparsed);
    }

    #[test]
    fn remove_attribute() {
        let mut ad = ClassAd::new();
        ad.insert_value("A", Value::Int(1));
        assert!(ad.remove("a").is_some());
        assert!(ad.is_empty());
        assert!(ad.remove("a").is_none());
    }

    #[test]
    fn eval_simple_arithmetic_attr() {
        let ad: ClassAd = "[ A = 2 * 3 + 4 ]".parse().unwrap();
        assert_eq!(ad.eval("A"), Value::Int(10));
    }
}
