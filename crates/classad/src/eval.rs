//! Expression evaluation with ClassAd three-valued semantics.

use crate::ast::{BinOp, Expr, Scope, UnOp};
use crate::builtins;
use crate::value::Value;
use crate::ClassAd;
use std::cmp::Ordering;

/// Maximum attribute-resolution depth, guarding against cyclic references
/// like `[ a = b; b = a ]`, which evaluate to `error` rather than looping.
const MAX_DEPTH: usize = 64;

/// An evaluation context binding the ad under evaluation (`my`) and,
/// optionally, a counterpart ad (`other`) as during matchmaking.
pub struct EvalContext<'a> {
    my: &'a ClassAd,
    other: Option<&'a ClassAd>,
}

impl<'a> EvalContext<'a> {
    /// Context for evaluating an ad by itself.
    pub fn new(my: &'a ClassAd) -> Self {
        Self { my, other: None }
    }

    /// Context for bilateral matchmaking: `other.x` resolves in `other`.
    pub fn with_target(my: &'a ClassAd, other: &'a ClassAd) -> Self {
        Self {
            my,
            other: Some(other),
        }
    }

    /// Evaluates the named attribute of `my`.
    pub fn eval_attr(&self, name: &str) -> Value {
        match self.my.get(name) {
            Some(expr) => self.eval_depth(expr, 0),
            None => Value::Undefined,
        }
    }

    /// Evaluates an arbitrary expression.
    pub fn eval(&self, expr: &Expr) -> Value {
        self.eval_depth(expr, 0)
    }

    fn eval_depth(&self, expr: &Expr, depth: usize) -> Value {
        if depth > MAX_DEPTH {
            return Value::Error;
        }
        match expr {
            Expr::Literal(v) => v.clone(),
            Expr::Attr(scope, name) => self.resolve(scope, name, depth),
            Expr::Unary(op, inner) => {
                let v = self.eval_depth(inner, depth + 1);
                eval_unary(*op, v)
            }
            Expr::Binary(op, lhs, rhs) => self.eval_binary(*op, lhs, rhs, depth),
            Expr::Cond(c, t, e) => match self.eval_depth(c, depth + 1) {
                Value::Bool(true) => self.eval_depth(t, depth + 1),
                Value::Bool(false) => self.eval_depth(e, depth + 1),
                Value::Undefined => Value::Undefined,
                _ => Value::Error,
            },
            Expr::Call(name, args) => {
                let vals: Vec<Value> = args.iter().map(|a| self.eval_depth(a, depth + 1)).collect();
                builtins::call(name, &vals)
            }
            Expr::List(items) => Value::List(
                items
                    .iter()
                    .map(|i| self.eval_depth(i, depth + 1))
                    .collect(),
            ),
            Expr::Ad(ad) => Value::Ad(ad.clone()),
            Expr::Index(base, idx) => {
                let b = self.eval_depth(base, depth + 1);
                let i = self.eval_depth(idx, depth + 1);
                match (b, i) {
                    (Value::Undefined, _) | (_, Value::Undefined) => Value::Undefined,
                    (Value::List(items), Value::Int(n)) => {
                        if n >= 0 && (n as usize) < items.len() {
                            items[n as usize].clone()
                        } else {
                            Value::Error
                        }
                    }
                    _ => Value::Error,
                }
            }
            Expr::Select(base, name) => {
                let b = self.eval_depth(base, depth + 1);
                match b {
                    Value::Undefined => Value::Undefined,
                    Value::Ad(ad) => match ad.get(name) {
                        // Inner-ad attributes evaluate in the inner ad's own
                        // context (scoping rule for nested ads).
                        Some(e) => EvalContext::new(&ad).eval_depth(e, depth + 1),
                        None => Value::Undefined,
                    },
                    _ => Value::Error,
                }
            }
        }
    }

    fn resolve(&self, scope: &Scope, name: &str, depth: usize) -> Value {
        match scope {
            Scope::My => match self.my.get(name) {
                Some(e) => self.eval_depth(e, depth + 1),
                None => Value::Undefined,
            },
            Scope::Other => match self.other {
                Some(other) => match other.get(name) {
                    // Attributes of `other` evaluate in other's context, with
                    // the roles swapped so its own `other.` references come
                    // back to us.
                    Some(e) => EvalContext {
                        my: other,
                        other: Some(self.my),
                    }
                    .eval_depth(e, depth + 1),
                    None => Value::Undefined,
                },
                None => Value::Undefined,
            },
            Scope::Local => {
                // Unscoped: current ad first, then the target (per the
                // original ClassAd matchmaking semantics).
                if let Some(e) = self.my.get(name) {
                    return self.eval_depth(e, depth + 1);
                }
                if let Some(other) = self.other {
                    if let Some(e) = other.get(name) {
                        return EvalContext {
                            my: other,
                            other: Some(self.my),
                        }
                        .eval_depth(e, depth + 1);
                    }
                }
                Value::Undefined
            }
        }
    }

    fn eval_binary(&self, op: BinOp, lhs: &Expr, rhs: &Expr, depth: usize) -> Value {
        // Non-strict operators first.
        match op {
            BinOp::And => {
                let l = self.eval_depth(lhs, depth + 1);
                return match l {
                    Value::Bool(false) => Value::Bool(false),
                    Value::Bool(true) => coerce_logical(self.eval_depth(rhs, depth + 1)),
                    Value::Undefined => match coerce_logical(self.eval_depth(rhs, depth + 1)) {
                        Value::Bool(false) => Value::Bool(false),
                        Value::Error => Value::Error,
                        _ => Value::Undefined,
                    },
                    _ => Value::Error,
                };
            }
            BinOp::Or => {
                let l = self.eval_depth(lhs, depth + 1);
                return match l {
                    Value::Bool(true) => Value::Bool(true),
                    Value::Bool(false) => coerce_logical(self.eval_depth(rhs, depth + 1)),
                    Value::Undefined => match coerce_logical(self.eval_depth(rhs, depth + 1)) {
                        Value::Bool(true) => Value::Bool(true),
                        Value::Error => Value::Error,
                        _ => Value::Undefined,
                    },
                    _ => Value::Error,
                };
            }
            BinOp::Is => {
                let l = self.eval_depth(lhs, depth + 1);
                let r = self.eval_depth(rhs, depth + 1);
                return Value::Bool(l.is_identical(&r));
            }
            BinOp::Isnt => {
                let l = self.eval_depth(lhs, depth + 1);
                let r = self.eval_depth(rhs, depth + 1);
                return Value::Bool(!l.is_identical(&r));
            }
            _ => {}
        }

        // Strict operators propagate undefined/error.
        let l = self.eval_depth(lhs, depth + 1);
        let r = self.eval_depth(rhs, depth + 1);
        if l.is_undefined() || r.is_undefined() {
            return Value::Undefined;
        }
        if l.is_error() || r.is_error() {
            return Value::Error;
        }
        match op {
            BinOp::Eq => match l.partial_cmp_classad(&r) {
                Some(ord) => Value::Bool(ord == Ordering::Equal),
                None => Value::Error,
            },
            BinOp::Ne => match l.partial_cmp_classad(&r) {
                Some(ord) => Value::Bool(ord != Ordering::Equal),
                None => Value::Error,
            },
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => match l.partial_cmp_classad(&r) {
                Some(ord) => Value::Bool(match op {
                    BinOp::Lt => ord == Ordering::Less,
                    BinOp::Le => ord != Ordering::Greater,
                    BinOp::Gt => ord == Ordering::Greater,
                    BinOp::Ge => ord != Ordering::Less,
                    _ => unreachable!(),
                }),
                None => Value::Error,
            },
            BinOp::Add => arith(l, r, |a, b| a.checked_add(b), |a, b| a + b),
            BinOp::Sub => arith(l, r, |a, b| a.checked_sub(b), |a, b| a - b),
            BinOp::Mul => arith(l, r, |a, b| a.checked_mul(b), |a, b| a * b),
            BinOp::Div => match (&l, &r) {
                (Value::Int(_), Value::Int(0)) => Value::Error,
                _ => arith(l, r, |a, b| a.checked_div(b), |a, b| a / b),
            },
            BinOp::Mod => match (&l, &r) {
                (Value::Int(_), Value::Int(0)) => Value::Error,
                _ => arith(l, r, |a, b| a.checked_rem(b), |a, b| a % b),
            },
            BinOp::And | BinOp::Or | BinOp::Is | BinOp::Isnt => unreachable!(),
        }
    }
}

/// Coerces a logical operand: booleans pass through, undefined passes
/// through, everything else is an error.
fn coerce_logical(v: Value) -> Value {
    match v {
        Value::Bool(_) | Value::Undefined => v,
        _ => Value::Error,
    }
}

/// Arithmetic with int→real promotion. String `+` concatenates, matching the
/// common ClassAd extension used in ad templates.
fn arith(
    l: Value,
    r: Value,
    int_op: impl Fn(i64, i64) -> Option<i64>,
    real_op: impl Fn(f64, f64) -> f64,
) -> Value {
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => match int_op(a, b) {
            Some(v) => Value::Int(v),
            None => Value::Error,
        },
        (Value::Int(a), Value::Real(b)) => Value::Real(real_op(a as f64, b)),
        (Value::Real(a), Value::Int(b)) => Value::Real(real_op(a, b as f64)),
        (Value::Real(a), Value::Real(b)) => Value::Real(real_op(a, b)),
        _ => Value::Error,
    }
}

fn eval_unary(op: UnOp, v: Value) -> Value {
    match op {
        UnOp::Not => match v {
            Value::Bool(b) => Value::Bool(!b),
            Value::Undefined => Value::Undefined,
            _ => Value::Error,
        },
        UnOp::Neg => match v {
            Value::Int(i) => i.checked_neg().map_or(Value::Error, Value::Int),
            Value::Real(r) => Value::Real(-r),
            Value::Undefined => Value::Undefined,
            _ => Value::Error,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_ad, parse_expr};

    fn ev(src: &str) -> Value {
        let ad = ClassAd::new();
        EvalContext::new(&ad).eval(&parse_expr(src).unwrap())
    }

    #[test]
    fn arithmetic_basics() {
        assert_eq!(ev("2 + 3 * 4"), Value::Int(14));
        assert_eq!(ev("10 / 4"), Value::Int(2));
        assert_eq!(ev("10.0 / 4"), Value::Real(2.5));
        assert_eq!(ev("7 % 3"), Value::Int(1));
        assert_eq!(ev("-5 + 2"), Value::Int(-3));
    }

    #[test]
    fn division_by_zero_is_error() {
        assert_eq!(ev("1 / 0"), Value::Error);
        assert_eq!(ev("1 % 0"), Value::Error);
    }

    #[test]
    fn integer_overflow_is_error() {
        assert_eq!(ev("9223372036854775807 + 1"), Value::Error);
    }

    #[test]
    fn undefined_propagates_through_strict_ops() {
        assert_eq!(ev("missing + 1"), Value::Undefined);
        assert_eq!(ev("missing == 1"), Value::Undefined);
        assert_eq!(ev("missing < 1"), Value::Undefined);
    }

    #[test]
    fn and_or_are_non_strict() {
        assert_eq!(ev("false && missing"), Value::Bool(false));
        assert_eq!(ev("true || missing"), Value::Bool(true));
        assert_eq!(ev("missing && false"), Value::Bool(false));
        assert_eq!(ev("missing || true"), Value::Bool(true));
        assert_eq!(ev("missing && true"), Value::Undefined);
        assert_eq!(ev("missing || false"), Value::Undefined);
    }

    #[test]
    fn is_isnt_identity() {
        assert_eq!(ev("undefined is undefined"), Value::Bool(true));
        assert_eq!(ev("missing is undefined"), Value::Bool(true));
        assert_eq!(ev("1 is 1.0"), Value::Bool(false));
        assert_eq!(ev("\"A\" is \"a\""), Value::Bool(false));
        assert_eq!(ev("\"A\" == \"a\""), Value::Bool(true));
        assert_eq!(ev("1 isnt 2"), Value::Bool(true));
    }

    #[test]
    fn conditional_semantics() {
        assert_eq!(ev("true ? 1 : 2"), Value::Int(1));
        assert_eq!(ev("false ? 1 : 2"), Value::Int(2));
        assert_eq!(ev("missing ? 1 : 2"), Value::Undefined);
        assert_eq!(ev("3 ? 1 : 2"), Value::Error);
    }

    #[test]
    fn attribute_chains_resolve() {
        let ad = parse_ad("[ a = b + 1; b = c * 2; c = 10 ]").unwrap();
        assert_eq!(ad.eval("a"), Value::Int(21));
    }

    #[test]
    fn cyclic_attributes_are_error() {
        let ad = parse_ad("[ a = b; b = a ]").unwrap();
        assert_eq!(ad.eval("a"), Value::Error);
    }

    #[test]
    fn scoped_resolution_between_two_ads() {
        let server = parse_ad("[ FreeMb = 512; ok = other.NeedMb <= my.FreeMb ]").unwrap();
        let job = parse_ad("[ NeedMb = 100 ]").unwrap();
        assert_eq!(server.eval_against("ok", &job), Value::Bool(true));
        let greedy = parse_ad("[ NeedMb = 1000 ]").unwrap();
        assert_eq!(server.eval_against("ok", &greedy), Value::Bool(false));
    }

    #[test]
    fn unscoped_falls_through_to_target() {
        // `NeedMb` is not in the server ad; unscoped lookup falls through to
        // the job ad.
        let server = parse_ad("[ ok = NeedMb == 7 ]").unwrap();
        let job = parse_ad("[ NeedMb = 7 ]").unwrap();
        assert_eq!(server.eval_against("ok", &job), Value::Bool(true));
    }

    #[test]
    fn cross_ad_reference_cycles_terminate() {
        let a = parse_ad("[ r = other.r ]").unwrap();
        let b = parse_ad("[ r = other.r ]").unwrap();
        assert_eq!(a.eval_against("r", &b), Value::Error);
    }

    #[test]
    fn list_indexing() {
        assert_eq!(ev("{10, 20, 30}[1]"), Value::Int(20));
        assert_eq!(ev("{10}[5]"), Value::Error);
        assert_eq!(ev("{10}[-1]"), Value::Error);
    }

    #[test]
    fn nested_ad_selection() {
        let ad = parse_ad("[ inner = [ x = 2 + 2 ]; y = inner.x * 10 ]").unwrap();
        assert_eq!(ad.eval("y"), Value::Int(40));
    }

    #[test]
    fn string_equality_case_insensitive_ordering_lexicographic() {
        assert_eq!(ev("\"abc\" < \"abd\""), Value::Bool(true));
        assert_eq!(ev("\"ABC\" == \"abc\""), Value::Bool(true));
    }

    #[test]
    fn logical_ops_on_non_booleans_error() {
        assert_eq!(ev("1 && true"), Value::Error);
        assert_eq!(ev("true && 1"), Value::Error);
        assert_eq!(ev("!3"), Value::Error);
    }

    #[test]
    fn negation_of_min_int_is_error() {
        assert_eq!(ev("-(-9223372036854775807 - 1)"), Value::Error);
    }
}
