//! Tokenizer for the ClassAd concrete syntax.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    // Literals
    Int(i64),
    Real(f64),
    Str(String),
    /// Identifier or keyword (keywords are resolved by the parser because
    /// ClassAd reserved words are case-insensitive).
    Ident(String),

    // Punctuation
    LBracket, // [
    RBracket, // ]
    LBrace,   // {
    RBrace,   // }
    LParen,   // (
    RParen,   // )
    Semi,     // ;
    Comma,    // ,
    Dot,      // .
    Assign,   // =
    Question, // ?
    Colon,    // :

    // Operators
    OrOr,    // ||
    AndAnd,  // &&
    Not,     // !
    Eq,      // ==
    Ne,      // !=
    Lt,      // <
    Le,      // <=
    Gt,      // >
    Ge,      // >=
    Plus,    // +
    Minus,   // -
    Star,    // *
    Slash,   // /
    Percent, // %
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Int(i) => write!(f, "{}", i),
            Token::Real(r) => write!(f, "{}", r),
            Token::Str(s) => write!(f, "\"{}\"", s),
            Token::Ident(s) => write!(f, "{}", s),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Semi => write!(f, ";"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Assign => write!(f, "="),
            Token::Question => write!(f, "?"),
            Token::Colon => write!(f, ":"),
            Token::OrOr => write!(f, "||"),
            Token::AndAnd => write!(f, "&&"),
            Token::Not => write!(f, "!"),
            Token::Eq => write!(f, "=="),
            Token::Ne => write!(f, "!="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
        }
    }
}

/// A lexical error with byte position.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Byte offset into the source.
    pub pos: usize,
    /// Human-readable message.
    pub msg: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes a ClassAd source string.
///
/// Comments: `//` to end of line and `/* ... */` (non-nesting) are skipped.
pub fn tokenize(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(LexError {
                            pos: start,
                            msg: "unterminated block comment".into(),
                        });
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'[' => {
                out.push(Token::LBracket);
                i += 1;
            }
            b']' => {
                out.push(Token::RBracket);
                i += 1;
            }
            b'{' => {
                out.push(Token::LBrace);
                i += 1;
            }
            b'}' => {
                out.push(Token::RBrace);
                i += 1;
            }
            b'(' => {
                out.push(Token::LParen);
                i += 1;
            }
            b')' => {
                out.push(Token::RParen);
                i += 1;
            }
            b';' => {
                out.push(Token::Semi);
                i += 1;
            }
            b',' => {
                out.push(Token::Comma);
                i += 1;
            }
            b'?' => {
                out.push(Token::Question);
                i += 1;
            }
            b':' => {
                out.push(Token::Colon);
                i += 1;
            }
            b'+' => {
                out.push(Token::Plus);
                i += 1;
            }
            b'-' => {
                out.push(Token::Minus);
                i += 1;
            }
            b'*' => {
                out.push(Token::Star);
                i += 1;
            }
            b'/' => {
                out.push(Token::Slash);
                i += 1;
            }
            b'%' => {
                out.push(Token::Percent);
                i += 1;
            }
            b'|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    out.push(Token::OrOr);
                    i += 2;
                } else {
                    return Err(LexError {
                        pos: i,
                        msg: "expected '||'".into(),
                    });
                }
            }
            b'&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    out.push(Token::AndAnd);
                    i += 2;
                } else {
                    return Err(LexError {
                        pos: i,
                        msg: "expected '&&'".into(),
                    });
                }
            }
            b'=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Eq);
                    i += 2;
                } else {
                    out.push(Token::Assign);
                    i += 1;
                }
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    out.push(Token::Not);
                    i += 1;
                }
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Le);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            b'"' => {
                let (s, next) = lex_string(src, i)?;
                out.push(Token::Str(s));
                i = next;
            }
            b'.' if bytes.get(i + 1).is_some_and(|c| c.is_ascii_digit()) => {
                let (tok, next) = lex_number(src, i)?;
                out.push(tok);
                i = next;
            }
            b'.' => {
                out.push(Token::Dot);
                i += 1;
            }
            b'0'..=b'9' => {
                let (tok, next) = lex_number(src, i)?;
                out.push(tok);
                i = next;
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push(Token::Ident(src[start..i].to_owned()));
            }
            _ => {
                return Err(LexError {
                    pos: i,
                    msg: format!("unexpected character {:?}", src[i..].chars().next()),
                });
            }
        }
    }
    Ok(out)
}

fn lex_string(src: &str, start: usize) -> Result<(String, usize), LexError> {
    let bytes = src.as_bytes();
    debug_assert_eq!(bytes[start], b'"');
    let mut out = String::new();
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return Ok((out, i + 1)),
            b'\\' => {
                let esc = bytes.get(i + 1).ok_or(LexError {
                    pos: i,
                    msg: "dangling escape".into(),
                })?;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    _ => {
                        return Err(LexError {
                            pos: i,
                            msg: format!("unknown escape '\\{}'", *esc as char),
                        })
                    }
                }
                i += 2;
            }
            _ => {
                // Copy one UTF-8 char.
                let c = src[i..].chars().next().unwrap();
                out.push(c);
                i += c.len_utf8();
            }
        }
    }
    Err(LexError {
        pos: start,
        msg: "unterminated string literal".into(),
    })
}

fn lex_number(src: &str, start: usize) -> Result<(Token, usize), LexError> {
    let bytes = src.as_bytes();
    let mut i = start;
    let mut is_real = false;
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b'.' && bytes.get(i + 1).is_some_and(|c| c.is_ascii_digit()) {
        is_real = true;
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
    } else if i < bytes.len() && bytes[i] == b'.' && start < i {
        // Trailing dot as in "2." — treat as real.
        is_real = true;
        i += 1;
    }
    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
        let mut j = i + 1;
        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
            j += 1;
        }
        if j < bytes.len() && bytes[j].is_ascii_digit() {
            is_real = true;
            i = j;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
        }
    }
    let text = &src[start..i];
    if is_real {
        text.parse::<f64>()
            .map(|r| (Token::Real(r), i))
            .map_err(|e| LexError {
                pos: start,
                msg: format!("bad real literal {:?}: {}", text, e),
            })
    } else {
        text.parse::<i64>()
            .map(|n| (Token::Int(n), i))
            .map_err(|e| LexError {
                pos: start,
                msg: format!("bad integer literal {:?}: {}", text, e),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lex_basic_tokens() {
        let toks = tokenize("[ a = 1; b = 2.5 ]").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::LBracket,
                Token::Ident("a".into()),
                Token::Assign,
                Token::Int(1),
                Token::Semi,
                Token::Ident("b".into()),
                Token::Assign,
                Token::Real(2.5),
                Token::RBracket,
            ]
        );
    }

    #[test]
    fn lex_operators() {
        let toks = tokenize("a && b || !c == d != e <= f >= g").unwrap();
        assert!(toks.contains(&Token::AndAnd));
        assert!(toks.contains(&Token::OrOr));
        assert!(toks.contains(&Token::Not));
        assert!(toks.contains(&Token::Eq));
        assert!(toks.contains(&Token::Ne));
        assert!(toks.contains(&Token::Le));
        assert!(toks.contains(&Token::Ge));
    }

    #[test]
    fn lex_string_with_escapes() {
        let toks = tokenize(r#""a\"b\n""#).unwrap();
        assert_eq!(toks, vec![Token::Str("a\"b\n".into())]);
    }

    #[test]
    fn lex_comments() {
        let toks = tokenize("1 // comment\n + /* block */ 2").unwrap();
        assert_eq!(toks, vec![Token::Int(1), Token::Plus, Token::Int(2)]);
    }

    #[test]
    fn lex_scientific_notation() {
        let toks = tokenize("1e3 2.5E-2").unwrap();
        assert_eq!(toks, vec![Token::Real(1000.0), Token::Real(0.025)]);
    }

    #[test]
    fn lex_unterminated_string_is_error() {
        assert!(tokenize("\"abc").is_err());
    }

    #[test]
    fn lex_single_ampersand_is_error() {
        assert!(tokenize("a & b").is_err());
    }

    #[test]
    fn lex_dot_between_idents() {
        let toks = tokenize("other.FreeSpace").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("other".into()),
                Token::Dot,
                Token::Ident("FreeSpace".into()),
            ]
        );
    }
}
