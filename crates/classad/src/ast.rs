//! Abstract syntax for ClassAd expressions.

use crate::value::{escape_str, Value};
use crate::ClassAd;
use std::fmt;

/// Binary operators, in ClassAd semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Logical or (non-strict).
    Or,
    /// Logical and (non-strict).
    And,
    /// Equality (strict, case-insensitive for strings).
    Eq,
    /// Inequality (strict).
    Ne,
    /// The `is` identity operator (non-strict, case-sensitive).
    Is,
    /// The `isnt` identity operator (non-strict).
    Isnt,
    Lt,
    Le,
    Gt,
    Ge,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

impl BinOp {
    /// The precedence level (higher binds tighter).
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::Ne | BinOp::Is | BinOp::Isnt => 3,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 4,
            BinOp::Add | BinOp::Sub => 5,
            BinOp::Mul | BinOp::Div | BinOp::Mod => 6,
        }
    }

    /// The concrete-syntax spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Or => "||",
            BinOp::And => "&&",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Is => "is",
            BinOp::Isnt => "isnt",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Logical negation `!`.
    Not,
    /// Arithmetic negation `-`.
    Neg,
}

/// Attribute-reference scope prefixes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Scope {
    /// Unscoped: resolved in the current ad first.
    Local,
    /// `my.attr` / `self.attr` — the ad being evaluated.
    My,
    /// `other.attr` / `target.attr` — the counterpart ad in a match.
    Other,
}

/// A ClassAd expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal constant.
    Literal(Value),
    /// An attribute reference, possibly scoped: `other.FreeSpace`.
    Attr(Scope, String),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Conditional `cond ? then : else`.
    Cond(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Function call `name(args...)`.
    Call(String, Vec<Expr>),
    /// List construction `{ e1, e2, ... }`.
    List(Vec<Expr>),
    /// Nested ClassAd literal `[ a = 1; ... ]`.
    Ad(Box<ClassAd>),
    /// Subscript `list[index]`.
    Index(Box<Expr>, Box<Expr>),
    /// Attribute selection on an arbitrary expression: `expr.attr`.
    Select(Box<Expr>, String),
}

impl Expr {
    /// Convenience constructor for an unscoped attribute reference.
    pub fn attr(name: impl Into<String>) -> Expr {
        Expr::Attr(Scope::Local, name.into())
    }

    /// Convenience constructor for a literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Convenience constructor for a binary op.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, parent_prec: u8) -> fmt::Result {
        match self {
            Expr::Literal(Value::Str(s)) => {
                let mut buf = String::new();
                escape_str(s, &mut buf);
                write!(f, "\"{}\"", buf)
            }
            Expr::Literal(v) => write!(f, "{}", v),
            Expr::Attr(Scope::Local, name) => write!(f, "{}", name),
            Expr::Attr(Scope::My, name) => write!(f, "my.{}", name),
            Expr::Attr(Scope::Other, name) => write!(f, "other.{}", name),
            Expr::Unary(op, inner) => {
                let sym = match op {
                    UnOp::Not => "!",
                    UnOp::Neg => "-",
                };
                write!(f, "{}", sym)?;
                inner.fmt_prec(f, 7)
            }
            Expr::Binary(op, lhs, rhs) => {
                let prec = op.precedence();
                let need_parens = prec < parent_prec;
                if need_parens {
                    write!(f, "(")?;
                }
                lhs.fmt_prec(f, prec)?;
                write!(f, " {} ", op.symbol())?;
                // Right operand gets prec+1 so left-associativity reparses
                // identically.
                rhs.fmt_prec(f, prec + 1)?;
                if need_parens {
                    write!(f, ")")?;
                }
                Ok(())
            }
            Expr::Cond(c, t, e) => {
                let need_parens = parent_prec > 0;
                if need_parens {
                    write!(f, "(")?;
                }
                c.fmt_prec(f, 1)?;
                write!(f, " ? ")?;
                t.fmt_prec(f, 0)?;
                write!(f, " : ")?;
                e.fmt_prec(f, 0)?;
                if need_parens {
                    write!(f, ")")?;
                }
                Ok(())
            }
            Expr::Call(name, args) => {
                write!(f, "{}(", name)?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    a.fmt_prec(f, 0)?;
                }
                write!(f, ")")
            }
            Expr::List(items) => {
                write!(f, "{{ ")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    item.fmt_prec(f, 0)?;
                }
                write!(f, " }}")
            }
            Expr::Ad(ad) => write!(f, "{}", ad),
            Expr::Index(base, idx) => {
                base.fmt_prec(f, 8)?;
                write!(f, "[")?;
                idx.fmt_prec(f, 0)?;
                write!(f, "]")
            }
            Expr::Select(base, name) => {
                base.fmt_prec(f, 8)?;
                write!(f, ".{}", name)
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_respects_precedence() {
        // (1 + 2) * 3 must keep its parentheses.
        let e = Expr::bin(
            BinOp::Mul,
            Expr::bin(BinOp::Add, Expr::lit(1i64), Expr::lit(2i64)),
            Expr::lit(3i64),
        );
        assert_eq!(e.to_string(), "(1 + 2) * 3");
        // 1 + 2 * 3 needs none.
        let e = Expr::bin(
            BinOp::Add,
            Expr::lit(1i64),
            Expr::bin(BinOp::Mul, Expr::lit(2i64), Expr::lit(3i64)),
        );
        assert_eq!(e.to_string(), "1 + 2 * 3");
    }

    #[test]
    fn display_left_assoc_subtraction() {
        // (1 - 2) - 3 prints without parens; 1 - (2 - 3) keeps them.
        let left = Expr::bin(
            BinOp::Sub,
            Expr::bin(BinOp::Sub, Expr::lit(1i64), Expr::lit(2i64)),
            Expr::lit(3i64),
        );
        assert_eq!(left.to_string(), "1 - 2 - 3");
        let right = Expr::bin(
            BinOp::Sub,
            Expr::lit(1i64),
            Expr::bin(BinOp::Sub, Expr::lit(2i64), Expr::lit(3i64)),
        );
        assert_eq!(right.to_string(), "1 - (2 - 3)");
    }

    #[test]
    fn display_scoped_attr() {
        let e = Expr::Attr(Scope::Other, "FreeSpace".into());
        assert_eq!(e.to_string(), "other.FreeSpace");
    }
}
