//! Bilateral matchmaking over collections of ClassAds.
//!
//! This is the discovery half of NeST's grid-awareness: a NeST publishes a
//! storage ad (`Type = "Storage"`) into a matchmaker; execution managers
//! submit request ads and receive the best-ranked matching storage ad, just
//! as the paper's Section 6 scenario describes.

use crate::value::Value;
use crate::ClassAd;

/// True when the two ads match bilaterally: each ad's `Requirements`
/// expression must evaluate to `true` in a context where `other` refers to
/// the counterpart ad. A missing `Requirements` counts as satisfied, matching
/// the Condor matchmaker convention.
pub fn matches(a: &ClassAd, b: &ClassAd) -> bool {
    half_matches(a, b) && half_matches(b, a)
}

fn half_matches(me: &ClassAd, other: &ClassAd) -> bool {
    match me.get("requirements") {
        None => true,
        Some(_) => me.eval_against("requirements", other) == Value::Bool(true),
    }
}

/// Evaluates `a.Rank` against `b`, as a real number. Missing or non-numeric
/// ranks are 0.0, matching the Condor convention.
pub fn rank(a: &ClassAd, b: &ClassAd) -> f64 {
    a.eval_against("rank", b).as_number().unwrap_or(0.0)
}

/// An in-memory ad collection supporting publish/expire/query, modelled on
/// the Condor collector that NeST advertises into.
#[derive(Debug, Default)]
pub struct Matchmaker {
    ads: Vec<PublishedAd>,
}

#[derive(Debug)]
struct PublishedAd {
    /// Publisher-chosen unique key; re-publishing under the same key
    /// replaces the previous ad (NeST republishes periodically).
    key: String,
    ad: ClassAd,
}

impl Matchmaker {
    /// Creates an empty matchmaker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes (or refreshes) an ad under a unique key.
    pub fn publish(&mut self, key: impl Into<String>, ad: ClassAd) {
        let key = key.into();
        if let Some(existing) = self.ads.iter_mut().find(|p| p.key == key) {
            existing.ad = ad;
        } else {
            self.ads.push(PublishedAd { key, ad });
        }
    }

    /// Removes an ad by key. Returns true if one was present.
    pub fn withdraw(&mut self, key: &str) -> bool {
        let before = self.ads.len();
        self.ads.retain(|p| p.key != key);
        self.ads.len() != before
    }

    /// Number of published ads.
    pub fn len(&self) -> usize {
        self.ads.len()
    }

    /// True if no ads are published.
    pub fn is_empty(&self) -> bool {
        self.ads.is_empty()
    }

    /// Returns the published ad for a key, if any.
    pub fn lookup(&self, key: &str) -> Option<&ClassAd> {
        self.ads.iter().find(|p| p.key == key).map(|p| &p.ad)
    }

    /// Returns every published ad that bilaterally matches the request.
    pub fn query(&self, request: &ClassAd) -> Vec<(&str, &ClassAd)> {
        self.ads
            .iter()
            .filter(|p| matches(&p.ad, request))
            .map(|p| (p.key.as_str(), &p.ad))
            .collect()
    }

    /// Returns the matching ad the *request* ranks highest; ties break by
    /// the published ad's own rank of the request, then publish order.
    pub fn best_match(&self, request: &ClassAd) -> Option<(&str, &ClassAd)> {
        let mut best: Option<(&PublishedAd, f64, f64)> = None;
        for p in &self.ads {
            if !matches(&p.ad, request) {
                continue;
            }
            let req_rank = rank(request, &p.ad);
            let ad_rank = rank(&p.ad, request);
            let better = match &best {
                None => true,
                Some((_, br, bar)) => req_rank > *br || (req_rank == *br && ad_rank > *bar),
            };
            if better {
                best = Some((p, req_rank, ad_rank));
            }
        }
        best.map(|(p, _, _)| (p.key.as_str(), &p.ad))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_ad;

    fn storage(name: &str, free_mb: i64) -> ClassAd {
        parse_ad(&format!(
            r#"[ Type = "Storage"; Name = "{}"; FreeMb = {};
                 Requirements = other.Type == "StorageRequest" && other.NeedMb <= my.FreeMb;
                 Rank = 0 ]"#,
            name, free_mb
        ))
        .unwrap()
    }

    fn request(need_mb: i64) -> ClassAd {
        parse_ad(&format!(
            r#"[ Type = "StorageRequest"; NeedMb = {};
                 Requirements = other.Type == "Storage";
                 Rank = other.FreeMb ]"#,
            need_mb
        ))
        .unwrap()
    }

    #[test]
    fn bilateral_match_requires_both_sides() {
        let s = storage("a", 100);
        let r = request(50);
        assert!(matches(&s, &r));
        let too_big = request(500);
        assert!(!matches(&s, &too_big));
        // One-sided failure: request requires Type == "Storage".
        let not_storage = parse_ad(r#"[ Type = "Compute" ]"#).unwrap();
        assert!(!matches(&not_storage, &r));
    }

    #[test]
    fn missing_requirements_matches_anything_compatible() {
        let a = parse_ad("[ x = 1 ]").unwrap();
        let b = parse_ad("[ y = 2 ]").unwrap();
        assert!(matches(&a, &b));
    }

    #[test]
    fn undefined_requirements_do_not_match() {
        let a = parse_ad("[ Requirements = other.nothing == 1 ]").unwrap();
        let b = parse_ad("[ x = 1 ]").unwrap();
        assert!(!matches(&a, &b));
    }

    #[test]
    fn best_match_prefers_highest_request_rank() {
        let mut mm = Matchmaker::new();
        mm.publish("small", storage("small", 100));
        mm.publish("big", storage("big", 10_000));
        let (key, ad) = mm.best_match(&request(50)).unwrap();
        assert_eq!(key, "big");
        assert_eq!(ad.eval("FreeMb"), Value::Int(10_000));
    }

    #[test]
    fn query_returns_all_matches() {
        let mut mm = Matchmaker::new();
        mm.publish("a", storage("a", 100));
        mm.publish("b", storage("b", 200));
        mm.publish("c", storage("c", 10));
        assert_eq!(mm.query(&request(50)).len(), 2);
        assert_eq!(mm.query(&request(5)).len(), 3);
        assert_eq!(mm.query(&request(50_000)).len(), 0);
    }

    #[test]
    fn republish_replaces_and_withdraw_removes() {
        let mut mm = Matchmaker::new();
        mm.publish("a", storage("a", 100));
        mm.publish("a", storage("a", 999));
        assert_eq!(mm.len(), 1);
        assert_eq!(mm.lookup("a").unwrap().eval("FreeMb"), Value::Int(999));
        assert!(mm.withdraw("a"));
        assert!(!mm.withdraw("a"));
        assert!(mm.is_empty());
    }

    #[test]
    fn no_match_returns_none() {
        let mm = Matchmaker::new();
        assert!(mm.best_match(&request(1)).is_none());
    }
}
