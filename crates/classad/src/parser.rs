//! Recursive-descent parser for ClassAd expressions and ads.

use crate::ast::{BinOp, Expr, Scope, UnOp};
use crate::lexer::{tokenize, LexError, Token};
use crate::value::Value;
use crate::ClassAd;
use std::fmt;

/// Errors produced while parsing ClassAd text.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// Tokenization failed.
    Lex(LexError),
    /// A syntax error with a description and token index.
    Syntax { at: usize, msg: String },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "{}", e),
            ParseError::Syntax { at, msg } => write!(f, "syntax error at token {}: {}", at, msg),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

/// Parses a complete ClassAd: `[ name = expr ; ... ]`.
pub fn parse_ad(src: &str) -> Result<ClassAd, ParseError> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let ad = p.ad()?;
    p.expect_eof()?;
    Ok(ad)
}

/// Parses a single expression.
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::Syntax {
            at: self.pos,
            msg: msg.into(),
        }
    }

    fn expect(&mut self, tok: &Token) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == tok => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => Err(self.err(format!("expected '{}', found '{}'", tok, t))),
            None => Err(self.err(format!("expected '{}', found end of input", tok))),
        }
    }

    fn expect_eof(&self) -> Result<(), ParseError> {
        match self.peek() {
            None => Ok(()),
            Some(t) => Err(self.err(format!("trailing input starting at '{}'", t))),
        }
    }

    fn ad(&mut self) -> Result<ClassAd, ParseError> {
        self.expect(&Token::LBracket)?;
        let mut ad = ClassAd::new();
        loop {
            match self.peek() {
                Some(Token::RBracket) => {
                    self.pos += 1;
                    return Ok(ad);
                }
                Some(Token::Semi) => {
                    // Tolerate stray/trailing semicolons.
                    self.pos += 1;
                }
                Some(Token::Ident(_)) => {
                    let name = match self.bump() {
                        Some(Token::Ident(n)) => n,
                        _ => unreachable!(),
                    };
                    self.expect(&Token::Assign)?;
                    let expr = self.expr()?;
                    ad.insert(name, expr);
                    match self.peek() {
                        Some(Token::Semi) => {
                            self.pos += 1;
                        }
                        Some(Token::RBracket) => {}
                        Some(t) => {
                            return Err(self.err(format!(
                                "expected ';' or ']' after attribute, found '{}'",
                                t
                            )))
                        }
                        None => return Err(self.err("unterminated classad")),
                    }
                }
                Some(t) => return Err(self.err(format!("expected attribute name, found '{}'", t))),
                None => return Err(self.err("unterminated classad")),
            }
        }
    }

    /// expr := or_expr [ '?' expr ':' expr ]
    fn expr(&mut self) -> Result<Expr, ParseError> {
        let cond = self.binary(1)?;
        if self.peek() == Some(&Token::Question) {
            self.pos += 1;
            let then = self.expr()?;
            self.expect(&Token::Colon)?;
            let els = self.expr()?;
            Ok(Expr::Cond(Box::new(cond), Box::new(then), Box::new(els)))
        } else {
            Ok(cond)
        }
    }

    /// Precedence-climbing binary expression parser.
    fn binary(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek_binop() {
                Some(op) if op.precedence() >= min_prec => op,
                _ => return Ok(lhs),
            };
            self.consume_binop(op);
            let rhs = self.binary(op.precedence() + 1)?;
            lhs = Expr::bin(op, lhs, rhs);
        }
    }

    fn peek_binop(&self) -> Option<BinOp> {
        match self.peek()? {
            Token::OrOr => Some(BinOp::Or),
            Token::AndAnd => Some(BinOp::And),
            Token::Eq => Some(BinOp::Eq),
            Token::Ne => Some(BinOp::Ne),
            Token::Lt => Some(BinOp::Lt),
            Token::Le => Some(BinOp::Le),
            Token::Gt => Some(BinOp::Gt),
            Token::Ge => Some(BinOp::Ge),
            Token::Plus => Some(BinOp::Add),
            Token::Minus => Some(BinOp::Sub),
            Token::Star => Some(BinOp::Mul),
            Token::Slash => Some(BinOp::Div),
            Token::Percent => Some(BinOp::Mod),
            Token::Ident(s) if s.eq_ignore_ascii_case("is") => Some(BinOp::Is),
            Token::Ident(s) if s.eq_ignore_ascii_case("isnt") => Some(BinOp::Isnt),
            _ => None,
        }
    }

    fn consume_binop(&mut self, _op: BinOp) {
        self.pos += 1;
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some(Token::Not) => {
                self.pos += 1;
                Ok(Expr::Unary(UnOp::Not, Box::new(self.unary()?)))
            }
            Some(Token::Minus) => {
                self.pos += 1;
                let inner = self.unary()?;
                // Fold negation of numeric literals so `-1` parses as the
                // literal -1, making Display/parse a fixpoint.
                Ok(match inner {
                    Expr::Literal(Value::Int(i)) => match i.checked_neg() {
                        Some(n) => Expr::Literal(Value::Int(n)),
                        None => Expr::Unary(UnOp::Neg, Box::new(Expr::Literal(Value::Int(i)))),
                    },
                    Expr::Literal(Value::Real(r)) => Expr::Literal(Value::Real(-r)),
                    other => Expr::Unary(UnOp::Neg, Box::new(other)),
                })
            }
            Some(Token::Plus) => {
                // Unary plus is a no-op.
                self.pos += 1;
                self.unary()
            }
            _ => self.postfix(),
        }
    }

    /// Handles subscripting and selection suffixes: `a[0].b[1]`.
    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            match self.peek() {
                Some(Token::LBracket) => {
                    // Only a subscript when the base is not an ad literal
                    // start: primary() already consumed ads, so this is a
                    // subscript.
                    self.pos += 1;
                    let idx = self.expr()?;
                    self.expect(&Token::RBracket)?;
                    e = Expr::Index(Box::new(e), Box::new(idx));
                }
                Some(Token::Dot) => {
                    self.pos += 1;
                    match self.bump() {
                        Some(Token::Ident(name)) => {
                            e = Expr::Select(Box::new(e), name);
                        }
                        other => {
                            return Err(self.err(format!(
                                "expected attribute name after '.', found {:?}",
                                other
                            )))
                        }
                    }
                }
                _ => return Ok(e),
            }
        }
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().cloned() {
            Some(Token::Int(i)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Int(i)))
            }
            Some(Token::Real(r)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Real(r)))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Str(s)))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::LBrace) => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek() == Some(&Token::RBrace) {
                    self.pos += 1;
                    return Ok(Expr::List(items));
                }
                loop {
                    items.push(self.expr()?);
                    match self.bump() {
                        Some(Token::Comma) => continue,
                        Some(Token::RBrace) => return Ok(Expr::List(items)),
                        other => {
                            return Err(self
                                .err(format!("expected ',' or '}}' in list, found {:?}", other)))
                        }
                    }
                }
            }
            Some(Token::LBracket) => {
                let ad = self.ad()?;
                Ok(Expr::Ad(Box::new(ad)))
            }
            Some(Token::Ident(name)) => {
                self.pos += 1;
                // Keywords.
                let lower = name.to_ascii_lowercase();
                match lower.as_str() {
                    "true" => return Ok(Expr::Literal(Value::Bool(true))),
                    "false" => return Ok(Expr::Literal(Value::Bool(false))),
                    "undefined" => return Ok(Expr::Literal(Value::Undefined)),
                    "error" => return Ok(Expr::Literal(Value::Error)),
                    _ => {}
                }
                // Scope prefixes: my.x, self.x, other.x, target.x.
                if matches!(lower.as_str(), "my" | "self" | "other" | "target")
                    && self.peek() == Some(&Token::Dot)
                {
                    self.pos += 1; // consume '.'
                    match self.bump() {
                        Some(Token::Ident(attr)) => {
                            let scope = if lower == "my" || lower == "self" {
                                Scope::My
                            } else {
                                Scope::Other
                            };
                            return Ok(Expr::Attr(scope, attr));
                        }
                        other => {
                            return Err(self.err(format!(
                                "expected attribute after scope '{}', found {:?}",
                                name, other
                            )))
                        }
                    }
                }
                // Function call.
                if self.peek() == Some(&Token::LParen) {
                    self.pos += 1;
                    let mut args = Vec::new();
                    if self.peek() == Some(&Token::RParen) {
                        self.pos += 1;
                        return Ok(Expr::Call(name, args));
                    }
                    loop {
                        args.push(self.expr()?);
                        match self.bump() {
                            Some(Token::Comma) => continue,
                            Some(Token::RParen) => return Ok(Expr::Call(name, args)),
                            other => {
                                return Err(self.err(format!(
                                    "expected ',' or ')' in call, found {:?}",
                                    other
                                )))
                            }
                        }
                    }
                }
                Ok(Expr::Attr(Scope::Local, name))
            }
            Some(t) => Err(self.err(format!("unexpected token '{}'", t))),
            None => Err(self.err("unexpected end of input")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        assert_eq!(
            e,
            Expr::bin(
                BinOp::Add,
                Expr::lit(1i64),
                Expr::bin(BinOp::Mul, Expr::lit(2i64), Expr::lit(3i64))
            )
        );
    }

    #[test]
    fn parse_left_associativity() {
        let e = parse_expr("10 - 4 - 3").unwrap();
        assert_eq!(
            e,
            Expr::bin(
                BinOp::Sub,
                Expr::bin(BinOp::Sub, Expr::lit(10i64), Expr::lit(4i64)),
                Expr::lit(3i64)
            )
        );
    }

    #[test]
    fn parse_conditional() {
        let e = parse_expr("a > 1 ? \"big\" : \"small\"").unwrap();
        match e {
            Expr::Cond(..) => {}
            other => panic!("expected conditional, got {:?}", other),
        }
    }

    #[test]
    fn parse_scoped_attrs() {
        assert_eq!(
            parse_expr("other.FreeSpace").unwrap(),
            Expr::Attr(Scope::Other, "FreeSpace".into())
        );
        assert_eq!(
            parse_expr("MY.load").unwrap(),
            Expr::Attr(Scope::My, "load".into())
        );
        assert_eq!(
            parse_expr("target.x").unwrap(),
            Expr::Attr(Scope::Other, "x".into())
        );
    }

    #[test]
    fn parse_call_and_list() {
        let e = parse_expr("member(\"nfs\", { \"chirp\", \"nfs\" })").unwrap();
        match e {
            Expr::Call(name, args) => {
                assert_eq!(name, "member");
                assert_eq!(args.len(), 2);
            }
            other => panic!("expected call, got {:?}", other),
        }
    }

    #[test]
    fn parse_nested_ad() {
        let ad = parse_ad("[ inner = [ x = 1 ]; y = inner.x ]").unwrap();
        assert!(ad.get("inner").is_some());
        assert!(matches!(ad.get("y"), Some(Expr::Select(_, _))));
    }

    #[test]
    fn parse_is_isnt_keywords() {
        let e = parse_expr("x is undefined").unwrap();
        assert!(matches!(e, Expr::Binary(BinOp::Is, _, _)));
        let e = parse_expr("x ISNT error").unwrap();
        assert!(matches!(e, Expr::Binary(BinOp::Isnt, _, _)));
    }

    #[test]
    fn parse_boolean_keywords_case_insensitive() {
        assert_eq!(parse_expr("TRUE").unwrap(), Expr::lit(true));
        assert_eq!(parse_expr("False").unwrap(), Expr::lit(false));
    }

    #[test]
    fn parse_subscript() {
        let e = parse_expr("protocols[0]").unwrap();
        assert!(matches!(e, Expr::Index(_, _)));
    }

    #[test]
    fn parse_empty_ad_and_empty_list() {
        assert!(parse_ad("[ ]").unwrap().is_empty());
        assert_eq!(parse_expr("{}").unwrap(), Expr::List(vec![]));
    }

    #[test]
    fn parse_trailing_semicolon_tolerated() {
        let ad = parse_ad("[ a = 1; ]").unwrap();
        assert_eq!(ad.len(), 1);
    }

    #[test]
    fn parse_errors_reported() {
        assert!(parse_ad("[ a = ]").is_err());
        assert!(parse_expr("1 +").is_err());
        assert!(parse_expr("(1").is_err());
        assert!(parse_ad("[ a = 1").is_err());
    }

    #[test]
    fn parse_unary_chain() {
        let e = parse_expr("!!true").unwrap();
        assert!(matches!(e, Expr::Unary(UnOp::Not, _)));
        // Negation folds into numeric literals.
        assert_eq!(parse_expr("-3").unwrap(), Expr::lit(-3i64));
        assert_eq!(parse_expr("--3").unwrap(), Expr::lit(3i64));
        // ...but not into non-literals.
        let e = parse_expr("-x").unwrap();
        assert!(matches!(e, Expr::Unary(UnOp::Neg, _)));
    }
}
