//! Property-based tests: any expression tree we can generate prints to
//! concrete syntax that reparses to the identical tree, and evaluation is a
//! pure function of the tree.

use nest_classad::ast::{BinOp, Expr, Scope, UnOp};
use nest_classad::{parse_ad, parse_expr, ClassAd, Value};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Undefined),
        Just(Value::Error),
        any::<bool>().prop_map(Value::Bool),
        // i64::MIN is excluded: its magnitude has no positive literal form,
        // so `-9223372036854775808` cannot be tokenized (documented edge).
        ((i64::MIN + 1)..=i64::MAX).prop_map(Value::Int),
        // Finite reals only: NaN/inf have no literal syntax.
        (-1.0e12..1.0e12f64).prop_map(Value::Real),
        "[a-zA-Z0-9 _.-]{0,12}".prop_map(Value::Str),
    ]
}

fn arb_ident() -> impl Strategy<Value = String> {
    // Avoid reserved words (true/false/undefined/error/is/isnt and scope
    // prefixes) by prefixing.
    "[a-z][a-z0-9_]{0,8}".prop_map(|s| format!("attr_{}", s))
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Or),
        Just(BinOp::And),
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Is),
        Just(BinOp::Isnt),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Mod),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        arb_value().prop_map(Expr::Literal),
        arb_ident().prop_map(|n| Expr::Attr(Scope::Local, n)),
        arb_ident().prop_map(|n| Expr::Attr(Scope::My, n)),
        arb_ident().prop_map(|n| Expr::Attr(Scope::Other, n)),
    ];
    leaf.prop_recursive(4, 32, 4, |inner| {
        prop_oneof![
            (arb_binop(), inner.clone(), inner.clone()).prop_map(|(op, l, r)| Expr::bin(op, l, r)),
            inner
                .clone()
                .prop_map(|e| Expr::Unary(UnOp::Not, Box::new(e))),
            inner
                .clone()
                .prop_map(|e| Expr::Unary(UnOp::Neg, Box::new(e))),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, e)| Expr::Cond(
                Box::new(c),
                Box::new(t),
                Box::new(e)
            )),
            prop::collection::vec(inner.clone(), 0..4).prop_map(Expr::List),
            (arb_ident(), prop::collection::vec(inner.clone(), 0..3))
                .prop_map(|(n, a)| Expr::Call(n, a)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn expr_display_parse_is_a_fixpoint(e in arb_expr()) {
        // print → parse → print must be a fixpoint. (Direct tree equality
        // does not hold because the parser folds `-<literal>`, e.g.
        // Unary(Neg, 1) and Literal(-1) both print as "-1".)
        let p1 = e.to_string();
        let r1 = parse_expr(&p1)
            .unwrap_or_else(|err| panic!("failed to reparse {:?}: {}", p1, err));
        // r1 is parser-normalized; from here print/parse must be stable.
        let p2 = r1.to_string();
        let r2 = parse_expr(&p2)
            .unwrap_or_else(|err| panic!("failed to reparse {:?}: {}", p2, err));
        prop_assert_eq!(&r1, &r2);
        prop_assert_eq!(p2, r2.to_string());
    }

    #[test]
    fn ad_display_parse_is_a_fixpoint(
        attrs in prop::collection::vec((arb_ident(), arb_expr()), 0..6)
    ) {
        let mut ad = ClassAd::new();
        for (name, expr) in attrs {
            ad.insert(name, expr);
        }
        let p1 = ad.to_string();
        let r1: ClassAd = p1.parse()
            .unwrap_or_else(|err| panic!("failed to reparse {:?}: {}", p1, err));
        let p2 = r1.to_string();
        let r2: ClassAd = p2.parse()
            .unwrap_or_else(|err| panic!("failed to reparse {:?}: {}", p2, err));
        prop_assert_eq!(&r1, &r2);
        prop_assert_eq!(p2, r2.to_string());
    }

    #[test]
    fn evaluation_is_deterministic(e in arb_expr()) {
        let ad = ClassAd::new();
        prop_assert_eq!(ad.eval_expr(&e), ad.eval_expr(&e));
    }

    #[test]
    fn evaluation_never_panics_with_attrs(
        e in arb_expr(),
        vals in prop::collection::vec((arb_ident(), arb_value()), 0..4)
    ) {
        let mut ad = ClassAd::new();
        for (name, v) in vals {
            ad.insert_value(name, v);
        }
        // Must not panic; the value itself is unconstrained.
        let _ = ad.eval_expr(&e);
    }

    #[test]
    fn matches_is_symmetric(
        a_free in 0i64..1000,
        b_need in 0i64..1000,
    ) {
        let a = parse_ad(&format!(
            "[ FreeMb = {}; Requirements = other.NeedMb <= my.FreeMb ]", a_free)).unwrap();
        let b = parse_ad(&format!(
            "[ NeedMb = {}; Requirements = other.FreeMb >= my.NeedMb ]", b_need)).unwrap();
        prop_assert_eq!(
            nest_classad::matches(&a, &b),
            nest_classad::matches(&b, &a)
        );
        prop_assert_eq!(nest_classad::matches(&a, &b), b_need <= a_free);
    }
}
