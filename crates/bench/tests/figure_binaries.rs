//! The figure binaries themselves must be deterministic: EXPERIMENTS.md
//! quotes their output verbatim, so two runs must be byte-identical.

use std::process::Command;

fn run_twice(bin: &str) {
    let out = |()| {
        Command::new(bin)
            .output()
            .unwrap_or_else(|e| panic!("{} failed to run: {}", bin, e))
    };
    let a = out(());
    let b = out(());
    assert!(a.status.success(), "{} exited with {:?}", bin, a.status);
    assert_eq!(a.stdout, b.stdout, "{} output differs between runs", bin);
    assert!(!a.stdout.is_empty());
}

#[test]
fn fig3_binary_is_deterministic() {
    run_twice(env!("CARGO_BIN_EXE_fig3_protocols"));
}

#[test]
fn fig4_binary_is_deterministic() {
    run_twice(env!("CARGO_BIN_EXE_fig4_proportional"));
}

#[test]
fn fig5_binary_is_deterministic() {
    run_twice(env!("CARGO_BIN_EXE_fig5_adaptive"));
}

#[test]
fn fig6_binary_is_deterministic() {
    run_twice(env!("CARGO_BIN_EXE_fig6_lots"));
}
