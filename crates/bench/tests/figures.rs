//! Figure-shape regression tests: the qualitative claims recorded in
//! EXPERIMENTS.md, locked in so a refactor cannot silently break the
//! reproduction. Each test states the paper's claim it guards.

use nest_simenv::server::{SimModel, SimPolicy};
use nest_simenv::writepath::{write_bandwidth, WritePathModel};
use nest_simenv::{ClientSpec, PlatformProfile, SimJbos, SimServer};
use nest_transfer::fairness::jain_fairness_weighted;
use nest_transfer::ModelKind;

const CLASSES: [&str; 4] = ["chirp", "gridftp", "http", "nfs"];

fn nest_fcfs() -> SimServer {
    SimServer::nest(
        PlatformProfile::linux_gige(),
        SimPolicy::Fcfs,
        SimModel::Fixed(ModelKind::Events),
    )
}

fn run_single(proto: &str) -> f64 {
    let clients = ClientSpec::paper_single_protocol(proto);
    let mut s = nest_fcfs();
    s.warm_cache(&clients);
    s.run(&clients, 5.0).bandwidth(proto)
}

#[test]
fn fig3_cheap_protocols_at_peak_expensive_at_half() {
    // Paper: Chirp/HTTP ≈ 35 MB/s (peak), GridFTP/NFS ≈ half.
    let chirp = run_single("chirp");
    let http = run_single("http");
    let gftp = run_single("gridftp");
    let nfs = run_single("nfs");
    assert!(
        (chirp / http - 1.0).abs() < 0.05,
        "chirp {} http {}",
        chirp,
        http
    );
    let g_ratio = gftp / chirp;
    let n_ratio = nfs / chirp;
    assert!(g_ratio > 0.35 && g_ratio < 0.65, "gridftp/peak {}", g_ratio);
    assert!(n_ratio > 0.30 && n_ratio < 0.65, "nfs/peak {}", n_ratio);
    // Absolute peak in the paper's ballpark (30–40 MB/s axis).
    assert!(
        chirp / 1e6 > 30.0 && chirp / 1e6 < 42.0,
        "peak {}",
        chirp / 1e6
    );
}

#[test]
fn fig3_nest_close_to_jbos_single_protocol() {
    // Paper: "the performance of NeST across all protocols is very
    // similar to that of the native server."
    for proto in CLASSES {
        let clients = ClientSpec::paper_single_protocol(proto);
        let mut nest = nest_fcfs();
        nest.warm_cache(&clients);
        let n = nest.run(&clients, 5.0).bandwidth(proto);
        let mut jbos = SimJbos::new(PlatformProfile::linux_gige());
        jbos.warm_cache(&clients);
        let j = jbos.run(&clients, 5.0).bandwidth(proto);
        let ratio = n / j;
        assert!(
            (0.9..1.1).contains(&ratio),
            "{}: nest/jbos ratio {}",
            proto,
            ratio
        );
    }
}

#[test]
fn fig3_mixed_fifo_nest_starves_nfs_jbos_does_not() {
    let clients = ClientSpec::paper_mixed_workload();
    let mut nest = nest_fcfs();
    nest.warm_cache(&clients);
    let ns = nest.run(&clients, 5.0);
    let mut jbos = SimJbos::new(PlatformProfile::linux_gige());
    jbos.warm_cache(&clients);
    let js = jbos.run(&clients, 5.0);
    assert!(js.bandwidth("nfs") > 4.0 * ns.bandwidth("nfs").max(1.0));
    // Totals comparable (paper: 33–35 for both).
    let ratio = ns.total_bandwidth() / js.total_bandwidth();
    assert!((0.75..1.35).contains(&ratio), "total ratio {}", ratio);
}

fn run_stride(ratios: [u32; 4], wc: bool) -> nest_simenv::SimStats {
    let clients = ClientSpec::paper_mixed_workload();
    let mut s = SimServer::nest(
        PlatformProfile::linux_gige(),
        SimPolicy::Stride {
            tickets: CLASSES
                .iter()
                .zip(ratios)
                .map(|(c, r)| ((*c).to_owned(), r * 100))
                .collect(),
            work_conserving: wc,
        },
        SimModel::Fixed(ModelKind::Events),
    );
    s.warm_cache(&clients);
    s.run(&clients, 5.0)
}

fn fairness_of(stats: &nest_simenv::SimStats, ratios: [u32; 4]) -> f64 {
    let delivered: Vec<f64> = CLASSES.iter().map(|c| stats.bandwidth(c)).collect();
    let desired: Vec<f64> = ratios.iter().map(|r| *r as f64).collect();
    jain_fairness_weighted(&delivered, &desired)
}

#[test]
fn fig4_feasible_ratios_reach_high_fairness() {
    // Paper: Jain fairness > 0.98 for 1:1:1:1, 1:2:1:1 and 3:1:2:1.
    for ratios in [[1u32, 1, 1, 1], [1, 2, 1, 1], [3, 1, 2, 1]] {
        let stats = run_stride(ratios, true);
        let f = fairness_of(&stats, ratios);
        assert!(f > 0.98, "ratios {:?} fairness {}", ratios, f);
    }
}

#[test]
fn fig4_nfs_heavy_ratio_degrades() {
    // Paper: 1:1:1:4 only reaches ≈ 0.87 — not enough NFS requests.
    let stats = run_stride([1, 1, 1, 4], true);
    let f = fairness_of(&stats, [1, 1, 1, 4]);
    assert!(f < 0.96, "nfs-heavy fairness unexpectedly high: {}", f);
    assert!(f > 0.75, "nfs-heavy fairness unexpectedly low: {}", f);
}

#[test]
fn fig4_proportional_costs_total_bandwidth_vs_fifo() {
    // Paper: 24–28 MB/s proportional vs ≈ 33 MB/s FIFO.
    let clients = ClientSpec::paper_mixed_workload();
    let mut fifo = nest_fcfs();
    fifo.warm_cache(&clients);
    let fifo_total = fifo.run(&clients, 5.0).total_bandwidth();
    let stride_total = run_stride([1, 1, 1, 1], true).total_bandwidth();
    assert!(
        stride_total < fifo_total,
        "stride {} should cost bandwidth vs fifo {}",
        stride_total,
        fifo_total
    );
    assert!(
        stride_total > 0.6 * fifo_total,
        "stride {} too far below fifo {}",
        stride_total,
        fifo_total
    );
}

#[test]
fn fig4_extension_nwc_improves_allocation_control() {
    // Paper §7.2: a non-work-conserving policy "might pay a slight penalty
    // in average response time for improved allocation control."
    let wc = run_stride([1, 1, 1, 4], true);
    let nwc = run_stride([1, 1, 1, 4], false);
    assert!(fairness_of(&nwc, [1, 1, 1, 4]) > fairness_of(&wc, [1, 1, 1, 4]));
    assert!(nwc.total_bandwidth() < wc.total_bandwidth());
}

fn fig5_latency(model: SimModel) -> f64 {
    let clients: Vec<ClientSpec> = (0..4)
        .map(|_| ClientSpec::file_client("http", 1 << 10))
        .collect();
    let mut s = SimServer::nest(PlatformProfile::solaris_100mbit(), SimPolicy::Fcfs, model);
    s.warm_cache(&clients);
    s.run(&clients, 10.0).mean_latency("http")
}

fn fig5_bandwidth(model: SimModel) -> f64 {
    let clients: Vec<ClientSpec> = (0..4)
        .map(|_| ClientSpec::file_client("http", 10 << 20).with_working_set(40))
        .collect();
    let mut s = SimServer::nest(PlatformProfile::linux_gige(), SimPolicy::Fcfs, model);
    s.run(&clients, 10.0).bandwidth("http")
}

#[test]
fn fig5_left_solaris_events_beat_threads_adaptive_between() {
    let ev = fig5_latency(SimModel::Fixed(ModelKind::Events));
    let th = fig5_latency(SimModel::Fixed(ModelKind::Threads));
    let ad = fig5_latency(SimModel::Adaptive(vec![
        ModelKind::Events,
        ModelKind::Threads,
    ]));
    assert!(ev < th, "events {} threads {}", ev, th);
    assert!(
        ad > ev && ad < th,
        "adaptive {} not between {} and {}",
        ad,
        ev,
        th
    );
}

#[test]
fn fig5_right_linux_threads_beat_events_adaptive_between() {
    let ev = fig5_bandwidth(SimModel::Fixed(ModelKind::Events));
    let th = fig5_bandwidth(SimModel::Fixed(ModelKind::Threads));
    let ad = fig5_bandwidth(SimModel::Adaptive(vec![
        ModelKind::Events,
        ModelKind::Threads,
    ]));
    assert!(th > ev, "threads {} events {}", th, ev);
    assert!(
        ad < th && ad > ev,
        "adaptive {} not between {} and {}",
        ad,
        ev,
        th
    );
}

#[test]
fn fig6_quota_overhead_negligible_small_heavy_large() {
    let m = WritePathModel::linux_2002();
    let small = write_bandwidth(&m, 20.0, true) / write_bandwidth(&m, 20.0, false);
    let large = write_bandwidth(&m, 200.0, true) / write_bandwidth(&m, 200.0, false);
    assert!(small > 0.95, "small-write ratio {}", small);
    assert!(large < 0.62 && large > 0.40, "large-write ratio {}", large);
}

#[test]
fn figures_are_deterministic_across_runs() {
    // Every figure number must be bit-identical between runs, or
    // EXPERIMENTS.md would drift.
    let a = run_stride([3, 1, 2, 1], true);
    let b = run_stride([3, 1, 2, 1], true);
    for c in CLASSES {
        assert_eq!(a.bandwidth(c).to_bits(), b.bandwidth(c).to_bits(), "{}", c);
    }
    assert_eq!(a.elapsed.to_bits(), b.elapsed.to_bits());
}
