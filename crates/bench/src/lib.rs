//! # nest-bench
//!
//! The experiment harness: one binary per figure in the paper's
//! evaluation (§7), each printing the same rows/series the paper reports,
//! plus Criterion micro-benchmarks for the hot paths.
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `fig3_protocols` | Figure 3 — multiple protocols, NeST vs JBOS |
//! | `fig4_proportional` | Figure 4 — proportional protocol scheduling |
//! | `fig5_adaptive` | Figure 5 — adaptive concurrency (Solaris + Linux) |
//! | `fig6_lots` | Figure 6 — lot (quota) overhead vs write size |
//! | `ablations` | Beyond-paper ablations (NWC stride, cache-aware, reclamation) |
//!
//! Figure binaries run on the deterministic simulation substrate
//! (`nest-simenv`), which drives the production scheduler/adaptation/cache
//! code under calibrated platform profiles — see `DESIGN.md` for the
//! substitution rationale and `EXPERIMENTS.md` for paper-vs-measured.

pub mod table;

pub use table::Table;
