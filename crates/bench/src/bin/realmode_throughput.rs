//! Real-mode sanity check: drive a live NeST over loopback sockets and
//! report delivered throughput per protocol and per concurrency model.
//!
//! The paper's absolute numbers come from 2002 hardware and the figure
//! binaries reproduce their *shapes* in simulation; this harness confirms
//! the real server actually moves bytes at a healthy rate and that every
//! concurrency model works on this host. (Numbers here are loopback
//! numbers — expect hundreds of MB/s, not GigE-era 35.)

use nest_bench::Table;
use nest_core::config::NestConfig;
use nest_core::server::NestServer;
use nest_proto::chirp::ChirpClient;
use nest_proto::http::HttpClient;
use nest_transfer::manager::ModelSelection;
use nest_transfer::ModelKind;
use std::time::{Duration, Instant};

const FILE_SIZE: usize = 4 << 20;
const CLIENTS: usize = 4;
const RUN: Duration = Duration::from_secs(2);

fn run_config(model_name: &str, model: ModelSelection) -> (f64, f64, String) {
    let mut config = NestConfig::ephemeral("realmode");
    config.model = model;
    let server = NestServer::start(config).unwrap();
    server
        .grant_default_lot("anonymous", 256 << 20, 3600)
        .unwrap();

    // Stage the file once.
    let body = vec![7u8; FILE_SIZE];
    let mut stage = HttpClient::connect(server.http_addr.unwrap()).unwrap();
    assert_eq!(stage.put_bytes("/bench.bin", &body).unwrap(), 201);

    let deadline = Instant::now() + RUN;
    let chirp_addr = server.chirp_addr.unwrap();
    let http_addr = server.http_addr.unwrap();
    let mut handles = Vec::new();
    for _ in 0..CLIENTS {
        handles.push(std::thread::spawn(move || {
            let mut c = ChirpClient::connect(chirp_addr).unwrap();
            let mut bytes = 0u64;
            while Instant::now() < deadline {
                bytes += c.get_bytes("/bench.bin").unwrap().len() as u64;
            }
            ("chirp", bytes)
        }));
        handles.push(std::thread::spawn(move || {
            let mut c = HttpClient::connect(http_addr).unwrap();
            let mut bytes = 0u64;
            while Instant::now() < deadline {
                bytes += c.get_bytes("/bench.bin").unwrap().len() as u64;
            }
            ("http", bytes)
        }));
    }
    let mut chirp_bytes = 0u64;
    let mut http_bytes = 0u64;
    for h in handles {
        let (proto, bytes) = h.join().unwrap();
        if proto == "chirp" {
            chirp_bytes += bytes;
        } else {
            http_bytes += bytes;
        }
    }
    let stats = server.dispatcher().transfer_stats();
    let mut models: Vec<String> = stats
        .per_model
        .iter()
        .map(|(m, n)| format!("{}:{}", m, n))
        .collect();
    models.sort();
    server.shutdown();
    let secs = RUN.as_secs_f64();
    let _ = model_name;
    (
        chirp_bytes as f64 / secs / 1e6,
        http_bytes as f64 / secs / 1e6,
        models.join(" "),
    )
}

fn main() {
    println!(
        "Real-mode loopback throughput: {} chirp + {} http clients, {} MB file, {:?} per config\n",
        CLIENTS,
        CLIENTS,
        FILE_SIZE >> 20,
        RUN
    );
    let mut table = Table::new(&["model", "chirp MB/s", "http MB/s", "completions by model"]);
    for (name, model) in [
        ("events", ModelSelection::Fixed(ModelKind::Events)),
        ("threads", ModelSelection::Fixed(ModelKind::Threads)),
        ("processes", ModelSelection::Fixed(ModelKind::Processes)),
        (
            "adaptive",
            ModelSelection::Adaptive(vec![
                ModelKind::Events,
                ModelKind::Threads,
                ModelKind::Processes,
            ]),
        ),
    ] {
        let (chirp, http, models) = run_config(name, model);
        table.row(vec![
            name.into(),
            format!("{:.0}", chirp),
            format!("{:.0}", http),
            models,
        ]);
    }
    table.print();
    println!("\n(loopback numbers; the figure binaries reproduce the paper's 2002 shapes)");
}
