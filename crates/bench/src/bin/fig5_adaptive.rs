//! Figure 5 — Adaptive Concurrency (paper §7.3).
//!
//! "In the graph on the left, the experiment measures average request
//! latency on Solaris for 1 KB requests under events, threads, and the
//! adaptive NeST approach. In the graph on the right, the experiment
//! measures bandwidth on Linux for 10 MB requests, again under all three
//! models. In both cases, NeST adaptively picks the better model, though
//! there is an overhead to doing so. Note that the process model is
//! disabled in these experiments for the sake of clarity."
//!
//! Expected shape: Solaris/1 KB in-cache — events beat threads on latency
//! and adaptive lands between them; Linux/10 MB I/O-bound — threads beat
//! events on bandwidth (overlapped disk/network) and adaptive comes close
//! to the winner.

use nest_bench::Table;
use nest_simenv::server::{SimModel, SimPolicy};
use nest_simenv::stats::mbps;
use nest_simenv::{ClientSpec, PlatformProfile, SimServer};
use nest_transfer::ModelKind;

const DURATION: f64 = 20.0;

/// The three configurations, with the process model disabled as in the
/// paper.
fn models() -> [(&'static str, SimModel); 3] {
    [
        ("events", SimModel::Fixed(ModelKind::Events)),
        ("threads", SimModel::Fixed(ModelKind::Threads)),
        (
            "adaptive",
            SimModel::Adaptive(vec![ModelKind::Events, ModelKind::Threads]),
        ),
    ]
}

fn main() {
    println!("Figure 5: Adaptive Concurrency");
    println!("(process model disabled, as in the paper)\n");

    // Left: Solaris, 1 KB in-cache requests, average latency.
    println!("Left graph — Solaris, 1 KB in-cache requests (average latency):");
    let mut left = Table::new(&["model", "avg latency (ms)"]);
    for (name, model) in models() {
        let clients: Vec<ClientSpec> = (0..4)
            .map(|_| ClientSpec::file_client("http", 1 << 10))
            .collect();
        let mut server =
            SimServer::nest(PlatformProfile::solaris_100mbit(), SimPolicy::Fcfs, model);
        server.warm_cache(&clients);
        let stats = server.run(&clients, DURATION);
        left.row(vec![
            name.into(),
            format!("{:.3}", stats.mean_latency("http") * 1e3),
        ]);
    }
    left.print();

    // Right: Linux, 10 MB I/O-bound requests, bandwidth. A 400 MB working
    // set per client defeats the 256 MB cache, so transfers hit the disk
    // and the overlapped-I/O advantage of threads shows.
    println!("\nRight graph — Linux, 10 MB disk-bound requests (bandwidth):");
    let mut right = Table::new(&["model", "bandwidth (MB/s)"]);
    for (name, model) in models() {
        let clients: Vec<ClientSpec> = (0..4)
            .map(|_| ClientSpec::file_client("http", 10 << 20).with_working_set(40))
            .collect();
        let mut server = SimServer::nest(PlatformProfile::linux_gige(), SimPolicy::Fcfs, model);
        let stats = server.run(&clients, DURATION);
        right.row(vec![
            name.into(),
            format!("{:.1}", mbps(stats.bandwidth("http"))),
        ]);
    }
    right.print();

    println!();
    println!("Paper checkpoints:");
    println!("  * Solaris/1 KB: events < adaptive < threads on latency.");
    println!("  * Linux/10 MB: threads > adaptive > events on bandwidth.");
    println!("  * Adaptation lands near the better model but pays a visible cost:");
    println!("    it keeps probing the other model to track workload shifts.");
}
