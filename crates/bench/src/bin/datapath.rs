//! Real-mode data-path benchmark: the per-chunk syscall/allocation storm,
//! measured (DESIGN.md §10).
//!
//! Drives GET and PUT flows through the live transfer engine over a
//! [`LocalFsBackend`], plus an NFS-style 8 KiB block-read workload straight
//! against the backend, across the 2×2 ablation of the two data-path
//! optimizations this repo applies:
//!
//! * **FD handle cache** (storage layer): positional I/O on a cached open
//!   file handle vs open-per-chunk (the seed's open+seek+read+close).
//! * **Chunk buffer pool** (transfer layer): recycled staging buffers vs a
//!   fresh `vec![0; chunk_size]` per flow.
//!
//! Methodology: each workload is measured over several repetitions with
//! the four configs interleaved round-robin, and the median is reported —
//! on a shared single-CPU host, background writeback hits whichever config
//! happens to be running, and interleaving spreads that noise across all
//! of them instead of poisoning one.
//!
//! Emits machine-readable results to `BENCH_datapath.json` (override with
//! `--out <path>`); `--smoke` shrinks sizes for the CI gate. The binary
//! validates its own output (all rates finite and positive) and exits
//! non-zero otherwise.

use nest_bench::Table;
use nest_core::dispatcher::{BackendSink, BackendSource, SocketSink};
use nest_obs::Obs;
use nest_storage::{
    AclTable, LocalFsBackend, Principal, ReclaimPolicy, StorageBackend, StorageManager, VPath,
};
use nest_transfer::flow::{CountingSink, DataSource, FlowMeta, PatternSource};
use nest_transfer::manager::{
    ModelSelection, SchedPolicy, TransferConfig, TransferHandle, TransferManager,
};
use nest_transfer::ModelKind;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

const CHUNK: usize = 64 * 1024;
const BLOCK: usize = 8 * 1024;
/// Pipelining depth for flow submission; below the pool's idle bound so
/// buffers recycle in steady state.
const IN_FLIGHT: usize = 16;

struct Sizes {
    file_size: u64,
    files: usize,
    /// GET volume per repetition, in whole passes over the working set.
    get_rounds: usize,
    /// PUT flows per repetition, in multiples of `files`.
    put_rounds: usize,
    nfs_file: u64,
    nfs_passes: usize,
    reps: usize,
}

impl Sizes {
    fn real() -> Self {
        Self {
            file_size: 1 << 20, // 1 MiB, the ISSUE workload
            files: 8,
            get_rounds: 16, // 128 MiB of GETs per rep per config
            put_rounds: 4,  // 32 MiB of PUTs per rep per config
            nfs_file: 4 << 20,
            nfs_passes: 16,
            reps: 5,
        }
    }

    fn smoke() -> Self {
        Self {
            file_size: 64 << 10,
            files: 2,
            get_rounds: 2,
            put_rounds: 2,
            nfs_file: 64 << 10,
            nfs_passes: 2,
            reps: 1,
        }
    }
}

/// One live config under test: a storage stack plus a transfer engine.
struct Ctx {
    name: &'static str,
    pool: bool,
    cache: bool,
    zc: bool,
    dir: PathBuf,
    backend: Arc<LocalFsBackend>,
    storage: Arc<StorageManager>,
    obs: Arc<Obs>,
    tm: TransferManager,
    get_paths: Vec<VPath>,
    get_samples: Vec<f64>,
    put_samples: Vec<f64>,
    nfs_samples: Vec<f64>,
    sock_samples: Vec<f64>,
    /// Socket-GET MB per engine-thread CPU second (appliance-side
    /// efficiency; see `measure_socket_get`).
    sock_cpu_samples: Vec<f64>,
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nest-datapath-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn setup(name: &'static str, pool: bool, cache: bool, zc: bool, sz: &Sizes) -> Ctx {
    let dir = scratch(name);
    let backend = Arc::new(
        // nestlint: allow(tier-bypass): bench harness assembles its own appliance internals
        LocalFsBackend::new(&dir)
            .unwrap()
            .with_handle_cache_capacity(if cache { 128 } else { 0 }),
    );
    let storage = Arc::new(
        StorageManager::new(
            Arc::clone(&backend) as Arc<dyn StorageBackend>,
            AclTable::open_by_default(),
            u64::MAX / 4,
            ReclaimPolicy::Lru,
        )
        .with_lots_disabled(),
    );
    let obs = Obs::new();
    let tm = TransferManager::new(TransferConfig {
        policy: SchedPolicy::Fcfs,
        model: ModelSelection::Fixed(ModelKind::Events),
        chunk_size: CHUNK,
        pool_buffers: pool,
        zerocopy: zc,
        obs: Some(Arc::clone(&obs)),
        ..TransferConfig::default()
    });

    // Stage the GET working set and warm the OS page cache.
    let get_paths: Vec<VPath> = (0..sz.files)
        .map(|i| VPath::parse(&format!("/get{i}.dat")).unwrap())
        .collect();
    let body: Vec<u8> = (0..sz.file_size).map(|i| (i % 251) as u8).collect();
    let mut warm = vec![0u8; CHUNK];
    for p in &get_paths {
        backend.create(p).unwrap();
        backend.write_at(p, 0, &body).unwrap();
        let mut off = 0u64;
        while backend.read_at(p, off, &mut warm).unwrap() > 0 {
            off += CHUNK as u64;
        }
    }
    // Stage the NFS block-read file.
    let nfs = VPath::parse("/nfs.dat").unwrap();
    backend.create(&nfs).unwrap();
    backend
        .write_at(&nfs, 0, &vec![0x42u8; sz.nfs_file as usize])
        .unwrap();

    Ctx {
        name,
        pool,
        cache,
        zc,
        dir,
        backend,
        storage,
        obs,
        tm,
        get_paths,
        get_samples: Vec::new(),
        put_samples: Vec::new(),
        nfs_samples: Vec::new(),
        sock_samples: Vec::new(),
        sock_cpu_samples: Vec::new(),
    }
}

/// GET: 1 MiB files through the live engine in 64 KiB chunks, pipelined
/// behind a bounded in-flight window (a loaded server, not a ping-pong
/// client). Returns MB/s.
fn measure_get(ctx: &Ctx, sz: &Sizes) -> f64 {
    let start = Instant::now();
    let mut window: VecDeque<TransferHandle> = VecDeque::new();
    for _ in 0..sz.get_rounds {
        for p in &ctx.get_paths {
            let meta = FlowMeta::new(ctx.tm.next_flow_id(), "get", Some(sz.file_size));
            let src = BackendSource::new(Arc::clone(&ctx.storage), p.clone(), 0, sz.file_size);
            window.push_back(
                ctx.tm
                    .submit(meta, Box::new(src), Box::new(CountingSink::default())),
            );
            if window.len() >= IN_FLIGHT {
                assert_eq!(window.pop_front().unwrap().wait().unwrap(), sz.file_size);
            }
        }
    }
    for h in window {
        assert_eq!(h.wait().unwrap(), sz.file_size);
    }
    let bytes = sz.get_rounds as u64 * sz.files as u64 * sz.file_size;
    bytes as f64 / start.elapsed().as_secs_f64() / 1e6
}

/// PUT: 1 MiB files through the live engine onto a rotating set of
/// IN_FLIGHT paths (overwrite semantics, as a busy ingest point sees): the
/// dirty working set stays bounded so the numbers measure the data path,
/// not the host's writeback heuristics. A path is reused only after its
/// previous flow has been awaited. Returns MB/s.
fn measure_put(ctx: &Ctx, sz: &Sizes) -> f64 {
    let who = Principal::user("bench");
    let put_paths: Vec<VPath> = (0..IN_FLIGHT)
        .map(|i| VPath::parse(&format!("/put{i}.dat")).unwrap())
        .collect();
    let total = sz.put_rounds * sz.files;
    let start = Instant::now();
    let mut window: VecDeque<TransferHandle> = VecDeque::new();
    for s in 0..total {
        if window.len() >= IN_FLIGHT {
            assert_eq!(window.pop_front().unwrap().wait().unwrap(), sz.file_size);
        }
        let p = &put_paths[s % IN_FLIGHT];
        ctx.storage
            .begin_put(&who, "bench", p, sz.file_size)
            .unwrap();
        let meta = FlowMeta::new(ctx.tm.next_flow_id(), "put", Some(sz.file_size));
        let sink = BackendSink::whole_file(Arc::clone(&ctx.storage), who.clone(), p.clone());
        window.push_back(ctx.tm.submit(
            meta,
            Box::new(PatternSource::new(sz.file_size)),
            Box::new(sink),
        ));
    }
    for h in window {
        assert_eq!(h.wait().unwrap(), sz.file_size);
    }
    let elapsed = start.elapsed();
    for p in &put_paths {
        let _ = ctx.backend.remove(p);
    }
    total as u64 as f64 * sz.file_size as f64 / elapsed.as_secs_f64() / 1e6
}

/// GET over real sockets: the same working set through [`SocketSink`]s on
/// loopback TCP connections, one in-flight flow per connection, drained by
/// reader threads. With zero-copy armed the body travels disk→socket via
/// `sendfile`; disarmed, via the pooled read/write loop — the §14 ablation
/// the engine-only `measure_get` (counting sink, no socket) cannot see.
///
/// Returns `(wall MB/s, MB per engine-CPU-second)`. Both matter, for
/// different questions. Wall-clock on *loopback* is bounded by the
/// in-host receiver, whose copy out of the socket buffer serializes with
/// the sender on a small host — it shows whether the fast path regressed
/// end-to-end delivery, not what the fast path saves. The CPU-normalized
/// rate divides the same bytes by `transfer.engine.cpu_ns`, the CPU the
/// appliance itself burned moving them: the capacity measure for a
/// storage server whose real clients drain over a NIC rather than on the
/// server's own cores, and the number `sendfile` exists to improve.
fn measure_socket_get(ctx: &Ctx, sz: &Sizes) -> (f64, f64) {
    use std::io::Read;
    use std::net::{TcpListener, TcpStream};
    #[cfg(unix)]
    use std::os::unix::io::AsRawFd;

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let mut streams = Vec::with_capacity(IN_FLIGHT);
    let mut drainers = Vec::with_capacity(IN_FLIGHT);
    for _ in 0..IN_FLIGHT {
        let s = TcpStream::connect(addr).unwrap();
        let (mut conn, _) = listener.accept().unwrap();
        // nestlint: allow(conn-spawn): benchmark byte drainer, not an appliance accept path
        drainers.push(std::thread::spawn(move || {
            let mut sunk = vec![0u8; 256 * 1024];
            while conn.read(&mut sunk).unwrap_or(0) > 0 {}
        }));
        streams.push(s);
    }
    let head = b"HTTP/1.1 200 OK\r\nServer: nest-bench\r\n\r\n".to_vec();
    let total = sz.get_rounds * sz.files;
    let engine_cpu = ctx.obs.metrics.counter("transfer.engine.cpu_ns");
    let cpu0 = engine_cpu.get();
    let start = Instant::now();
    let mut window: VecDeque<TransferHandle> = VecDeque::new();
    for s in 0..total {
        // Round-robin over the connections; popping at IN_FLIGHT means the
        // previous flow on this connection has been awaited, so at most
        // one flow writes each socket at a time.
        if window.len() >= IN_FLIGHT {
            assert_eq!(window.pop_front().unwrap().wait().unwrap(), sz.file_size);
        }
        let p = &ctx.get_paths[s % ctx.get_paths.len()];
        let stream = &streams[s % IN_FLIGHT];
        let sink = SocketSink::new(stream.try_clone().unwrap(), head.clone());
        #[cfg(unix)]
        let sink = sink.with_raw_fd(stream.as_raw_fd());
        let src = BackendSource::new(Arc::clone(&ctx.storage), p.clone(), 0, sz.file_size);
        let meta = FlowMeta::new(ctx.tm.next_flow_id(), "sockget", Some(sz.file_size));
        window.push_back(ctx.tm.submit(meta, Box::new(src), Box::new(sink)));
    }
    for h in window {
        assert_eq!(h.wait().unwrap(), sz.file_size);
    }
    let elapsed = start.elapsed();
    let cpu_ns = engine_cpu.get().saturating_sub(cpu0).max(1);
    drop(streams);
    for d in drainers {
        let _ = d.join();
    }
    let mb = total as f64 * sz.file_size as f64 / 1e6;
    (mb / elapsed.as_secs_f64(), mb / (cpu_ns as f64 / 1e9))
}

/// NFS-style sequential 8 KiB block reads straight against the backend.
/// Returns blocks/sec.
fn measure_nfs(ctx: &Ctx, sz: &Sizes) -> f64 {
    let nfs = VPath::parse("/nfs.dat").unwrap();
    let mut block = vec![0u8; BLOCK];
    let start = Instant::now();
    let mut blocks = 0u64;
    for _ in 0..sz.nfs_passes {
        let mut off = 0u64;
        while ctx.backend.read_at(&nfs, off, &mut block).unwrap() > 0 {
            off += BLOCK as u64;
            blocks += 1;
        }
    }
    blocks as f64 / start.elapsed().as_secs_f64()
}

fn median(samples: &[f64]) -> f64 {
    let mut s = samples.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    s[s.len() / 2]
}

fn json_escape_free(s: &str) -> &str {
    // All strings we emit are static identifiers; guard anyway.
    assert!(!s.contains(['"', '\\']), "unexpected JSON-unsafe string");
    s
}

struct ConfigResult {
    name: &'static str,
    pool: bool,
    cache: bool,
    zc: bool,
    get_mbps: f64,
    put_mbps: f64,
    socket_get_mbps: f64,
    socket_get_mb_per_cpu_sec: f64,
    nfs_blocks_per_sec: f64,
    hc_hits: u64,
    hc_misses: u64,
    pool_reuse: u64,
    pool_fresh: u64,
}

fn emit_json(out: &PathBuf, smoke: bool, sz: &Sizes, results: &[ConfigResult]) {
    let find = |name: &str| results.iter().find(|r| r.name == name).unwrap();
    let base = find("baseline");
    let best = find("pool+handle-cache");
    let zc = find("zerocopy");
    let get_speedup = best.get_mbps / base.get_mbps;
    let put_speedup = best.put_mbps / base.put_mbps;
    let nfs_speedup = best.nfs_blocks_per_sec / base.nfs_blocks_per_sec;
    // Socket GETs with sendfile vs the identically-configured pooled loop
    // ("pool+handle-cache" is the zerocopy(false) control). The headline
    // ratio is appliance-CPU-normalized throughput — what the fast path
    // actually changes; see `measure_socket_get` for why loopback
    // wall-clock (reported alongside as `zerocopy_wall_ratio`) cannot
    // separate the sender's cost from the in-host receiver's copy.
    let zerocopy_speedup = zc.socket_get_mb_per_cpu_sec / best.socket_get_mb_per_cpu_sec;
    let zerocopy_wall_ratio = zc.socket_get_mbps / best.socket_get_mbps;

    let mut configs = String::new();
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            configs.push(',');
        }
        configs.push_str(&format!(
            concat!(
                "\n    {{\"name\":\"{}\",\"pool_buffers\":{},\"handle_cache\":{},",
                "\"zerocopy\":{},",
                "\"get_mbps\":{:.2},\"put_mbps\":{:.2},\"socket_get_mbps\":{:.2},",
                "\"socket_get_mb_per_cpu_sec\":{:.2},",
                "\"nfs_blocks_per_sec\":{:.0},",
                "\"handlecache_hits\":{},\"handlecache_misses\":{},",
                "\"bufpool_reuse\":{},\"bufpool_fresh\":{}}}"
            ),
            json_escape_free(r.name),
            r.pool,
            r.cache,
            r.zc,
            r.get_mbps,
            r.put_mbps,
            r.socket_get_mbps,
            r.socket_get_mb_per_cpu_sec,
            r.nfs_blocks_per_sec,
            r.hc_hits,
            r.hc_misses,
            r.pool_reuse,
            r.pool_fresh,
        ));
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"datapath\",\n",
            "  \"smoke\": {},\n",
            "  \"reps\": {},\n",
            "  \"file_size\": {},\n",
            "  \"chunk_size\": {},\n",
            "  \"block_size\": {},\n",
            "  \"configs\": [{}\n  ],\n",
            "  \"get_speedup\": {:.3},\n",
            "  \"put_speedup\": {:.3},\n",
            "  \"nfs_speedup\": {:.3},\n",
            "  \"zerocopy_speedup\": {:.3},\n",
            "  \"zerocopy_wall_ratio\": {:.3}\n",
            "}}\n"
        ),
        smoke,
        sz.reps,
        sz.file_size,
        CHUNK,
        BLOCK,
        configs,
        get_speedup,
        put_speedup,
        nfs_speedup,
        zerocopy_speedup,
        zerocopy_wall_ratio
    );
    std::fs::write(out, &json).unwrap();

    // Self-validation: every reported rate must be finite and positive.
    let ok = results.iter().all(|r| {
        r.get_mbps.is_finite()
            && r.get_mbps > 0.0
            && r.put_mbps.is_finite()
            && r.put_mbps > 0.0
            && r.socket_get_mbps.is_finite()
            && r.socket_get_mbps > 0.0
            && r.socket_get_mb_per_cpu_sec.is_finite()
            && r.socket_get_mb_per_cpu_sec > 0.0
            && r.nfs_blocks_per_sec.is_finite()
            && r.nfs_blocks_per_sec > 0.0
    }) && get_speedup.is_finite()
        && put_speedup.is_finite()
        && nfs_speedup.is_finite()
        && zerocopy_speedup.is_finite()
        && zerocopy_wall_ratio.is_finite();
    if !ok {
        eprintln!("datapath: self-validation FAILED (non-finite or zero rate)");
        std::process::exit(1);
    }
    println!("\nwrote {}", out.display());
    println!(
        "speedups (pool+handle-cache vs baseline, medians of {} reps): GET {:.2}x, PUT {:.2}x, 8K blocks {:.2}x",
        sz.reps, get_speedup, put_speedup, nfs_speedup
    );
    println!(
        "socket GET appliance-CPU efficiency (zerocopy vs pooled at same pool+cache): {:.2}x ({:.0} vs {:.0} MB/cpu-s)",
        zerocopy_speedup, zc.socket_get_mb_per_cpu_sec, best.socket_get_mb_per_cpu_sec
    );
    println!(
        "socket GET loopback wall-clock (receiver-bound on this host, see DESIGN.md §14): {:.2}x ({:.0} vs {:.0} MB/s)",
        zerocopy_wall_ratio, zc.socket_get_mbps, best.socket_get_mbps
    );
}

fn main() {
    let mut smoke = false;
    let mut out = PathBuf::from("BENCH_datapath.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--micro" => return micro(),
            "--smoke" => smoke = true,
            "--out" => out = PathBuf::from(args.next().expect("--out needs a path")),
            other => panic!("unknown flag {other:?} (expected --smoke / --out <path>)"),
        }
    }
    let sz = if smoke { Sizes::smoke() } else { Sizes::real() };
    println!(
        "Data-path ablation: {} x {} KiB files, {} KiB chunks, {} KiB NFS blocks, {} reps{}\n",
        sz.files,
        sz.file_size >> 10,
        CHUNK >> 10,
        BLOCK >> 10,
        sz.reps,
        if smoke { " (smoke)" } else { "" }
    );

    let mut ctxs = vec![
        setup("baseline", false, false, false, &sz),
        setup("bufpool", true, false, false, &sz),
        setup("handle-cache", false, true, false, &sz),
        setup("pool+handle-cache", true, true, false, &sz),
        // The §14 column: identical storage/pool config, sendfile armed.
        // "pool+handle-cache" is its zerocopy(false) control — the two
        // rows isolate the kernel fast path from every other variable.
        setup("zerocopy", true, true, true, &sz),
    ];

    // Interleave configs within each repetition so host-level noise
    // (writeback, scheduler) spreads across all of them.
    for rep in 0..sz.reps {
        for ctx in ctxs.iter_mut() {
            let v = measure_get(ctx, &sz);
            ctx.get_samples.push(v);
            let _ = rep;
        }
    }
    for _ in 0..sz.reps {
        for ctx in ctxs.iter_mut() {
            let v = measure_put(ctx, &sz);
            ctx.put_samples.push(v);
        }
    }
    for _ in 0..sz.reps {
        for ctx in ctxs.iter_mut() {
            let (wall, cpu) = measure_socket_get(ctx, &sz);
            ctx.sock_samples.push(wall);
            ctx.sock_cpu_samples.push(cpu);
        }
    }
    for _ in 0..sz.reps {
        for ctx in ctxs.iter_mut() {
            let v = measure_nfs(ctx, &sz);
            ctx.nfs_samples.push(v);
        }
    }

    let mut results = Vec::new();
    for ctx in ctxs {
        let hc = ctx.backend.handle_cache_stats();
        let bp = ctx.tm.buffer_pool().stats();
        results.push(ConfigResult {
            name: ctx.name,
            pool: ctx.pool,
            cache: ctx.cache,
            zc: ctx.zc,
            get_mbps: median(&ctx.get_samples),
            put_mbps: median(&ctx.put_samples),
            socket_get_mbps: median(&ctx.sock_samples),
            socket_get_mb_per_cpu_sec: median(&ctx.sock_cpu_samples),
            nfs_blocks_per_sec: median(&ctx.nfs_samples),
            hc_hits: hc.hits,
            hc_misses: hc.misses,
            pool_reuse: bp.reuse,
            pool_fresh: bp.fresh,
        });
        ctx.tm.shutdown();
        let _ = std::fs::remove_dir_all(&ctx.dir);
    }

    let mut table = Table::new(&[
        "config",
        "GET MB/s",
        "PUT MB/s",
        "sock GET MB/s",
        "sock MB/cpu-s",
        "8K blk/s",
        "hc hit/miss",
        "pool reuse/fresh",
    ]);
    for r in &results {
        table.row(vec![
            r.name.into(),
            format!("{:.0}", r.get_mbps),
            format!("{:.0}", r.put_mbps),
            format!("{:.0}", r.socket_get_mbps),
            format!("{:.0}", r.socket_get_mb_per_cpu_sec),
            format!("{:.0}", r.nfs_blocks_per_sec),
            format!("{}/{}", r.hc_hits, r.hc_misses),
            format!("{}/{}", r.pool_reuse, r.pool_fresh),
        ]);
    }
    table.print();

    emit_json(&out, smoke, &sz, &results);
}

/// Micro-breakdown (dev aid, `--micro`): where does a chunk's time go?
fn micro() {
    let dir = scratch("micro");
    let backend = Arc::new(
        // nestlint: allow(tier-bypass): bench harness assembles its own appliance internals
        LocalFsBackend::new(&dir)
            .unwrap()
            .with_handle_cache_capacity(128),
    );
    let storage = Arc::new(
        StorageManager::new(
            Arc::clone(&backend) as Arc<dyn StorageBackend>,
            AclTable::open_by_default(),
            u64::MAX / 4,
            ReclaimPolicy::Lru,
        )
        .with_lots_disabled(),
    );
    let p = VPath::parse("/f.dat").unwrap();
    backend.create(&p).unwrap();
    backend.write_at(&p, 0, &vec![7u8; 1 << 20]).unwrap();
    let mut buf = vec![0u8; CHUNK];
    let n = 100_000u64;
    for i in 0..16 {
        backend.read_at(&p, i * CHUNK as u64, &mut buf).unwrap();
    }
    let t = Instant::now();
    for i in 0..n {
        backend
            .read_at(&p, (i % 16) * CHUNK as u64, &mut buf)
            .unwrap();
    }
    println!(
        "backend.read_at: {:.2}us",
        t.elapsed().as_secs_f64() / n as f64 * 1e6
    );
    let t = Instant::now();
    for i in 0..n {
        storage
            .read_chunk(&p, (i % 16) * CHUNK as u64, &mut buf)
            .unwrap();
    }
    println!(
        "storage.read_chunk: {:.2}us",
        t.elapsed().as_secs_f64() / n as f64 * 1e6
    );
    let t = Instant::now();
    let rounds = n / 16;
    for _ in 0..rounds {
        let mut src = BackendSource::new(Arc::clone(&storage), p.clone(), 0, 1 << 20);
        for _ in 0..16 {
            src.read_chunk(&mut buf).unwrap();
        }
    }
    println!(
        "BackendSource.read_chunk: {:.2}us",
        t.elapsed().as_secs_f64() / (rounds * 16) as f64 * 1e6
    );
    // Pure engine overhead: a no-I/O flow (pattern fill -> counter).
    let tm = TransferManager::new(TransferConfig {
        policy: SchedPolicy::Fcfs,
        model: ModelSelection::Fixed(ModelKind::Events),
        chunk_size: CHUNK,
        pool_buffers: true,
        ..TransferConfig::default()
    });
    let flows = 256u64;
    let t = Instant::now();
    let mut window: VecDeque<TransferHandle> = VecDeque::new();
    for _ in 0..flows {
        let meta = FlowMeta::new(tm.next_flow_id(), "x", Some(1 << 20));
        window.push_back(tm.submit(
            meta,
            Box::new(PatternSource::new(1 << 20)),
            Box::new(CountingSink::default()),
        ));
        if window.len() >= IN_FLIGHT {
            window.pop_front().unwrap().wait().unwrap();
        }
    }
    for h in window {
        h.wait().unwrap();
    }
    println!(
        "engine chunk (pattern->counter): {:.2}us",
        t.elapsed().as_secs_f64() / (flows * 16) as f64 * 1e6
    );
    tm.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
