//! Figure 4 — Proportional Protocol Scheduling (paper §7.2).
//!
//! "This workload is identical to that used in Figure 3. ... Within each
//! set of bars, the first bar represents the total delivered bandwidth
//! across all protocols; the remaining bars show the bandwidth per
//! protocol. The labels for the sets of bars show the specified
//! proportional ratios."
//!
//! Expected shape (paper): the stride scheduler pays a modest total-
//! bandwidth penalty versus FIFO (24–28 vs ~33 MB/s) and achieves Jain
//! fairness > 0.98 for 1:1:1:1, 1:2:1:1 and 3:1:2:1; the NFS-heavy
//! 1:1:1:4 ratio only reaches ≈ 0.87 because there are not enough
//! outstanding NFS requests and the scheduler is work-conserving.

use nest_bench::Table;
use nest_simenv::server::{SimModel, SimPolicy};
use nest_simenv::stats::mbps;
use nest_simenv::{ClientSpec, PlatformProfile, SimServer, SimStats};
use nest_transfer::fairness::jain_fairness_weighted;
use nest_transfer::ModelKind;

const DURATION: f64 = 10.0;
const CLASSES: [&str; 4] = ["chirp", "gridftp", "http", "nfs"];

fn run(policy: SimPolicy) -> SimStats {
    let clients = ClientSpec::paper_mixed_workload();
    let mut server = SimServer::nest(
        PlatformProfile::linux_gige(),
        policy,
        SimModel::Fixed(ModelKind::Events),
    );
    server.warm_cache(&clients);
    server.run(&clients, DURATION)
}

fn stride_policy(ratios: [u32; 4], work_conserving: bool) -> SimPolicy {
    SimPolicy::Stride {
        tickets: CLASSES
            .iter()
            .zip(ratios)
            .map(|(c, r)| ((*c).to_owned(), r * 100))
            .collect(),
        work_conserving,
    }
}

fn main() {
    println!("Figure 4: Proportional Protocol Scheduling");
    println!("(mixed Figure-3 workload; ratios are Chirp:GridFTP:HTTP:NFS)\n");

    let mut table = Table::new(&[
        "config",
        "total",
        "chirp",
        "gridftp",
        "http",
        "nfs",
        "Jain fairness",
    ]);

    // Base case: FIFO.
    let fifo = run(SimPolicy::Fcfs);
    table.row(vec![
        "FIFO".into(),
        format!("{:.1}", mbps(fifo.total_bandwidth())),
        format!("{:.1}", mbps(fifo.bandwidth("chirp"))),
        format!("{:.1}", mbps(fifo.bandwidth("gridftp"))),
        format!("{:.1}", mbps(fifo.bandwidth("http"))),
        format!("{:.1}", mbps(fifo.bandwidth("nfs"))),
        "-".into(),
    ]);

    for ratios in [[1u32, 1, 1, 1], [1, 2, 1, 1], [3, 1, 2, 1], [1, 1, 1, 4]] {
        let stats = run(stride_policy(ratios, true));
        let delivered: Vec<f64> = CLASSES.iter().map(|c| stats.bandwidth(c)).collect();
        let desired: Vec<f64> = ratios.iter().map(|r| *r as f64).collect();
        let fairness = jain_fairness_weighted(&delivered, &desired);
        table.row(vec![
            format!("{}:{}:{}:{}", ratios[0], ratios[1], ratios[2], ratios[3]),
            format!("{:.1}", mbps(stats.total_bandwidth())),
            format!("{:.1}", mbps(stats.bandwidth("chirp"))),
            format!("{:.1}", mbps(stats.bandwidth("gridftp"))),
            format!("{:.1}", mbps(stats.bandwidth("http"))),
            format!("{:.1}", mbps(stats.bandwidth("nfs"))),
            format!("{:.3}", fairness),
        ]);
    }

    table.print();

    println!();
    println!("Paper checkpoints:");
    println!("  * Proportional share costs some total bandwidth vs FIFO (24-28 vs ~33).");
    println!("  * Jain fairness > 0.98 for 1:1:1:1, 1:2:1:1, 3:1:2:1.");
    println!("  * 1:1:1:4 falls to ~0.87: too few outstanding NFS requests, and the");
    println!("    work-conserving scheduler hands the idle share to competitors.");

    // The paper's in-progress extension: a non-work-conserving scheduler
    // that idles briefly for the favored class.
    println!();
    println!("Extension (paper 7.2 'currently implementing'): non-work-conserving");
    let mut ext = Table::new(&["config", "policy", "total", "nfs", "Jain fairness"]);
    for (policy_name, wc) in [("work-conserving", true), ("non-work-conserving", false)] {
        let stats = run(stride_policy([1, 1, 1, 4], wc));
        let delivered: Vec<f64> = CLASSES.iter().map(|c| stats.bandwidth(c)).collect();
        let fairness = jain_fairness_weighted(&delivered, &[1.0, 1.0, 1.0, 4.0]);
        ext.row(vec![
            "1:1:1:4".into(),
            policy_name.into(),
            format!("{:.1}", mbps(stats.total_bandwidth())),
            format!("{:.1}", mbps(stats.bandwidth("nfs"))),
            format!("{:.3}", fairness),
        ]);
    }
    ext.print();
    println!("(idling for NFS trades total bandwidth for allocation control)");
}
