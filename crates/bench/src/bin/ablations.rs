//! Ablations for the design choices DESIGN.md calls out — the paper's
//! "currently investigating / future work" items, measured:
//!
//! 1. cache-aware scheduling vs FCFS on a hot/cold mix (paper §4.2),
//!    in means and at the percentiles;
//! 2. non-work-conserving stride idle budget sweep (paper §7.2);
//! 3. best-effort lot reclamation policies (paper §5);
//! 4. NeST-managed lot enforcement cost on the real write path
//!    (paper §7.4).

use nest_bench::Table;
use nest_core::config::{BackendKind, NestConfig};
use nest_core::dispatcher::Dispatcher;
use nest_simenv::server::{SimModel, SimPolicy};
use nest_simenv::stats::mbps;
use nest_simenv::{ClientSpec, PlatformProfile, SimServer};
use nest_storage::lot::LotOwner;
use nest_storage::{
    AclTable, LotManager, MemBackend, Principal, ReclaimPolicy, StorageManager, VPath, WritePolicy,
};
use nest_transfer::cache::CacheModel;
use nest_transfer::fairness::jain_fairness_weighted;
use nest_transfer::ModelKind;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    cache_aware_ablation();
    tail_latency_ablation();
    nwc_idle_budget_sweep();
    reclaim_policy_ablation();
    lot_enforcement_cost();
    tiered_write_absorption();
    cache_model_microbench();
}

/// What does a `write_back` lot buy on the real filesystem write path?
/// The same 32 MB stream, once with the tier ablated (every chunk lands
/// on the backend synchronously) and once absorbed by a write-back lot
/// in the RAM tier with the flush deferred off the client's critical
/// path — the tiered row for the Figure 6 lot-overhead experiment.
fn tiered_write_absorption() {
    println!("Ablation 4b: write-back lot absorption on the real write path\n");
    let who = Principal::user("bench");
    let total: u64 = 32 << 20;
    let chunk = vec![7u8; 64 * 1024];
    let mut table = Table::new(&["write policy", "32 MB write (ms)", "client-visible MB/s"]);
    let mut flush_ms = 0.0f64;
    for (name, write_back) in [
        ("write-through (tier ablated)", false),
        ("write-back lot", true),
    ] {
        let dir = std::env::temp_dir().join(format!(
            "nest-ablate-wb-{}-{}",
            write_back,
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let config = NestConfig::builder("ablate-wb")
            .backend(BackendKind::LocalFs(dir.clone()))
            .ram_tier_bytes(if write_back { 256 << 20 } else { 0 })
            .build()
            .unwrap();
        let d = Dispatcher::new(&config).unwrap();
        let sm = d.storage();
        let lot = sm
            .admin_grant_lot(LotOwner::User("bench".into()), 1 << 29, 3600)
            .unwrap();
        if write_back {
            sm.set_lot_write_policy(lot, WritePolicy::WriteBack);
        }
        let path = VPath::parse("/stream.dat").unwrap();
        sm.begin_put(&who, "chirp", &path, 0).unwrap();
        let start = Instant::now();
        let mut offset = 0u64;
        while offset < total {
            sm.write_chunk(&who, &path, offset, &chunk).unwrap();
            offset += chunk.len() as u64;
        }
        let elapsed = start.elapsed().as_secs_f64();
        if write_back {
            let fstart = Instant::now();
            d.flush_writeback();
            flush_ms = fstart.elapsed().as_secs_f64() * 1e3;
        }
        table.row(vec![
            name.into(),
            format!("{:.1}", elapsed * 1e3),
            format!("{:.0}", (total as f64 / 1e6) / elapsed),
        ]);
        let _ = std::fs::remove_dir_all(&dir);
    }
    table.print();
    println!("(the deferred flush moved the same bytes in {flush_ms:.1} ms after the");
    println!(" client saw completion — lot accounting is identical in both rows)\n");
}

/// The gray-box cache model sits on every chunk-served request, so its
/// observe path must not grow with the working set. The old implementation
/// kept LRU order in a `Vec<String>` (O(n) scan + remove per refresh, plus
/// a string allocation per observe); the index-map rewrite is O(log n) and
/// allocation-free for known files. Measure per-op cost across working-set
/// sizes: flat-ish is the win, linear growth would be the old behavior.
fn cache_model_microbench() {
    println!("Ablation 5: gray-box CacheModel observe/predict cost vs working set\n");
    let mut table = Table::new(&[
        "working set (files)",
        "observe refresh (ns/op)",
        "observe churn (ns/op)",
        "predict (ns/op)",
    ]);
    for &n in &[100usize, 1_000, 10_000] {
        let model = CacheModel::new(u64::MAX);
        let names: Vec<String> = (0..n).map(|i| format!("/pool/f{i:06}.dat")).collect();
        // Populate once (pays the one-time Arc<str> allocation per file).
        for name in &names {
            model.observe_access(name, 1 << 20);
        }
        let reps = 200_000usize;
        // Steady-state refresh: re-observe known files round-robin. This is
        // the hot path a chunked GET of a warm working set exercises.
        let start = Instant::now();
        for i in 0..reps {
            model.observe_access(&names[i % n], 1 << 20);
        }
        let refresh_ns = start.elapsed().as_nanos() as f64 / reps as f64;
        // Churn: capacity-bounded model where every insert also evicts.
        let churned = CacheModel::new((n as u64) << 20);
        for name in &names {
            churned.observe_access(name, 1 << 20);
        }
        let start = Instant::now();
        for i in 0..reps {
            churned.observe_access(&format!("/cold/f{i:06}.dat"), 1 << 20);
        }
        let churn_ns = start.elapsed().as_nanos() as f64 / reps as f64;
        // Predict: the scheduler's per-dispatch residency query.
        let start = Instant::now();
        let mut hits = 0usize;
        for i in 0..reps {
            if model.predict_resident(&names[i % n], 1 << 20) {
                hits += 1;
            }
        }
        let predict_ns = start.elapsed().as_nanos() as f64 / reps as f64;
        assert_eq!(hits, reps, "warm working set must predict resident");
        table.row(vec![
            n.to_string(),
            format!("{refresh_ns:.0}"),
            format!("{churn_ns:.0}"),
            format!("{predict_ns:.0}"),
        ]);
    }
    table.print();
    println!("(refresh/predict stay near-flat as the working set grows; the pre-rewrite");
    println!(" Vec<String> order list scanned O(n) per observe and allocated every call)");
}

/// The SJF approximation claim at the tail: the paper says cache-aware
/// scheduling improves "average client perceived response time" by
/// "approximating shortest-job first"; Crovella et al. (cited as future
/// concurrency work) showed connection scheduling matters most at the
/// percentiles. Report p50/p95 for small hot requests under contention
/// from large cold transfers.
fn tail_latency_ablation() {
    println!("Ablation 1b: response-time percentiles, FCFS vs cache-aware\n");
    let mut table = Table::new(&["policy", "hot p50 (ms)", "hot p95 (ms)", "cold p50 (ms)"]);
    for (name, policy) in [
        ("fcfs", SimPolicy::Fcfs),
        ("cache-aware", SimPolicy::CacheAware),
    ] {
        let mut clients: Vec<ClientSpec> = (0..4)
            .map(|_| ClientSpec::file_client("http", 64 << 10))
            .collect();
        clients
            .extend((0..4).map(|_| ClientSpec::file_client("ftp", 10 << 20).with_working_set(40)));
        let mut server = SimServer::nest(
            PlatformProfile::linux_gige(),
            policy,
            SimModel::Fixed(ModelKind::Events),
        );
        let hot_only: Vec<ClientSpec> = clients[..4].to_vec();
        server.warm_cache(&hot_only);
        let stats = server.run(&clients, 10.0);
        table.row(vec![
            name.into(),
            format!("{:.2}", stats.latency_percentile("http", 0.50) * 1e3),
            format!("{:.2}", stats.latency_percentile("http", 0.95) * 1e3),
            format!("{:.0}", stats.latency_percentile("ftp", 0.50) * 1e3),
        ]);
    }
    table.print();
    println!("(the win is biggest at the tail: no hot request ever waits behind a cold 10 MB)\n");
}

/// Cache-aware scheduling approximates SJF: on a workload mixing hot
/// (cached) small files with cold large files, it should cut mean latency
/// for the hot class without hurting total throughput much.
fn cache_aware_ablation() {
    println!("Ablation 1: cache-aware scheduling vs FCFS (paper 4.2)\n");
    let mut table = Table::new(&[
        "policy",
        "hot-class latency (ms)",
        "cold-class latency (ms)",
        "total MB/s",
    ]);
    for (name, policy) in [
        ("fcfs", SimPolicy::Fcfs),
        ("cache-aware", SimPolicy::CacheAware),
    ] {
        // 4 clients hammering a hot 64 KB file + 4 clients on cold 10 MB
        // files.
        let mut clients: Vec<ClientSpec> = (0..4)
            .map(|_| ClientSpec::file_client("http", 64 << 10))
            .collect();
        clients
            .extend((0..4).map(|_| ClientSpec::file_client("ftp", 10 << 20).with_working_set(40)));
        let mut server = SimServer::nest(
            PlatformProfile::linux_gige(),
            policy,
            SimModel::Fixed(ModelKind::Events),
        );
        // Warm only the small files: observe them once.
        let hot_only: Vec<ClientSpec> = clients[..4].to_vec();
        server.warm_cache(&hot_only);
        let stats = server.run(&clients, 10.0);
        table.row(vec![
            name.into(),
            format!("{:.2}", stats.mean_latency("http") * 1e3),
            format!("{:.2}", stats.mean_latency("ftp") * 1e3),
            format!("{:.1}", mbps(stats.total_bandwidth())),
        ]);
    }
    table.print();
    println!("(cache-aware should cut hot-class latency sharply; cold pays a bounded aging tax)\n");
}

/// How long should a non-work-conserving scheduler idle for the favored
/// class? Sweep the idle budget on the 1:1:1:4 workload.
fn nwc_idle_budget_sweep() {
    println!("Ablation 2: work conservation vs idle budget, 1:1:1:4 (paper 7.2)\n");
    let classes = ["chirp", "gridftp", "http", "nfs"];
    let desired = [1.0, 1.0, 1.0, 4.0];
    let mut table = Table::new(&["policy", "total MB/s", "nfs MB/s", "Jain fairness"]);
    for (name, wc) in [("work-conserving", true), ("idle-for-favored", false)] {
        let clients = ClientSpec::paper_mixed_workload();
        let mut server = SimServer::nest(
            PlatformProfile::linux_gige(),
            SimPolicy::Stride {
                tickets: classes
                    .iter()
                    .zip([100u32, 100, 100, 400])
                    .map(|(c, t)| ((*c).to_owned(), t))
                    .collect(),
                work_conserving: wc,
            },
            SimModel::Fixed(ModelKind::Events),
        );
        server.warm_cache(&clients);
        let stats = server.run(&clients, 10.0);
        let delivered: Vec<f64> = classes.iter().map(|c| stats.bandwidth(c)).collect();
        table.row(vec![
            name.into(),
            format!("{:.1}", mbps(stats.total_bandwidth())),
            format!("{:.1}", mbps(stats.bandwidth("nfs"))),
            format!("{:.3}", jain_fairness_weighted(&delivered, &desired)),
        ]);
    }
    table.print();
    println!("(idling buys allocation control at the price of total bandwidth)\n");
}

/// Which best-effort lots should be reclaimed first? Run the same churn
/// (create → fill → expire → new arrivals force eviction) under each
/// policy and report how much still-warm data each evicts.
fn reclaim_policy_ablation() {
    println!("Ablation 3: best-effort lot reclamation policies (paper 5)\n");
    let mut table = Table::new(&[
        "policy",
        "lots evicted",
        "bytes evicted",
        "warm bytes evicted",
    ]);
    for (name, policy) in [
        ("expired-first", ReclaimPolicy::ExpiredFirst),
        ("largest-first", ReclaimPolicy::LargestFirst),
        ("lru", ReclaimPolicy::Lru),
    ] {
        let lm = LotManager::new(1000, policy);
        let groups = std::collections::HashSet::new();
        // Ten 100-byte lots that expire at t=10, each holding one file.
        // Odd-numbered files are touched at t=15 ("warm").
        let mut warm_paths = Vec::new();
        for i in 0..10u64 {
            let owner = LotOwner::User(format!("u{}", i));
            lm.create(owner, 100, 10, i).unwrap();
            let path = VPath::parse(&format!("/f{}", i)).unwrap();
            lm.charge_file(&format!("u{}", i), &groups, &path, 100, i)
                .unwrap();
            if i % 2 == 1 {
                warm_paths.push(path);
            }
        }
        for p in &warm_paths {
            lm.touch_file(p, 15);
        }
        // At t=20 a new tenant needs half the machine.
        let (_, evicted) = lm
            .create(LotOwner::User("tenant".into()), 500, 100, 20)
            .unwrap();
        let warm_evicted = evicted
            .files
            .iter()
            .filter(|f| warm_paths.contains(f))
            .count() as u64
            * 100;
        table.row(vec![
            name.into(),
            evicted.lots.len().to_string(),
            (evicted.files.len() as u64 * 100).to_string(),
            warm_evicted.to_string(),
        ]);
    }
    table.print();
    println!("(LRU preserves recently-used best-effort data; the others are oblivious)\n");
}

/// What does NeST-managed (user-level) lot enforcement cost on the real
/// write path? The paper weighed this against kernel quotas.
fn lot_enforcement_cost() {
    println!("Ablation 4: NeST-managed lot enforcement cost (paper 7.4)\n");
    let who = Principal::user("writer");
    let mut table = Table::new(&["enforcement", "64 MB write (ms)", "throughput (MB/s)"]);
    for (name, enforce) in [("disabled", false), ("enabled", true)] {
        let mut sm = StorageManager::new(
            Arc::new(MemBackend::new()),
            AclTable::open_by_default(),
            1 << 30,
            ReclaimPolicy::ExpiredFirst,
        );
        if !enforce {
            sm = sm.with_lots_disabled();
        } else {
            sm.admin_grant_lot(LotOwner::User("writer".into()), 1 << 30, 3600)
                .unwrap();
        }
        let path = VPath::parse("/bigfile").unwrap();
        sm.begin_put(&who, "chirp", &path, 0).unwrap();
        let chunk = vec![7u8; 64 * 1024];
        let total: u64 = 64 << 20;
        let start = Instant::now();
        let mut offset = 0u64;
        while offset < total {
            sm.write_chunk(&who, &path, offset, &chunk).unwrap();
            offset += chunk.len() as u64;
        }
        let elapsed = start.elapsed().as_secs_f64();
        table.row(vec![
            name.into(),
            format!("{:.1}", elapsed * 1e3),
            format!("{:.0}", (total as f64 / 1e6) / elapsed),
        ]);
    }
    table.print();
    println!("(user-level accounting adds a per-chunk bookkeeping charge but never a");
    println!(" synchronous disk update — contrast with Figure 6's kernel-quota cost)");
}
