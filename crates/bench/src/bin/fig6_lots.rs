//! Figure 6 — Overhead of Lots (paper §7.4).
//!
//! "This graph shows the overhead imposed by implementing lots using the
//! kernel quota system. Notice that for small files, the cost is
//! negligible but increases quickly with file size." The worst case is a
//! single sequential write stream losing ~50% of its bandwidth.
//!
//! The model: writes land in the buffer cache at wire speed; once the
//! stream outgrows the cache, the disk is the bottleneck and synchronous
//! quota bookkeeping roughly halves effective disk bandwidth. Reads are
//! unaffected.

use nest_bench::Table;
use nest_simenv::writepath::{write_bandwidth, WritePathModel};

fn main() {
    println!("Figure 6: Performance Overhead of Lots (quota-based enforcement)");
    println!("(single sequential write stream; Linux 2002 write-path model)\n");

    let model = WritePathModel::linux_2002();
    let mut table = Table::new(&[
        "write size (MB)",
        "quotas disabled (MB/s)",
        "quotas enabled (MB/s)",
        "enabled/disabled",
    ]);
    let mut sizes: Vec<f64> = Vec::new();
    let mut size = 20.0;
    while size <= 200.0 {
        sizes.push(size);
        size += 20.0;
    }
    for s in &sizes {
        let off = write_bandwidth(&model, *s, false);
        let on = write_bandwidth(&model, *s, true);
        table.row(vec![
            format!("{:.0}", s),
            format!("{:.1}", off),
            format!("{:.1}", on),
            format!("{:.2}", on / off),
        ]);
    }
    table.print();

    println!("\nReads (unaffected by quotas, as the paper notes):");
    let mut reads = Table::new(&["read", "bandwidth (MB/s)"]);
    reads.row(vec![
        "cached".into(),
        format!("{:.1}", model.read_bandwidth(100e6, true) / 1e6),
    ]);
    reads.row(vec![
        "cold".into(),
        format!("{:.1}", model.read_bandwidth(100e6, false) / 1e6),
    ]);
    reads.print();

    println!();
    println!("Paper checkpoints:");
    println!("  * Both curves start together near the wire rate at 20 MB;");
    println!("  * the quota-enabled curve falls away as the write outgrows the");
    println!("    buffer cache, approaching ~50% in the worst (disk-bound) case;");
    println!("  * read bandwidth is unaffected.");
    println!();
    println!("NeST-managed alternative (paper 7.4 'currently investigating'):");
    println!("  user-level lot accounting (nest-storage) charges lots in memory on");
    println!("  the write path: its bookkeeping is O(1) per write and never forces");
    println!("  a synchronous disk update, trading kernel-quota compatibility for");
    println!("  the ability to distinguish lots correctly. See the `ablations`");
    println!("  binary for its measured cost.");
}
