//! Connection-churn benchmark: the session layer's accept path, measured
//! (DESIGN.md §12).
//!
//! Hammers a live appliance with short-lived HTTP connections (connect,
//! one `GET /nest/stats`, close) from several concurrent client threads
//! and reports sustained connections/sec plus the p50/p99
//! connect-to-first-byte latency, across the accept-path ablation:
//!
//! * **pooled** — the session layer proper: one `poll(2)` poller thread
//!   multiplexing every listener, bounded per-protocol worker pools.
//! * **baseline** — `max_conns = 0`: the historical shape, one acceptor
//!   thread per listener polling a nonblocking `accept` on a 5 ms sleep
//!   and spawning an unbounded thread per connection.
//!
//! The baseline's sleep-poll puts up to 5 ms of dead time in front of
//! every accept, which dominates short-connection churn; the poller wakes
//! on readiness. Methodology as in the datapath bench: both configs are
//! measured interleaved round-robin over several repetitions and the
//! medians are reported.
//!
//! Emits machine-readable results to `BENCH_connchurn.json` (override
//! with `--out <path>`); `--smoke` shrinks the workload for the CI gate.
//! Self-validates: all rates finite and positive, and in full mode the
//! pooled config must beat the baseline on connections/sec.

use nest_bench::Table;
use nest_core::config::NestConfig;
use nest_core::server::NestServer;
use nest_obs::Obs;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Instant;

struct Sizes {
    /// Concurrent client threads (each churns serially).
    threads: usize,
    /// Connections per thread per repetition.
    conns_per_thread: usize,
    reps: usize,
}

impl Sizes {
    fn real() -> Self {
        Self {
            threads: 6,
            conns_per_thread: 120,
            reps: 5,
        }
    }

    fn smoke() -> Self {
        Self {
            threads: 4,
            conns_per_thread: 10,
            reps: 1,
        }
    }
}

/// One live appliance under test.
struct Ctx {
    name: &'static str,
    server: Option<NestServer>,
    addr: SocketAddr,
    rate_samples: Vec<f64>,
    p99_samples: Vec<f64>,
    p50_samples: Vec<f64>,
}

fn setup(name: &'static str, max_conns: usize) -> Ctx {
    let config = NestConfig::builder(name)
        .obs(Obs::new())
        .max_conns(max_conns)
        .build()
        .unwrap();
    let server = NestServer::start(config).unwrap();
    let addr = server.http_addr.unwrap();
    Ctx {
        name,
        server: Some(server),
        addr,
        rate_samples: Vec::new(),
        p99_samples: Vec::new(),
        p50_samples: Vec::new(),
    }
}

/// One repetition: every thread churns its quota of connections; returns
/// (connections/sec, all connect-to-first-byte latencies in microseconds).
fn measure(ctx: &Ctx, sz: &Sizes) -> (f64, Vec<f64>) {
    let addr = ctx.addr;
    let start = Instant::now();
    let handles: Vec<_> = (0..sz.threads)
        .map(|_| {
            let n = sz.conns_per_thread;
            std::thread::spawn(move || {
                let mut lats = Vec::with_capacity(n);
                let mut first = [0u8; 1];
                for _ in 0..n {
                    let t0 = Instant::now();
                    let mut conn = TcpStream::connect(addr).expect("connect");
                    conn.set_nodelay(true).unwrap();
                    conn.write_all(b"GET /nest/stats HTTP/1.1\r\n\r\n")
                        .expect("request");
                    conn.read_exact(&mut first).expect("first byte");
                    lats.push(t0.elapsed().as_secs_f64() * 1e6);
                    // Drop: the client closes; the worker sees EOF and
                    // recycles (pooled) or exits (baseline).
                }
                lats
            })
        })
        .collect();
    let mut lats: Vec<f64> = Vec::new();
    for h in handles {
        lats.extend(h.join().expect("client thread"));
    }
    let total = (sz.threads * sz.conns_per_thread) as f64;
    (total / start.elapsed().as_secs_f64(), lats)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 * p).ceil() as usize).saturating_sub(1);
    sorted[idx.min(sorted.len() - 1)]
}

fn median(samples: &[f64]) -> f64 {
    let mut s = samples.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    s[s.len() / 2]
}

struct ConfigResult {
    name: &'static str,
    conns_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
}

fn emit_json(out: &PathBuf, smoke: bool, sz: &Sizes, results: &[ConfigResult]) {
    let find = |name: &str| results.iter().find(|r| r.name == name).unwrap();
    let pooled = find("pooled");
    let baseline = find("baseline");
    let churn_speedup = pooled.conns_per_sec / baseline.conns_per_sec;
    let p99_improvement = baseline.p99_us / pooled.p99_us;

    let mut configs = String::new();
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            configs.push(',');
        }
        configs.push_str(&format!(
            concat!(
                "\n    {{\"name\":\"{}\",\"conns_per_sec\":{:.1},",
                "\"p50_first_byte_us\":{:.1},\"p99_first_byte_us\":{:.1}}}"
            ),
            r.name, r.conns_per_sec, r.p50_us, r.p99_us,
        ));
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"connchurn\",\n",
            "  \"smoke\": {},\n",
            "  \"reps\": {},\n",
            "  \"threads\": {},\n",
            "  \"conns_per_rep\": {},\n",
            "  \"configs\": [{}\n  ],\n",
            "  \"pooled_conns_per_sec\": {:.1},\n",
            "  \"baseline_conns_per_sec\": {:.1},\n",
            "  \"churn_speedup\": {:.3},\n",
            "  \"p99_improvement\": {:.3}\n",
            "}}\n"
        ),
        smoke,
        sz.reps,
        sz.threads,
        sz.threads * sz.conns_per_thread,
        configs,
        pooled.conns_per_sec,
        baseline.conns_per_sec,
        churn_speedup,
        p99_improvement,
    );
    std::fs::write(out, &json).unwrap();

    // Self-validation: finite positive rates everywhere; in full mode the
    // session layer must beat the sleep-poll acceptors it replaced.
    let ok = results
        .iter()
        .all(|r| r.conns_per_sec.is_finite() && r.conns_per_sec > 0.0 && r.p99_us.is_finite())
        && churn_speedup.is_finite();
    if !ok {
        eprintln!("connchurn: self-validation FAILED (non-finite or zero rate)");
        std::process::exit(1);
    }
    if !smoke && churn_speedup <= 1.0 {
        eprintln!("connchurn: REGRESSION — pooled accept path is not faster than the sleep-poll baseline ({churn_speedup:.3}x)");
        std::process::exit(1);
    }
    println!("\nwrote {}", out.display());
    println!(
        "churn (medians of {} reps): pooled {:.0} conns/s vs baseline {:.0} conns/s ({:.2}x); p99 first byte {:.0}us vs {:.0}us",
        sz.reps,
        pooled.conns_per_sec,
        baseline.conns_per_sec,
        churn_speedup,
        pooled.p99_us,
        baseline.p99_us
    );
}

fn main() {
    let mut smoke = false;
    let mut out = PathBuf::from("BENCH_connchurn.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = PathBuf::from(args.next().expect("--out needs a path")),
            other => panic!("unknown flag {other:?} (expected --smoke / --out <path>)"),
        }
    }
    let sz = if smoke { Sizes::smoke() } else { Sizes::real() };
    println!(
        "Connection churn: {} threads x {} conns, {} reps{}\n",
        sz.threads,
        sz.conns_per_thread,
        sz.reps,
        if smoke { " (smoke)" } else { "" }
    );

    // `max_conns == 0` is the ablation switch: per-listener sleep-poll
    // acceptors with an unbounded thread per connection (the seed shape).
    let mut ctxs = vec![setup("pooled", 256), setup("baseline", 0)];

    // Warm both paths (listener queues, lazy worker spawn) outside the
    // measured window, then interleave reps across configs.
    let warm = Sizes {
        threads: 2,
        conns_per_thread: 3,
        reps: 1,
    };
    for ctx in &ctxs {
        let _ = measure(ctx, &warm);
    }
    for _ in 0..sz.reps {
        for ctx in ctxs.iter_mut() {
            let (rate, mut lats) = measure(ctx, &sz);
            lats.sort_by(|a, b| a.partial_cmp(b).unwrap());
            ctx.rate_samples.push(rate);
            ctx.p50_samples.push(percentile(&lats, 0.50));
            ctx.p99_samples.push(percentile(&lats, 0.99));
        }
    }

    let mut results = Vec::new();
    for ctx in ctxs.iter_mut() {
        results.push(ConfigResult {
            name: ctx.name,
            conns_per_sec: median(&ctx.rate_samples),
            p50_us: median(&ctx.p50_samples),
            p99_us: median(&ctx.p99_samples),
        });
        ctx.server.take().unwrap().shutdown();
    }

    let mut table = Table::new(&[
        "config",
        "conns/s",
        "p50 first-byte us",
        "p99 first-byte us",
    ]);
    for r in &results {
        table.row(vec![
            r.name.into(),
            format!("{:.0}", r.conns_per_sec),
            format!("{:.0}", r.p50_us),
            format!("{:.0}", r.p99_us),
        ]);
    }
    table.print();

    emit_json(&out, smoke, &sz, &results);
}
