//! Figure 3 — Multiple Protocols (paper §7.1).
//!
//! "The experiment measures bandwidth when four clients request 10 MB
//! files for each protocol. In the first four sets of bars, only a single
//! protocol is used within each workload (and thus only a single server
//! for JBOS). In the last set of bars, the workload contains all
//! protocols."
//!
//! Expected shape (paper): Chirp and HTTP deliver in-cache files at the
//! network peak (~35 MB/s); GridFTP and NFS reach roughly half; NeST
//! tracks the native (JBOS) servers closely everywhere; in the mixed
//! workload the totals are similar (33–35 MB/s) but FIFO NeST disfavors
//! block-based NFS relative to JBOS.

//!
//! Beyond the paper, the harness reruns the mixed workload with four S3
//! clients riding along — the plugin front schedules exactly like the
//! built-in five, and equal stride tickets isolate it to an equal share.

use nest_bench::Table;
use nest_simenv::server::{SimModel, SimPolicy};
use nest_simenv::stats::mbps;
use nest_simenv::{ClientSpec, PlatformProfile, SimJbos, SimServer};
use nest_transfer::fairness::jain_fairness_weighted;
use nest_transfer::ModelKind;

const DURATION: f64 = 10.0;
const PROTOCOLS: [&str; 4] = ["chirp", "gridftp", "http", "nfs"];

fn nest_server() -> SimServer {
    SimServer::nest(
        PlatformProfile::linux_gige(),
        SimPolicy::Fcfs,
        SimModel::Fixed(ModelKind::Events),
    )
}

fn main() {
    println!("Figure 3: Multiple Protocols — NeST vs JBOS");
    println!(
        "(4 clients x 10 MB in-cache files; Linux/GigE profile; {}s virtual)\n",
        DURATION
    );

    let mut table = Table::new(&[
        "workload",
        "server",
        "chirp",
        "gridftp",
        "http",
        "nfs",
        "total MB/s",
    ]);

    // Single-protocol workloads.
    for proto in PROTOCOLS {
        let clients = ClientSpec::paper_single_protocol(proto);

        let mut nest = nest_server();
        nest.warm_cache(&clients);
        let ns = nest.run(&clients, DURATION);

        let mut jbos = SimJbos::new(PlatformProfile::linux_gige());
        jbos.warm_cache(&clients);
        let js = jbos.run(&clients, DURATION);

        for (server, stats) in [("NeST", &ns), ("JBOS", &js)] {
            table.row(vec![
                format!("{} only", proto),
                server.into(),
                fmt_bw(stats, "chirp"),
                fmt_bw(stats, "gridftp"),
                fmt_bw(stats, "http"),
                fmt_bw(stats, "nfs"),
                format!("{:.1}", mbps(stats.total_bandwidth())),
            ]);
        }
    }

    // Mixed workload: all protocols at once.
    let clients = ClientSpec::paper_mixed_workload();
    let mut nest = nest_server();
    nest.warm_cache(&clients);
    let ns = nest.run(&clients, DURATION);
    let mut jbos = SimJbos::new(PlatformProfile::linux_gige());
    jbos.warm_cache(&clients);
    let js = jbos.run(&clients, DURATION);
    for (server, stats) in [("NeST", &ns), ("JBOS", &js)] {
        table.row(vec![
            "mixed".into(),
            server.into(),
            fmt_bw(stats, "chirp"),
            fmt_bw(stats, "gridftp"),
            fmt_bw(stats, "http"),
            fmt_bw(stats, "nfs"),
            format!("{:.1}", mbps(stats.total_bandwidth())),
        ]);
    }

    table.print();

    // Beyond-paper extension: the S3 plugin front joins the mix. JBOS has
    // no S3 server to compare against — a new protocol there means a new
    // daemon, which is the paper's flexibility argument in one line.
    println!();
    println!("Extension: S3 plugin front in the mixed workload (no JBOS bar —");
    println!("JBOS would need a whole new daemon; NeST needed a ProtocolFront impl)");
    let s3_classes = ["chirp", "gridftp", "http", "nfs", "s3"];
    let clients = ClientSpec::mixed_workload_with_s3();
    let mut ext = Table::new(&[
        "policy",
        "chirp",
        "gridftp",
        "http",
        "nfs",
        "s3",
        "total MB/s",
        "Jain fairness",
    ]);
    for (name, policy) in [
        ("FIFO", SimPolicy::Fcfs),
        (
            "stride 1:1:1:1:1",
            SimPolicy::Stride {
                tickets: s3_classes.iter().map(|c| ((*c).to_owned(), 100)).collect(),
                work_conserving: true,
            },
        ),
    ] {
        let mut nest = SimServer::nest(
            PlatformProfile::linux_gige(),
            policy.clone(),
            SimModel::Fixed(ModelKind::Events),
        );
        nest.warm_cache(&clients);
        let stats = nest.run(&clients, DURATION);
        let fairness = if matches!(policy, SimPolicy::Fcfs) {
            "-".into()
        } else {
            let delivered: Vec<f64> = s3_classes.iter().map(|c| stats.bandwidth(c)).collect();
            format!("{:.3}", jain_fairness_weighted(&delivered, &[1.0; 5]))
        };
        ext.row(vec![
            name.into(),
            fmt_bw(&stats, "chirp"),
            fmt_bw(&stats, "gridftp"),
            fmt_bw(&stats, "http"),
            fmt_bw(&stats, "nfs"),
            fmt_bw(&stats, "s3"),
            format!("{:.1}", mbps(stats.total_bandwidth())),
            fairness,
        ]);
    }
    ext.print();
    println!("(stride isolates the plugin class exactly like the native five)");

    println!();
    println!("Paper checkpoints:");
    println!("  * Chirp/HTTP serve in-cache files at the network peak (~35 MB/s);");
    println!("    GridFTP and NFS reach roughly half of it.");
    println!("  * NeST ~= JBOS per protocol (multi-protocol support costs little).");
    println!("  * Mixed totals are close, but FIFO NeST starves block-based NFS");
    println!("    while the OS-timesliced JBOS shares fairly.");
}

fn fmt_bw(stats: &nest_simenv::SimStats, class: &str) -> String {
    let bw = mbps(stats.bandwidth(class));
    if bw == 0.0 {
        "-".into()
    } else {
        format!("{:.1}", bw)
    }
}
