//! Scale lab: session churn at 10k sessions across the sharding ablation
//! (DESIGN.md §17).
//!
//! Drives a live appliance with a churning session population — each
//! session connects, performs a handful of GETs, and disconnects — at two
//! scales (100 and 10,000 sessions per repetition) against two builds of
//! the same appliance: the sharded default (`shards = 8`) and the
//! single-mutex ablation (`shards = 1`). The workload is deliberately
//! hostile, per the grid deployments the paper reports:
//!
//! * **flash-crowd arrival**: session start times come from
//!   `nest_simenv::arrivals::FlashCrowd`, concentrating most arrivals in
//!   a narrow burst window so admission, the live-connection registry,
//!   and the handle cache see a thundering herd rather than a trickle;
//! * **heavy-tailed file sizes**: the staged working set is drawn from a
//!   bounded Pareto (`ParetoSizes`), so most requests are small (metadata
//!   and lock pressure) while a few drag real bytes through the engine;
//! * **mixed protocol fronts**: sessions alternate between the Chirp and
//!   HTTP fronts, exercising both per-protocol worker pools;
//! * **slow-loris sessions**: a few percent of sessions dribble their
//!   request header with a mid-header stall, pinning a worker and its
//!   live-registry slot;
//! * **abort storms**: a few percent of sessions request the largest file
//!   and drop the connection mid-body, exercising teardown under load.
//!
//! Per-session work is constant across scales (same ops per session), so
//! the 100-session run and the 10,000-session run offer identical
//! per-session cost and the ratio of their throughputs — the
//! **throughput hold ratio** — isolates what scaling the session count
//! does to the shared serialization points. Around every 10k-session
//! repetition the bench snapshots `parking_lot::lockstats` and diffs the
//! counters, so the emitted JSON embeds the measured contention profile
//! of the ablation (`top_contended_before`) next to the sharded build
//! (`top_contended_after`) — the before/after evidence that convicted
//! the locks DESIGN.md §17 discusses.
//!
//! A deterministic simenv twin reruns the same arrival schedule and size
//! stream through a virtual-time worker model (no sockets, no clock), so
//! the schedule itself is reproducible and the twin's hold ratio gives a
//! contention-free baseline; the twin is computed twice and must match
//! bit-for-bit.
//!
//! Emits machine-readable results to `BENCH_scale.json` (override with
//! `--out <path>`); `--smoke` shrinks the workload for the CI gate.
//! Self-validates: rates finite and positive, the twin deterministic,
//! and in full mode the sharded build must hold ≥ 0.9× per-session
//! throughput at 10k sessions and the ablation must show a non-empty
//! contention profile.

use nest_bench::Table;
use nest_core::config::NestConfig;
use nest_core::server::NestServer;
use nest_obs::Obs;
use nest_proto::chirp::ChirpClient;
use nest_proto::http::HttpClient;
use nest_simenv::arrivals::{FlashCrowd, ParetoSizes, SplitMix64};
use parking_lot::lockstats;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

struct Sizes {
    /// Concurrent client threads (each runs its share of sessions
    /// serially, paced by the arrival schedule).
    threads: usize,
    /// Small-scale session count (the per-session throughput baseline).
    sessions_lo: usize,
    /// Large-scale session count (the 10k churn the issue demands).
    sessions_hi: usize,
    /// GETs per session — constant across scales so the hold ratio
    /// compares equal per-session work.
    ops_per_session: usize,
    /// Staged working-set file count.
    files: usize,
    /// Bounded-Pareto size range for the working set.
    size_min: u64,
    size_max: u64,
    reps: usize,
}

impl Sizes {
    fn real() -> Self {
        Self {
            threads: 8,
            sessions_lo: 100,
            sessions_hi: 10_000,
            ops_per_session: 6,
            files: 40,
            size_min: 2 << 10,
            size_max: 256 << 10,
            reps: 5,
        }
    }

    fn smoke() -> Self {
        Self {
            threads: 4,
            sessions_lo: 16,
            sessions_hi: 160,
            ops_per_session: 3,
            files: 10,
            size_min: 1 << 10,
            size_max: 32 << 10,
            reps: 2,
        }
    }
}

const PARETO_ALPHA: f64 = 1.3;
/// Arrival headway per session in microseconds; the schedule's span is
/// `sessions * HEADWAY_US`, so offered load (not wall-clock span) is the
/// same at both scales and both runs are capacity-bound, not
/// arrival-bound.
const HEADWAY_US: u64 = 20;
/// Fraction of sessions concentrated in the flash-crowd burst window.
const BURST_FRACTION: f64 = 0.6;
/// Percent of sessions that are slow-loris / mid-body aborts.
const LORIS_PCT: u64 = 3;
const ABORT_PCT: u64 = 5;
/// How long a slow-loris session stalls mid-header.
const LORIS_STALL: Duration = Duration::from_millis(2);

/// What one session does to the appliance.
#[derive(Clone, Copy, PartialEq)]
enum Behavior {
    /// Persistent HTTP connection, `ops` GETs, clean close.
    Http,
    /// Persistent Chirp connection, `ops` GETs, clean close.
    Chirp,
    /// Dribbled request header with a mid-header stall, then one GET.
    Loris,
    /// GET of the largest file, dropped mid-body.
    Abort,
}

/// One session in a repetition's deterministic plan.
struct Session {
    arrival_us: u64,
    behavior: Behavior,
    /// Working-set indices to GET (empty for `Abort`).
    picks: Vec<usize>,
}

/// One live appliance under test (one side of the sharding ablation).
struct Ctx {
    name: &'static str,
    shards: usize,
    server: Option<NestServer>,
    http_addr: SocketAddr,
    chirp_addr: SocketAddr,
    rate_lo_samples: Vec<f64>,
    rate_hi_samples: Vec<f64>,
    /// Lock-class contention accumulated over the 10k-session windows:
    /// class name → (acquires, contended, wait_ns) deltas.
    profile: HashMap<&'static str, (u64, u64, u64)>,
}

/// Stage the Pareto-sized working set and grant a lot that holds it.
fn setup(name: &'static str, shards: usize, file_sizes: &[u64]) -> Ctx {
    let config = NestConfig::builder(name)
        .obs(Obs::new())
        .max_conns(256)
        .shards(shards)
        .build()
        .unwrap();
    let server = NestServer::start(config).unwrap();
    let total: u64 = file_sizes.iter().sum();
    server
        .grant_default_lot("anonymous", total * 2 + (1 << 20), 3600)
        .unwrap();
    let http_addr = server.http_addr.unwrap();
    let chirp_addr = server.chirp_addr.unwrap();
    let mut stage = HttpClient::connect(http_addr).unwrap();
    for (i, &size) in file_sizes.iter().enumerate() {
        let body = vec![(i % 251) as u8; size as usize];
        let status = stage
            .put_bytes(&format!("/scale_f{}.bin", i), &body)
            .unwrap();
        assert_eq!(status, 201, "staging PUT failed");
    }
    Ctx {
        name,
        shards,
        server: Some(server),
        http_addr,
        chirp_addr,
        rate_lo_samples: Vec::new(),
        rate_hi_samples: Vec::new(),
        profile: HashMap::new(),
    }
}

/// Builds the deterministic session plan for one repetition. The plan
/// depends only on `(sessions, rep, sz)`, so both sides of the ablation
/// replay the identical schedule, behaviors, and file picks.
fn plan(sessions: usize, rep: usize, sz: &Sizes) -> Vec<Session> {
    let seed = 0x5ca1_e000 ^ (sessions as u64) << 8 ^ rep as u64;
    let span = (sessions as u64) * HEADWAY_US;
    let crowd = FlashCrowd::new(span, span / 5, span / 10, BURST_FRACTION);
    let arrivals = crowd.arrivals(seed, sessions);
    let mut rng = SplitMix64::new(seed ^ 0xbeef);
    arrivals
        .into_iter()
        .enumerate()
        .map(|(i, arrival_us)| {
            let roll = rng.next_below(100);
            let behavior = if roll < LORIS_PCT {
                Behavior::Loris
            } else if roll < LORIS_PCT + ABORT_PCT {
                Behavior::Abort
            } else if i % 2 == 0 {
                Behavior::Http
            } else {
                Behavior::Chirp
            };
            let ops = match behavior {
                Behavior::Loris => 1,
                Behavior::Abort => 0,
                _ => sz.ops_per_session,
            };
            let picks = (0..ops)
                .map(|_| rng.next_below(sz.files as u64) as usize)
                .collect();
            Session {
                arrival_us,
                behavior,
                picks,
            }
        })
        .collect()
}

/// Connect with retry: under churn the listener's accept queue can
/// transiently fill; a bounded backoff keeps the client honest without
/// masking a dead server.
fn connect_retry(addr: SocketAddr) -> TcpStream {
    let mut delay = Duration::from_micros(200);
    for _ in 0..60 {
        match TcpStream::connect(addr) {
            Ok(s) => {
                s.set_nodelay(true).unwrap();
                return s;
            }
            Err(_) => {
                std::thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_millis(50));
            }
        }
    }
    panic!("could not connect to {} after 60 attempts", addr);
}

/// Runs one session against the appliance; returns completed GETs.
fn run_session(s: &Session, ctx_http: SocketAddr, ctx_chirp: SocketAddr, largest: usize) -> u64 {
    match s.behavior {
        Behavior::Http => {
            let mut c = match HttpClient::connect(ctx_http) {
                Ok(c) => c,
                Err(_) => return 0,
            };
            let mut done = 0;
            for &pick in &s.picks {
                if c.get_bytes(&format!("/scale_f{}.bin", pick)).is_ok() {
                    done += 1;
                }
            }
            done
        }
        Behavior::Chirp => {
            let mut c = match ChirpClient::connect(ctx_chirp) {
                Ok(c) => c,
                Err(_) => return 0,
            };
            let mut done = 0;
            for &pick in &s.picks {
                if c.get_bytes(&format!("/scale_f{}.bin", pick)).is_ok() {
                    done += 1;
                }
            }
            done
        }
        Behavior::Loris => {
            // Dribble the header, stall mid-line, then finish and take
            // the first byte of the reply so the request really served.
            let mut conn = connect_retry(ctx_http);
            let pick = s.picks.first().copied().unwrap_or(0);
            let head = format!("GET /scale_f{}.bin HTTP/1.1\r\nhost: scale\r\n", pick);
            if conn.write_all(head.as_bytes()).is_err() {
                return 0;
            }
            std::thread::sleep(LORIS_STALL);
            if conn.write_all(b"\r\n").is_err() {
                return 0;
            }
            let mut first = [0u8; 1];
            conn.set_read_timeout(Some(Duration::from_secs(30)))
                .unwrap();
            match conn.read_exact(&mut first) {
                Ok(()) => 1,
                Err(_) => 0,
            }
            // Drop with the body unread: the worker sees the reset on
            // its next write and recycles.
        }
        Behavior::Abort => {
            // Start the largest transfer and walk away mid-body.
            let mut conn = connect_retry(ctx_http);
            let head = format!(
                "GET /scale_f{}.bin HTTP/1.1\r\nhost: scale\r\n\r\n",
                largest
            );
            if conn.write_all(head.as_bytes()).is_err() {
                return 0;
            }
            let mut chunk = [0u8; 256];
            conn.set_read_timeout(Some(Duration::from_secs(30)))
                .unwrap();
            let _ = conn.read(&mut chunk);
            0
        }
    }
}

/// One repetition at one scale: sessions are dealt round-robin to client
/// threads and paced by their flash-crowd arrival offsets. Returns
/// (completed ops/sec, completed ops).
fn measure(ctx: &Ctx, sessions: usize, rep: usize, sz: &Sizes, largest: usize) -> (f64, u64) {
    let plan = plan(sessions, rep, sz);
    let mut per_thread: Vec<Vec<Session>> = (0..sz.threads).map(|_| Vec::new()).collect();
    for (i, s) in plan.into_iter().enumerate() {
        per_thread[i % sz.threads].push(s);
    }
    let http = ctx.http_addr;
    let chirp = ctx.chirp_addr;
    let t0 = Instant::now();
    let handles: Vec<_> = per_thread
        .into_iter()
        .map(|batch| {
            std::thread::spawn(move || {
                let mut done = 0u64;
                for s in &batch {
                    let elapsed = t0.elapsed().as_micros() as u64;
                    if s.arrival_us > elapsed {
                        std::thread::sleep(Duration::from_micros(s.arrival_us - elapsed));
                    }
                    done += run_session(s, http, chirp, largest);
                }
                done
            })
        })
        .collect();
    let mut done = 0u64;
    for h in handles {
        done += h.join().expect("client thread");
    }
    (done as f64 / t0.elapsed().as_secs_f64(), done)
}

/// Diffs two lockstats snapshots into per-class deltas, dropping harness
/// classes and classes that saw no contention in the window.
fn window_delta(
    before: &[lockstats::LockStatSnapshot],
    after: &[lockstats::LockStatSnapshot],
) -> Vec<(&'static str, u64, u64, u64)> {
    let base: HashMap<&str, (u64, u64, u64)> = before
        .iter()
        .map(|s| (s.name, (s.acquires, s.contended, s.wait_ns)))
        .collect();
    after
        .iter()
        .filter(|s| !s.name.starts_with("test.") && !s.name.starts_with("model."))
        .filter_map(|s| {
            let (a0, c0, w0) = base.get(s.name).copied().unwrap_or((0, 0, 0));
            let delta = (s.name, s.acquires - a0, s.contended - c0, s.wait_ns - w0);
            (delta.2 > 0).then_some(delta)
        })
        .collect()
}

fn median(samples: &[f64]) -> f64 {
    let mut s = samples.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    s[s.len() / 2]
}

/// The deterministic simenv twin: the same arrival schedule and size
/// stream, replayed through virtual-time workers (greedy earliest-free
/// assignment). No sockets, no clock — same seed, same answer.
fn twin_makespan_us(sessions: usize, sz: &Sizes, file_sizes: &[u64]) -> (u64, u64) {
    let plan = plan(sessions, 0, sz);
    let mut free_at = vec![0u64; sz.threads];
    let mut ops = 0u64;
    let mut makespan = 0u64;
    for s in &plan {
        // Per-op virtual cost: a fixed per-request overhead plus bytes at
        // a nominal 200 B/us; loris adds its stall, aborts cost overhead
        // only.
        let cost: u64 = match s.behavior {
            Behavior::Abort => 50,
            Behavior::Loris => 50 + LORIS_STALL.as_micros() as u64,
            _ => s.picks.iter().map(|&p| 50 + file_sizes[p] / 200).sum(),
        };
        ops += s.picks.len() as u64;
        let w = (0..free_at.len()).min_by_key(|&i| free_at[i]).unwrap();
        let start = free_at[w].max(s.arrival_us);
        free_at[w] = start + cost;
        makespan = makespan.max(free_at[w]);
    }
    (makespan.max(1), ops.max(1))
}

fn fmt_profile(profile: &[(&'static str, u64, u64, u64)]) -> String {
    let rows: Vec<String> = profile
        .iter()
        .map(|(name, acquires, contended, wait_ns)| {
            format!(
                concat!(
                    "{{\"class\": \"{}\", \"acquires\": {}, ",
                    "\"contended\": {}, \"wait_us\": {:.1}}}"
                ),
                name,
                acquires,
                contended,
                *wait_ns as f64 / 1e3,
            )
        })
        .collect();
    format!("[{}]", rows.join(", "))
}

#[allow(clippy::too_many_arguments)]
fn emit_json(
    path: &PathBuf,
    smoke: bool,
    sz: &Sizes,
    ctxs: &[Ctx],
    hold: f64,
    ablation_hold: f64,
    before: &[(&'static str, u64, u64, u64)],
    after: &[(&'static str, u64, u64, u64)],
    twin_hold: f64,
) {
    let configs: Vec<String> = ctxs
        .iter()
        .map(|ctx| {
            format!(
                concat!(
                    "    {{\"name\": \"{}\", \"shards\": {}, \"ablation\": {}, ",
                    "\"rate_lo_ops_s\": {:.1}, \"rate_hi_ops_s\": {:.1}, ",
                    "\"hold_ratio\": {:.4}}}"
                ),
                ctx.name,
                ctx.shards,
                ctx.shards == 1,
                median(&ctx.rate_lo_samples),
                median(&ctx.rate_hi_samples),
                median(&ctx.rate_hi_samples) / median(&ctx.rate_lo_samples),
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"scale\",\n",
            "  \"smoke\": {},\n",
            "  \"client_threads\": {},\n",
            "  \"sessions_lo\": {},\n",
            "  \"sessions_hi\": {},\n",
            "  \"ops_per_session\": {},\n",
            "  \"reps\": {},\n",
            "  \"configs\": [\n{}\n  ],\n",
            "  \"throughput_hold_ratio\": {:.4},\n",
            "  \"ablation_hold_ratio\": {:.4},\n",
            "  \"top_contended_before\": {},\n",
            "  \"top_contended_after\": {},\n",
            "  \"twin\": {{\"virtual_hold_ratio\": {:.4}, \"deterministic\": true}}\n",
            "}}\n"
        ),
        smoke,
        sz.threads,
        sz.sessions_lo,
        sz.sessions_hi,
        sz.ops_per_session,
        sz.reps,
        configs.join(",\n"),
        hold,
        ablation_hold,
        fmt_profile(before),
        fmt_profile(after),
        twin_hold,
    );
    std::fs::write(path, &json).expect("write BENCH_scale.json");

    // Self-validation: a bench that emits garbage must not look green.
    let mut ok = true;
    for ctx in ctxs {
        for s in ctx.rate_lo_samples.iter().chain(&ctx.rate_hi_samples) {
            if !s.is_finite() || *s <= 0.0 {
                eprintln!("VALIDATION: non-finite/non-positive rate in {}", ctx.name);
                ok = false;
            }
        }
    }
    if !hold.is_finite() || !ablation_hold.is_finite() || !twin_hold.is_finite() {
        eprintln!("VALIDATION: non-finite hold ratio");
        ok = false;
    }
    if !smoke {
        if hold < 0.9 {
            eprintln!(
                "VALIDATION: sharded throughput hold ratio {:.4} < 0.9 at {} sessions",
                hold, sz.sessions_hi
            );
            ok = false;
        }
        if before.is_empty() {
            eprintln!("VALIDATION: ablation contention window is empty");
            ok = false;
        }
    }
    if !ok {
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_scale.json"));
    let sz = if smoke { Sizes::smoke() } else { Sizes::real() };

    // One shared working set: both appliances stage identical bytes.
    let pareto = ParetoSizes::new(sz.size_min, sz.size_max, PARETO_ALPHA);
    let file_sizes = pareto.stream(0xf11e_5eed, sz.files);
    let largest = (0..sz.files).max_by_key(|&i| file_sizes[i]).unwrap_or(0);

    let mut ctxs = [
        setup("scale-sharded", 8, &file_sizes),
        setup("scale-unsharded", 1, &file_sizes),
    ];

    // Warmup: one small-scale pass per appliance, unmeasured, to fill
    // the handle cache and RAM tier and fault in every worker pool.
    for ctx in &ctxs {
        measure(ctx, sz.sessions_lo, usize::MAX, &sz, largest);
    }

    // Interleaved repetitions: both scales on both appliances per round,
    // so drift (page cache, CPU frequency) hits every config equally.
    // The 10k-session window is bracketed by lockstats snapshots; the
    // delta is this appliance's contention profile for the window (the
    // stats table is process-global and cumulative, so only deltas are
    // attributable).
    for rep in 0..sz.reps {
        for ctx in ctxs.iter_mut() {
            let (rate_lo, _) = measure(ctx, sz.sessions_lo, rep, &sz, largest);
            ctx.rate_lo_samples.push(rate_lo);
            let snap_before = lockstats::snapshot();
            let (rate_hi, _) = measure(ctx, sz.sessions_hi, rep, &sz, largest);
            let snap_after = lockstats::snapshot();
            ctx.rate_hi_samples.push(rate_hi);
            for (name, a, c, w) in window_delta(&snap_before, &snap_after) {
                let e = ctx.profile.entry(name).or_insert((0, 0, 0));
                e.0 += a;
                e.1 += c;
                e.2 += w;
            }
        }
    }

    for ctx in ctxs.iter_mut() {
        ctx.server.take().unwrap().shutdown();
    }

    // Rank each appliance's accumulated 10k-window profile by wait time —
    // the same rank LockContentionTop uses.
    let top = |ctx: &Ctx| -> Vec<(&'static str, u64, u64, u64)> {
        let mut rows: Vec<_> = ctx
            .profile
            .iter()
            .map(|(&name, &(a, c, w))| (name, a, c, w))
            .collect();
        rows.sort_by(|x, y| y.3.cmp(&x.3).then(y.2.cmp(&x.2)).then(x.0.cmp(y.0)));
        rows.truncate(5);
        rows
    };
    let after = top(&ctxs[0]);
    let before = top(&ctxs[1]);

    let hold = median(&ctxs[0].rate_hi_samples) / median(&ctxs[0].rate_lo_samples);
    let ablation_hold = median(&ctxs[1].rate_hi_samples) / median(&ctxs[1].rate_lo_samples);

    // The simenv twin: deterministic virtual-time replay of the same
    // plan, run twice to prove it.
    let (mk_lo, ops_lo) = twin_makespan_us(sz.sessions_lo, &sz, &file_sizes);
    let (mk_hi, ops_hi) = twin_makespan_us(sz.sessions_hi, &sz, &file_sizes);
    assert_eq!(
        (mk_lo, ops_lo, mk_hi, ops_hi),
        {
            let a = twin_makespan_us(sz.sessions_lo, &sz, &file_sizes);
            let b = twin_makespan_us(sz.sessions_hi, &sz, &file_sizes);
            (a.0, a.1, b.0, b.1)
        },
        "twin replay diverged: the schedule is not deterministic"
    );
    let twin_hold = (ops_hi as f64 / mk_hi as f64) / (ops_lo as f64 / mk_lo as f64);

    let mut table = Table::new(&["config", "shards", "rate@lo ops/s", "rate@hi ops/s", "hold"]);
    for ctx in &ctxs {
        table.row(vec![
            ctx.name.to_string(),
            ctx.shards.to_string(),
            format!("{:.0}", median(&ctx.rate_lo_samples)),
            format!("{:.0}", median(&ctx.rate_hi_samples)),
            format!(
                "{:.3}",
                median(&ctx.rate_hi_samples) / median(&ctx.rate_lo_samples)
            ),
        ]);
    }
    table.print();
    println!(
        "hold(sharded) = {:.3}  hold(shards=1) = {:.3}  twin = {:.3}",
        hold, ablation_hold, twin_hold
    );
    println!("top contended (shards=1 @ {} sessions):", sz.sessions_hi);
    for (name, _, contended, wait_ns) in &before {
        println!(
            "  {:<28} contended {:>8}  wait {:>10.1} us",
            name,
            contended,
            *wait_ns as f64 / 1e3
        );
    }
    println!("top contended (sharded @ {} sessions):", sz.sessions_hi);
    for (name, _, contended, wait_ns) in &after {
        println!(
            "  {:<28} contended {:>8}  wait {:>10.1} us",
            name,
            contended,
            *wait_ns as f64 / 1e3
        );
    }

    emit_json(
        &out,
        smoke,
        &sz,
        &ctxs,
        hold,
        ablation_hold,
        &before,
        &after,
        twin_hold,
    );
    println!("wrote {}", out.display());
}
