//! Memory-tier hot-set benchmark (DESIGN.md §15): Zipf-distributed GETs
//! over real loopback sockets through the *full dispatcher* — admission,
//! promotion, `MemSource` selection — across the tier × handle-cache grid:
//!
//! * **baseline**            `ram_tier_bytes(0)`, handle cache off
//! * **handle-cache**        `ram_tier_bytes(0)`, handle cache on
//! * **tier**                tier on, handle cache off
//! * **tier+handle-cache**   tier on, handle cache on
//!
//! The two `ram_tier_bytes(0)` rows are the ablation: the identical
//! appliance with the tier compiled in but disabled, which DESIGN.md §15
//! requires to be byte-identical to the pre-tier data path.
//!
//! **Cache-pressure emulation.** A storage appliance earns its RAM tier
//! when the kernel page cache *cannot* hold the hot set — on a busy NeST
//! node, bulk scans and staging traffic continuously evict it. A
//! synthetic loop on an idle host would instead serve every config from
//! the warm page cache and measure memcpy against memcpy. To recreate the
//! contended reality, every completed GET is followed by
//! `posix_fadvise(POSIX_FADV_DONTNEED)` on the backing file — the same
//! pressure for every config. Tier residents are immune (they are served
//! from the manager's own memory, never the page cache); untiered configs
//! pay a genuine disk read per access, exactly as they would under scan
//! traffic. On virtualized hosts `DONTNEED` alone is not enough — the
//! hypervisor's own cache can serve "disk" reads at erratic GB/s — so the
//! hot phase additionally runs a concurrent ingest stream (a 4 MiB
//! `fdatasync` write loop in the storage directory, identical for every
//! config). That is the paper's own scenario: interactive reads competing
//! with bulk staging traffic, and the write stream keeps the I/O path
//! honestly busy at every caching layer.
//!
//! Two workloads per config:
//!
//! * **hot**: `accesses` Zipf(s=1.1) GETs over `files` objects; the tier
//!   promotes the hot set on second hit and serves it from RAM.
//! * **cold**: one-shot uniform GETs over fresh files (each touched
//!   exactly once, never promoted) — this prices the tier's bookkeeping
//!   on misses, reported as `cold_penalty_pct`.
//!
//! Methodology follows `datapath.rs`: configs interleave round-robin
//! within each repetition (medians reported) so host noise spreads across
//! all of them. Emits `BENCH_memtier.json` (override with `--out`);
//! `--smoke` shrinks sizes for the CI gate. The binary validates its own
//! output and exits non-zero on non-finite rates.

use nest_bench::Table;
use nest_core::config::{BackendKind, NestConfig};
use nest_core::dispatcher::{Dispatcher, SocketSink};
use nest_storage::lot::LotOwner;
use nest_storage::mem_tier::MemTierStats;
use nest_storage::Principal;
use nest_transfer::flow::PatternSource;
use nest_transfer::manager::ModelSelection;
use nest_transfer::ModelKind;
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

const ZIPF_S: f64 = 1.1;

#[cfg(unix)]
mod sys {
    // Raw libc binding (no external crate; same pattern as
    // transfer/src/zerocopy.rs): POSIX_FADV_DONTNEED drops a file's clean
    // pages from the page cache.
    pub const POSIX_FADV_DONTNEED: i32 = 4;
    extern "C" {
        pub fn posix_fadvise(fd: i32, offset: i64, len: i64, advice: i32) -> i32;
    }
}

/// Drops `path`'s clean pages from the OS page cache — the scan-pressure
/// emulation (see module docs). Best-effort: a failure merely leaves the
/// config *faster*, never slower, so it cannot manufacture a speedup.
fn drop_pages(path: &Path) {
    #[cfg(unix)]
    {
        use std::os::unix::io::AsRawFd;
        if let Ok(f) = std::fs::File::open(path) {
            // SAFETY: the raw fd is valid for the lifetime of `f`, which
            // outlives the call; (0, 0) means "whole file" and fadvise
            // only updates kernel readahead state.
            unsafe {
                sys::posix_fadvise(f.as_raw_fd(), 0, 0, sys::POSIX_FADV_DONTNEED);
            }
        }
    }
}

/// Syncs `path` so its pages are clean (DONTNEED skips dirty pages), then
/// drops them.
fn sync_and_drop(path: &Path) {
    if let Ok(f) = std::fs::File::open(path) {
        let _ = f.sync_all();
    }
    drop_pages(path);
}

/// Bulk-ingest pressure for the hot phase: rewrites a 64 MiB region in
/// 4 MiB `fdatasync`ed chunks until told to stop. Runs identically for
/// every config, so it shifts the floor, never the comparison.
fn ingest_writer(dir: &Path, stop: &std::sync::atomic::AtomicBool) {
    use std::io::{Seek, SeekFrom, Write};
    use std::sync::atomic::Ordering;
    let path = dir.join("ingest.junk");
    let buf = vec![0x6Au8; 4 << 20];
    let Ok(mut f) = std::fs::File::create(&path) else {
        return;
    };
    // nestlint: allow(atomic-ordering): benchmark stop flag; eventual visibility is enough
    while !stop.load(Ordering::Relaxed) {
        let _ = f.seek(SeekFrom::Start(0));
        for _ in 0..16 {
            // nestlint: allow(atomic-ordering): benchmark stop flag; eventual visibility is enough
            if stop.load(Ordering::Relaxed) {
                break;
            }
            if f.write_all(&buf).is_err() {
                return;
            }
            let _ = f.sync_data();
        }
    }
    drop(f);
    let _ = std::fs::remove_file(&path);
}

struct Sizes {
    files: usize,
    file_size: u64,
    /// Zipf GETs per repetition (per config).
    accesses: usize,
    cold_files: usize,
    cold_size: u64,
    workers: usize,
    reps: usize,
    tier_budget: u64,
    /// Run the concurrent ingest stream during the hot phase. Off in
    /// smoke mode: the CI gate checks plumbing, not contention.
    ingest: bool,
}

impl Sizes {
    fn real() -> Self {
        Self {
            files: 32,
            file_size: 1 << 20, // 32 MiB working set; 1 MiB objects keep
            // per-GET admission/flow setup amortized
            // so the measurement prices data movement
            accesses: 256, // 256 MiB of GETs per rep per config
            cold_files: 128,
            cold_size: 512 << 10, // 64 MiB of one-shot GETs per rep
            workers: 1,           // one interactive client vs. the background
            // ingest stream — the paper's batch-vs-interactive
            // scenario, and the honest shape on a single-CPU
            // host where extra workers only measure the
            // scheduler
            reps: 5,
            tier_budget: 24 << 20, // …against a 24 MiB tier: the hot head
            // (~94% of Zipf mass) fits, the tail
            // must churn.
            ingest: true,
        }
    }

    fn smoke() -> Self {
        Self {
            files: 8,
            file_size: 64 << 10,
            accesses: 32,
            cold_files: 8,
            cold_size: 32 << 10,
            workers: 4,
            reps: 1,
            tier_budget: 2 << 20,
            ingest: false,
        }
    }
}

/// Deterministic 64-bit LCG (Knuth constants) — no external RNG, and the
/// same access sequence for every config within a repetition.
struct Lcg(u64);

impl Lcg {
    fn next_f64(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((self.0 >> 11) as f64) / (1u64 << 53) as f64
    }
}

/// `n` Zipf(s)-distributed indices over `0..files` via inverse-CDF lookup.
fn zipf_sequence(files: usize, n: usize, seed: u64) -> Vec<usize> {
    let mut cdf = Vec::with_capacity(files);
    let mut acc = 0.0f64;
    for rank in 1..=files {
        acc += 1.0 / (rank as f64).powf(ZIPF_S);
        cdf.push(acc);
    }
    let total = acc;
    let mut rng = Lcg(seed);
    (0..n)
        .map(|_| {
            let u = rng.next_f64() * total;
            cdf.partition_point(|&c| c < u).min(files - 1)
        })
        .collect()
}

/// One live appliance under test.
struct Ctx {
    name: &'static str,
    tier: bool,
    cache: bool,
    dir: PathBuf,
    d: Arc<Dispatcher>,
    hot_samples: Vec<f64>,
    cold_samples: Vec<f64>,
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nest-memtier-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn who() -> Principal {
    Principal::user("bench")
}

fn setup(name: &'static str, tier: bool, cache: bool, sz: &Sizes) -> Ctx {
    let dir = scratch(name);
    let config = NestConfig::builder(name)
        .backend(BackendKind::LocalFs(dir.clone()))
        // Keep the gray-box residency hint quiet (a 1 MiB modelled cache
        // predicts nothing resident): promotion must come from the tier's
        // own second-hit rule, so all four configs see identical
        // admission behavior.
        .cache_bytes(1 << 20)
        .ram_tier_bytes(if tier { sz.tier_budget } else { 0 })
        .handle_cache_capacity(if cache { 128 } else { 0 })
        // Threads, not Events: the event model funnels every flow through
        // one loop thread, which serializes the tier's RAM-speed memcpys
        // and caps the measurement at single-core copy bandwidth. The
        // thread model lets concurrent GETs drain in parallel, so the
        // bench prices the tier, not the engine.
        .model(ModelSelection::Fixed(ModelKind::Threads))
        .build()
        .unwrap();
    let d = Arc::new(Dispatcher::new(&config).unwrap());
    d.storage()
        .admin_grant_lot(LotOwner::User("bench".into()), 1 << 29, 86_400)
        .unwrap();

    // Stage the hot working set through the front door, then start every
    // config from the same cold state: pages synced and dropped.
    let u = who();
    for i in 0..sz.files {
        let path = format!("/hot{i}.dat");
        let vp = d.admit_put(&u, "bench", &path, Some(sz.file_size)).unwrap();
        d.transfer_put(
            &u,
            "bench",
            &vp,
            Box::new(PatternSource::new(sz.file_size)),
            Some(sz.file_size),
        )
        .unwrap();
    }
    for i in 0..sz.files {
        sync_and_drop(&dir.join(format!("hot{i}.dat")));
    }

    Ctx {
        name,
        tier,
        cache,
        dir,
        d,
        hot_samples: Vec::new(),
        cold_samples: Vec::new(),
    }
}

const HEAD: &[u8] = b"HTTP/1.1 200 OK\r\nServer: nest-bench\r\n\r\n";

/// Drives `seq` (indices into `paths`) through the dispatcher over real
/// loopback sockets: `workers` threads, each one serial GET stream on its
/// own connection (a session-layer worker's view), each completed GET
/// followed by page-cache pressure on its backing file. Returns MB/s.
fn run_gets(ctx: &Ctx, paths: &[String], seq: &[usize], workers: usize) -> f64 {
    #[cfg(unix)]
    use std::os::unix::io::AsRawFd;

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let bytes: u64 = seq.len() as u64 * {
        // All files in one workload share a size; measure what moved.
        let (vp, size, _) = ctx.d.admit_get(&who(), "bench", &paths[seq[0]]).unwrap();
        let _ = vp;
        size
    };
    let start = Instant::now();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let idxs: Vec<usize> = seq.iter().copied().skip(w).step_by(workers).collect();
            if idxs.is_empty() {
                continue;
            }
            let d = Arc::clone(&ctx.d);
            let dir = ctx.dir.clone();
            let stream = TcpStream::connect(addr).unwrap();
            let (mut conn, _) = listener.accept().unwrap();
            scope.spawn(move || {
                use std::io::Read;
                let mut sunk = vec![0u8; 256 * 1024];
                while conn.read(&mut sunk).unwrap_or(0) > 0 {}
            });
            scope.spawn(move || {
                let u = who();
                for i in idxs {
                    let (vp, size, cached) = d.admit_get(&u, "bench", &paths[i]).unwrap();
                    let sink = SocketSink::new(stream.try_clone().unwrap(), HEAD.to_vec());
                    #[cfg(unix)]
                    let sink = sink.with_raw_fd(stream.as_raw_fd());
                    let n = d
                        .transfer_get(&u, "bench", &vp, size, cached, Box::new(sink))
                        .unwrap();
                    assert_eq!(n, size);
                    // Scan pressure: evict this object's pages. A tier
                    // resident never reads them again; everyone else pays
                    // a real disk read next time.
                    drop_pages(&dir.join(&paths[i][1..]));
                }
                drop(stream);
            });
        }
    });
    bytes as f64 / start.elapsed().as_secs_f64() / 1e6
}

/// Hot workload: one repetition of the Zipf sequence.
fn measure_hot(ctx: &Ctx, sz: &Sizes, seq: &[usize]) -> f64 {
    let paths: Vec<String> = (0..sz.files).map(|i| format!("/hot{i}.dat")).collect();
    if !sz.ingest {
        return run_gets(ctx, &paths, seq, sz.workers);
    }
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        scope.spawn(|| ingest_writer(&ctx.dir, &stop));
        let rate = run_gets(ctx, &paths, seq, sz.workers);
        // nestlint: allow(atomic-ordering): stop flag for the scoped writer; the scope join is the sync point
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        rate
    })
}

/// Cold workload: stage fresh files (untimed), then touch each exactly
/// once — no second hits, so the tier promotes nothing and the measured
/// delta against the ablation is pure bookkeeping. The files are synced
/// but their pages stay *warm*: a disk-bound one-shot read would swing
/// ±15% with virtio scheduling and bury the few microseconds of
/// access-table work this measurement exists to price.
fn measure_cold(ctx: &Ctx, sz: &Sizes, rep: usize) -> f64 {
    let u = who();
    let paths: Vec<String> = (0..sz.cold_files)
        .map(|i| format!("/cold-{rep}-{i}.dat"))
        .collect();
    for p in &paths {
        let vp = ctx.d.admit_put(&u, "bench", p, Some(sz.cold_size)).unwrap();
        ctx.d
            .transfer_put(
                &u,
                "bench",
                &vp,
                Box::new(PatternSource::new(sz.cold_size)),
                Some(sz.cold_size),
            )
            .unwrap();
    }
    for p in &paths {
        if let Ok(f) = std::fs::File::open(ctx.dir.join(&p[1..])) {
            let _ = f.sync_all(); // clean, but leave the pages warm
        }
    }
    let seq: Vec<usize> = (0..sz.cold_files).collect();
    run_gets(ctx, &paths, &seq, sz.workers)
}

fn median(samples: &[f64]) -> f64 {
    let mut s = samples.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    s[s.len() / 2]
}

struct ConfigResult {
    name: &'static str,
    tier: bool,
    cache: bool,
    hot_mbps: f64,
    cold_mbps: f64,
    tier_stats: MemTierStats,
}

fn emit_json(out: &PathBuf, smoke: bool, sz: &Sizes, results: &[ConfigResult]) {
    let find = |name: &str| results.iter().find(|r| r.name == name).unwrap();
    let ablated = find("handle-cache");
    let tiered = find("tier+handle-cache");
    let base = find("baseline");
    let tier_only = find("tier");
    // The headline: tier on vs tier off with everything else identical
    // (both rows run the FD handle cache, the best ablated data path).
    let hot_speedup = tiered.hot_mbps / ablated.hot_mbps;
    let hot_speedup_no_hc = tier_only.hot_mbps / base.hot_mbps;
    let cold_penalty_pct = (ablated.cold_mbps - tiered.cold_mbps) / ablated.cold_mbps * 100.0;

    let mut configs = String::new();
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            configs.push(',');
        }
        let t = &r.tier_stats;
        configs.push_str(&format!(
            concat!(
                "\n    {{\"name\":\"{}\",\"ram_tier\":{},\"handle_cache\":{},",
                "\"hot_mbps\":{:.2},\"cold_mbps\":{:.2},",
                "\"memtier_hits\":{},\"memtier_misses\":{},",
                "\"memtier_promotions\":{},\"memtier_demotions\":{},",
                "\"memtier_bytes\":{}}}"
            ),
            r.name,
            r.tier,
            r.cache,
            r.hot_mbps,
            r.cold_mbps,
            t.hits,
            t.misses,
            t.promotions,
            t.demotions,
            t.bytes,
        ));
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"memtier\",\n",
            "  \"smoke\": {},\n",
            "  \"reps\": {},\n",
            "  \"files\": {},\n",
            "  \"file_size\": {},\n",
            "  \"accesses_per_rep\": {},\n",
            "  \"zipf_s\": {},\n",
            "  \"tier_budget\": {},\n",
            "  \"cold_files\": {},\n",
            "  \"cold_size\": {},\n",
            "  \"configs\": [{}\n  ],\n",
            "  \"hot_speedup\": {:.3},\n",
            "  \"hot_speedup_no_hc\": {:.3},\n",
            "  \"cold_penalty_pct\": {:.2}\n",
            "}}\n"
        ),
        smoke,
        sz.reps,
        sz.files,
        sz.file_size,
        sz.accesses,
        ZIPF_S,
        sz.tier_budget,
        sz.cold_files,
        sz.cold_size,
        configs,
        hot_speedup,
        hot_speedup_no_hc,
        cold_penalty_pct,
    );
    std::fs::write(out, &json).unwrap();

    // Self-validation: rates finite and positive; the tier rows must have
    // actually exercised the tier (hits + promotions observed).
    let rates_ok = results.iter().all(|r| {
        r.hot_mbps.is_finite() && r.hot_mbps > 0.0 && r.cold_mbps.is_finite() && r.cold_mbps > 0.0
    });
    let tier_ok = results
        .iter()
        .filter(|r| r.tier)
        .all(|r| r.tier_stats.hits > 0 && r.tier_stats.promotions > 0);
    let ablation_ok = results
        .iter()
        .filter(|r| !r.tier)
        .all(|r| r.tier_stats.hits == 0 && r.tier_stats.misses == 0);
    if !(rates_ok && tier_ok && ablation_ok && hot_speedup.is_finite()) {
        eprintln!("memtier: self-validation FAILED (rates_ok={rates_ok} tier_ok={tier_ok} ablation_ok={ablation_ok})");
        std::process::exit(1);
    }
    println!("\nwrote {}", out.display());
    println!(
        "hot-set Zipf socket GETs (tier vs ram_tier_bytes(0), both with handle cache, medians of {} reps): {:.2}x ({:.0} vs {:.0} MB/s)",
        sz.reps, hot_speedup, tiered.hot_mbps, ablated.hot_mbps
    );
    println!(
        "cold one-shot GETs: tier bookkeeping penalty {:.2}% ({:.0} vs {:.0} MB/s)",
        cold_penalty_pct, tiered.cold_mbps, ablated.cold_mbps
    );
}

fn main() {
    let mut smoke = false;
    let mut out = PathBuf::from("BENCH_memtier.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = PathBuf::from(args.next().expect("--out needs a path")),
            other => panic!("unknown flag {other:?} (expected --smoke / --out <path>)"),
        }
    }
    let sz = if smoke { Sizes::smoke() } else { Sizes::real() };
    println!(
        "Memory-tier hot-set: {} x {} KiB files, Zipf(s={}), {} GETs/rep, {} MiB tier, {} workers, {} reps{}\n",
        sz.files,
        sz.file_size >> 10,
        ZIPF_S,
        sz.accesses,
        sz.tier_budget >> 20,
        sz.workers,
        sz.reps,
        if smoke { " (smoke)" } else { "" }
    );

    let mut ctxs = vec![
        setup("baseline", false, false, &sz),
        setup("handle-cache", false, true, &sz),
        setup("tier", true, false, &sz),
        setup("tier+handle-cache", true, true, &sz),
    ];

    // Interleave configs within each repetition; every config replays the
    // identical per-rep Zipf sequence.
    for rep in 0..sz.reps {
        let seq = zipf_sequence(sz.files, sz.accesses, 0x5DEECE66D ^ (rep as u64) << 17);
        for ctx in ctxs.iter_mut() {
            let v = measure_hot(ctx, &sz, &seq);
            ctx.hot_samples.push(v);
        }
    }
    for rep in 0..sz.reps {
        for ctx in ctxs.iter_mut() {
            let v = measure_cold(ctx, &sz, rep);
            ctx.cold_samples.push(v);
        }
    }

    let mut results = Vec::new();
    for ctx in ctxs {
        results.push(ConfigResult {
            name: ctx.name,
            tier: ctx.tier,
            cache: ctx.cache,
            hot_mbps: median(&ctx.hot_samples),
            cold_mbps: median(&ctx.cold_samples),
            tier_stats: ctx.d.storage().tier_stats(),
        });
        if let Some(d) = Arc::into_inner(ctx.d) {
            d.shutdown();
        }
        let _ = std::fs::remove_dir_all(&ctx.dir);
    }

    let mut table = Table::new(&[
        "config",
        "hot MB/s",
        "cold MB/s",
        "tier hit/miss",
        "promote/demote",
        "tier bytes",
    ]);
    for r in &results {
        let t = &r.tier_stats;
        table.row(vec![
            r.name.into(),
            format!("{:.0}", r.hot_mbps),
            format!("{:.0}", r.cold_mbps),
            format!("{}/{}", t.hits, t.misses),
            format!("{}/{}", t.promotions, t.demotions),
            format!("{}", t.bytes),
        ]);
    }
    table.print();

    emit_json(&out, smoke, &sz, &results);
}
