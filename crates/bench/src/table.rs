//! Plain-text table rendering for figure output.

/// A fixed-column table printed to stdout.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cell, width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["proto", "MB/s"]);
        t.row(vec!["chirp".into(), "35.0".into()]);
        t.row(vec!["nfs".into(), "16.2".into()]);
        let s = t.render();
        assert!(s.contains("proto"));
        assert!(s.contains("chirp"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All data lines the same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
