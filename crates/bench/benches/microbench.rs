//! Criterion micro-benchmarks for NeST's hot paths: wire codecs, the
//! scheduler and cache-model operations, ClassAd matchmaking, and the
//! simulation engine itself.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use nest_classad::{parse_ad, ClassAd, Matchmaker};
use nest_proto::chirp::{format_response, parse_command};
use nest_proto::gridftp::modee::{read_block, write_block};
use nest_proto::request::NestResponse;
use nest_simenv::server::{SimModel, SimPolicy};
use nest_simenv::{ClientSpec, PlatformProfile, SimServer};
use nest_sunrpc::rpc::RpcMessage;
use nest_sunrpc::xdr::{XdrDecoder, XdrEncoder};
use nest_transfer::cache::CacheModel;
use nest_transfer::flow::{FlowId, FlowMeta};
use nest_transfer::sched::{Scheduler, StrideScheduler};
use nest_transfer::ModelKind;

fn bench_classad(c: &mut Criterion) {
    let src = r#"[ Type = "Storage"; Name = "turkey"; FreeSpace = 40 * 1024 * 1024;
        Protocols = { "chirp", "gridftp", "http", "nfs" };
        Requirements = other.Type == "StorageRequest" && other.NeedSpace <= my.FreeSpace;
        Rank = other.Priority ]"#;
    c.bench_function("classad/parse_storage_ad", |b| {
        b.iter(|| parse_ad(black_box(src)).unwrap())
    });

    let server: ClassAd = src.parse().unwrap();
    let request: ClassAd = r#"[ Type = "StorageRequest"; NeedSpace = 1000000;
        Priority = 5; Requirements = other.Type == "Storage" ]"#
        .parse()
        .unwrap();
    c.bench_function("classad/bilateral_match", |b| {
        b.iter(|| nest_classad::matches(black_box(&server), black_box(&request)))
    });

    let mut mm = Matchmaker::new();
    for i in 0..100 {
        let mut ad = server.clone();
        ad.insert_value("Name", nest_classad::Value::str(format!("site{}", i)));
        ad.insert_value("FreeSpace", nest_classad::Value::Int(i * 1_000_000));
        mm.publish(format!("site{}", i), ad);
    }
    c.bench_function("classad/best_match_of_100", |b| {
        b.iter(|| mm.best_match(black_box(&request)))
    });
}

fn bench_xdr_rpc(c: &mut Criterion) {
    let mut group = c.benchmark_group("sunrpc");
    let payload = vec![7u8; 8192];
    group.throughput(Throughput::Bytes(8192));
    group.bench_function("xdr_encode_8k_opaque", |b| {
        b.iter(|| {
            let mut e = XdrEncoder::with_capacity(8200);
            e.put_opaque(black_box(&payload));
            e.into_bytes()
        })
    });
    let mut e = XdrEncoder::new();
    e.put_opaque(&payload);
    let encoded = e.into_bytes();
    group.bench_function("xdr_decode_8k_opaque", |b| {
        b.iter(|| {
            let mut d = XdrDecoder::new(black_box(&encoded));
            d.get_opaque().unwrap().len()
        })
    });
    let call = RpcMessage::call(7, 100003, 2, 6, encoded.clone());
    let wire = call.encode();
    group.bench_function("rpc_decode_nfs_read_call", |b| {
        b.iter(|| RpcMessage::decode(black_box(&wire)).unwrap())
    });
    group.finish();
}

fn bench_chirp_codec(c: &mut Criterion) {
    c.bench_function("chirp/parse_put", |b| {
        b.iter(|| parse_command(black_box("put /data/input.dat 10485760")))
    });
    c.bench_function("chirp/format_listing", |b| {
        let resp = NestResponse::OkText((0..32).map(|i| format!("file{}", i)).collect());
        b.iter(|| format_response(black_box(&resp)))
    });
}

fn bench_modee(c: &mut Criterion) {
    let mut group = c.benchmark_group("gridftp");
    let data = vec![3u8; 64 * 1024];
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("modee_frame_64k_block", |b| {
        b.iter(|| {
            let mut wire = Vec::with_capacity(data.len() + 17);
            write_block(&mut wire, 0, 1 << 20, black_box(&data)).unwrap();
            wire
        })
    });
    let mut wire = Vec::new();
    write_block(&mut wire, 0, 1 << 20, &data).unwrap();
    group.bench_function("modee_parse_64k_block", |b| {
        b.iter(|| {
            let mut cur = std::io::Cursor::new(black_box(&wire));
            read_block(&mut cur).unwrap().unwrap().data.len()
        })
    });
    group.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    c.bench_function("sched/stride_pick_account_16_classes", |b| {
        let mut s = StrideScheduler::new();
        for i in 0..16u32 {
            let class = format!("class{}", i);
            s.set_tickets(&class, 100 + i);
            s.admit(&FlowMeta::new(FlowId(i as u64), class, Some(1 << 20)));
        }
        b.iter(|| {
            let id = s.next().unwrap();
            s.account(id, 64 * 1024);
            id
        })
    });
}

fn bench_cache_model(c: &mut Criterion) {
    c.bench_function("cache/observe_and_predict", |b| {
        let cache = CacheModel::new(256 << 20);
        let mut i = 0u64;
        b.iter(|| {
            let name = format!("file{}", i % 512);
            cache.observe_access(&name, 1 << 20);
            i += 1;
            cache.predict_resident(&name, 1 << 20)
        })
    });
}

fn bench_sim_engine(c: &mut Criterion) {
    c.bench_function("simenv/mixed_workload_1s", |b| {
        b.iter(|| {
            let clients = ClientSpec::paper_mixed_workload();
            let mut server = SimServer::nest(
                PlatformProfile::linux_gige(),
                SimPolicy::Fcfs,
                SimModel::Fixed(ModelKind::Events),
            );
            server.warm_cache(&clients);
            server.run(&clients, 1.0).total_bandwidth()
        })
    });
}

criterion_group!(
    benches,
    bench_classad,
    bench_xdr_rpc,
    bench_chirp_codec,
    bench_modee,
    bench_scheduler,
    bench_cache_model,
    bench_sim_engine,
);
criterion_main!(benches);
