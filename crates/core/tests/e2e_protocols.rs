//! End-to-end tests: a real NeST server on localhost, exercised through
//! every protocol's client library.

use nest_core::config::NestConfig;
use nest_core::server::NestServer;
use nest_proto::chirp::ChirpClient;
use nest_proto::ftp::FtpClient;
use nest_proto::gridftp::GridFtpClient;
use nest_proto::gsi::{GridMap, SimCa};
use nest_proto::http::HttpClient;
use nest_proto::nfs::{MountClient, NfsClient};

fn test_ca() -> SimCa {
    SimCa::new("NeST-Test-CA", 0x5EED)
}

fn gridmap() -> GridMap {
    let mut gm = GridMap::new();
    gm.add("/O=Grid/CN=Alice", "alice");
    gm
}

fn start_server(name: &str) -> NestServer {
    let config = NestConfig::builder(name)
        .gsi(test_ca(), gridmap())
        .build()
        .unwrap();
    NestServer::start(config).expect("server starts")
}

#[test]
fn chirp_full_session() {
    let server = start_server("chirp-e2e");
    let mut client = ChirpClient::connect(server.chirp_addr.unwrap()).unwrap();

    assert!(client.version().unwrap().contains("nest-chirp"));

    // Authenticate as alice via simulated GSI.
    let cred = test_ca().issue("/O=Grid/CN=Alice");
    assert_eq!(client.authenticate(&cred).unwrap(), "alice");

    // Lots: create, write into it, stat, renew, list.
    let lot = client.lot_create(1 << 20, 3600).unwrap();
    client.mkdir("/data").unwrap();
    let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
    client.put_bytes("/data/input.dat", &payload).unwrap();
    assert_eq!(
        client.stat("/data/input.dat").unwrap(),
        payload.len() as u64
    );
    assert_eq!(client.get_bytes("/data/input.dat").unwrap(), payload);
    assert_eq!(client.ls("/data").unwrap(), vec!["input.dat"]);

    let info = client.lot_stat(lot).unwrap();
    assert_eq!(info.capacity, 1 << 20);
    assert_eq!(info.used, payload.len() as u64);
    client.lot_renew(lot, 100).unwrap();
    assert_eq!(client.lot_list().unwrap().len(), 1);

    // Rename and delete.
    client
        .rename("/data/input.dat", "/data/renamed.dat")
        .unwrap();
    client.unlink("/data/renamed.dat").unwrap();
    assert_eq!(client.lot_stat(lot).unwrap().used, 0);
    client.rmdir("/data").unwrap();

    client.lot_terminate(lot).unwrap();
    client.quit().unwrap();
    server.shutdown();
}

#[test]
fn chirp_unauthenticated_cannot_create_lot() {
    let server = start_server("chirp-anon");
    let mut client = ChirpClient::connect(server.chirp_addr.unwrap()).unwrap();
    assert!(client.lot_create(1000, 60).is_err());
    server.shutdown();
}

#[test]
fn chirp_bad_credential_rejected() {
    let server = start_server("chirp-badcred");
    let mut client = ChirpClient::connect(server.chirp_addr.unwrap()).unwrap();
    let other_ca = SimCa::new("Evil-CA", 0xBAD);
    let cred = other_ca.issue("/O=Grid/CN=Alice");
    assert!(client.authenticate(&cred).is_err());
    server.shutdown();
}

#[test]
fn http_get_put_head_delete() {
    let server = start_server("http-e2e");
    // HTTP is anonymous: back it with a default lot.
    server
        .grant_default_lot("anonymous", 1 << 20, 3600)
        .unwrap();

    let mut client = HttpClient::connect(server.http_addr.unwrap()).unwrap();
    let body = vec![7u8; 50_000];
    assert_eq!(client.put_bytes("/file.bin", &body).unwrap(), 201);
    assert_eq!(client.get_bytes("/file.bin").unwrap(), body);
    let (status, len) = client.head_request("/file.bin").unwrap();
    assert_eq!((status, len), (200, Some(50_000)));
    assert_eq!(client.delete("/file.bin").unwrap(), 204);
    let (status, _) = client.head_request("/file.bin").unwrap();
    assert_eq!(status, 404);
    server.shutdown();
}

#[test]
fn http_put_without_lot_is_507() {
    let server = start_server("http-nolot");
    let mut client = HttpClient::connect(server.http_addr.unwrap()).unwrap();
    let status = client.put_bytes("/f", b"xxxx").unwrap();
    assert_eq!(status, 507);
    server.shutdown();
}

#[test]
fn ftp_full_session() {
    let server = start_server("ftp-e2e");
    server
        .grant_default_lot("anonymous", 1 << 20, 3600)
        .unwrap();

    let mut client = FtpClient::connect(server.ftp_addr.unwrap()).unwrap();
    client.login("anonymous", "test@").unwrap();
    client.type_binary().unwrap();

    client.mkd("/updir").unwrap();
    let body: Vec<u8> = (0..60_000u32).map(|i| (i % 256) as u8).collect();
    assert_eq!(
        client.stor_bytes("/updir/f.bin", &body).unwrap(),
        body.len() as u64
    );
    assert_eq!(client.size("/updir/f.bin").unwrap(), body.len() as u64);
    assert_eq!(client.retr_bytes("/updir/f.bin").unwrap(), body);
    assert_eq!(client.nlst(Some("/updir")).unwrap(), vec!["f.bin"]);
    client.rename("/updir/f.bin", "/updir/g.bin").unwrap();
    client.dele("/updir/g.bin").unwrap();
    client.rmd("/updir").unwrap();
    client.quit().unwrap();
    server.shutdown();
}

#[test]
fn gridftp_parallel_streams_roundtrip() {
    let server = start_server("gftp-e2e");
    let mut client = GridFtpClient::connect(server.gridftp_addr.unwrap()).unwrap();
    let cred = test_ca().issue("/O=Grid/CN=Alice");
    assert_eq!(client.authenticate(&cred).unwrap(), "alice");
    client.set_parallelism(4).unwrap();

    // alice needs a lot; grant administratively.
    server.grant_default_lot("alice", 4 << 20, 3600).unwrap();

    let body: Vec<u8> = (0..1_000_000u32).map(|i| (i % 253) as u8).collect();
    assert_eq!(
        client.put_bytes("/big.bin", &body).unwrap(),
        body.len() as u64
    );
    assert_eq!(client.get_bytes("/big.bin").unwrap(), body);
    client.quit().unwrap();
    server.shutdown();
}

#[test]
fn gridftp_third_party_between_two_nests() {
    // Madison holds the input; the manager moves it to Argonne (paper §6
    // step 3) without the data passing through the manager.
    let madison = start_server("madison");
    let argonne = start_server("argonne");
    madison
        .grant_default_lot("anonymous", 1 << 20, 3600)
        .unwrap();
    argonne
        .grant_default_lot("anonymous", 1 << 20, 3600)
        .unwrap();

    // Stage input at Madison over plain FTP.
    let mut ftp = FtpClient::connect(madison.ftp_addr.unwrap()).unwrap();
    ftp.login("anonymous", "x").unwrap();
    let input: Vec<u8> = (0..200_000u32).map(|i| (i % 249) as u8).collect();
    ftp.stor_bytes("/input.dat", &input).unwrap();
    ftp.quit().unwrap();

    // Third-party: Madison → Argonne.
    let mut src = GridFtpClient::connect(madison.gridftp_addr.unwrap()).unwrap();
    let mut dst = GridFtpClient::connect(argonne.gridftp_addr.unwrap()).unwrap();
    src.ftp().login("anonymous", "x").unwrap();
    dst.ftp().login("anonymous", "x").unwrap();
    nest_proto::gridftp::third_party(&mut src, "/input.dat", &mut dst, "/staged.dat").unwrap();

    // Verify at Argonne.
    let mut check = FtpClient::connect(argonne.ftp_addr.unwrap()).unwrap();
    check.login("anonymous", "x").unwrap();
    assert_eq!(check.retr_bytes("/staged.dat").unwrap(), input);
    check.quit().unwrap();

    madison.shutdown();
    argonne.shutdown();
}

#[test]
fn nfs_mount_and_file_operations() {
    let server = start_server("nfs-e2e");
    server
        .grant_default_lot("anonymous", 1 << 20, 3600)
        .unwrap();
    let addr = server.nfs_addr.unwrap();

    let mut mount = MountClient::connect(addr).unwrap();
    let root = mount.mount("/").unwrap();

    let mut nfs = NfsClient::connect(addr).unwrap();
    nfs.null().unwrap();

    // mkdir + create + write + read back.
    let (dir_fh, dir_attr) = nfs.mkdir(root, "jobs").unwrap();
    assert_eq!(dir_attr.ftype, nest_proto::nfs::NfsFileType::Directory);

    let payload: Vec<u8> = (0..50_000u32).map(|i| (i % 241) as u8).collect();
    nfs.write_file(
        dir_fh,
        "out.dat",
        &mut std::io::Cursor::new(payload.clone()),
    )
    .unwrap();

    let (file_fh, attr) = nfs.lookup(dir_fh, "out.dat").unwrap();
    assert_eq!(attr.size as usize, payload.len());
    let mut readback = Vec::new();
    nfs.read_file(file_fh, &mut readback).unwrap();
    assert_eq!(readback, payload);

    // getattr and readdir.
    let attr2 = nfs.getattr(file_fh).unwrap();
    assert_eq!(attr2.size as usize, payload.len());
    assert_eq!(nfs.readdir(dir_fh).unwrap(), vec!["out.dat"]);

    // rename + remove + rmdir; stale handle afterwards.
    nfs.rename(dir_fh, "out.dat", dir_fh, "renamed.dat")
        .unwrap();
    nfs.remove(dir_fh, "renamed.dat").unwrap();
    nfs.rmdir(root, "jobs").unwrap();
    assert!(nfs.getattr(dir_fh).is_err());

    mount.unmount("/").unwrap();
    server.shutdown();
}

#[test]
fn nfs_lookup_missing_is_noent() {
    let server = start_server("nfs-noent");
    let addr = server.nfs_addr.unwrap();
    let mut mount = MountClient::connect(addr).unwrap();
    let root = mount.mount("/").unwrap();
    let mut nfs = NfsClient::connect(addr).unwrap();
    match nfs.lookup(root, "nothing") {
        Err(nest_proto::nfs::client::NfsError::Status(nest_proto::nfs::NfsStat::NoEnt)) => {}
        other => panic!("{:?}", other.map(|_| ())),
    }
    server.shutdown();
}

#[test]
fn cross_protocol_visibility() {
    // A file stored over HTTP is visible over Chirp, FTP and NFS — one
    // appliance, one namespace, many protocols.
    let server = start_server("cross-proto");
    server
        .grant_default_lot("anonymous", 1 << 20, 3600)
        .unwrap();

    let body = b"shared across protocols".to_vec();
    let mut http = HttpClient::connect(server.http_addr.unwrap()).unwrap();
    assert_eq!(http.put_bytes("/shared.txt", &body).unwrap(), 201);

    let mut chirp = ChirpClient::connect(server.chirp_addr.unwrap()).unwrap();
    assert_eq!(chirp.get_bytes("/shared.txt").unwrap(), body);

    let mut ftp = FtpClient::connect(server.ftp_addr.unwrap()).unwrap();
    ftp.login("anonymous", "x").unwrap();
    assert_eq!(ftp.retr_bytes("/shared.txt").unwrap(), body);

    let addr = server.nfs_addr.unwrap();
    let mut mount = MountClient::connect(addr).unwrap();
    let root = mount.mount("/").unwrap();
    let mut nfs = NfsClient::connect(addr).unwrap();
    let (fh, _) = nfs.lookup(root, "shared.txt").unwrap();
    let mut readback = Vec::new();
    nfs.read_file(fh, &mut readback).unwrap();
    assert_eq!(readback, body);

    server.shutdown();
}

#[test]
fn acl_enforced_identically_across_protocols() {
    let server = start_server("acl-cross");
    server.grant_default_lot("alice", 1 << 20, 3600).unwrap();

    // alice locks the tree down: only she can read/write.
    let mut chirp = ChirpClient::connect(server.chirp_addr.unwrap()).unwrap();
    let cred = test_ca().issue("/O=Grid/CN=Alice");
    chirp.authenticate(&cred).unwrap();
    chirp.put_bytes("/secret.txt", b"classified").unwrap();
    chirp.setacl("/", "user:alice", "all").unwrap();
    chirp.setacl("/", "*", "none").unwrap(); // revoke everyone

    // Anonymous HTTP and FTP are now refused.
    let mut http = HttpClient::connect(server.http_addr.unwrap()).unwrap();
    assert!(http.get_bytes("/secret.txt").is_err());
    let mut ftp = FtpClient::connect(server.ftp_addr.unwrap()).unwrap();
    ftp.login("anonymous", "x").unwrap();
    assert!(ftp.retr_bytes("/secret.txt").is_err());

    // alice still reads over Chirp.
    assert_eq!(chirp.get_bytes("/secret.txt").unwrap(), b"classified");
    server.shutdown();
}

#[test]
fn per_user_scheduling_classes_reach_stats() {
    // With per-user scheduling, transfer stats are keyed by user name
    // instead of protocol — the paper's per-user preferences extension.
    let config = NestConfig::builder("per-user")
        .gsi(test_ca(), gridmap())
        .sched_class(nest_core::config::SchedClass::User)
        .build()
        .unwrap();
    let server = NestServer::start(config).unwrap();
    server.grant_default_lot("alice", 1 << 20, 3600).unwrap();
    server
        .grant_default_lot("anonymous", 1 << 20, 3600)
        .unwrap();

    // alice over Chirp, anonymous over HTTP.
    let mut chirp = ChirpClient::connect(server.chirp_addr.unwrap()).unwrap();
    chirp
        .authenticate(&test_ca().issue("/O=Grid/CN=Alice"))
        .unwrap();
    chirp.put_bytes("/a.bin", &[1u8; 10_000]).unwrap();
    chirp.get_bytes("/a.bin").unwrap();
    let mut http = HttpClient::connect(server.http_addr.unwrap()).unwrap();
    http.put_bytes("/h.bin", &[2u8; 5_000]).unwrap();

    let stats = server.dispatcher().transfer_stats();
    assert!(
        stats.classes.contains_key("alice"),
        "classes: {:?}",
        stats.classes.keys()
    );
    assert!(stats.classes.contains_key("anonymous"));
    assert!(!stats.classes.contains_key("chirp"));
    server.shutdown();
}

#[test]
fn nfs_truncate_via_setattr() {
    let server = start_server("nfs-setattr");
    server
        .grant_default_lot("anonymous", 1 << 20, 3600)
        .unwrap();
    let addr = server.nfs_addr.unwrap();
    let mut mount = MountClient::connect(addr).unwrap();
    let root = mount.mount("/").unwrap();
    let mut nfs = NfsClient::connect(addr).unwrap();

    nfs.write_file(root, "t.bin", &mut std::io::Cursor::new(vec![7u8; 10_000]))
        .unwrap();
    let (fh, attr) = nfs.lookup(root, "t.bin").unwrap();
    assert_eq!(attr.size, 10_000);
    // Truncate to 100 bytes via SETATTR.
    let attr = nfs.truncate(fh, 100).unwrap();
    assert_eq!(attr.size, 100);
    let mut back = Vec::new();
    nfs.read_file(fh, &mut back).unwrap();
    assert_eq!(back, vec![7u8; 100]);
    // Truncate to zero releases lot accounting.
    nfs.truncate(fh, 0).unwrap();
    assert_eq!(nfs.getattr(fh).unwrap().size, 0);
    server.shutdown();
}

#[test]
fn localfs_backed_appliance_round_trips() {
    // The appliance over a real directory: bytes must land on disk and be
    // visible across protocols and across server restarts.
    let dir = std::env::temp_dir().join(format!("nest-localfs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut config = NestConfig::ephemeral("localfs");
    config.backend = nest_core::config::BackendKind::LocalFs(dir.clone());
    let server = NestServer::start(config).unwrap();
    server
        .grant_default_lot("anonymous", 8 << 20, 3600)
        .unwrap();

    let body: Vec<u8> = (0..123_457u32).map(|i| (i % 251) as u8).collect();
    let mut chirp = ChirpClient::connect(server.chirp_addr.unwrap()).unwrap();
    chirp.mkdir("/persist").unwrap();
    chirp.put_bytes("/persist/data.bin", &body).unwrap();
    // The bytes are really on the host filesystem.
    let on_disk = std::fs::read(dir.join("persist/data.bin")).unwrap();
    assert_eq!(on_disk, body);
    server.shutdown();

    // A new appliance over the same root sees the data (manageability:
    // the appliance owns no hidden state beyond the directory).
    let mut config = NestConfig::ephemeral("localfs-2");
    config.backend = nest_core::config::BackendKind::LocalFs(dir.clone());
    let server2 = NestServer::start(config).unwrap();
    let mut http = HttpClient::connect(server2.http_addr.unwrap()).unwrap();
    assert_eq!(http.get_bytes("/persist/data.bin").unwrap(), body);
    server2.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn group_lots_over_the_wire() {
    // The paper's "next release" feature: group lots, created and used
    // over Chirp by group members.
    let server = start_server("group-lots");
    // Make alice a member of "wind" in the server's group table.
    server
        .dispatcher()
        .storage()
        .acl()
        .set_group("wind", ["alice".to_owned(), "bob".to_owned()]);

    let mut alice = ChirpClient::connect(server.chirp_addr.unwrap()).unwrap();
    alice
        .authenticate(&test_ca().issue("/O=Grid/CN=Alice"))
        .unwrap();
    let lot = alice.lot_create_group("wind", 1 << 20, 3600).unwrap();

    // Alice (a member) can write into the group lot.
    alice
        .put_bytes("/shared-by-group.bin", &[1u8; 10_000])
        .unwrap();
    let info = alice.lot_stat(lot).unwrap();
    assert_eq!(info.owner, "group:wind");
    assert_eq!(info.used, 10_000);

    // A non-member cannot create a lot for that group...
    let mut anon = ChirpClient::connect(server.chirp_addr.unwrap()).unwrap();
    assert!(anon.lot_create_group("wind", 1 << 10, 60).is_err());
    // ...and a non-member's writes are refused for lack of a usable lot.
    assert!(anon.put_bytes("/intruder.bin", b"x").is_err());
    server.shutdown();
}

#[test]
fn four_party_transfer_via_chirp_command() {
    // Paper §2.1: the transfer manager "transfers data between different
    // protocol connections (allowing transparent three- and four-party
    // transfers)". Here a Chirp client asks the "broker" NeST to move a
    // file between two *other* NeSTs: four parties in total.
    let broker = start_server("broker");
    let source = start_server("source");
    let target = start_server("target");
    source
        .grant_default_lot("anonymous", 1 << 20, 3600)
        .unwrap();
    target
        .grant_default_lot("anonymous", 1 << 20, 3600)
        .unwrap();

    // Stage a file at the source.
    let body: Vec<u8> = (0..150_000u32).map(|i| (i % 233) as u8).collect();
    let mut stage = FtpClient::connect(source.ftp_addr.unwrap()).unwrap();
    stage.login("anonymous", "x").unwrap();
    stage.stor_bytes("/payload.bin", &body).unwrap();
    stage.quit().unwrap();

    // The client only ever talks to the broker.
    let mut client = ChirpClient::connect(broker.chirp_addr.unwrap()).unwrap();
    let src_url = nest_proto::request::TransferUrl::new(
        "gsiftp",
        "127.0.0.1",
        source.gridftp_addr.unwrap().port(),
        "/payload.bin",
    );
    let dst_url = nest_proto::request::TransferUrl::new(
        "gsiftp",
        "127.0.0.1",
        target.gridftp_addr.unwrap().port(),
        "/delivered.bin",
    );
    client.third_party(&src_url, &dst_url).unwrap();

    // The data moved source → target without touching broker or client.
    let mut check = FtpClient::connect(target.ftp_addr.unwrap()).unwrap();
    check.login("anonymous", "x").unwrap();
    assert_eq!(check.retr_bytes("/delivered.bin").unwrap(), body);
    assert_eq!(
        broker.dispatcher().transfer_stats().total_bytes(),
        0,
        "broker must not carry the payload"
    );

    broker.shutdown();
    source.shutdown();
    target.shutdown();
}

#[test]
fn acls_persist_across_restarts_on_disk() {
    // Manageability: a disk-backed appliance reloads its ACL configuration
    // after a restart (ACLs persist as a ClassAd collection in a sibling
    // file, outside the served namespace).
    let dir = std::env::temp_dir().join(format!("nest-aclpersist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(dir.with_extension("acls"));

    let start_disk = |name: &str| {
        let config = NestConfig::builder(name)
            .gsi(test_ca(), gridmap())
            .backend(nest_core::config::BackendKind::LocalFs(dir.clone()))
            .build()
            .unwrap();
        NestServer::start(config).unwrap()
    };

    let server = start_disk("acl-persist");
    server.grant_default_lot("alice", 1 << 20, 3600).unwrap();
    let mut chirp = ChirpClient::connect(server.chirp_addr.unwrap()).unwrap();
    chirp
        .authenticate(&test_ca().issue("/O=Grid/CN=Alice"))
        .unwrap();
    chirp.put_bytes("/locked.txt", b"private").unwrap();
    // Lock the tree to alice only.
    chirp.setacl("/", "user:alice", "all").unwrap();
    chirp.setacl("/", "*", "none").unwrap();
    server.shutdown();

    // Restart over the same root: the lockdown must survive.
    let server2 = start_disk("acl-persist-2");
    let mut http = HttpClient::connect(server2.http_addr.unwrap()).unwrap();
    assert!(
        http.get_bytes("/locked.txt").is_err(),
        "anonymous got through after restart"
    );
    let mut chirp2 = ChirpClient::connect(server2.chirp_addr.unwrap()).unwrap();
    chirp2
        .authenticate(&test_ca().issue("/O=Grid/CN=Alice"))
        .unwrap();
    assert_eq!(chirp2.get_bytes("/locked.txt").unwrap(), b"private");
    server2.shutdown();

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(dir.with_extension("acls"));
}

#[test]
fn ibp_depot_over_the_wire_and_lots_contrast() {
    // The paper's announced protocol addition (§3) and its §8 comparison:
    // IBP allocations are byte arrays named by capabilities, disjoint from
    // the file namespace that lots govern.
    use nest_proto::ibp::{IbpClient, Reliability};

    let config = NestConfig::builder("ibp-e2e")
        .gsi(test_ca(), gridmap())
        .ibp(true)
        .build()
        .unwrap();
    let server = NestServer::start(config).unwrap();

    let mut ibp = IbpClient::connect(server.ibp_addr.unwrap()).unwrap();
    let caps = ibp.allocate(1 << 20, 3600, Reliability::Stable).unwrap();
    let payload: Vec<u8> = (0..200_000u32).map(|i| (i % 231) as u8).collect();
    assert_eq!(
        ibp.store_bytes(&caps.write, &payload).unwrap(),
        payload.len() as u64
    );
    assert_eq!(ibp.load(&caps.read, 100, 50).unwrap(), &payload[100..150]);
    let probe = ibp.probe(&caps.manage).unwrap();
    assert_eq!(probe.stored, payload.len() as u64);
    assert_eq!(probe.reliability, Reliability::Stable);
    ibp.extend(&caps.manage, 100).unwrap();

    // §8 contrast, part 1: the byte array is invisible to the file
    // protocols — "it can be done but only if the client is willing to
    // build its own file system within the byte array."
    let mut chirp = ChirpClient::connect(server.chirp_addr.unwrap()).unwrap();
    assert_eq!(chirp.ls("/").unwrap(), Vec::<String>::new());

    // §8 contrast, part 2: capabilities are the only names — no path ever
    // existed, and deallocation revokes all access at once.
    ibp.decrement(&caps.manage).unwrap();
    assert!(ibp.load(&caps.read, 0, 1).is_err());
    ibp.quit().unwrap();
    server.shutdown();
}

#[test]
fn lots_persist_across_restarts_on_disk() {
    // Reservations must survive an appliance restart for the guarantee to
    // mean anything; the paper inherited this from kernel quotas.
    let dir = std::env::temp_dir().join(format!("nest-lotpersist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(dir.with_extension("lots"));
    let _ = std::fs::remove_file(dir.with_extension("acls"));

    let start_disk = |name: &str| {
        let config = NestConfig::builder(name)
            .gsi(test_ca(), gridmap())
            .backend(nest_core::config::BackendKind::LocalFs(dir.clone()))
            .capacity(1 << 20)
            .build()
            .unwrap();
        NestServer::start(config).unwrap()
    };

    let lot_id;
    {
        let server = start_disk("lots-1");
        let mut chirp = ChirpClient::connect(server.chirp_addr.unwrap()).unwrap();
        chirp
            .authenticate(&test_ca().issue("/O=Grid/CN=Alice"))
            .unwrap();
        lot_id = chirp.lot_create(600 << 10, 3600).unwrap();
        chirp.put_bytes("/kept.bin", &[9u8; 100_000]).unwrap();
        // unlink+put forces a persist with the final charge recorded.
        server.shutdown();
    }

    {
        let server = start_disk("lots-2");
        let mut chirp = ChirpClient::connect(server.chirp_addr.unwrap()).unwrap();
        chirp
            .authenticate(&test_ca().issue("/O=Grid/CN=Alice"))
            .unwrap();
        // The lot is still there with its charge.
        let info = chirp.lot_stat(lot_id).unwrap();
        assert_eq!(info.capacity, 600 << 10);
        assert_eq!(info.used, 100_000);
        // The guarantee still binds: a second user cannot over-reserve.
        let mut anon_err = ChirpClient::connect(server.chirp_addr.unwrap()).unwrap();
        assert!(anon_err.lot_create(600 << 10, 60).is_err()); // anonymous + no space anyway
                                                              // Deleting the file releases the restored charge.
        chirp.unlink("/kept.bin").unwrap();
        assert_eq!(chirp.lot_stat(lot_id).unwrap().used, 0);
        server.shutdown();
    }

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(dir.with_extension("lots"));
    let _ = std::fs::remove_file(dir.with_extension("acls"));
}

#[test]
fn http_directory_listing() {
    let server = start_server("http-index");
    server
        .grant_default_lot("anonymous", 1 << 20, 3600)
        .unwrap();
    let mut http = HttpClient::connect(server.http_addr.unwrap()).unwrap();
    http.put_bytes("/idx/one.txt", b"1").ok(); // parent missing: 404-ish
                                               // Build a small tree.
    let mut chirp = ChirpClient::connect(server.chirp_addr.unwrap()).unwrap();
    chirp.mkdir("/idx").unwrap();
    http.put_bytes("/idx/one.txt", b"1").unwrap();
    http.put_bytes("/idx/two.txt", b"22").unwrap();
    // GET on the directory returns a text index.
    let listing = String::from_utf8(http.get_bytes("/idx").unwrap()).unwrap();
    let mut names: Vec<&str> = listing.lines().collect();
    names.sort_unstable();
    assert_eq!(names, ["one.txt", "two.txt"]);
    server.shutdown();
}

#[test]
fn ftp_relative_paths_and_cwd() {
    let server = start_server("ftp-cwd");
    server
        .grant_default_lot("anonymous", 1 << 20, 3600)
        .unwrap();
    let mut client = FtpClient::connect(server.ftp_addr.unwrap()).unwrap();
    client.login("anonymous", "x").unwrap();
    client.mkd("/proj").unwrap();
    client.mkd("/proj/data").unwrap();
    // Change into the tree; relative paths then resolve against the cwd.
    let r = client.command("CWD /proj/data").unwrap();
    assert_eq!(r.code, 250);
    let r = client.command("PWD").unwrap();
    assert!(r.text.contains("/proj/data"), "{}", r.text);
    client.stor_bytes("rel.bin", b"relative").unwrap();
    assert_eq!(
        client.retr_bytes("/proj/data/rel.bin").unwrap(),
        b"relative"
    );
    // `..` inside the tree is fine; escapes above the root are rejected.
    let r = client.command("CWD ..").unwrap();
    assert_eq!(r.code, 250);
    assert_eq!(client.retr_bytes("data/rel.bin").unwrap(), b"relative");
    let r = client.command("CWD ../../..").unwrap();
    assert_ne!(r.code, 250);
    client.quit().unwrap();
    server.shutdown();
}

#[test]
fn gridftp_mode_e_edge_cases() {
    let server = start_server("gftp-edge");
    server
        .grant_default_lot("anonymous", 8 << 20, 3600)
        .unwrap();
    let mut client = GridFtpClient::connect(server.gridftp_addr.unwrap()).unwrap();
    client.ftp().login("anonymous", "x").unwrap();

    // Zero-byte file over 4 parallel streams: only control blocks flow.
    client.set_parallelism(4).unwrap();
    assert_eq!(client.put_bytes("/zero.bin", b"").unwrap(), 0);
    assert_eq!(client.get_bytes("/zero.bin").unwrap(), b"");

    // More streams than 64 KB chunks: some streams carry no data blocks.
    let tiny = vec![5u8; 10_000];
    client.set_parallelism(8).unwrap();
    assert_eq!(
        client.put_bytes("/tiny.bin", &tiny).unwrap(),
        tiny.len() as u64
    );
    assert_eq!(client.get_bytes("/tiny.bin").unwrap(), tiny);

    // Parallelism changes between transfers on one session.
    client.set_parallelism(2).unwrap();
    let medium = vec![6u8; 500_000];
    assert_eq!(
        client.put_bytes("/medium.bin", &medium).unwrap(),
        medium.len() as u64
    );
    assert_eq!(client.get_bytes("/medium.bin").unwrap(), medium);
    client.quit().unwrap();
    server.shutdown();
}
