//! Robustness tests: a production appliance must survive hostile input,
//! abrupt disconnects and concurrent load without wedging or panicking.

use nest_core::config::NestConfig;
use nest_core::server::NestServer;
use nest_proto::chirp::ChirpClient;
use nest_proto::http::HttpClient;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn start() -> NestServer {
    let server = NestServer::start(NestConfig::ephemeral("robust")).unwrap();
    server
        .grant_default_lot("anonymous", 8 << 20, 3600)
        .unwrap();
    server
}

/// Sends raw bytes at a port and ensures the server stays usable after.
fn throw_garbage(addr: std::net::SocketAddr, garbage: &[u8]) {
    if let Ok(mut s) = TcpStream::connect(addr) {
        let _ = s.set_write_timeout(Some(Duration::from_millis(500)));
        let _ = s.write_all(garbage);
        // Half of the probes disconnect abruptly, half read first.
        let _ = s.set_read_timeout(Some(Duration::from_millis(200)));
        let mut buf = [0u8; 256];
        let _ = s.read(&mut buf);
    }
}

#[test]
fn garbage_bytes_do_not_wedge_any_listener() {
    let server = start();
    let garbage_samples: &[&[u8]] = &[
        b"",
        b"\0\0\0\0\0\0\0\0",
        b"\xFF\xFE\xFD\xFC",
        b"GET / HTTP/9.9\r\n\r\n",
        b"PUT /x HTTP/1.1\r\nContent-Length: 999999999\r\n\r\nshort",
        b"lot_create not numbers\n",
        b"PORT 1,2,3\r\n",
        b"%%%%%%%%\n\n\n",
    ];
    for addr in [
        server.chirp_addr.unwrap(),
        server.http_addr.unwrap(),
        server.ftp_addr.unwrap(),
        server.gridftp_addr.unwrap(),
    ] {
        for g in garbage_samples {
            throw_garbage(addr, g);
        }
    }

    // The server still serves real clients afterwards.
    let mut http = HttpClient::connect(server.http_addr.unwrap()).unwrap();
    assert_eq!(http.put_bytes("/alive.txt", b"still here").unwrap(), 201);
    assert_eq!(http.get_bytes("/alive.txt").unwrap(), b"still here");
    let mut chirp = ChirpClient::connect(server.chirp_addr.unwrap()).unwrap();
    assert!(chirp.version().unwrap().contains("nest"));
    server.shutdown();
}

#[test]
fn oversized_line_is_rejected_not_buffered() {
    let server = start();
    let mut s = TcpStream::connect(server.chirp_addr.unwrap()).unwrap();
    // 64 KB without a newline: MAX_LINE is 8 KB, the server must cut us
    // off rather than buffer forever.
    let big = vec![b'a'; 64 * 1024];
    let _ = s.write_all(&big);
    let _ = s.set_read_timeout(Some(Duration::from_secs(2)));
    let mut buf = [0u8; 16];
    // Either an error reply or a closed connection is acceptable;
    // blocking forever is not (the read timeout converts that to Err,
    // which the next assertion distinguishes via a live check).
    let _ = s.read(&mut buf);
    drop(s);

    let mut chirp = ChirpClient::connect(server.chirp_addr.unwrap()).unwrap();
    assert!(chirp.version().is_ok());
    server.shutdown();
}

#[test]
fn client_disconnect_mid_upload_leaves_server_healthy() {
    let server = start();
    // Promise a 1 MB chirp PUT, send 10 KB, vanish.
    {
        let mut s = TcpStream::connect(server.chirp_addr.unwrap()).unwrap();
        s.write_all(b"put /partial.bin 1048576\r\n").unwrap();
        let mut line = [0u8; 64];
        let _ = s.read(&mut line); // "0 ready"
        s.write_all(&[9u8; 10 * 1024]).unwrap();
        // Abrupt close.
    }
    // Give the transfer engine a moment to observe the EOF.
    std::thread::sleep(Duration::from_millis(200));

    // The server keeps serving; the half-written file may exist but the
    // appliance is not stuck and new uploads work.
    let mut chirp = ChirpClient::connect(server.chirp_addr.unwrap()).unwrap();
    chirp.put_bytes("/complete.bin", &[1u8; 50_000]).unwrap();
    assert_eq!(chirp.get_bytes("/complete.bin").unwrap().len(), 50_000);
    server.shutdown();
}

#[test]
fn many_concurrent_clients_across_protocols() {
    let server = start();
    let chirp_addr = server.chirp_addr.unwrap();
    let http_addr = server.http_addr.unwrap();

    let mut handles = Vec::new();
    for i in 0..6 {
        handles.push(std::thread::spawn(move || {
            let mut c = ChirpClient::connect(chirp_addr).unwrap();
            let name = format!("/c{}.bin", i);
            let body = vec![i as u8; 30_000];
            for _ in 0..5 {
                c.put_bytes(&name, &body).unwrap();
                assert_eq!(c.get_bytes(&name).unwrap(), body);
            }
        }));
        handles.push(std::thread::spawn(move || {
            let mut c = HttpClient::connect(http_addr).unwrap();
            let name = format!("/h{}.bin", i);
            let body = vec![i as u8; 30_000];
            for _ in 0..5 {
                assert_eq!(c.put_bytes(&name, &body).unwrap(), 201);
                assert_eq!(c.get_bytes(&name).unwrap(), body);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let stats = server.dispatcher().transfer_stats();
    assert_eq!(stats.failures, 0);
    assert!(stats.total_bytes() >= 2 * 6 * 5 * 30_000);
    server.shutdown();
}

#[test]
fn path_escape_attempts_rejected_on_the_wire() {
    let server = start();
    let mut chirp = ChirpClient::connect(server.chirp_addr.unwrap()).unwrap();
    for path in ["/../etc/passwd", "/a/../../x", "/.."] {
        assert!(
            chirp.stat(path).is_err(),
            "path {:?} should be rejected",
            path
        );
        assert!(chirp.put_bytes(path, b"x").is_err());
    }
    let mut http = HttpClient::connect(server.http_addr.unwrap()).unwrap();
    assert_ne!(http.put_bytes("/../../etc/cron.d/evil", b"x").unwrap(), 201);
    server.shutdown();
}

#[test]
fn zero_byte_and_exact_boundary_files() {
    let server = start();
    let mut chirp = ChirpClient::connect(server.chirp_addr.unwrap()).unwrap();
    // Empty file.
    chirp.put_bytes("/empty", b"").unwrap();
    assert_eq!(chirp.get_bytes("/empty").unwrap(), b"");
    assert_eq!(chirp.stat("/empty").unwrap(), 0);
    // Exactly one engine chunk (64 KB) and one byte either side.
    for size in [64 * 1024 - 1, 64 * 1024, 64 * 1024 + 1] {
        let body = vec![3u8; size];
        let name = format!("/b{}", size);
        chirp.put_bytes(&name, &body).unwrap();
        assert_eq!(chirp.get_bytes(&name).unwrap(), body, "size {}", size);
    }
    server.shutdown();
}
