//! Smoke test for the `nestd` command-line appliance.

use nest_proto::chirp::ChirpClient;
use nest_proto::http::HttpClient;
use std::io::{BufRead, BufReader};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

#[test]
fn nestd_starts_serves_and_dies() {
    let exe = env!("CARGO_BIN_EXE_nestd");
    let mut child = Command::new(exe)
        .args([
            "--name",
            "cli-test",
            "--sched",
            "stride",
            "--tickets",
            "chirp=200,http=100",
            "--model",
            "events",
            "--default-lot",
            "anonymous=4M,120",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("nestd spawns");

    // Parse the listening addresses from stdout.
    let stdout = child.stdout.take().unwrap();
    let mut reader = BufReader::new(stdout);
    let mut chirp_addr = None;
    let mut http_addr = None;
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut line = String::new();
    while Instant::now() < deadline {
        line.clear();
        if reader.read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let mut parts = line.split_whitespace();
        match (parts.next(), parts.next()) {
            (Some("chirp"), Some(addr)) => chirp_addr = Some(addr.to_owned()),
            (Some("http"), Some(addr)) => http_addr = Some(addr.to_owned()),
            _ => {}
        }
        if line.contains("Ctrl-C") {
            break;
        }
    }
    let chirp_addr = chirp_addr.expect("chirp address printed");
    let http_addr = http_addr.expect("http address printed");

    // Exercise the running appliance.
    let mut http = HttpClient::connect(&*http_addr).unwrap();
    assert_eq!(http.put_bytes("/cli.bin", b"served by nestd").unwrap(), 201);
    let mut chirp = ChirpClient::connect(&*chirp_addr).unwrap();
    assert_eq!(chirp.get_bytes("/cli.bin").unwrap(), b"served by nestd");
    assert!(chirp.version().unwrap().contains("nest"));

    child.kill().expect("nestd killed");
    let _ = child.wait();
}

#[test]
fn nestd_rejects_bad_arguments() {
    let exe = env!("CARGO_BIN_EXE_nestd");
    for bad in [
        vec!["--capacity", "not-a-size"],
        vec!["--sched", "quantum-fair"],
        vec!["--model", "fibers"],
        vec!["--no-such-flag"],
    ] {
        let status = Command::new(exe)
            .args(&bad)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .status()
            .unwrap();
        assert_eq!(status.code(), Some(2), "args {:?} should usage-exit", bad);
    }
}
