//! Appliance configuration.

use nest_proto::gsi::{GridMap, GsiAuthenticator, SimCa};
use nest_transfer::manager::{ModelSelection, SchedPolicy};
use nest_transfer::ModelKind;
use std::path::PathBuf;

/// What a transfer's scheduling class is keyed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedClass {
    /// Class = protocol name ("chirp", "nfs", ...), as in the paper.
    Protocol,
    /// Class = authenticated local user name (anonymous included), the
    /// paper's per-user extension. Ticket tables then name users.
    User,
}

/// Which physical storage backs the appliance.
#[derive(Debug, Clone)]
pub enum BackendKind {
    /// Main memory (tests, benchmarks, the paper's in-cache workloads).
    Memory,
    /// A host directory.
    LocalFs(PathBuf),
}

/// Configuration for one NeST instance.
pub struct NestConfig {
    /// Appliance name (appears in its published ClassAd).
    pub name: String,
    /// Physical storage.
    pub backend: BackendKind,
    /// Total bytes under lot management.
    pub capacity: u64,
    /// Whether lots are enforced (disable to reproduce the Figure 6
    /// quota-off baseline or to run an open server).
    pub enforce_lots: bool,
    /// Best-effort lot reclamation policy.
    pub reclaim: nest_storage::ReclaimPolicy,
    /// Transfer scheduling policy.
    pub sched: SchedPolicy,
    /// How flows are grouped into scheduling classes: by protocol (the
    /// 2002 behavior) or by authenticated user (the paper's announced
    /// extension: "in the future, we plan to extend this to provide
    /// preferences on a per-user basis").
    pub sched_class: SchedClass,
    /// Concurrency model selection.
    pub model: ModelSelection,
    /// Simulated-GSI authenticator (None disables GSI; only anonymous
    /// access is then possible on every protocol).
    pub gsi: Option<GsiAuthenticator>,
    /// Listening ports, 0 for ephemeral. Protocols set to None are not
    /// served.
    pub ports: Ports,
    /// Size of the modelled kernel buffer cache (gray-box cache model).
    pub cache_bytes: u64,
}

/// Per-protocol listening ports; `None` disables the protocol.
#[derive(Debug, Clone, Copy)]
pub struct Ports {
    /// Chirp control port.
    pub chirp: Option<u16>,
    /// HTTP port.
    pub http: Option<u16>,
    /// FTP control port.
    pub ftp: Option<u16>,
    /// GridFTP control port.
    pub gridftp: Option<u16>,
    /// NFS RPC port (UDP and TCP).
    pub nfs: Option<u16>,
    /// IBP depot port (None by default: it is the paper's announced
    /// extension, opt-in via [`NestConfig::with_ibp`]).
    pub ibp: Option<u16>,
}

impl Default for Ports {
    fn default() -> Self {
        // Ephemeral everywhere: ideal for tests and co-located instances.
        Self {
            chirp: Some(0),
            http: Some(0),
            ftp: Some(0),
            gridftp: Some(0),
            nfs: Some(0),
            ibp: None,
        }
    }
}

impl Default for NestConfig {
    fn default() -> Self {
        Self {
            name: "nest".into(),
            backend: BackendKind::Memory,
            capacity: 1 << 30,
            enforce_lots: true,
            reclaim: nest_storage::ReclaimPolicy::ExpiredFirst,
            sched: SchedPolicy::Fcfs,
            sched_class: SchedClass::Protocol,
            model: ModelSelection::Adaptive(vec![
                ModelKind::Threads,
                ModelKind::Processes,
                ModelKind::Events,
            ]),
            gsi: None,
            ports: Ports::default(),
            cache_bytes: 256 << 20,
        }
    }
}

impl NestConfig {
    /// A named in-memory appliance with all protocols on ephemeral ports —
    /// the configuration tests and examples use.
    pub fn ephemeral(name: &str) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    /// Attaches a simulated GSI authenticator built from a CA and mapfile.
    pub fn with_gsi(mut self, ca: SimCa, gridmap: GridMap) -> Self {
        self.gsi = Some(GsiAuthenticator::new(ca, gridmap));
        self
    }

    /// Disables lot enforcement.
    pub fn without_lots(mut self) -> Self {
        self.enforce_lots = false;
        self
    }

    /// Uses a fixed concurrency model instead of adaptation.
    pub fn with_fixed_model(mut self, model: ModelKind) -> Self {
        self.model = ModelSelection::Fixed(model);
        self
    }

    /// Uses a scheduling policy.
    pub fn with_sched(mut self, sched: SchedPolicy) -> Self {
        self.sched = sched;
        self
    }

    /// Schedules per authenticated user instead of per protocol.
    pub fn with_per_user_scheduling(mut self) -> Self {
        self.sched_class = SchedClass::User;
        self
    }

    /// Enables the IBP depot listener (ephemeral port).
    pub fn with_ibp(mut self) -> Self {
        self.ports.ibp = Some(0);
        self
    }
}
