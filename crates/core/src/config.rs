//! Appliance configuration.
//!
//! [`NestConfig`] is assembled through [`NestConfigBuilder`], which
//! validates the combination before an appliance is built from it:
//! configurations that cannot work (no name, quota enforcement over zero
//! capacity, an explicit storage guarantee with lots disabled, two
//! protocols fighting over one port) are rejected at `build()` time rather
//! than surfacing as confusing runtime failures.

use crate::dispatcher::Dispatcher;
use crate::front::ProtocolFront;
use nest_obs::Obs;
use nest_proto::gsi::{GridMap, GsiAuthenticator, SimCa};
use nest_transfer::manager::{ModelSelection, SchedPolicy};
use nest_transfer::{ModelKind, RetryPolicy};
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// What a transfer's scheduling class is keyed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedClass {
    /// Class = protocol name ("chirp", "nfs", ...), as in the paper.
    Protocol,
    /// Class = authenticated local user name (anonymous included), the
    /// paper's per-user extension. Ticket tables then name users.
    User,
}

/// Which physical storage backs the appliance.
#[derive(Debug, Clone)]
pub enum BackendKind {
    /// Main memory (tests, benchmarks, the paper's in-cache workloads).
    Memory,
    /// A host directory.
    LocalFs(PathBuf),
}

/// A configuration rejected by [`NestConfigBuilder::build`] or
/// [`NestConfig::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The appliance name is empty (it keys the published ClassAd).
    EmptyName,
    /// Lot enforcement requires a nonzero managed capacity.
    NoCapacity,
    /// An explicit capacity guarantee was requested with lots disabled —
    /// without lots there is no mechanism to honor the guarantee.
    CapacityWithoutLots,
    /// Two protocols were given the same fixed port.
    DuplicatePort(u16),
    /// A global connection cap was set but the per-protocol cap is zero,
    /// so no protocol could ever admit a connection.
    ZeroPerProtocolCap,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::EmptyName => write!(f, "appliance name must be non-empty"),
            ConfigError::NoCapacity => {
                write!(f, "lot enforcement requires a nonzero capacity")
            }
            ConfigError::CapacityWithoutLots => {
                write!(f, "an explicit capacity guarantee requires lot enforcement")
            }
            ConfigError::DuplicatePort(p) => {
                write!(f, "two protocols configured on the same port {}", p)
            }
            ConfigError::ZeroPerProtocolCap => {
                write!(
                    f,
                    "max_conns > 0 with max_conns_per_protocol == 0 admits nothing"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Builds a plugin protocol front once the appliance's dispatcher exists
/// (fronts usually capture it); called exactly once by `NestServer::start`.
pub type FrontFactory = Box<dyn FnOnce(&Arc<Dispatcher>) -> Arc<dyn ProtocolFront> + Send>;

/// A plugin front requested through the builder: the port to serve it on
/// (0 = ephemeral) and the factory that constructs it.
pub struct ExtraFront {
    /// Listening port (0 for ephemeral).
    pub port: u16,
    /// Front constructor, consumed at server start.
    pub factory: FrontFactory,
}

/// Configuration for one NeST instance.
pub struct NestConfig {
    /// Appliance name (appears in its published ClassAd).
    pub name: String,
    /// Physical storage.
    pub backend: BackendKind,
    /// Total bytes under lot management.
    pub capacity: u64,
    /// Whether lots are enforced (disable to reproduce the Figure 6
    /// quota-off baseline or to run an open server).
    pub enforce_lots: bool,
    /// Best-effort lot reclamation policy.
    pub reclaim: nest_storage::ReclaimPolicy,
    /// Transfer scheduling policy.
    pub sched: SchedPolicy,
    /// How flows are grouped into scheduling classes: by protocol (the
    /// 2002 behavior) or by authenticated user (the paper's announced
    /// extension: "in the future, we plan to extend this to provide
    /// preferences on a per-user basis").
    pub sched_class: SchedClass,
    /// Concurrency model selection.
    pub model: ModelSelection,
    /// Simulated-GSI authenticator (None disables GSI; only anonymous
    /// access is then possible on every protocol).
    pub gsi: Option<GsiAuthenticator>,
    /// Listening ports, 0 for ephemeral. Protocols set to None are not
    /// served.
    pub ports: Ports,
    /// Size of the modelled kernel buffer cache (gray-box cache model).
    pub cache_bytes: u64,
    /// Byte budget for the actuating in-memory storage tier: a bounded,
    /// lot-aware RAM cache under the storage manager that promotes hot
    /// objects to serve at memory speed. `0` (the default) disables the
    /// tier entirely — the data path is then byte-identical to an
    /// appliance built before the tier existed.
    pub ram_tier_bytes: u64,
    /// Capacity override for the disk backend's FD handle cache: `None`
    /// keeps the backend default, `Some(0)` disables caching (open-per-
    /// chunk, the ablation baseline), `Some(n)` caches up to `n` handles.
    /// Ignored by the memory backend.
    pub handle_cache_capacity: Option<usize>,
    /// Observability registry shared with the appliance. `None` makes the
    /// dispatcher create a private one; pass a registry to read the same
    /// instruments from outside (tests, embedding monitors).
    pub obs: Option<Arc<Obs>>,
    /// Retry policy stamped onto every transfer the dispatcher submits.
    /// Transient I/O failures are retried with exponential backoff within
    /// this budget when both endpoints can be replayed. Default:
    /// [`RetryPolicy::standard`].
    pub retry: RetryPolicy,
    /// Per-transfer deadline stamped onto dispatcher-submitted flows;
    /// `None` (the default) means transfers may run indefinitely.
    pub transfer_deadline: Option<Duration>,
    /// Global cap on simultaneously admitted connections across every
    /// protocol front-end. `0` selects the per-connection-thread ablation
    /// (seed behavior: unbounded spawn, 5 ms sleep-poll acceptors) used as
    /// the benchmark baseline. Default: 256.
    pub max_conns: usize,
    /// Per-protocol bound on connections concurrently *being served*
    /// (the worker-pool size for that protocol). Default: 64.
    pub max_conns_per_protocol: usize,
    /// Connections over the per-protocol cap wait in a bounded queue of
    /// this depth before the appliance rejects with the protocol's
    /// overload reply. Default: 0 (reject immediately at the cap).
    pub accept_queue_depth: usize,
    /// Per-connection idle deadline: a connection that sends no request
    /// bytes for this long is reaped. `None` (the default) keeps idle
    /// connections forever.
    pub idle_timeout: Option<Duration>,
    /// Plugin protocol fronts (beyond the built-in six) registered with
    /// the appliance's `FrontRegistry` at start, in order. Each factory
    /// receives the dispatcher and returns the front to serve.
    pub extra_fronts: Vec<ExtraFront>,
    /// Stripe count for the appliance's sharded tables (lot table, quota
    /// table, handle cache, mem-tier presence index, fh table, session
    /// live registry, transfer stats). `1` selects the single-mutex
    /// ablation — the pre-sharding serialization points, for the scale
    /// bench baseline. Default: 8.
    pub shards: usize,
}

/// Per-protocol listening ports; `None` disables the protocol.
#[derive(Debug, Clone, Copy)]
pub struct Ports {
    /// Chirp control port.
    pub chirp: Option<u16>,
    /// HTTP port.
    pub http: Option<u16>,
    /// FTP control port.
    pub ftp: Option<u16>,
    /// GridFTP control port.
    pub gridftp: Option<u16>,
    /// NFS RPC port (UDP and TCP).
    pub nfs: Option<u16>,
    /// IBP depot port (None by default: it is the paper's announced
    /// extension, opt-in via [`NestConfigBuilder::ibp`]).
    pub ibp: Option<u16>,
}

impl Ports {
    fn all(&self) -> [Option<u16>; 6] {
        [
            self.chirp,
            self.http,
            self.ftp,
            self.gridftp,
            self.nfs,
            self.ibp,
        ]
    }
}

impl Default for Ports {
    fn default() -> Self {
        // Ephemeral everywhere: ideal for tests and co-located instances.
        Self {
            chirp: Some(0),
            http: Some(0),
            ftp: Some(0),
            gridftp: Some(0),
            nfs: Some(0),
            ibp: None,
        }
    }
}

impl Default for NestConfig {
    fn default() -> Self {
        Self {
            name: "nest".into(),
            backend: BackendKind::Memory,
            capacity: 1 << 30,
            enforce_lots: true,
            reclaim: nest_storage::ReclaimPolicy::ExpiredFirst,
            sched: SchedPolicy::Fcfs,
            sched_class: SchedClass::Protocol,
            model: ModelSelection::Adaptive(vec![
                ModelKind::Threads,
                ModelKind::Processes,
                ModelKind::Events,
            ]),
            gsi: None,
            ports: Ports::default(),
            cache_bytes: 256 << 20,
            ram_tier_bytes: 0,
            handle_cache_capacity: None,
            obs: None,
            retry: RetryPolicy::standard(),
            transfer_deadline: None,
            max_conns: 256,
            max_conns_per_protocol: 64,
            accept_queue_depth: 0,
            idle_timeout: None,
            extra_fronts: Vec::new(),
            shards: 8,
        }
    }
}

impl NestConfig {
    /// Starts a builder for a named appliance.
    pub fn builder(name: impl Into<String>) -> NestConfigBuilder {
        NestConfigBuilder {
            config: Self {
                name: name.into(),
                ..Self::default()
            },
            capacity_set: false,
        }
    }

    /// A named in-memory appliance with all protocols on ephemeral ports —
    /// the configuration tests and examples use.
    pub fn ephemeral(name: &str) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    /// Checks the configuration's internal consistency. `build()` calls
    /// this; code that assembles a `NestConfig` field by field (e.g. from
    /// command-line flags) should call it before starting an appliance.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.name.is_empty() {
            return Err(ConfigError::EmptyName);
        }
        if self.enforce_lots && self.capacity == 0 {
            return Err(ConfigError::NoCapacity);
        }
        // Fixed (nonzero) ports must be unique; ephemeral (0) and disabled
        // ports cannot clash.
        let mut fixed: Vec<u16> = self
            .ports
            .all()
            .iter()
            .filter_map(|p| p.filter(|&p| p != 0))
            .chain(self.extra_fronts.iter().map(|f| f.port).filter(|&p| p != 0))
            .collect();
        fixed.sort_unstable();
        for pair in fixed.windows(2) {
            if pair[0] == pair[1] {
                return Err(ConfigError::DuplicatePort(pair[0]));
            }
        }
        if self.max_conns > 0 && self.max_conns_per_protocol == 0 {
            return Err(ConfigError::ZeroPerProtocolCap);
        }
        Ok(())
    }
}

/// Builder for [`NestConfig`]; see the module docs for what
/// [`NestConfigBuilder::build`] rejects.
pub struct NestConfigBuilder {
    config: NestConfig,
    /// Whether the caller set capacity explicitly (an explicit guarantee
    /// combined with `lots(false)` is contradictory and rejected).
    capacity_set: bool,
}

impl NestConfigBuilder {
    /// Physical storage backing the appliance.
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.config.backend = backend;
        self
    }

    /// Total bytes under lot management (the guaranteed-storage pool).
    pub fn capacity(mut self, bytes: u64) -> Self {
        self.config.capacity = bytes;
        self.capacity_set = true;
        self
    }

    /// Enables or disables lot enforcement.
    pub fn lots(mut self, enforce: bool) -> Self {
        self.config.enforce_lots = enforce;
        self
    }

    /// Best-effort lot reclamation policy.
    pub fn reclaim(mut self, policy: nest_storage::ReclaimPolicy) -> Self {
        self.config.reclaim = policy;
        self
    }

    /// Transfer scheduling policy.
    pub fn sched(mut self, sched: SchedPolicy) -> Self {
        self.config.sched = sched;
        self
    }

    /// What transfers are classed on (protocol or user).
    pub fn sched_class(mut self, class: SchedClass) -> Self {
        self.config.sched_class = class;
        self
    }

    /// Concurrency-model selection.
    pub fn model(mut self, model: ModelSelection) -> Self {
        self.config.model = model;
        self
    }

    /// Uses one fixed concurrency model instead of adaptation.
    pub fn fixed_model(self, model: ModelKind) -> Self {
        self.model(ModelSelection::Fixed(model))
    }

    /// Attaches a simulated GSI authenticator built from a CA and mapfile.
    pub fn gsi(mut self, ca: SimCa, gridmap: GridMap) -> Self {
        self.config.gsi = Some(GsiAuthenticator::new(ca, gridmap));
        self
    }

    /// Replaces the whole port table.
    pub fn ports(mut self, ports: Ports) -> Self {
        self.config.ports = ports;
        self
    }

    /// Enables (ephemeral port) or disables the IBP depot listener.
    pub fn ibp(mut self, enabled: bool) -> Self {
        self.config.ports.ibp = if enabled { Some(0) } else { None };
        self
    }

    /// Adds a plugin protocol front on its own choice of port (the
    /// front's `default_port`, or ephemeral). The factory runs at server
    /// start, once the dispatcher exists.
    pub fn front<F>(self, factory: F) -> Self
    where
        F: FnOnce(&Arc<Dispatcher>) -> Arc<dyn ProtocolFront> + Send + 'static,
    {
        self.front_on(0, factory)
    }

    /// Adds a plugin protocol front on an explicit port (0 = ephemeral).
    pub fn front_on<F>(mut self, port: u16, factory: F) -> Self
    where
        F: FnOnce(&Arc<Dispatcher>) -> Arc<dyn ProtocolFront> + Send + 'static,
    {
        self.config.extra_fronts.push(ExtraFront {
            port,
            factory: Box::new(factory),
        });
        self
    }

    /// Size of the modelled kernel buffer cache.
    pub fn cache_bytes(mut self, bytes: u64) -> Self {
        self.config.cache_bytes = bytes;
        self
    }

    /// Byte budget for the in-memory storage tier (`0` disables it; see
    /// [`NestConfig::ram_tier_bytes`]).
    pub fn ram_tier_bytes(mut self, bytes: u64) -> Self {
        self.config.ram_tier_bytes = bytes;
        self
    }

    /// FD handle-cache capacity override for the disk backend (see
    /// [`NestConfig::handle_cache_capacity`]).
    pub fn handle_cache_capacity(mut self, capacity: usize) -> Self {
        self.config.handle_cache_capacity = Some(capacity);
        self
    }

    /// Shares an observability registry with the appliance, so callers can
    /// read its instruments (and register trace sinks) from outside.
    pub fn obs(mut self, obs: Arc<Obs>) -> Self {
        self.config.obs = Some(obs);
        self
    }

    /// Retry policy for transient transfer failures
    /// ([`RetryPolicy::none`] disables retries).
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.config.retry = policy;
        self
    }

    /// Per-transfer wall-clock deadline (`None` disables deadlines).
    pub fn transfer_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.config.transfer_deadline = deadline;
        self
    }

    /// Global cap on simultaneously admitted connections. `0` selects the
    /// per-connection-thread ablation baseline (unbounded spawn).
    pub fn max_conns(mut self, cap: usize) -> Self {
        self.config.max_conns = cap;
        self
    }

    /// Per-protocol worker-pool size (connections served concurrently).
    pub fn max_conns_per_protocol(mut self, cap: usize) -> Self {
        self.config.max_conns_per_protocol = cap;
        self
    }

    /// Admission queue depth per protocol before overload rejection.
    pub fn accept_queue_depth(mut self, depth: usize) -> Self {
        self.config.accept_queue_depth = depth;
        self
    }

    /// Per-connection idle deadline (`None` keeps idle connections).
    pub fn idle_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.config.idle_timeout = timeout;
        self
    }

    /// Stripe count for the appliance's sharded tables (`1` = the
    /// single-mutex ablation; see [`NestConfig::shards`]). Clamped to at
    /// least 1.
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards.max(1);
        self
    }

    /// Validates and produces the configuration.
    pub fn build(self) -> Result<NestConfig, ConfigError> {
        if self.capacity_set && !self.config.enforce_lots {
            return Err(ConfigError::CapacityWithoutLots);
        }
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_validated_config() {
        let obs = Obs::new();
        let config = NestConfig::builder("turkey")
            .capacity(1 << 20)
            .fixed_model(ModelKind::Events)
            .sched_class(SchedClass::User)
            .ibp(true)
            .obs(Arc::clone(&obs))
            .build()
            .unwrap();
        assert_eq!(config.name, "turkey");
        assert_eq!(config.capacity, 1 << 20);
        assert_eq!(config.sched_class, SchedClass::User);
        assert_eq!(config.ports.ibp, Some(0));
        assert!(config.obs.is_some());
        config.validate().unwrap();
    }

    #[test]
    fn builder_rejects_empty_name() {
        assert_eq!(
            NestConfig::builder("").build().err().unwrap(),
            ConfigError::EmptyName
        );
    }

    #[test]
    fn builder_rejects_quota_without_capacity() {
        assert_eq!(
            NestConfig::builder("n").capacity(0).build().err().unwrap(),
            ConfigError::NoCapacity
        );
    }

    #[test]
    fn builder_rejects_capacity_with_lots_disabled() {
        assert_eq!(
            NestConfig::builder("n")
                .capacity(1 << 20)
                .lots(false)
                .build()
                .err()
                .unwrap(),
            ConfigError::CapacityWithoutLots
        );
        // Disabling lots without promising capacity is fine.
        assert!(NestConfig::builder("n").lots(false).build().is_ok());
    }

    #[test]
    fn builder_carries_session_limits() {
        let config = NestConfig::builder("caps")
            .max_conns(32)
            .max_conns_per_protocol(4)
            .accept_queue_depth(2)
            .idle_timeout(Some(Duration::from_millis(250)))
            .build()
            .unwrap();
        assert_eq!(config.max_conns, 32);
        assert_eq!(config.max_conns_per_protocol, 4);
        assert_eq!(config.accept_queue_depth, 2);
        assert_eq!(config.idle_timeout, Some(Duration::from_millis(250)));
        // The ablation switch (max_conns == 0) is a valid configuration.
        assert!(NestConfig::builder("abl").max_conns(0).build().is_ok());
    }

    #[test]
    fn builder_carries_ram_tier_budget() {
        let config = NestConfig::builder("tiered")
            .ram_tier_bytes(64 << 20)
            .build()
            .unwrap();
        assert_eq!(config.ram_tier_bytes, 64 << 20);
        // Default is off: the ablation baseline needs no explicit opt-out.
        assert_eq!(
            NestConfig::builder("flat").build().unwrap().ram_tier_bytes,
            0
        );
    }

    #[test]
    fn builder_rejects_zero_per_protocol_cap() {
        assert_eq!(
            NestConfig::builder("n")
                .max_conns(8)
                .max_conns_per_protocol(0)
                .build()
                .err()
                .unwrap(),
            ConfigError::ZeroPerProtocolCap
        );
    }

    #[test]
    fn builder_rejects_port_clashes() {
        let ports = Ports {
            chirp: Some(9094),
            http: Some(9094),
            ..Ports::default()
        };
        assert_eq!(
            NestConfig::builder("n").ports(ports).build().err().unwrap(),
            ConfigError::DuplicatePort(9094)
        );
        // Ephemeral ports (0) never clash.
        assert!(NestConfig::builder("n")
            .ports(Ports::default())
            .build()
            .is_ok());
    }
}
