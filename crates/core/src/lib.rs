//! # nest-core
//!
//! The NeST appliance itself (paper §2): the **dispatcher** that routes
//! macro-requests, the protocol **handlers** that speak Chirp, HTTP, FTP,
//! GridFTP and NFS over real sockets, and the **server** that binds them
//! all into one user-level process — "an open-source, user-level,
//! software-only storage appliance."
//!
//! * [`config`] — appliance configuration (storage, scheduling, models,
//!   authentication, ports).
//! * [`dispatcher`] — "the main scheduler and macro-request router in the
//!   system": synchronous storage-manager execution, asynchronous transfer
//!   hand-off, ClassAd publication, third-party transfer orchestration.
//! * [`handlers`] — one handler per protocol, each translating its wire
//!   format to the common request interface and back.
//! * [`front`] — the protocol front API: the [`front::ProtocolFront`]
//!   trait every wire protocol implements and the
//!   [`front::FrontRegistry`] that owns listener binding, session-layer
//!   registration, and metric wiring. New protocols (in any crate) plug
//!   in here.
//! * [`fronts`] — the six built-in [`front::ProtocolFront`]
//!   implementations, thin adapters over [`handlers`].
//! * [`server`] — [`server::NestServer`]: binds every protocol's listener
//!   (one process, many ports), spawns accept loops, and exposes the bound
//!   addresses for clients.
//! * [`fhtable`] — the NFS file-handle table (handle ↔ virtual path, with
//!   generation tags so deleted files yield `NFSERR_STALE`).
//! * [`procpool`] — the real child-process launcher behind the process
//!   concurrency model: flow bytes are piped through a worker process.
//! * [`session`] — the shared connection-lifecycle subsystem: one poller
//!   thread multiplexing every listening socket, bounded per-protocol
//!   worker pools with admission control, idle reaping, and graceful
//!   drain. Every front-end (and every jbos standalone server) accepts
//!   through it.

pub mod config;
pub mod dispatcher;
pub mod fhtable;
pub mod front;
pub mod fronts;
pub mod handlers;
pub mod procpool;
pub mod server;
pub mod session;

pub use config::NestConfig;
pub use dispatcher::Dispatcher;
pub use front::{FrontRegistry, ProtocolFront};
pub use server::NestServer;
