//! The real process-model launcher (paper §4.1).
//!
//! Rust's standard library cannot pass sockets between processes (no
//! `SCM_RIGHTS`), so the process model stages each transfer's bytes
//! *through* a child worker process: a pump thread feeds the flow's source
//! into the child's stdin while the parent drains the child's stdout into
//! the flow's sink. The data genuinely crosses a process boundary, so the
//! model pays real process-dispatch and pipe-copy costs — the properties
//! the adaptive selector measures. (See the substitution table in
//! `DESIGN.md`.)
//!
//! The worker is any stdin→stdout copier; we use the system `cat`, with a
//! thread-based fallback when spawning fails (e.g. a stripped container).

use nest_transfer::concurrency::{run_flow, Completion, ModelKind, ProcessLauncher};
use nest_transfer::fault::{cancelled_error, classify, deadline_error, ErrorClass, FailureKind};
use nest_transfer::flow::Flow;
use std::io::{Read, Write};
use std::process::{Command, Stdio};
use std::time::Instant;

/// Launches flows through child worker processes.
#[derive(Debug, Default)]
pub struct SubprocessLauncher {
    _private: (),
}

impl SubprocessLauncher {
    /// Creates a launcher.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Outcome of one staged attempt through a child worker.
enum StageOutcome {
    /// No worker binary could be spawned; the flow is handed back for
    /// in-process execution.
    NoWorker(Flow),
    /// The attempt ran; the flow survives, with its result.
    Done(Flow, std::io::Result<u64>),
    /// The feeder thread panicked and took the flow with it.
    Lost(std::io::Error),
}

/// Runs one attempt: source → child stdin, child stdout → sink.
///
/// Unlike the original implementation, the feeder thread hands the flow
/// back even on error, so the caller can retry a transient failure or
/// abort the sink on a terminal one (partial-output cleanup).
fn stage_through_child(mut flow: Flow) -> StageOutcome {
    let child = Command::new("cat")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn();
    let mut child = match child {
        Ok(c) => c,
        Err(_) => return StageOutcome::NoWorker(flow),
    };
    let mut stdin = child.stdin.take().expect("piped stdin");
    let mut stdout = child.stdout.take().expect("piped stdout");

    // Pump thread: source → child stdin; returns the flow with its result.
    let feeder = std::thread::spawn(move || -> (Flow, std::io::Result<u64>) {
        let mut buf = vec![0u8; 64 * 1024];
        let mut total_in = 0u64;
        let result = loop {
            match flow.source_read(&mut buf) {
                Ok(0) => break Ok(total_in),
                Ok(n) => {
                    if let Err(e) = stdin.write_all(&buf[..n]) {
                        break Err(e);
                    }
                    total_in += n as u64;
                }
                Err(e) => break Err(e),
            }
        };
        drop(stdin); // EOF to the child
        (flow, result)
    });
    // Drain child stdout into a buffer on this thread.
    let mut staged = Vec::new();
    let drain = stdout.read_to_end(&mut staged);
    let feed = feeder.join();
    let _ = child.wait();

    let (mut flow, feed_result) = match feed {
        Ok(pair) => pair,
        Err(_) => return StageOutcome::Lost(std::io::Error::other("feeder thread panicked")),
    };
    let result = match (feed_result, drain) {
        (Err(e), _) => Err(e),
        (_, Err(e)) => Err(e),
        (Ok(total_in), Ok(_)) => {
            // Deliver the staged bytes to the sink in chunks.
            let mut delivered = Ok(());
            for chunk in staged.chunks(64 * 1024) {
                if let Err(e) = flow.sink_write(chunk) {
                    delivered = Err(e);
                    break;
                }
            }
            debug_assert_eq!(total_in, staged.len() as u64);
            delivered
                .and_then(|_| flow.sink_finish())
                .map(|_| staged.len() as u64)
        }
    };
    StageOutcome::Done(flow, result)
}

impl ProcessLauncher for SubprocessLauncher {
    fn launch(&self, flow: Flow, on_done: Box<dyn FnOnce(Completion) + Send>) {
        std::thread::spawn(move || {
            let start = Instant::now();
            let deadline = flow.meta.deadline.map(|d| start + d);
            let policy = flow.meta.retry.clone();
            let mut retries = 0u32;
            let mut flow = flow;
            let fail = |mut flow: Flow, e: std::io::Error, retries, kind| {
                flow.abort();
                Completion {
                    bytes: flow.moved(),
                    meta: flow.meta.clone(),
                    elapsed: start.elapsed(),
                    model: ModelKind::Processes,
                    result: Err(e),
                    retries,
                    aborted: true,
                    failure: Some(kind),
                    // The staged child-process path copies through pipes;
                    // it never engages the zero-copy fast path.
                    zc_engaged: false,
                    zc_fell_back: false,
                }
            };
            loop {
                // Honor cancellation and the deadline between attempts.
                if flow.meta.is_cancelled() {
                    on_done(fail(
                        flow,
                        cancelled_error(),
                        retries,
                        FailureKind::Cancelled,
                    ));
                    return;
                }
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    on_done(fail(
                        flow,
                        deadline_error(),
                        retries,
                        FailureKind::DeadlineExceeded,
                    ));
                    return;
                }
                match stage_through_child(flow) {
                    StageOutcome::NoWorker(f) => {
                        // No worker binary available: degrade to in-process
                        // execution (run_flow applies the same retry /
                        // cancel / deadline / abort semantics itself).
                        let mut c = run_flow(f, ModelKind::Processes, start);
                        c.retries += retries;
                        on_done(c);
                        return;
                    }
                    StageOutcome::Done(f, Ok(bytes)) => {
                        on_done(Completion {
                            bytes,
                            meta: f.meta.clone(),
                            elapsed: start.elapsed(),
                            model: ModelKind::Processes,
                            result: Ok(()),
                            retries,
                            aborted: false,
                            failure: None,
                            zc_engaged: false,
                            zc_fell_back: false,
                        });
                        return;
                    }
                    StageOutcome::Done(mut f, Err(e)) => {
                        let backoff = policy.backoff(retries + 1);
                        let within_deadline = deadline.is_none_or(|d| Instant::now() + backoff < d);
                        if classify(e.kind()) == ErrorClass::Transient
                            && policy.allows_retry(retries)
                            && within_deadline
                            && f.reset_for_retry().is_ok()
                        {
                            retries += 1;
                            if !backoff.is_zero() {
                                std::thread::sleep(backoff);
                            }
                            flow = f;
                            continue;
                        }
                        on_done(fail(f, e, retries, FailureKind::Io));
                        return;
                    }
                    StageOutcome::Lost(e) => {
                        // We lost the flow inside the feeder; report the
                        // error with whatever metadata we can reconstruct.
                        on_done(Completion::from_result(
                            nest_transfer::flow::FlowMeta::new(
                                nest_transfer::flow::FlowId(0),
                                "unknown",
                                None,
                            ),
                            0,
                            start.elapsed(),
                            ModelKind::Processes,
                            Err(e),
                        ));
                        return;
                    }
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nest_transfer::flow::{FlowId, FlowMeta, PatternSource};
    use std::sync::mpsc;

    #[test]
    fn data_traverses_worker_process() {
        let launcher = SubprocessLauncher::new();
        let flow = Flow::new(
            FlowMeta::new(FlowId(1), "test", Some(200_000)),
            Box::new(PatternSource::new(200_000)),
            Box::new(Vec::new()),
            8192,
        );
        let (tx, rx) = mpsc::channel();
        launcher.launch(flow, Box::new(move |c| tx.send(c).unwrap()));
        let c = rx.recv().unwrap();
        assert_eq!(c.model, ModelKind::Processes);
        assert!(c.result.is_ok(), "{:?}", c.result);
        assert_eq!(c.bytes, 200_000);
    }

    #[test]
    fn empty_flow_through_process() {
        let launcher = SubprocessLauncher::new();
        let flow = Flow::new(
            FlowMeta::new(FlowId(2), "test", Some(0)),
            Box::new(PatternSource::new(0)),
            Box::new(Vec::new()),
            8192,
        );
        let (tx, rx) = mpsc::channel();
        launcher.launch(flow, Box::new(move |c| tx.send(c).unwrap()));
        let c = rx.recv().unwrap();
        assert!(c.result.is_ok());
        assert_eq!(c.bytes, 0);
    }
}
