//! The real process-model launcher (paper §4.1).
//!
//! Rust's standard library cannot pass sockets between processes (no
//! `SCM_RIGHTS`), so the process model stages each transfer's bytes
//! *through* a child worker process: a pump thread feeds the flow's source
//! into the child's stdin while the parent drains the child's stdout into
//! the flow's sink. The data genuinely crosses a process boundary, so the
//! model pays real process-dispatch and pipe-copy costs — the properties
//! the adaptive selector measures. (See the substitution table in
//! `DESIGN.md`.)
//!
//! The worker is any stdin→stdout copier; we use the system `cat`, with a
//! thread-based fallback when spawning fails (e.g. a stripped container).

use nest_transfer::concurrency::{run_flow, Completion, ModelKind, ProcessLauncher};
use nest_transfer::flow::Flow;
use std::io::{Read, Write};
use std::process::{Command, Stdio};
use std::time::Instant;

/// Launches flows through child worker processes.
#[derive(Debug, Default)]
pub struct SubprocessLauncher {
    _private: (),
}

impl SubprocessLauncher {
    /// Creates a launcher.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ProcessLauncher for SubprocessLauncher {
    fn launch(&self, mut flow: Flow, on_done: Box<dyn FnOnce(Completion) + Send>) {
        std::thread::spawn(move || {
            let start = Instant::now();
            let child = Command::new("cat")
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .stderr(Stdio::null())
                .spawn();
            let mut child = match child {
                Ok(c) => c,
                Err(_) => {
                    // No worker binary available: degrade to in-process
                    // execution so the transfer still completes.
                    let completion = run_flow(flow, ModelKind::Processes, start);
                    on_done(completion);
                    return;
                }
            };
            let mut stdin = child.stdin.take().expect("piped stdin");
            let mut stdout = child.stdout.take().expect("piped stdout");

            // Pump thread: source → child stdin. We split the flow by
            // stealing its step loop: read chunks from the source here and
            // write the child's output into the sink below.
            let (feed_result, drain_result) = {
                // The Flow owns both ends; temporarily drive them manually.
                let mut total_in = 0u64;
                let feeder = std::thread::spawn(move || -> std::io::Result<(Flow, u64)> {
                    let mut buf = vec![0u8; 64 * 1024];
                    loop {
                        let n = flow.source_read(&mut buf)?;
                        if n == 0 {
                            break;
                        }
                        stdin.write_all(&buf[..n])?;
                        total_in += n as u64;
                    }
                    drop(stdin); // EOF to the child
                    Ok((flow, total_in))
                });
                // Drain child stdout into a buffer on this thread.
                let mut staged = Vec::new();
                let drain = stdout.read_to_end(&mut staged);
                (feeder.join(), drain.map(|_| staged))
            };
            let _ = child.wait();

            match (feed_result, drain_result) {
                (Ok(Ok((mut flow, total_in))), Ok(staged)) => {
                    // Deliver the staged bytes to the sink in chunks.
                    let result = (|| -> std::io::Result<()> {
                        for chunk in staged.chunks(64 * 1024) {
                            flow.sink_write(chunk)?;
                        }
                        flow.sink_finish()
                    })();
                    debug_assert_eq!(total_in, staged.len() as u64);
                    on_done(Completion {
                        bytes: staged.len() as u64,
                        meta: flow.meta.clone(),
                        elapsed: start.elapsed(),
                        model: ModelKind::Processes,
                        result,
                    });
                }
                (Ok(Ok((flow, _))), Err(e)) => {
                    on_done(Completion {
                        bytes: 0,
                        meta: flow.meta.clone(),
                        elapsed: start.elapsed(),
                        model: ModelKind::Processes,
                        result: Err(e),
                    });
                }
                (Ok(Err(e)), _) | (Err(_), Err(e)) => {
                    // We lost the flow inside the feeder; report the error
                    // with whatever metadata we can reconstruct.
                    on_done(Completion {
                        bytes: 0,
                        meta: nest_transfer::flow::FlowMeta::new(
                            nest_transfer::flow::FlowId(0),
                            "unknown",
                            None,
                        ),
                        elapsed: start.elapsed(),
                        model: ModelKind::Processes,
                        result: Err(e),
                    });
                }
                (Err(_), Ok(_)) => {
                    on_done(Completion {
                        bytes: 0,
                        meta: nest_transfer::flow::FlowMeta::new(
                            nest_transfer::flow::FlowId(0),
                            "unknown",
                            None,
                        ),
                        elapsed: start.elapsed(),
                        model: ModelKind::Processes,
                        result: Err(std::io::Error::other("feeder thread panicked")),
                    });
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nest_transfer::flow::{FlowId, FlowMeta, PatternSource};
    use std::sync::mpsc;

    #[test]
    fn data_traverses_worker_process() {
        let launcher = SubprocessLauncher::new();
        let flow = Flow::new(
            FlowMeta::new(FlowId(1), "test", Some(200_000)),
            Box::new(PatternSource::new(200_000)),
            Box::new(Vec::new()),
            8192,
        );
        let (tx, rx) = mpsc::channel();
        launcher.launch(flow, Box::new(move |c| tx.send(c).unwrap()));
        let c = rx.recv().unwrap();
        assert_eq!(c.model, ModelKind::Processes);
        assert!(c.result.is_ok(), "{:?}", c.result);
        assert_eq!(c.bytes, 200_000);
    }

    #[test]
    fn empty_flow_through_process() {
        let launcher = SubprocessLauncher::new();
        let flow = Flow::new(
            FlowMeta::new(FlowId(2), "test", Some(0)),
            Box::new(PatternSource::new(0)),
            Box::new(Vec::new()),
            8192,
        );
        let (tx, rx) = mpsc::channel();
        launcher.launch(flow, Box::new(move |c| tx.send(c).unwrap()));
        let c = rx.recv().unwrap();
        assert!(c.result.is_ok());
        assert_eq!(c.bytes, 0);
    }
}
