//! The six built-in protocol fronts, as [`ProtocolFront`] implementations.
//!
//! Each is a thin adapter: construction captures the front's dependencies
//! (dispatcher, IBP depot, NFS RPC server), `serve_conn` delegates to the
//! unchanged per-connection handler in [`crate::handlers`], and
//! `render_error` exposes the dialect's `NestError` mapping. The wire
//! behavior is byte-identical to the pre-registry appliance — the trait
//! only names what was already true.

use crate::dispatcher::Dispatcher;
use crate::front::ProtocolFront;
use crate::handlers;
use crate::handlers::ibp::IbpDepot;
use crate::session::{OverloadReply, SessionCtx};
use nest_proto::chirp::status_line;
use nest_proto::http::{render_response_head, status_for_error, HttpResponseHead};
use nest_proto::request::{ports, NestError, NestResponse};
use nest_sunrpc::server::RpcServer;
use std::io;
use std::net::TcpStream;
use std::sync::Arc;

/// Chirp — the NeST-native control protocol.
pub struct ChirpFront {
    dispatcher: Arc<Dispatcher>,
}

impl ChirpFront {
    /// A Chirp front over the appliance's dispatcher.
    pub fn new(dispatcher: Arc<Dispatcher>) -> Self {
        Self { dispatcher }
    }
}

impl ProtocolFront for ChirpFront {
    fn name(&self) -> &'static str {
        "chirp"
    }
    fn default_port(&self) -> Option<u16> {
        Some(ports::CHIRP)
    }
    fn overload_reply(&self) -> OverloadReply {
        OverloadReply::ChirpBusy
    }
    fn serve_conn(&self, stream: TcpStream, ctx: &SessionCtx) -> io::Result<()> {
        handlers::chirp::handle_conn(&self.dispatcher, stream, ctx)
    }
    fn render_error(&self, e: NestError) -> Vec<u8> {
        format!("{}\r\n", status_line(&NestResponse::Error(e))).into_bytes()
    }
}

/// HTTP/1.1 (GET/PUT/HEAD/DELETE plus the `/nest/stats` endpoint).
pub struct HttpFront {
    dispatcher: Arc<Dispatcher>,
}

impl HttpFront {
    /// An HTTP front over the appliance's dispatcher.
    pub fn new(dispatcher: Arc<Dispatcher>) -> Self {
        Self { dispatcher }
    }
}

impl ProtocolFront for HttpFront {
    fn name(&self) -> &'static str {
        "http"
    }
    fn default_port(&self) -> Option<u16> {
        Some(ports::HTTP)
    }
    fn overload_reply(&self) -> OverloadReply {
        OverloadReply::Http503
    }
    fn serve_conn(&self, stream: TcpStream, ctx: &SessionCtx) -> io::Result<()> {
        handlers::http::handle_conn(&self.dispatcher, stream, ctx)
    }
    fn render_error(&self, e: NestError) -> Vec<u8> {
        let (code, reason) = status_for_error(e);
        render_response_head(&HttpResponseHead::with_length(code, reason, 0)).into_bytes()
    }
}

/// FTP (RFC 959 subset) and, with `gridftp`, the GridFTP extensions
/// (MODE E parallel streams, SPAS/SPOR, ESTO/ERET).
pub struct FtpFront {
    dispatcher: Arc<Dispatcher>,
    gridftp: bool,
}

impl FtpFront {
    /// A plain-FTP front.
    pub fn new(dispatcher: Arc<Dispatcher>) -> Self {
        Self {
            dispatcher,
            gridftp: false,
        }
    }

    /// A GridFTP front (same handler, extensions enabled).
    pub fn gridftp(dispatcher: Arc<Dispatcher>) -> Self {
        Self {
            dispatcher,
            gridftp: true,
        }
    }
}

impl ProtocolFront for FtpFront {
    fn name(&self) -> &'static str {
        if self.gridftp {
            "gridftp"
        } else {
            "ftp"
        }
    }
    fn default_port(&self) -> Option<u16> {
        Some(if self.gridftp {
            ports::GRIDFTP
        } else {
            ports::FTP
        })
    }
    fn overload_reply(&self) -> OverloadReply {
        OverloadReply::Ftp421
    }
    fn serve_conn(&self, stream: TcpStream, ctx: &SessionCtx) -> io::Result<()> {
        handlers::ftp::handle_conn(&self.dispatcher, stream, self.gridftp, ctx)
    }
    fn render_error(&self, e: NestError) -> Vec<u8> {
        // Mirrors the handler's reply table (RFC 959 reply codes).
        let (code, text) = match e {
            NestError::Denied => (550, "Permission denied"),
            NestError::NotFound => (550, "No such file or directory"),
            NestError::Exists => (553, "Already exists"),
            NestError::NoSpace => (452, "Insufficient storage space"),
            NestError::BadRequest => (501, "Syntax error in parameters"),
            NestError::Invalid => (550, "Requested action not taken"),
            NestError::Internal => (451, "Local error in processing"),
        };
        format!("{code} {text}\r\n").into_bytes()
    }
}

/// NFSv2 over TCP record streams (the same RPC programs the UDP server
/// answers, accepted through the session layer).
pub struct NfsTcpFront {
    rpc: Arc<RpcServer>,
}

impl NfsTcpFront {
    /// An NFS-TCP front over a running RPC server.
    pub fn new(rpc: Arc<RpcServer>) -> Self {
        Self { rpc }
    }
}

impl ProtocolFront for NfsTcpFront {
    fn name(&self) -> &'static str {
        "nfs"
    }
    fn default_port(&self) -> Option<u16> {
        Some(ports::NFS)
    }
    fn overload_reply(&self) -> OverloadReply {
        // NFS clients retry silently; EOF is the correct overload signal.
        OverloadReply::Drop
    }
    fn serve_conn(&self, stream: TcpStream, ctx: &SessionCtx) -> io::Result<()> {
        let peer = stream.peer_addr()?;
        self.rpc
            .serve_tcp_conn_until(stream, peer, &|| ctx.draining(), ctx.idle_timeout())
    }
    fn render_error(&self, e: NestError) -> Vec<u8> {
        // NFS errors travel as XDR status words, not a text dialect; the
        // rendered form is the decimal nfsstat.
        format!("{}", handlers::nfs::nfs_stat_for(e) as u32).into_bytes()
    }
}

/// IBP — the Internet Backplane Protocol depot (paper §8's "NeST as one
/// of several storage appliances" positioning).
pub struct IbpFront {
    depot: Arc<IbpDepot>,
}

impl IbpFront {
    /// An IBP front over a depot of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Self {
            depot: Arc::new(IbpDepot::new(capacity)),
        }
    }
}

impl ProtocolFront for IbpFront {
    fn name(&self) -> &'static str {
        "ibp"
    }
    fn default_port(&self) -> Option<u16> {
        None
    }
    fn overload_reply(&self) -> OverloadReply {
        OverloadReply::Drop
    }
    fn serve_conn(&self, stream: TcpStream, ctx: &SessionCtx) -> io::Result<()> {
        handlers::ibp::handle_conn(&self.depot, stream, ctx)
    }
    fn render_error(&self, e: NestError) -> Vec<u8> {
        // IBP's numeric error codes (codec constants in handlers::ibp).
        let code: i32 = match e {
            NestError::Denied | NestError::NotFound => -1, // ERR_NOCAP
            NestError::NoSpace | NestError::Exists => -2,  // ERR_FULL
            NestError::Invalid => -3,                      // ERR_EXPIRED
            NestError::BadRequest | NestError::Internal => -4, // ERR_BADREQ
        };
        format!("{code} {e}\r\n").into_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NestConfig;

    fn dispatcher() -> Arc<Dispatcher> {
        Arc::new(Dispatcher::new(&NestConfig::ephemeral("fronts-test")).unwrap())
    }

    #[test]
    fn built_in_fronts_declare_their_dialects() {
        let d = dispatcher();
        let chirp = ChirpFront::new(Arc::clone(&d));
        assert_eq!(chirp.name(), "chirp");
        assert_eq!(chirp.default_port(), Some(ports::CHIRP));
        assert_eq!(chirp.overload_reply(), OverloadReply::ChirpBusy);
        assert!(chirp.render_error(NestError::Denied).starts_with(b"-"));

        let http = HttpFront::new(Arc::clone(&d));
        assert_eq!(http.overload_reply(), OverloadReply::Http503);
        assert!(http
            .render_error(NestError::NotFound)
            .starts_with(b"HTTP/1.1 404"));

        let ftp = FtpFront::new(Arc::clone(&d));
        let gftp = FtpFront::gridftp(d);
        assert_eq!((ftp.name(), gftp.name()), ("ftp", "gridftp"));
        assert_eq!(ftp.default_port(), Some(ports::FTP));
        assert_eq!(gftp.default_port(), Some(ports::GRIDFTP));
        assert!(ftp.render_error(NestError::NoSpace).starts_with(b"452 "));

        let ibp = IbpFront::new(1 << 20);
        assert_eq!(ibp.overload_reply(), OverloadReply::Drop);
        assert!(ibp.render_error(NestError::NoSpace).starts_with(b"-2 "));
    }
}
