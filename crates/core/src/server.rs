//! The NeST server: one user-level process, one listener per protocol —
//! all accepted through the shared [`crate::session`] layer (one poller
//! thread, bounded per-protocol worker pools, admission control, idle
//! reaping, graceful drain).

use crate::config::NestConfig;
use crate::dispatcher::Dispatcher;
use crate::fhtable::FhTable;
use crate::handlers;
use crate::handlers::ibp::IbpDepot;
use crate::handlers::nfs::{MountHandler, NfsHandler};
use crate::session::{
    OverloadReply, SessionConfig, SessionHandler, SessionLayer, DEFAULT_DRAIN_DEADLINE,
};
use nest_proto::nfs::wire::{MOUNT_PROGRAM, MOUNT_VERSION, NFS_PROGRAM, NFS_VERSION};
use nest_sunrpc::server::{RpcServer, SpawnedRpcServer};
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::time::Duration;

/// A running NeST appliance.
pub struct NestServer {
    dispatcher: Arc<Dispatcher>,
    session: SessionLayer,
    rpc: Option<SpawnedRpcServer>,
    /// Bound Chirp address, if serving.
    pub chirp_addr: Option<SocketAddr>,
    /// Bound HTTP address.
    pub http_addr: Option<SocketAddr>,
    /// Bound FTP control address.
    pub ftp_addr: Option<SocketAddr>,
    /// Bound GridFTP control address.
    pub gridftp_addr: Option<SocketAddr>,
    /// Bound NFS RPC address (UDP).
    pub nfs_addr: Option<SocketAddr>,
    /// Bound NFS-over-TCP address (record streams, same programs).
    pub nfs_tcp_addr: Option<SocketAddr>,
    /// Bound IBP depot address, when enabled.
    pub ibp_addr: Option<SocketAddr>,
}

impl NestServer {
    /// Starts the appliance: builds the dispatcher, binds every enabled
    /// protocol listener, and registers each with the session layer.
    pub fn start(config: NestConfig) -> io::Result<Self> {
        // Reject inconsistent configurations up front (the builder already
        // validates; this covers configs assembled field by field).
        config
            .validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let dispatcher = Arc::new(Dispatcher::new(&config)?);
        let session_cfg = SessionConfig {
            max_conns: config.max_conns,
            max_conns_per_protocol: config.max_conns_per_protocol,
            queue_depth: config.accept_queue_depth,
            idle_timeout: config.idle_timeout,
        };
        let mut session = SessionLayer::new(Arc::clone(dispatcher.obs()), session_cfg);

        let mut chirp_addr = None;
        let mut http_addr = None;
        let mut ftp_addr = None;
        let mut gridftp_addr = None;

        if let Some(port) = config.ports.chirp {
            let listener = TcpListener::bind(("127.0.0.1", port))?;
            let d = Arc::clone(&dispatcher);
            let handler: SessionHandler =
                Arc::new(move |stream, ctx| handlers::chirp::handle_conn(&d, stream, ctx));
            chirp_addr =
                Some(session.register("chirp", listener, OverloadReply::ChirpBusy, handler)?);
        }
        if let Some(port) = config.ports.http {
            let listener = TcpListener::bind(("127.0.0.1", port))?;
            let d = Arc::clone(&dispatcher);
            let handler: SessionHandler =
                Arc::new(move |stream, ctx| handlers::http::handle_conn(&d, stream, ctx));
            http_addr =
                Some(session.register("http", listener, OverloadReply::Http503, handler)?);
        }
        if let Some(port) = config.ports.ftp {
            let listener = TcpListener::bind(("127.0.0.1", port))?;
            let d = Arc::clone(&dispatcher);
            let handler: SessionHandler =
                Arc::new(move |stream, ctx| handlers::ftp::handle_conn(&d, stream, false, ctx));
            ftp_addr = Some(session.register("ftp", listener, OverloadReply::Ftp421, handler)?);
        }
        if let Some(port) = config.ports.gridftp {
            let listener = TcpListener::bind(("127.0.0.1", port))?;
            let d = Arc::clone(&dispatcher);
            let handler: SessionHandler =
                Arc::new(move |stream, ctx| handlers::ftp::handle_conn(&d, stream, true, ctx));
            gridftp_addr =
                Some(session.register("gridftp", listener, OverloadReply::Ftp421, handler)?);
        }

        let mut ibp_addr = None;
        if let Some(port) = config.ports.ibp {
            let listener = TcpListener::bind(("127.0.0.1", port))?;
            let depot = Arc::new(IbpDepot::new(config.capacity));
            let handler: SessionHandler =
                Arc::new(move |stream, ctx| handlers::ibp::handle_conn(&depot, stream, ctx));
            ibp_addr = Some(session.register("ibp", listener, OverloadReply::Drop, handler)?);
        }

        let (rpc, nfs_addr, nfs_tcp_addr) = if config.ports.nfs.is_some() {
            let fhs = Arc::new(FhTable::new());
            let mut rpc_server = RpcServer::new();
            rpc_server.register(
                NFS_PROGRAM,
                NFS_VERSION,
                NfsHandler::new(Arc::clone(&dispatcher), Arc::clone(&fhs)),
            );
            rpc_server.register(MOUNT_PROGRAM, MOUNT_VERSION, MountHandler::new(fhs));
            let spawned = SpawnedRpcServer::spawn(rpc_server)?;
            let udp_addr = spawned.udp_addr;
            // NFS over TCP: record streams through the session layer, so
            // the same caps/idle/drain semantics apply as everywhere else.
            let listener = TcpListener::bind("127.0.0.1:0")?;
            let rpc_arc = Arc::clone(spawned.server());
            let handler: SessionHandler = Arc::new(move |stream, ctx| {
                let peer = stream.peer_addr()?;
                rpc_arc.serve_tcp_conn_until(stream, peer, &|| ctx.draining(), ctx.idle_timeout())
            });
            let tcp_addr = session.register("nfs", listener, OverloadReply::Drop, handler)?;
            (Some(spawned), Some(udp_addr), Some(tcp_addr))
        } else {
            (None, None, None)
        };

        session.start()?;

        Ok(Self {
            dispatcher,
            session,
            rpc,
            chirp_addr,
            http_addr,
            ftp_addr,
            gridftp_addr,
            nfs_addr,
            nfs_tcp_addr,
            ibp_addr,
        })
    }

    /// The appliance's dispatcher (for administration and inspection).
    pub fn dispatcher(&self) -> &Arc<Dispatcher> {
        &self.dispatcher
    }

    /// Administrative helper: grants a default lot to a user without a
    /// Chirp round trip — "when system administrators grant access to a
    /// NeST, they can simultaneously make a set of default lots for users."
    pub fn grant_default_lot(&self, user: &str, capacity: u64, duration: u64) -> io::Result<u64> {
        self.dispatcher
            .storage()
            .admin_grant_lot(
                nest_storage::lot::LotOwner::User(user.to_owned()),
                capacity,
                duration,
            )
            .map(|id| {
                self.dispatcher.persist_lots();
                id.0
            })
            .map_err(|e| io::Error::other(e.to_string()))
    }

    /// Gracefully drains with the default deadline: stops accepting,
    /// lets established connections finish their current request streams,
    /// then closes stragglers and joins every server thread.
    pub fn shutdown(self) {
        self.shutdown_within(DEFAULT_DRAIN_DEADLINE);
    }

    /// Gracefully drains within `deadline`: stops accepting, signals
    /// in-flight handlers through the shared shutdown token they poll
    /// between requests, waits up to the deadline for them to finish,
    /// hard-closes whatever is still on the wire, and joins the worker
    /// pools before returning.
    pub fn shutdown_within(mut self, deadline: Duration) {
        self.session.drain(deadline);
        if let Some(rpc) = self.rpc.take() {
            rpc.shutdown();
        }
    }
}
