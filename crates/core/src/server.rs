//! The NeST server: one user-level process, one listener per protocol —
//! every front registered through the [`crate::front::FrontRegistry`] and
//! accepted through the shared [`crate::session`] layer (one poller
//! thread, bounded per-protocol worker pools, admission control, idle
//! reaping, graceful drain).

use crate::config::NestConfig;
use crate::dispatcher::Dispatcher;
use crate::fhtable::FhTable;
use crate::front::{BoundFront, FrontRegistry, ProtocolFront};
use crate::fronts::{ChirpFront, FtpFront, HttpFront, IbpFront, NfsTcpFront};
use crate::handlers::nfs::{MountHandler, NfsHandler};
use crate::session::{SessionConfig, DEFAULT_DRAIN_DEADLINE};
use nest_proto::nfs::wire::{MOUNT_PROGRAM, MOUNT_VERSION, NFS_PROGRAM, NFS_VERSION};
use nest_sunrpc::server::{RpcServer, SpawnedRpcServer};
use std::io;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

/// A running NeST appliance.
pub struct NestServer {
    dispatcher: Arc<Dispatcher>,
    registry: FrontRegistry,
    rpc: Option<SpawnedRpcServer>,
    /// Bound Chirp address, if serving.
    pub chirp_addr: Option<SocketAddr>,
    /// Bound HTTP address.
    pub http_addr: Option<SocketAddr>,
    /// Bound FTP control address.
    pub ftp_addr: Option<SocketAddr>,
    /// Bound GridFTP control address.
    pub gridftp_addr: Option<SocketAddr>,
    /// Bound NFS RPC address (UDP).
    pub nfs_addr: Option<SocketAddr>,
    /// Bound NFS-over-TCP address (record streams, same programs).
    pub nfs_tcp_addr: Option<SocketAddr>,
    /// Bound IBP depot address, when enabled.
    pub ibp_addr: Option<SocketAddr>,
}

impl NestServer {
    /// Starts the appliance: builds the dispatcher, constructs every
    /// enabled built-in front plus the configured plugin fronts, and
    /// registers each with the front registry.
    pub fn start(mut config: NestConfig) -> io::Result<Self> {
        // Reject inconsistent configurations up front (the builder already
        // validates; this covers configs assembled field by field).
        config
            .validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let extra_fronts = std::mem::take(&mut config.extra_fronts);
        let dispatcher = Arc::new(Dispatcher::new(&config)?);
        let session_cfg = SessionConfig {
            max_conns: config.max_conns,
            max_conns_per_protocol: config.max_conns_per_protocol,
            queue_depth: config.accept_queue_depth,
            idle_timeout: config.idle_timeout,
            shards: config.shards,
        };
        let mut registry = FrontRegistry::new(Arc::clone(dispatcher.obs()), session_cfg);

        let mut chirp_addr = None;
        let mut http_addr = None;
        let mut ftp_addr = None;
        let mut gridftp_addr = None;
        let mut ibp_addr = None;

        if let Some(port) = config.ports.chirp {
            let front = Arc::new(ChirpFront::new(Arc::clone(&dispatcher)));
            chirp_addr = Some(registry.register_on(front, port)?);
        }
        if let Some(port) = config.ports.http {
            let front = Arc::new(HttpFront::new(Arc::clone(&dispatcher)));
            http_addr = Some(registry.register_on(front, port)?);
        }
        if let Some(port) = config.ports.ftp {
            let front = Arc::new(FtpFront::new(Arc::clone(&dispatcher)));
            ftp_addr = Some(registry.register_on(front, port)?);
        }
        if let Some(port) = config.ports.gridftp {
            let front = Arc::new(FtpFront::gridftp(Arc::clone(&dispatcher)));
            gridftp_addr = Some(registry.register_on(front, port)?);
        }
        if let Some(port) = config.ports.ibp {
            let front = Arc::new(IbpFront::new(config.capacity));
            ibp_addr = Some(registry.register_on(front, port)?);
        }

        let (rpc, nfs_addr, nfs_tcp_addr) = if config.ports.nfs.is_some() {
            let fhs = Arc::new(FhTable::with_shards(config.shards.max(1)));
            let mut rpc_server = RpcServer::new();
            rpc_server.register(
                NFS_PROGRAM,
                NFS_VERSION,
                NfsHandler::new(Arc::clone(&dispatcher), Arc::clone(&fhs)),
            );
            rpc_server.register(MOUNT_PROGRAM, MOUNT_VERSION, MountHandler::new(fhs));
            let spawned = SpawnedRpcServer::spawn(rpc_server)?;
            let udp_addr = spawned.udp_addr;
            // NFS over TCP: record streams through the session layer, so
            // the same caps/idle/drain semantics apply as everywhere else.
            // (The UDP side stays outside the registry: it is datagram
            // RPC, not a connection stream.)
            let front = Arc::new(NfsTcpFront::new(Arc::clone(spawned.server())));
            let tcp_addr = registry.register_on(front, 0)?;
            (Some(spawned), Some(udp_addr), Some(tcp_addr))
        } else {
            (None, None, None)
        };

        // Plugin fronts from the configuration, in declaration order.
        for extra in extra_fronts {
            let front = (extra.factory)(&dispatcher);
            registry.register_on(front, extra.port)?;
        }

        registry.start()?;

        Ok(Self {
            dispatcher,
            registry,
            rpc,
            chirp_addr,
            http_addr,
            ftp_addr,
            gridftp_addr,
            nfs_addr,
            nfs_tcp_addr,
            ibp_addr,
        })
    }

    /// The appliance's dispatcher (for administration and inspection).
    pub fn dispatcher(&self) -> &Arc<Dispatcher> {
        &self.dispatcher
    }

    /// Every registered front (name, bound address, and the front itself),
    /// in registration order.
    pub fn fronts(&self) -> &[BoundFront] {
        self.registry.fronts()
    }

    /// A front's bound TCP address, by protocol name (plugin fronts have
    /// no dedicated `*_addr` field).
    pub fn front_addr(&self, name: &str) -> Option<SocketAddr> {
        self.registry.addr(name)
    }

    /// A registered front, by protocol name.
    pub fn front(&self, name: &str) -> Option<&Arc<dyn ProtocolFront>> {
        self.registry
            .fronts()
            .iter()
            .find(|f| f.name == name)
            .map(|f| f.front())
    }

    /// Administrative helper: grants a default lot to a user without a
    /// Chirp round trip — "when system administrators grant access to a
    /// NeST, they can simultaneously make a set of default lots for users."
    pub fn grant_default_lot(&self, user: &str, capacity: u64, duration: u64) -> io::Result<u64> {
        self.dispatcher
            .storage()
            .admin_grant_lot(
                nest_storage::lot::LotOwner::User(user.to_owned()),
                capacity,
                duration,
            )
            .map(|id| {
                self.dispatcher.persist_lots();
                id.0
            })
            .map_err(|e| io::Error::other(e.to_string()))
    }

    /// Gracefully drains with the default deadline: stops accepting,
    /// lets established connections finish their current request streams,
    /// then closes stragglers and joins every server thread.
    pub fn shutdown(self) {
        self.shutdown_within(DEFAULT_DRAIN_DEADLINE);
    }

    /// Gracefully drains within `deadline`: stops accepting, signals
    /// in-flight handlers through the shared shutdown token they poll
    /// between requests, waits up to the deadline for them to finish,
    /// hard-closes whatever is still on the wire, and joins the worker
    /// pools before returning.
    pub fn shutdown_within(mut self, deadline: Duration) {
        self.registry.drain(deadline);
        // With the fronts quiesced, no new writes can race the flush:
        // persist any write-back objects still dirty in the memory tier
        // so opted-in lots lose nothing across a graceful exit.
        self.dispatcher.flush_writeback();
        if let Some(rpc) = self.rpc.take() {
            rpc.shutdown();
        }
    }
}
