//! The NeST server: one user-level process, one listener per protocol.

use crate::config::NestConfig;
use crate::dispatcher::Dispatcher;
use crate::fhtable::FhTable;
use crate::handlers;
use crate::handlers::ibp::IbpDepot;
use crate::handlers::nfs::{MountHandler, NfsHandler};
use nest_proto::nfs::wire::{MOUNT_PROGRAM, MOUNT_VERSION, NFS_PROGRAM, NFS_VERSION};
use nest_sunrpc::server::{RpcServer, SpawnedRpcServer};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running NeST appliance.
pub struct NestServer {
    dispatcher: Arc<Dispatcher>,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    rpc: Option<SpawnedRpcServer>,
    /// Bound Chirp address, if serving.
    pub chirp_addr: Option<SocketAddr>,
    /// Bound HTTP address.
    pub http_addr: Option<SocketAddr>,
    /// Bound FTP control address.
    pub ftp_addr: Option<SocketAddr>,
    /// Bound GridFTP control address.
    pub gridftp_addr: Option<SocketAddr>,
    /// Bound NFS RPC address (UDP; TCP serves the same programs).
    pub nfs_addr: Option<SocketAddr>,
    /// Bound IBP depot address, when enabled.
    pub ibp_addr: Option<SocketAddr>,
}

impl NestServer {
    /// Starts the appliance: builds the dispatcher and binds every enabled
    /// protocol listener.
    pub fn start(config: NestConfig) -> io::Result<Self> {
        // Reject inconsistent configurations up front (the builder already
        // validates; this covers configs assembled field by field).
        config
            .validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let dispatcher = Arc::new(Dispatcher::new(&config)?);
        let stop = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::new();

        let mut chirp_addr = None;
        let mut http_addr = None;
        let mut ftp_addr = None;
        let mut gridftp_addr = None;

        if let Some(port) = config.ports.chirp {
            let listener = TcpListener::bind(("127.0.0.1", port))?;
            chirp_addr = Some(listener.local_addr()?);
            threads.push(spawn_acceptor(
                "nest-chirp",
                listener,
                Arc::clone(&stop),
                Arc::clone(&dispatcher),
                |d, s| {
                    let _ = handlers::chirp::handle_conn(&d, s);
                },
            )?);
        }
        if let Some(port) = config.ports.http {
            let listener = TcpListener::bind(("127.0.0.1", port))?;
            http_addr = Some(listener.local_addr()?);
            threads.push(spawn_acceptor(
                "nest-http",
                listener,
                Arc::clone(&stop),
                Arc::clone(&dispatcher),
                |d, s| {
                    let _ = handlers::http::handle_conn(&d, s);
                },
            )?);
        }
        if let Some(port) = config.ports.ftp {
            let listener = TcpListener::bind(("127.0.0.1", port))?;
            ftp_addr = Some(listener.local_addr()?);
            threads.push(spawn_acceptor(
                "nest-ftp",
                listener,
                Arc::clone(&stop),
                Arc::clone(&dispatcher),
                |d, s| {
                    let _ = handlers::ftp::handle_conn(&d, s, false);
                },
            )?);
        }
        if let Some(port) = config.ports.gridftp {
            let listener = TcpListener::bind(("127.0.0.1", port))?;
            gridftp_addr = Some(listener.local_addr()?);
            threads.push(spawn_acceptor(
                "nest-gridftp",
                listener,
                Arc::clone(&stop),
                Arc::clone(&dispatcher),
                |d, s| {
                    let _ = handlers::ftp::handle_conn(&d, s, true);
                },
            )?);
        }

        let mut ibp_addr = None;
        if let Some(port) = config.ports.ibp {
            let listener = TcpListener::bind(("127.0.0.1", port))?;
            ibp_addr = Some(listener.local_addr()?);
            let depot = Arc::new(IbpDepot::new(config.capacity));
            listener.set_nonblocking(true)?;
            let stop2 = Arc::clone(&stop);
            threads.push(
                std::thread::Builder::new()
                    .name("nest-ibp".into())
                    .spawn(move || {
                        let mut workers: Vec<JoinHandle<()>> = Vec::new();
                        while !stop2.load(Ordering::Relaxed) {
                            match listener.accept() {
                                Ok((stream, _)) => {
                                    let _ = stream.set_nonblocking(false);
                                    let d = Arc::clone(&depot);
                                    workers.push(std::thread::spawn(move || {
                                        let _ = handlers::ibp::handle_conn(&d, stream);
                                    }));
                                }
                                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                                    std::thread::sleep(Duration::from_millis(5));
                                }
                                Err(_) => break,
                            }
                            workers.retain(|w| !w.is_finished());
                        }
                    })?,
            );
        }

        let (rpc, nfs_addr) = if config.ports.nfs.is_some() {
            let fhs = Arc::new(FhTable::new());
            let mut rpc_server = RpcServer::new();
            rpc_server.register(
                NFS_PROGRAM,
                NFS_VERSION,
                NfsHandler::new(Arc::clone(&dispatcher), Arc::clone(&fhs)),
            );
            rpc_server.register(MOUNT_PROGRAM, MOUNT_VERSION, MountHandler::new(fhs));
            let spawned = SpawnedRpcServer::spawn(rpc_server)?;
            let addr = spawned.udp_addr;
            (Some(spawned), Some(addr))
        } else {
            (None, None)
        };

        Ok(Self {
            dispatcher,
            stop,
            threads,
            rpc,
            chirp_addr,
            http_addr,
            ftp_addr,
            gridftp_addr,
            nfs_addr,
            ibp_addr,
        })
    }

    /// The appliance's dispatcher (for administration and inspection).
    pub fn dispatcher(&self) -> &Arc<Dispatcher> {
        &self.dispatcher
    }

    /// Administrative helper: grants a default lot to a user without a
    /// Chirp round trip — "when system administrators grant access to a
    /// NeST, they can simultaneously make a set of default lots for users."
    pub fn grant_default_lot(&self, user: &str, capacity: u64, duration: u64) -> io::Result<u64> {
        self.dispatcher
            .storage()
            .admin_grant_lot(
                nest_storage::lot::LotOwner::User(user.to_owned()),
                capacity,
                duration,
            )
            .map(|id| {
                self.dispatcher.persist_lots();
                id.0
            })
            .map_err(|e| io::Error::other(e.to_string()))
    }

    /// Stops accept loops (established connections finish their current
    /// request streams and exit on client close).
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        if let Some(rpc) = self.rpc.take() {
            rpc.shutdown();
        }
    }
}

fn spawn_acceptor(
    name: &str,
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    dispatcher: Arc<Dispatcher>,
    handler: fn(Arc<Dispatcher>, TcpStream),
) -> io::Result<JoinHandle<()>> {
    listener.set_nonblocking(true)?;
    std::thread::Builder::new()
        .name(name.to_owned())
        .spawn(move || {
            let mut workers: Vec<JoinHandle<()>> = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let _ = stream.set_nonblocking(false);
                        let d = Arc::clone(&dispatcher);
                        workers.push(std::thread::spawn(move || {
                            let conns = d.obs().metrics.gauge("server.active_conns");
                            d.obs().metrics.counter("server.conns_total").inc();
                            conns.inc();
                            handler(d, stream);
                            conns.dec();
                        }));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
                workers.retain(|w| !w.is_finished());
            }
        })
}
