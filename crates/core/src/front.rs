//! The protocol front API (paper §3 — "the virtual protocol layer").
//!
//! The paper's flexibility claim is that a new wire protocol drops into
//! the appliance without touching the storage, scheduling, or connection
//! machinery. [`ProtocolFront`] is that contract made explicit: a front
//! declares its name, preferred port, overload dialect, per-connection
//! entry point, and its `NestError` → wire-error mapping — and nothing
//! else. [`FrontRegistry`] owns everything a front must *not* reimplement:
//! listener binding, registration with the [`SessionLayer`] (bounded
//! worker pools, admission control, idle reaping, drain), per-front pool
//! sizing, and the `session.<proto>.*` metric wiring.
//!
//! A front can live in any crate: the built-in six are thin wrappers in
//! [`crate::fronts`], and the S3 front (`nest-s3front`) registers through
//! this API without a single edit inside `core/src/handlers/`.
//!
//! This module is the only sanctioned caller of [`SessionLayer::register`]
//! (enforced by the `front-registry` nest-lint rule).

use crate::session::{
    OverloadReply, PoolSpec, SessionConfig, SessionCtx, SessionHandler, SessionLayer, ShutdownToken,
};
use nest_obs::Obs;
use nest_proto::request::NestError;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// One wire protocol spoken by the appliance.
///
/// Implementations capture their dependencies (dispatcher, depot, RPC
/// server, shared root) at construction; the registry only ever sees the
/// trait. The contract:
///
/// * [`name`](ProtocolFront::name) keys the `session.<name>.*` instruments
///   and the transfer manager's scheduling class, so it must be stable and
///   unique within one registry.
/// * [`serve_conn`](ProtocolFront::serve_conn) is called once per admitted
///   connection on a pool worker. It owns the socket until it returns, and
///   must poll [`SessionCtx::await_request`] (or
///   [`SessionCtx::draining`]) between requests so drain and idle reaping
///   work.
/// * [`overload_reply`](ProtocolFront::overload_reply) is written by the
///   session layer to connections rejected by admission control — the one
///   moment the front's dialect must be spoken *without* a worker.
/// * [`render_error`](ProtocolFront::render_error) is the front's
///   `NestError` → wire mapping, exposed so tests (and operators reading
///   docs) can see every dialect's error surface in one place.
pub trait ProtocolFront: Send + Sync {
    /// Stable protocol name ("chirp", "http", "s3", ...).
    fn name(&self) -> &'static str;

    /// The protocol's conventional port, or `None` to always bind
    /// ephemerally.
    fn default_port(&self) -> Option<u16>;

    /// The overload dialect written to rejected connections.
    fn overload_reply(&self) -> OverloadReply;

    /// Per-front worker-pool sizing; defaults inherit the layer-wide
    /// [`SessionConfig`].
    fn pool_spec(&self) -> PoolSpec {
        PoolSpec::default()
    }

    /// Serves one admitted connection to completion.
    fn serve_conn(&self, stream: TcpStream, ctx: &SessionCtx) -> io::Result<()>;

    /// Renders a protocol-independent error in this front's dialect
    /// (a full wire unit: status line, reply line, or error document).
    fn render_error(&self, e: NestError) -> Vec<u8>;
}

/// A front bound and registered with the session layer.
pub struct BoundFront {
    /// The front's stable name.
    pub name: &'static str,
    /// Where it is listening.
    pub addr: SocketAddr,
    front: Arc<dyn ProtocolFront>,
}

impl BoundFront {
    /// The registered front itself.
    pub fn front(&self) -> &Arc<dyn ProtocolFront> {
        &self.front
    }
}

/// Owns the session layer and every front registered with it.
///
/// Lifecycle: `new` → `register`/`register_on` (bind + wire metrics) →
/// `start` (serve) → `drain` (graceful stop). The registry is the single
/// place connection-handling closures are built, which is what lets
/// nest-lint forbid ad-hoc `SessionLayer::register` calls everywhere else.
pub struct FrontRegistry {
    session: SessionLayer,
    fronts: Vec<BoundFront>,
}

impl FrontRegistry {
    /// Creates a registry whose session layer reports into `obs`.
    pub fn new(obs: Arc<Obs>, cfg: SessionConfig) -> Self {
        Self {
            session: SessionLayer::new(obs, cfg),
            fronts: Vec::new(),
        }
    }

    /// Registers a front on its default port (ephemeral if it has none).
    /// Returns the bound address.
    pub fn register(&mut self, front: Arc<dyn ProtocolFront>) -> io::Result<SocketAddr> {
        let port = front.default_port().unwrap_or(0);
        self.register_on(front, port)
    }

    /// Registers a front on an explicit port (0 = ephemeral): binds the
    /// listener, wires the `session.<name>.*` instruments, and installs
    /// the front's handler, overload dialect, and pool spec in the
    /// session layer. Must precede [`FrontRegistry::start`].
    pub fn register_on(
        &mut self,
        front: Arc<dyn ProtocolFront>,
        port: u16,
    ) -> io::Result<SocketAddr> {
        let name = front.name();
        if self.fronts.iter().any(|f| f.name == name) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("protocol front {name:?} registered twice"),
            ));
        }
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let serve = Arc::clone(&front);
        let handler: SessionHandler = Arc::new(move |stream, ctx| serve.serve_conn(stream, ctx));
        let addr = self.session.register_with(
            name,
            listener,
            front.overload_reply(),
            handler,
            front.pool_spec(),
        )?;
        self.fronts.push(BoundFront { name, addr, front });
        Ok(addr)
    }

    /// Starts serving every registered front.
    pub fn start(&mut self) -> io::Result<()> {
        self.session.start()
    }

    /// The bound address of a front, by name.
    pub fn addr(&self, name: &str) -> Option<SocketAddr> {
        self.fronts.iter().find(|f| f.name == name).map(|f| f.addr)
    }

    /// Every registered front, in registration order.
    pub fn fronts(&self) -> &[BoundFront] {
        &self.fronts
    }

    /// The session layer's shutdown token.
    pub fn token(&self) -> ShutdownToken {
        self.session.token()
    }

    /// Gracefully drains the session layer (see [`SessionLayer::drain`]).
    pub fn drain(&mut self, deadline: Duration) {
        self.session.drain(deadline);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    struct EchoFront;

    impl ProtocolFront for EchoFront {
        fn name(&self) -> &'static str {
            "echo"
        }
        fn default_port(&self) -> Option<u16> {
            None
        }
        fn overload_reply(&self) -> OverloadReply {
            OverloadReply::Raw(b"ECHO-BUSY\n")
        }
        fn pool_spec(&self) -> PoolSpec {
            PoolSpec {
                workers: Some(1),
                queue_depth: Some(0),
            }
        }
        fn serve_conn(&self, mut stream: TcpStream, _ctx: &SessionCtx) -> io::Result<()> {
            let mut buf = [0u8; 64];
            let n = stream.read(&mut buf)?;
            stream.write_all(&buf[..n])
        }
        fn render_error(&self, e: NestError) -> Vec<u8> {
            format!("ERR {e}\n").into_bytes()
        }
    }

    #[test]
    fn registry_binds_serves_and_enumerates() {
        let obs = Obs::new();
        let mut reg = FrontRegistry::new(Arc::clone(&obs), SessionConfig::default());
        let addr = reg.register(Arc::new(EchoFront)).unwrap();
        assert_eq!(reg.addr("echo"), Some(addr));
        assert_eq!(reg.fronts().len(), 1);
        assert_eq!(reg.fronts()[0].name, "echo");
        assert_eq!(
            reg.fronts()[0].front().render_error(NestError::NotFound),
            b"ERR not found\n"
        );
        reg.start().unwrap();

        let mut c = TcpStream::connect(addr).unwrap();
        c.write_all(b"ping").unwrap();
        let mut back = [0u8; 4];
        c.read_exact(&mut back).unwrap();
        assert_eq!(&back, b"ping");
        drop(c);
        reg.drain(Duration::from_secs(2));
        assert_eq!(obs.snapshot().count("session.echo.active"), 0);
        assert!(obs.snapshot().count("session.accepted") >= 1);
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let obs = Obs::new();
        let mut reg = FrontRegistry::new(obs, SessionConfig::default());
        reg.register(Arc::new(EchoFront)).unwrap();
        let err = reg.register(Arc::new(EchoFront)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
        reg.drain(Duration::from_secs(1));
    }
}
