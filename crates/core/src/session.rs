//! The unified session layer: one connection-lifecycle subsystem shared by
//! every wire protocol (paper §4 — the dispatcher is the appliance's single
//! front door, not "just a bunch of servers").
//!
//! Before this module, each of the six protocol front-ends ran its own
//! copy-pasted acceptor loop: a nonblocking `accept` polled on a 5 ms
//! sleep, one unbounded OS thread per connection, and `shutdown()` that
//! abandoned live connections. [`SessionLayer`] replaces all of them with:
//!
//! * **one poller thread** multiplexing every listening socket by
//!   readiness (`poll(2)`), woken for shutdown through a loopback UDP
//!   self-wake socket — no busy-sleeping;
//! * **per-protocol bounded worker pools** with a global connection cap
//!   and a configurable admission policy: queue up to
//!   [`SessionConfig::queue_depth`], then *reject* with a
//!   protocol-appropriate overload reply ([`OverloadReply`]) instead of
//!   spawning without bound — the same shape as GridFTP's server caps and
//!   CASTOR's bounded request-handler pools;
//! * **idle deadlines**: connections whose clients go silent for
//!   [`SessionConfig::idle_timeout`] are reaped ([`SessionCtx::await_request`]
//!   between requests, socket read timeouts within one);
//! * **graceful drain**: [`SessionLayer::drain`] stops accepting, signals
//!   in-flight handlers through a shared [`ShutdownToken`] they poll
//!   between requests, waits for them up to a deadline, hard-closes
//!   stragglers, and joins every pool thread before returning.
//!
//! Setting the global cap to zero ([`SessionConfig::max_conns`] = 0)
//! reproduces the historical thread-per-connection acceptor verbatim — the
//! ablation baseline for `bench/src/bin/connchurn.rs`.
//!
//! This file is the only sanctioned `std::thread::spawn` site on a
//! connection path (enforced by the `conn-spawn` nest-lint rule).

use nest_obs::{Counter, Gauge, Histogram, Obs};
use parking_lot::{Condvar, Mutex, ShardedMutex};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long [`SessionLayer::drain`] waits for in-flight handlers before
/// hard-closing their connections.
pub const DEFAULT_DRAIN_DEADLINE: Duration = Duration::from_secs(5);

/// Granularity at which idle handlers re-check the shutdown token.
const POLL_STEP: Duration = Duration::from_millis(50);

/// Session-layer sizing and admission policy.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Global cap on concurrently open (admitted) connections across all
    /// protocols. **0 selects the ablation baseline**: the historical
    /// unbounded thread-per-connection acceptors, for benchmarking.
    pub max_conns: usize,
    /// Worker-pool size per protocol: at most this many connections per
    /// protocol are served concurrently.
    pub max_conns_per_protocol: usize,
    /// How many admitted connections may wait for a worker per protocol
    /// before new arrivals are rejected with an overload reply.
    pub queue_depth: usize,
    /// Reap connections whose client has been silent this long between
    /// (and within) requests. `None` disables idle reaping.
    pub idle_timeout: Option<Duration>,
    /// Stripe count for each pool's live-connection registry (`1` = the
    /// single-mutex ablation). At 10k+ churning sessions the per-serve
    /// insert/remove pair otherwise serializes every worker on one map.
    pub shards: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            max_conns: 256,
            max_conns_per_protocol: 64,
            queue_depth: 0,
            idle_timeout: None,
            shards: 8,
        }
    }
}

/// Shared drain signal: handlers poll it between requests, the poller
/// checks it between accept batches.
#[derive(Clone, Default)]
pub struct ShutdownToken(Arc<AtomicBool>);

impl ShutdownToken {
    /// Creates a token in the "accepting" state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether drain has begun: stop starting new work and return.
    pub fn draining(&self) -> bool {
        // nestlint: allow(atomic-ordering): drain latch; accept loops only need eventual visibility
        self.0.load(Ordering::Relaxed)
    }

    fn begin_drain(&self) {
        // nestlint: allow(atomic-ordering): drain latch; no data is published under it
        self.0.store(true, Ordering::Relaxed);
    }
}

/// What [`SessionCtx::await_request`] observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Await {
    /// Bytes (or EOF) are waiting: read the next request.
    Ready,
    /// The server is draining: finish up and return.
    Drain,
    /// The client has been silent past the idle deadline: close it.
    Idle,
}

/// Per-connection context handed to every protocol handler.
pub struct SessionCtx {
    token: ShutdownToken,
    idle: Option<Duration>,
    reaped: AtomicBool,
}

impl SessionCtx {
    fn new(token: ShutdownToken, idle: Option<Duration>) -> Self {
        Self {
            token,
            idle,
            reaped: AtomicBool::new(false),
        }
    }

    /// A context that never drains and never reaps — for driving a handler
    /// directly in tests or embeddings without a [`SessionLayer`].
    pub fn unmanaged() -> Self {
        Self::new(ShutdownToken::new(), None)
    }

    /// Whether the server is draining.
    pub fn draining(&self) -> bool {
        self.token.draining()
    }

    /// The connection's idle deadline, if any.
    pub fn idle_timeout(&self) -> Option<Duration> {
        self.idle
    }

    /// Blocks until the connection has a request to read, the server
    /// drains, or the idle deadline passes. Handlers call this at the top
    /// of their request loop; on [`Await::Ready`] the stream's read
    /// timeout is restored to the idle deadline (so a client that dies
    /// *mid*-request is also reaped).
    pub fn await_request(&self, stream: &TcpStream) -> io::Result<Await> {
        let deadline = self.idle.map(|d| Instant::now() + d);
        let mut probe = [0u8; 1];
        loop {
            if self.token.draining() {
                return Ok(Await::Drain);
            }
            let step = match deadline {
                None => POLL_STEP,
                Some(dl) => {
                    let now = Instant::now();
                    if now >= dl {
                        // nestlint: allow(atomic-ordering): reap marker re-read by this same worker after the handler returns
                        self.reaped.store(true, Ordering::Relaxed);
                        return Ok(Await::Idle);
                    }
                    POLL_STEP.min(dl - now)
                }
            };
            // `peek` consumes nothing; a short read timeout turns it into
            // a readiness wait with a bounded token-check latency.
            stream.set_read_timeout(Some(step))?;
            match stream.peek(&mut probe) {
                Ok(_) => {
                    // Readable (or EOF). Hand the socket back with the
                    // idle deadline as its read timeout.
                    stream.set_read_timeout(self.idle)?;
                    return Ok(Await::Ready);
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    continue;
                }
                Err(e) => {
                    let _ = stream.set_read_timeout(self.idle);
                    return Err(e);
                }
            }
        }
    }
}

/// The wire bytes written to a connection rejected by admission control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadReply {
    /// `HTTP/1.1 503 Service Unavailable` with `Connection: close`.
    Http503,
    /// FTP / GridFTP `421` in greeting position (RFC 959 service-closing).
    Ftp421,
    /// A Chirp negative status line.
    ChirpBusy,
    /// Close without a reply (IBP, NFS: clients treat EOF as retryable).
    Drop,
    /// A protocol-supplied literal reply (plugin fronts whose dialect the
    /// session layer does not know, e.g. S3's `503` + `SlowDown` XML).
    Raw(&'static [u8]),
}

impl OverloadReply {
    /// The wire bytes of this dialect's overload reply.
    pub fn bytes(self) -> &'static [u8] {
        match self {
            OverloadReply::Http503 => {
                b"HTTP/1.1 503 Service Unavailable\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"
            }
            OverloadReply::Ftp421 => b"421 Too many connections, try again later.\r\n",
            OverloadReply::ChirpBusy => b"-9 server busy: connection limit reached\n",
            OverloadReply::Drop => b"",
            OverloadReply::Raw(bytes) => bytes,
        }
    }
}

/// Per-front worker-pool overrides; `None` fields inherit the layer-wide
/// [`SessionConfig`] values. Fronts advertise this through
/// `ProtocolFront::pool_spec`, so one protocol can run a deeper queue or
/// a narrower pool than the appliance default.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolSpec {
    /// Worker-pool size override (`SessionConfig::max_conns_per_protocol`).
    pub workers: Option<usize>,
    /// Accept-queue depth override (`SessionConfig::queue_depth`).
    pub queue_depth: Option<usize>,
}

/// A protocol front-end's per-connection entry point.
pub type SessionHandler = Arc<dyn Fn(TcpStream, &SessionCtx) -> io::Result<()> + Send + Sync>;

/// Instruments and counters shared by every pool of one [`SessionLayer`].
struct Shared {
    token: ShutdownToken,
    cfg: SessionConfig,
    /// Admitted-and-not-yet-closed connections (busy + queued), across
    /// all protocols. Authoritative for the global cap.
    active: AtomicUsize,
    next_conn: AtomicU64,
    accepted: Arc<Counter>,
    rejected: Arc<Counter>,
    queued: Arc<Counter>,
    idle_reaped: Arc<Counter>,
    drained: Arc<Counter>,
    hard_closed: Arc<Counter>,
    active_gauge: Arc<Gauge>,
    draining_gauge: Arc<Gauge>,
    conns_total: Arc<Counter>,
    active_conns: Arc<Gauge>,
    duration: Arc<Histogram>,
}

impl Shared {
    fn new(obs: &Obs, cfg: SessionConfig) -> Self {
        let m = &obs.metrics;
        Self {
            token: ShutdownToken::new(),
            cfg,
            active: AtomicUsize::new(0),
            next_conn: AtomicU64::new(1),
            accepted: m.counter("session.accepted"),
            rejected: m.counter("session.rejected"),
            queued: m.counter("session.queued"),
            idle_reaped: m.counter("session.idle_reaped"),
            drained: m.counter("session.drained"),
            hard_closed: m.counter("session.hard_closed"),
            active_gauge: m.gauge("session.active"),
            draining_gauge: m.gauge("session.draining"),
            conns_total: m.counter("server.conns_total"),
            active_conns: m.gauge("server.active_conns"),
            duration: m.histogram("session.duration_us"),
        }
    }

    /// Bookkeeping for one admitted connection entering the layer.
    fn note_admitted(&self) {
        self.accepted.inc();
        self.conns_total.inc();
        self.active_gauge.inc();
        self.active_conns.inc();
    }

    /// Bookkeeping for one admitted connection leaving the layer.
    fn note_closed(&self) {
        self.active.fetch_sub(1, Ordering::SeqCst);
        self.active_gauge.dec();
        self.active_conns.dec();
    }
}

/// One protocol's bounded worker pool (or, in ablation mode, its
/// thread-per-connection spawner) plus its live-connection registry.
struct ProtoPool {
    proto: &'static str,
    reply: OverloadReply,
    handler: SessionHandler,
    cap: usize,
    queue_depth: usize,
    /// False in the `max_conns == 0` ablation: one thread per connection.
    pooled: bool,
    shared: Arc<Shared>,
    proto_active: Arc<Gauge>,
    state: Mutex<PoolState>,
    cv: Condvar,
    /// Clones of every in-flight connection, for hard-close at the drain
    /// deadline (`TcpStream::shutdown` interrupts a blocked read).
    /// Striped by connection id so per-serve registration stops
    /// serializing the workers; drain still walks every cell.
    live: ShardedMutex<HashMap<u64, TcpStream>>,
}

#[derive(Default)]
struct PoolState {
    queue: VecDeque<TcpStream>,
    busy: usize,
    idle_workers: usize,
    spawned: usize,
    draining: bool,
    workers: Vec<JoinHandle<()>>,
}

impl ProtoPool {
    fn new(
        proto: &'static str,
        reply: OverloadReply,
        handler: SessionHandler,
        spec: PoolSpec,
        shared: Arc<Shared>,
        obs: &Obs,
    ) -> Arc<Self> {
        let proto_active = obs.metrics.gauge(&format!("session.{proto}.active"));
        let live_shards = shared.cfg.shards.max(1);
        Arc::new(Self {
            proto,
            reply,
            handler,
            cap: spec.workers.unwrap_or(shared.cfg.max_conns_per_protocol),
            queue_depth: spec.queue_depth.unwrap_or(shared.cfg.queue_depth),
            pooled: shared.cfg.max_conns != 0,
            shared,
            proto_active,
            state: Mutex::named("core.session.pool", 150, PoolState::default()),
            cv: Condvar::named("core.session.pool.cv", 150),
            live: ShardedMutex::new("core.session.live", 151, live_shards, |_| HashMap::new()),
        })
    }

    /// Admission control: runs on the poller thread for every accepted
    /// connection. Either hands the connection to this protocol's pool
    /// (possibly queueing it) or rejects it with the overload reply.
    fn admit(self: &Arc<Self>, stream: TcpStream) {
        let sh = &self.shared;
        let _ = stream.set_nonblocking(false);
        let _ = stream.set_nodelay(true);

        // Global cap first (skipped entirely in ablation mode).
        if self.pooled {
            let prev = sh.active.fetch_add(1, Ordering::SeqCst);
            if prev >= sh.cfg.max_conns {
                sh.active.fetch_sub(1, Ordering::SeqCst);
                self.reject(stream);
                return;
            }
        } else {
            sh.active.fetch_add(1, Ordering::SeqCst);
        }

        if self.pooled {
            let mut st = self.state.lock();
            if st.draining {
                drop(st);
                sh.active.fetch_sub(1, Ordering::SeqCst);
                self.reject(stream);
                return;
            }
            // Per-protocol cap + queue: `busy` connections hold workers,
            // up to `queue_depth` more may wait, the rest are rejected.
            if st.busy + st.queue.len() >= self.cap + self.queue_depth {
                drop(st);
                sh.active.fetch_sub(1, Ordering::SeqCst);
                self.reject(stream);
                return;
            }
            if st.busy >= self.cap {
                sh.queued.inc();
            }
            st.queue.push_back(stream);
            // Lazy worker spawn, up to the pool cap, only when no idle
            // worker is available to take this connection.
            if st.idle_workers < st.queue.len() && st.spawned < self.cap {
                st.spawned += 1;
                let pool = Arc::clone(self);
                st.workers
                    .push(std::thread::spawn(move || pool.worker_loop()));
            }
            drop(st);
            self.cv.notify_one();
        } else {
            // Ablation baseline: the historical unbounded
            // thread-per-connection shape, with identical instrumentation.
            let pool = Arc::clone(self);
            let mut st = self.state.lock();
            st.busy += 1;
            st.workers.push(std::thread::spawn(move || {
                pool.serve(stream);
                pool.state.lock().busy -= 1;
            }));
        }
        sh.note_admitted();
    }

    /// Writes the protocol's overload reply (best effort) and closes.
    fn reject(&self, mut stream: TcpStream) {
        self.shared.rejected.inc();
        let bytes = self.reply.bytes();
        if !bytes.is_empty() {
            let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
            let _ = stream.write_all(bytes);
            let _ = stream.flush();
        }
        let _ = stream.shutdown(Shutdown::Both);
    }

    /// One pooled worker: serves queued connections until drain.
    fn worker_loop(self: Arc<Self>) {
        loop {
            let stream = {
                let mut st = self.state.lock();
                loop {
                    if let Some(s) = st.queue.pop_front() {
                        st.busy += 1;
                        break s;
                    }
                    if st.draining {
                        return;
                    }
                    st.idle_workers += 1;
                    self.cv.wait(&mut st);
                    st.idle_workers -= 1;
                }
            };
            self.serve(stream);
            self.state.lock().busy -= 1;
        }
    }

    /// Serves one connection: lifecycle instrumentation, live-registry
    /// registration, handler invocation, exit classification.
    fn serve(self: &Arc<Self>, stream: TcpStream) {
        let sh = &self.shared;
        let start = Instant::now();
        self.proto_active.inc();
        let ctx = SessionCtx::new(sh.token.clone(), sh.cfg.idle_timeout);
        let _ = stream.set_read_timeout(sh.cfg.idle_timeout);
        // nestlint: allow(atomic-ordering): monotonic conn-id tick; atomicity alone is the contract
        let id = sh.next_conn.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            self.live.lock(id).insert(id, clone);
        }

        let result = (self.handler)(stream, &ctx);

        self.live.lock(id).remove(&id);
        // nestlint: allow(atomic-ordering): reads this worker's own reap marker (same thread)
        let idled = ctx.reaped.load(Ordering::Relaxed)
            || matches!(&result, Err(e) if e.kind() == io::ErrorKind::WouldBlock
                || e.kind() == io::ErrorKind::TimedOut);
        if idled {
            sh.idle_reaped.inc();
        } else if sh.token.draining() {
            sh.drained.inc();
        }
        sh.duration.record(start.elapsed());
        self.proto_active.dec();
        sh.note_closed();
    }
}

#[cfg(unix)]
mod poll_sys {
    //! Minimal `poll(2)` binding — readiness multiplexing for the single
    //! poller thread without external crates (std already links libc).
    use std::io;
    use std::os::unix::io::RawFd;

    #[repr(C)]
    pub struct PollFd {
        pub fd: RawFd,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;

    extern "C" {
        fn poll(
            fds: *mut PollFd,
            nfds: std::ffi::c_ulong,
            timeout: std::ffi::c_int,
        ) -> std::ffi::c_int;
    }

    /// Waits for readiness on any fd, retrying on `EINTR`.
    pub fn wait(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // SAFETY: `fds` points at `fds.len()` initialized pollfds
            // borrowed mutably for the whole call; poll only writes the
            // `revents` fields within that range.
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as std::ffi::c_ulong, timeout_ms) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

/// One front-end registered with the layer: its pool and its listener.
struct Front {
    pool: Arc<ProtoPool>,
    listener: TcpListener,
}

/// The connection-lifecycle subsystem: poller, pools, admission, drain.
pub struct SessionLayer {
    shared: Arc<Shared>,
    obs: Arc<Obs>,
    pools: Vec<Arc<ProtoPool>>,
    /// Fronts registered but not yet started.
    pending: Vec<Front>,
    poller: Option<JoinHandle<()>>,
    acceptors: Vec<JoinHandle<()>>,
    wake_tx: Option<UdpSocket>,
    wake_addr: Option<SocketAddr>,
    finished: bool,
}

impl SessionLayer {
    /// Creates a layer writing its instruments into `obs`.
    pub fn new(obs: Arc<Obs>, cfg: SessionConfig) -> Self {
        let shared = Arc::new(Shared::new(&obs, cfg));
        Self {
            shared,
            obs,
            pools: Vec::new(),
            pending: Vec::new(),
            poller: None,
            acceptors: Vec::new(),
            wake_tx: None,
            wake_addr: None,
            finished: false,
        }
    }

    /// The layer's shutdown token (shared with every connection context).
    pub fn token(&self) -> ShutdownToken {
        self.shared.token.clone()
    }

    /// Registers one protocol front-end: its listener, the overload reply
    /// its clients understand, and its per-connection handler. Must be
    /// called before [`SessionLayer::start`]. Returns the bound address.
    pub fn register(
        &mut self,
        proto: &'static str,
        listener: TcpListener,
        reply: OverloadReply,
        handler: SessionHandler,
    ) -> io::Result<SocketAddr> {
        self.register_with(proto, listener, reply, handler, PoolSpec::default())
    }

    /// [`SessionLayer::register`] with per-front pool-sizing overrides.
    pub fn register_with(
        &mut self,
        proto: &'static str,
        listener: TcpListener,
        reply: OverloadReply,
        handler: SessionHandler,
        spec: PoolSpec,
    ) -> io::Result<SocketAddr> {
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let pool = ProtoPool::new(
            proto,
            reply,
            handler,
            spec,
            Arc::clone(&self.shared),
            &self.obs,
        );
        self.pools.push(Arc::clone(&pool));
        self.pending.push(Front { pool, listener });
        Ok(addr)
    }

    /// Starts serving every registered front-end: one poller thread in
    /// pooled mode, or the historical per-listener acceptor threads in the
    /// `max_conns == 0` ablation.
    pub fn start(&mut self) -> io::Result<()> {
        let fronts = std::mem::take(&mut self.pending);
        if self.shared.cfg.max_conns == 0 {
            // Ablation baseline: per-listener 5 ms sleep-poll acceptors.
            for front in fronts {
                let token = self.shared.token.clone();
                self.acceptors.push(
                    std::thread::Builder::new()
                        .name(format!("accept-{}", front.pool.proto))
                        .spawn(move || {
                            while !token.draining() {
                                match front.listener.accept() {
                                    Ok((stream, _)) => front.pool.admit(stream),
                                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                                        std::thread::sleep(Duration::from_millis(5));
                                    }
                                    Err(_) => break,
                                }
                            }
                        })?,
                );
            }
            return Ok(());
        }

        let wake_rx = UdpSocket::bind("127.0.0.1:0")?;
        wake_rx.set_nonblocking(true)?;
        let wake_addr = wake_rx.local_addr()?;
        self.wake_tx = Some(wake_rx.try_clone()?);
        self.wake_addr = Some(wake_addr);
        let token = self.shared.token.clone();
        self.poller = Some(
            std::thread::Builder::new()
                .name("nest-session-poller".into())
                .spawn(move || poller_loop(fronts, wake_rx, token))?,
        );
        Ok(())
    }

    /// Graceful drain: stop accepting, signal in-flight handlers through
    /// the shared token, wait up to `deadline` for them to finish, then
    /// hard-close stragglers and join every thread the layer owns.
    /// Idempotent.
    pub fn drain(&mut self, deadline: Duration) {
        if self.finished {
            return;
        }
        self.finished = true;
        let sh = &self.shared;
        sh.draining_gauge.set(1);
        sh.token.begin_drain();

        // Stop the accept side first: no new admissions.
        if let (Some(tx), Some(addr)) = (&self.wake_tx, self.wake_addr) {
            let _ = tx.send_to(&[1], addr);
        }
        if let Some(t) = self.poller.take() {
            let _ = t.join();
        }
        for t in self.acceptors.drain(..) {
            let _ = t.join();
        }

        // Queued-but-never-served connections are closed outright, and
        // idle workers are woken so they can observe the drain.
        for pool in &self.pools {
            let dropped: Vec<TcpStream> = {
                let mut st = pool.state.lock();
                st.draining = true;
                st.queue.drain(..).collect()
            };
            pool.cv.notify_all();
            for s in dropped {
                let _ = s.shutdown(Shutdown::Both);
                sh.hard_closed.inc();
                sh.note_closed();
            }
        }

        // Let in-flight handlers finish their current request streams.
        let hard_deadline = Instant::now() + deadline;
        while sh.active.load(Ordering::SeqCst) > 0 && Instant::now() < hard_deadline {
            std::thread::sleep(Duration::from_millis(2));
        }

        // Deadline passed: hard-close whatever is still on the wire. The
        // socket shutdown interrupts blocked reads, so the handlers (and
        // with them the workers) exit promptly.
        if sh.active.load(Ordering::SeqCst) > 0 {
            for pool in &self.pools {
                pool.live.for_each_cell(|_, cell| {
                    for stream in cell.values() {
                        let _ = stream.shutdown(Shutdown::Both);
                        sh.hard_closed.inc();
                    }
                });
            }
        }

        // Join every worker the layer ever spawned: no leaked handles.
        for pool in &self.pools {
            loop {
                let workers: Vec<JoinHandle<()>> = {
                    let mut st = pool.state.lock();
                    st.workers.drain(..).collect()
                };
                if workers.is_empty() {
                    break;
                }
                pool.cv.notify_all();
                for w in workers {
                    let _ = w.join();
                }
            }
        }
    }
}

impl Drop for SessionLayer {
    fn drop(&mut self) {
        self.drain(DEFAULT_DRAIN_DEADLINE);
    }
}

/// The single poller thread: readiness-multiplexes every listener plus the
/// UDP self-wake socket; accepts in batches and runs admission inline.
fn poller_loop(fronts: Vec<Front>, wake: UdpSocket, token: ShutdownToken) {
    let mut buf = [0u8; 8];
    loop {
        if token.draining() {
            return;
        }
        wait_for_readiness(&fronts, &wake);
        // Swallow wake datagrams (they only exist to interrupt the wait).
        while wake.recv_from(&mut buf).is_ok() {}
        if token.draining() {
            return;
        }
        for front in &fronts {
            loop {
                match front.listener.accept() {
                    Ok((stream, _peer)) => front.pool.admit(stream),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }
    }
}

#[cfg(unix)]
fn wait_for_readiness(fronts: &[Front], wake: &UdpSocket) {
    use std::os::unix::io::AsRawFd;
    let mut fds = Vec::with_capacity(fronts.len() + 1);
    fds.push(poll_sys::PollFd {
        fd: wake.as_raw_fd(),
        events: poll_sys::POLLIN,
        revents: 0,
    });
    for front in fronts {
        fds.push(poll_sys::PollFd {
            fd: front.listener.as_raw_fd(),
            events: poll_sys::POLLIN,
            revents: 0,
        });
    }
    // A bounded timeout keeps the loop robust against missed wakeups.
    let _ = poll_sys::wait(&mut fds, 500);
}

#[cfg(not(unix))]
fn wait_for_readiness(_fronts: &[Front], _wake: &UdpSocket) {
    // Portable fallback: the historical sleep-poll cadence.
    std::thread::sleep(Duration::from_millis(5));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn echo_handler() -> SessionHandler {
        Arc::new(|stream: TcpStream, ctx: &SessionCtx| {
            let mut stream = stream;
            loop {
                match ctx.await_request(&stream)? {
                    Await::Ready => {}
                    _ => return Ok(()),
                }
                let mut byte = [0u8; 1];
                match stream.read(&mut byte)? {
                    0 => return Ok(()),
                    _ => stream.write_all(&byte)?,
                }
            }
        })
    }

    fn layer_with(cfg: SessionConfig) -> (SessionLayer, SocketAddr, Arc<Obs>) {
        let obs = Obs::new();
        let mut layer = SessionLayer::new(Arc::clone(&obs), cfg);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = layer
            .register("echo", listener, OverloadReply::Http503, echo_handler())
            .unwrap();
        layer.start().unwrap();
        (layer, addr, obs)
    }

    #[test]
    fn pooled_roundtrip_and_metrics() {
        let (mut layer, addr, obs) = layer_with(SessionConfig::default());
        let mut c = TcpStream::connect(addr).unwrap();
        c.write_all(b"x").unwrap();
        let mut back = [0u8; 1];
        c.read_exact(&mut back).unwrap();
        assert_eq!(&back, b"x");
        let snap = obs.snapshot();
        assert_eq!(snap.count("session.accepted"), 1);
        assert_eq!(snap.count("server.conns_total"), 1);
        drop(c);
        layer.drain(Duration::from_secs(2));
        assert_eq!(obs.snapshot().count("session.active"), 0);
    }

    #[test]
    fn per_protocol_cap_rejects_third_connection() {
        let cfg = SessionConfig {
            max_conns_per_protocol: 2,
            ..SessionConfig::default()
        };
        let (mut layer, addr, obs) = layer_with(cfg);
        let c1 = TcpStream::connect(addr).unwrap();
        let c2 = TcpStream::connect(addr).unwrap();
        // Wait for both to be admitted (busy) before the third arrives.
        while obs.snapshot().count("session.echo.active") < 2 {
            std::thread::yield_now();
        }
        let mut c3 = TcpStream::connect(addr).unwrap();
        let mut reply = Vec::new();
        c3.read_to_end(&mut reply).unwrap();
        let text = String::from_utf8_lossy(&reply);
        assert!(text.starts_with("HTTP/1.1 503"), "got {text:?}");
        assert!(obs.snapshot().count("session.rejected") >= 1);
        drop((c1, c2));
        layer.drain(Duration::from_secs(2));
    }

    #[test]
    fn ablation_mode_serves_without_caps() {
        let cfg = SessionConfig {
            max_conns: 0,
            max_conns_per_protocol: 1,
            ..SessionConfig::default()
        };
        let (mut layer, addr, obs) = layer_with(cfg);
        // Three concurrent conns despite the (ignored) per-proto cap of 1.
        let mut conns: Vec<TcpStream> = (0..3).map(|_| TcpStream::connect(addr).unwrap()).collect();
        for c in &mut conns {
            c.write_all(b"a").unwrap();
            let mut b = [0u8; 1];
            c.read_exact(&mut b).unwrap();
        }
        assert_eq!(obs.snapshot().count("session.rejected"), 0);
        assert_eq!(obs.snapshot().count("session.accepted"), 3);
        drop(conns);
        layer.drain(Duration::from_secs(2));
        assert_eq!(obs.snapshot().count("session.active"), 0);
    }

    #[test]
    fn idle_connections_are_reaped() {
        let cfg = SessionConfig {
            idle_timeout: Some(Duration::from_millis(80)),
            ..SessionConfig::default()
        };
        let (mut layer, addr, obs) = layer_with(cfg);
        let mut c = TcpStream::connect(addr).unwrap();
        // Silent client: the server closes it after the idle deadline.
        let mut buf = [0u8; 1];
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        assert_eq!(c.read(&mut buf).unwrap(), 0, "expected server-side close");
        assert!(obs.snapshot().count("session.idle_reaped") >= 1);
        layer.drain(Duration::from_secs(2));
    }

    #[test]
    fn pool_spec_overrides_cap_and_raw_reply_is_verbatim() {
        let obs = Obs::new();
        // Layer-wide defaults allow 64 workers; the front narrows to 1 and
        // rejects in a dialect the layer has never heard of.
        let mut layer = SessionLayer::new(Arc::clone(&obs), SessionConfig::default());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = layer
            .register_with(
                "tiny",
                listener,
                OverloadReply::Raw(b"-BUSY custom dialect\n"),
                echo_handler(),
                PoolSpec {
                    workers: Some(1),
                    queue_depth: Some(0),
                },
            )
            .unwrap();
        layer.start().unwrap();

        let hold = TcpStream::connect(addr).unwrap();
        while obs.snapshot().count("session.tiny.active") < 1 {
            std::thread::yield_now();
        }
        let mut c = TcpStream::connect(addr).unwrap();
        let mut reply = Vec::new();
        c.read_to_end(&mut reply).unwrap();
        assert_eq!(reply, b"-BUSY custom dialect\n");
        drop(hold);
        layer.drain(Duration::from_secs(2));
    }

    #[test]
    fn drain_wakes_idle_handlers_promptly() {
        let (mut layer, addr, obs) = layer_with(SessionConfig::default());
        let _c1 = TcpStream::connect(addr).unwrap();
        let _c2 = TcpStream::connect(addr).unwrap();
        while obs.snapshot().count("session.echo.active") < 2 {
            std::thread::yield_now();
        }
        let t0 = Instant::now();
        layer.drain(Duration::from_secs(10));
        assert!(
            t0.elapsed() < Duration::from_secs(3),
            "idle conns should drain in one poll step, took {:?}",
            t0.elapsed()
        );
        assert!(obs.snapshot().count("session.drained") >= 2);
    }
}
