//! The dispatcher (paper §2.1): "the main scheduler and macro-request
//! router in the system ... It examines each client request received by the
//! protocol layer and routes each appropriately to either the storage or
//! the transfer manager. Data movement requests are sent to the transfer
//! manager; all other requests such as resource management and directory
//! operation requests are handled by the storage manager."
//!
//! The dispatcher also "periodically consolidates information about
//! resource and data availability in the NeST and can publish this
//! information as a ClassAd into a global scheduling system" —
//! [`Dispatcher::storage_ad`] builds that ad.

use crate::config::{BackendKind, NestConfig, SchedClass};
use crate::procpool::SubprocessLauncher;
use nest_classad::ClassAd;
use nest_obs::{Counter, Histogram, Obs};
use nest_proto::gridftp::{third_party, GridFtpClient};
use nest_proto::gsi::{AuthError, Credential, GsiAuthenticator};
use nest_proto::request::{NestError, NestRequest, NestResponse, TransferUrl};
use nest_storage::acl::{AclEntry, Who};
use nest_storage::{
    AclTable, LocalFsBackend, LotId, MemBackend, Principal, StorageBackend, StorageError,
    StorageManager, VPath,
};
use nest_transfer::cache::CacheModel;
use nest_transfer::flow::{DataSink, DataSource, FlowMeta};
use nest_transfer::manager::{TransferConfig, TransferManager, TransferStats};
use nest_transfer::RetryPolicy;
use std::io::{self, Read, Write};
use std::sync::Arc;
use std::time::Duration;

/// Dispatcher-level instruments: request mix and control-plane cost.
///
/// Metric names: `dispatch.requests`, `dispatch.errors`,
/// `dispatch.auth_failures`, `dispatch.op.<verb>`,
/// `dispatch.cache.predicted_hits` / `.predicted_misses` — counters;
/// `dispatch.sync_us` — synchronous-request latency histogram.
struct DispatchMetrics {
    requests: Arc<Counter>,
    errors: Arc<Counter>,
    auth_failures: Arc<Counter>,
    cache_predicted_hits: Arc<Counter>,
    cache_predicted_misses: Arc<Counter>,
    sync_us: Arc<Histogram>,
}

impl DispatchMetrics {
    fn new(obs: &Obs) -> Self {
        let m = &obs.metrics;
        Self {
            requests: m.counter("dispatch.requests"),
            errors: m.counter("dispatch.errors"),
            auth_failures: m.counter("dispatch.auth_failures"),
            cache_predicted_hits: m.counter("dispatch.cache.predicted_hits"),
            cache_predicted_misses: m.counter("dispatch.cache.predicted_misses"),
            sync_us: m.histogram("dispatch.sync_us"),
        }
    }
}

/// The Chirp verb (or closest equivalent) for a request, keying the
/// per-operation request-mix counters.
fn op_name(req: &NestRequest) -> &'static str {
    match req {
        NestRequest::Mkdir { .. } => "mkdir",
        NestRequest::Rmdir { .. } => "rmdir",
        NestRequest::ListDir { .. } => "ls",
        NestRequest::Stat { .. } => "stat",
        NestRequest::Get { .. } => "get",
        NestRequest::Put { .. } => "put",
        NestRequest::Delete { .. } => "unlink",
        NestRequest::Rename { .. } => "rename",
        NestRequest::LotCreate { .. } => "lot_create",
        NestRequest::LotCreateGroup { .. } => "lot_create_group",
        NestRequest::LotRenew { .. } => "lot_renew",
        NestRequest::LotTerminate { .. } => "lot_terminate",
        NestRequest::LotStat { .. } => "lot_stat",
        NestRequest::LotList => "lot_list",
        NestRequest::SetAcl { .. } => "setacl",
        NestRequest::GetAcl { .. } => "getacl",
        NestRequest::ThirdParty { .. } => "third_party",
        NestRequest::Quit => "quit",
    }
}

/// The dispatcher: one per appliance, shared by every protocol handler.
pub struct Dispatcher {
    /// Appliance name (for ads and logs).
    pub name: String,
    storage: Arc<StorageManager>,
    transfers: TransferManager,
    cache: Arc<CacheModel>,
    gsi: Option<GsiAuthenticator>,
    /// Credential used for *outbound* connections during third-party
    /// transfers (simulated delegation).
    service_cred: Option<Credential>,
    /// How flows map to scheduling classes.
    sched_class: SchedClass,
    /// Where ACLs persist across restarts (disk-backed appliances only):
    /// a sibling file of the storage root, outside the served namespace.
    acl_store: Option<std::path::PathBuf>,
    /// Where lots persist across restarts (disk-backed appliances only).
    lot_store: Option<std::path::PathBuf>,
    /// Shared observability registry (instruments + tracer).
    obs: Arc<Obs>,
    metrics: DispatchMetrics,
    /// Retry policy stamped onto every submitted flow.
    retry: RetryPolicy,
    /// Deadline stamped onto every submitted flow (None = unbounded).
    transfer_deadline: Option<Duration>,
    /// The session layer's global connection cap (0 = uncapped ablation),
    /// published in the discovery ad as `MaxConnections`.
    max_conns: usize,
}

impl Dispatcher {
    /// Builds the appliance internals from a configuration.
    pub fn new(config: &NestConfig) -> io::Result<Self> {
        let mut acl_store = None;
        let mut lot_store = None;
        let obs = config.obs.clone().unwrap_or_default();
        let backend: Arc<dyn StorageBackend> = match &config.backend {
            BackendKind::Memory => Arc::new(MemBackend::new()),
            BackendKind::LocalFs(root) => {
                // ACLs and lots persist in sibling files, outside the
                // namespace clients can reach.
                let mut store = root.clone().into_os_string();
                store.push(".acls");
                acl_store = Some(std::path::PathBuf::from(store));
                let mut store = root.clone().into_os_string();
                store.push(".lots");
                lot_store = Some(std::path::PathBuf::from(store));
                // Disk chunk I/O runs through the backend's FD handle
                // cache; publish handlecache.* on the shared registry.
                let mut b = LocalFsBackend::new(root)?;
                if let Some(capacity) = config.handle_cache_capacity {
                    // Before `with_obs`: the override replaces the cache,
                    // and the instruments must land on the live one.
                    b = b.with_handle_cache_capacity(capacity);
                }
                Arc::new(b.with_obs(&obs))
            }
        };
        let acl = match &acl_store {
            Some(path) if path.exists() => {
                let text = std::fs::read_to_string(path)?;
                load_acls(&text)
            }
            _ => AclTable::open_by_default(),
        };
        let mut storage = StorageManager::new(backend, acl, config.capacity, config.reclaim)
            .with_shards(config.shards.max(1));
        if !config.enforce_lots {
            storage = storage.with_lots_disabled();
        }
        if let Some(path) = &lot_store {
            if path.exists() {
                let text = std::fs::read_to_string(path)?;
                storage = storage.with_lot_state(&text);
            }
        }
        // The gray-box cache model doubles as the memory tier's promotion
        // oracle, so it must exist before the storage manager is built.
        let cache = Arc::new(CacheModel::new(config.cache_bytes));
        let hint_cache = Arc::clone(&cache);
        let storage = storage
            .with_ram_tier(config.ram_tier_bytes)
            .with_residency_hint(Arc::new(move |path: &str, size: u64| {
                hint_cache.predict_resident(path, size)
            }))
            .with_obs(&obs);
        let transfers = TransferManager::new(TransferConfig {
            policy: config.sched.clone(),
            model: config.model.clone(),
            chunk_size: 64 * 1024,
            process_launcher: Arc::new(SubprocessLauncher::new()),
            obs: Some(Arc::clone(&obs)),
            pool_buffers: true,
            zerocopy: true,
            shards: config.shards.max(1),
        });
        let metrics = DispatchMetrics::new(&obs);
        // Pre-register the writev-coalescing counter so it shows up (at
        // zero) on every stats surface even before the first GET.
        obs.metrics.counter("transfer.zerocopy.writev_coalesced");
        if config.ram_tier_bytes > 0 {
            // Tier-resident GETs have no backing fd, so zerocopy demotes
            // cleanly; pre-register the bypass counter so the surfaces
            // show it at zero before the first tier-served flow. (With
            // the tier disabled nothing memtier.* is registered at all —
            // the ablation's stats surfaces match the pre-tier appliance.)
            obs.metrics.counter("memtier.zc_bypassed");
        }
        // Surface the lock shim's per-class contention statistics
        // (lock.<class>.{acquires,contended,wait_us,hold_us}) on every
        // stats surface this registry feeds.
        obs.metrics.install_lock_stats();
        Ok(Self {
            name: config.name.clone(),
            storage: Arc::new(storage),
            transfers,
            cache,
            gsi: config.gsi.clone(),
            service_cred: None,
            sched_class: config.sched_class,
            acl_store,
            lot_store,
            obs,
            metrics,
            retry: config.retry.clone(),
            transfer_deadline: config.transfer_deadline,
            max_conns: config.max_conns,
        })
    }

    /// Applies the appliance-wide failure policy (retry budget and
    /// deadline) to a flow about to be submitted.
    fn stamp_failure_policy(&self, mut meta: FlowMeta) -> FlowMeta {
        meta = meta.with_retry(self.retry.clone());
        if let Some(d) = self.transfer_deadline {
            meta = meta.with_deadline(d);
        }
        meta
    }

    /// The appliance's observability registry.
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// One coherent metrics snapshot across every subsystem — the payload
    /// behind `GET /nest/stats`, the Chirp `stats` command and the
    /// published ClassAd's measured attributes.
    pub fn metrics_snapshot(&self) -> nest_obs::MetricsSnapshot {
        // Occupancy gauges are pull-updated: refresh before reading.
        self.storage.refresh_gauges();
        self.obs.snapshot()
    }

    /// The scheduling class for a flow: protocol or user, per config.
    fn class_for(&self, who: &Principal, protocol: &str) -> String {
        match self.sched_class {
            SchedClass::Protocol => protocol.to_owned(),
            SchedClass::User => who.user.clone(),
        }
    }

    /// Sets the credential used for outbound third-party legs.
    pub fn set_service_credential(&mut self, cred: Credential) {
        self.service_cred = Some(cred);
    }

    /// The storage manager (tests and the grid example inspect it).
    pub fn storage(&self) -> &Arc<StorageManager> {
        &self.storage
    }

    /// Transfer statistics (per class / per model).
    pub fn transfer_stats(&self) -> TransferStats {
        self.transfers.stats()
    }

    /// The gray-box cache model.
    pub fn cache(&self) -> &Arc<CacheModel> {
        &self.cache
    }

    /// Authenticates a GSI credential, returning the mapped principal.
    pub fn authenticate(&self, cred: &Credential) -> Result<Principal, AuthError> {
        let result = match &self.gsi {
            None => Err(AuthError::BadCredential),
            Some(auth) => auth
                .authenticate(cred)
                .map(|user| self.storage.acl().resolve(&user)),
        };
        if result.is_err() {
            self.metrics.auth_failures.inc();
        }
        result
    }

    // -- synchronous (storage manager) requests ----------------------------

    /// Executes a non-transfer request synchronously against the storage
    /// manager, per the paper's control flow. Transfer requests return
    /// `BadRequest` here — handlers must use the transfer entry points.
    pub fn execute_sync(&self, who: &Principal, protocol: &str, req: &NestRequest) -> NestResponse {
        let start = std::time::Instant::now();
        self.metrics.requests.inc();
        self.obs
            .metrics
            .counter(&format!("dispatch.op.{}", op_name(req)))
            .inc();
        let sm = &self.storage;
        let result: Result<NestResponse, StorageError> = (|| {
            Ok(match req {
                NestRequest::Mkdir { path } => {
                    sm.mkdir(who, protocol, &VPath::parse(path)?)?;
                    NestResponse::Ok
                }
                NestRequest::Rmdir { path } => {
                    sm.rmdir(who, protocol, &VPath::parse(path)?)?;
                    NestResponse::Ok
                }
                NestRequest::ListDir {
                    path,
                    prefix: None,
                    delimiter: None,
                } => NestResponse::OkText(sm.list(who, protocol, &VPath::parse(path)?)?),
                NestRequest::ListDir {
                    path,
                    prefix,
                    delimiter,
                } => {
                    // Object-style listing. Encoded line-oriented so it fits
                    // the protocol-independent OkText payload:
                    // `K <size> <key>` per object, `P <prefix>` per rolled-up
                    // common prefix (keys may contain spaces; size first).
                    let listing = sm.list_objects(
                        who,
                        protocol,
                        &VPath::parse(path)?,
                        prefix.as_deref().unwrap_or(""),
                        delimiter.as_deref(),
                    )?;
                    let mut lines: Vec<String> = listing
                        .objects
                        .iter()
                        .map(|o| format!("K {} {}", o.size, o.key))
                        .collect();
                    lines.extend(listing.common_prefixes.iter().map(|p| format!("P {p}")));
                    NestResponse::OkText(lines)
                }
                NestRequest::Stat { path } => {
                    let st = sm.stat(who, protocol, &VPath::parse(path)?)?;
                    NestResponse::OkSize(st.size)
                }
                NestRequest::Delete { path } => {
                    let vpath = VPath::parse(path)?;
                    sm.remove(who, protocol, &vpath)?;
                    self.cache.invalidate(&vpath.to_string());
                    NestResponse::Ok
                }
                NestRequest::Rename { from, to } => {
                    let from = VPath::parse(from)?;
                    let to = VPath::parse(to)?;
                    sm.rename(who, protocol, &from, &to)?;
                    self.cache.invalidate(&from.to_string());
                    NestResponse::Ok
                }
                NestRequest::LotCreate { capacity, duration } => {
                    let id = sm.lot_create(who, *capacity, *duration)?;
                    NestResponse::OkLot(id.0)
                }
                NestRequest::LotCreateGroup {
                    group,
                    capacity,
                    duration,
                } => {
                    let id = sm.lot_create_group(who, group, *capacity, *duration)?;
                    NestResponse::OkLot(id.0)
                }
                NestRequest::LotRenew { id, extra } => {
                    sm.lot_renew(who, LotId(*id), *extra)?;
                    NestResponse::Ok
                }
                NestRequest::LotTerminate { id } => {
                    sm.lot_terminate(who, LotId(*id))?;
                    NestResponse::Ok
                }
                NestRequest::LotStat { id } => {
                    let lot = sm.lot_stat(who, LotId(*id))?;
                    NestResponse::OkText(vec![render_lot(&lot)])
                }
                NestRequest::LotList => {
                    NestResponse::OkText(sm.lot_list(who).iter().map(render_lot).collect())
                }
                NestRequest::SetAcl {
                    path,
                    principal,
                    rights,
                } => {
                    let dir = VPath::parse(path)?;
                    let who_spec = parse_who(principal)?;
                    let mut entries = sm.get_acl(who, protocol, &dir)?;
                    entries.retain(|e| e.who != who_spec);
                    if !rights.is_empty() && rights != "none" {
                        entries.push(AclEntry::new(who_spec, rights));
                    }
                    sm.set_acl(who, protocol, &dir, entries)?;
                    self.persist_acls();
                    NestResponse::Ok
                }
                NestRequest::GetAcl { path } => {
                    let entries = sm.get_acl(who, protocol, &VPath::parse(path)?)?;
                    NestResponse::OkText(
                        entries
                            .iter()
                            .map(|e| format!("{} {}", e.who, e.rights_string()))
                            .collect(),
                    )
                }
                NestRequest::Get { .. }
                | NestRequest::Put { .. }
                | NestRequest::ThirdParty { .. }
                | NestRequest::Quit => NestResponse::Error(NestError::BadRequest),
            })
        })();
        let resp = NestResponse::from_result(result);
        self.metrics.sync_us.record(start.elapsed());
        if matches!(resp, NestResponse::Error(_)) {
            self.metrics.errors.inc();
        }
        // Lot state changes on lot requests and on deletes/renames (which
        // move or release charges); persist after any of them succeeds.
        if !matches!(resp, NestResponse::Error(_))
            && matches!(
                req,
                NestRequest::LotCreate { .. }
                    | NestRequest::LotCreateGroup { .. }
                    | NestRequest::LotRenew { .. }
                    | NestRequest::LotTerminate { .. }
                    | NestRequest::Delete { .. }
                    | NestRequest::Rename { .. }
            )
        {
            self.persist_lots();
        }
        resp
    }

    // -- transfer admission + execution (transfer manager) -----------------

    /// Admits a GET: checks access, returns (path, size, predicted-cached).
    pub fn admit_get(
        &self,
        who: &Principal,
        protocol: &str,
        path: &str,
    ) -> Result<(VPath, u64, bool), NestError> {
        self.metrics.requests.inc();
        self.obs.metrics.counter("dispatch.op.get").inc();
        let vpath = VPath::parse(path).map_err(|_| NestError::BadRequest)?;
        let size = self
            .storage
            .begin_get(who, protocol, &vpath)
            .map_err(|e| self.note_error(NestError::from(&e)))?;
        let cached = self.cache.predict_resident(&vpath.to_string(), size);
        if cached {
            self.metrics.cache_predicted_hits.inc();
        } else {
            self.metrics.cache_predicted_misses.inc();
        }
        Ok((vpath, size, cached))
    }

    /// Counts an admission error before handing it back.
    fn note_error(&self, e: NestError) -> NestError {
        self.metrics.errors.inc();
        e
    }

    /// Admits a PUT: checks access, charges lots, creates the file.
    pub fn admit_put(
        &self,
        who: &Principal,
        protocol: &str,
        path: &str,
        size: Option<u64>,
    ) -> Result<VPath, NestError> {
        self.metrics.requests.inc();
        self.obs.metrics.counter("dispatch.op.put").inc();
        let vpath = VPath::parse(path).map_err(|_| NestError::BadRequest)?;
        self.storage
            .begin_put(who, protocol, &vpath, size.unwrap_or(0))
            .map_err(|e| self.note_error(NestError::from(&e)))?;
        Ok(vpath)
    }

    /// Runs an admitted GET through the transfer manager into `sink`.
    /// Blocks until the transfer completes; returns bytes moved.
    pub fn transfer_get(
        &self,
        who: &Principal,
        protocol: &str,
        vpath: &VPath,
        size: u64,
        cached: bool,
        sink: Box<dyn DataSink>,
    ) -> io::Result<u64> {
        let class = self.class_for(who, protocol);
        let mut meta = self.stamp_failure_policy(FlowMeta::new(
            self.transfers.next_flow_id(),
            class,
            Some(size),
        ));
        meta.predicted_cached = cached;
        // Tier-resident objects serve straight from the manager's RAM
        // copy: no open(2), no disk read, and — because a MemSource has no
        // backing fd — the zerocopy ladder demotes cleanly to the pooled
        // loop. That demotion is the intended path, not a fallback; count
        // it separately so `transfer.zerocopy.fallbacks` keeps meaning
        // "something was withdrawn mid-flow".
        let source: Box<dyn DataSource> = match self.storage.tier_object(vpath) {
            Some(obj) if obj.len() as u64 == size => {
                self.obs.metrics.counter("memtier.zc_bypassed").inc();
                Box::new(nest_transfer::flow::MemSource::new(obj))
            }
            _ => Box::new(BackendSource::new(
                Arc::clone(&self.storage),
                vpath.clone(),
                0,
                size,
            )),
        };
        let handle = self.transfers.submit(meta, source, sink);
        let moved = handle.wait()?;
        self.cache.observe_access(&vpath.to_string(), size);
        Ok(moved)
    }

    /// Runs an admitted PUT: pumps `source` into the file through the
    /// transfer manager. Returns bytes stored.
    pub fn transfer_put(
        &self,
        who: &Principal,
        protocol: &str,
        vpath: &VPath,
        source: Box<dyn DataSource>,
        size: Option<u64>,
    ) -> io::Result<u64> {
        let class = self.class_for(who, protocol);
        let meta =
            self.stamp_failure_policy(FlowMeta::new(self.transfers.next_flow_id(), class, size));
        let sink = Box::new(BackendSink::whole_file(
            Arc::clone(&self.storage),
            who.clone(),
            vpath.clone(),
        ));
        let handle = self.transfers.submit(meta, source, sink);
        let result = handle.wait();
        // Lot state changed either way: charged on success, released by
        // the sink's abort-cleanup on failure. Persist both outcomes.
        self.persist_lots();
        let moved = result?;
        self.cache.observe_access(&vpath.to_string(), moved);
        Ok(moved)
    }

    /// Builds a reply sink over a connected socket for a GET body:
    /// `head` (the rendered protocol header) is coalesced with the first
    /// body chunk into one `writev`, and the socket's descriptor is
    /// exposed so the remainder can go through `sendfile` when the flow's
    /// source can lend a raw file window.
    pub fn socket_sink(&self, stream: std::net::TcpStream, head: Vec<u8>) -> Box<dyn DataSink> {
        let counter = self
            .obs
            .metrics
            .counter("transfer.zerocopy.writev_coalesced");
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            let fd = stream.as_raw_fd();
            Box::new(
                SocketSink::new(stream, head)
                    .with_coalesce_counter(counter)
                    .with_raw_fd(fd),
            )
        }
        #[cfg(not(unix))]
        {
            Box::new(SocketSink::new(stream, head).with_coalesce_counter(counter))
        }
    }

    /// NFS block read: a single block request is itself a scheduled flow,
    /// which is how cross-protocol policies see NFS traffic.
    pub fn read_block(
        &self,
        who: &Principal,
        protocol: &str,
        vpath: &VPath,
        offset: u64,
        count: usize,
    ) -> Result<Vec<u8>, NestError> {
        // Access check (cheap; also feeds lot LRU).
        self.storage
            .begin_get(who, protocol, vpath)
            .map_err(|e| NestError::from(&e))?;
        let meta = self.stamp_failure_policy(FlowMeta::new(
            self.transfers.next_flow_id(),
            self.class_for(who, protocol),
            Some(count as u64),
        ));
        let source = Box::new(BackendSource::new(
            Arc::clone(&self.storage),
            vpath.clone(),
            offset,
            count as u64,
        ));
        let (sink, rx) = ChannelSink::new();
        let handle = self.transfers.submit(meta, source, Box::new(sink));
        handle.wait().map_err(|_| NestError::Internal)?;
        rx.recv().map_err(|_| NestError::Internal)
    }

    /// NFS block write, scheduled as a flow like every other transfer.
    pub fn write_block(
        &self,
        who: &Principal,
        protocol: &str,
        vpath: &VPath,
        offset: u64,
        data: Vec<u8>,
    ) -> Result<(), NestError> {
        let meta = self.stamp_failure_policy(FlowMeta::new(
            self.transfers.next_flow_id(),
            self.class_for(who, protocol),
            Some(data.len() as u64),
        ));
        let source = Box::new(io::Cursor::new(data));
        let sink = Box::new(BackendSink::block(
            Arc::clone(&self.storage),
            who.clone(),
            vpath.clone(),
            offset,
        ));
        let handle = self.transfers.submit(meta, source, sink);
        match handle.wait() {
            Ok(_) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::StorageFull => Err(NestError::NoSpace),
            Err(_) => Err(NestError::Internal),
        }
    }

    // -- third-party transfers ---------------------------------------------

    /// Orchestrates a GridFTP third-party transfer between two remote
    /// servers (paper §2.1: "transparent three- and four-party
    /// transfers"; §6 step 3).
    pub fn third_party(&self, src: &TransferUrl, dst: &TransferUrl) -> Result<(), NestError> {
        let mut src_client =
            GridFtpClient::connect(src.authority()).map_err(|_| NestError::Internal)?;
        let mut dst_client =
            GridFtpClient::connect(dst.authority()).map_err(|_| NestError::Internal)?;
        if let Some(cred) = &self.service_cred {
            // Best-effort delegation: servers that require auth get it.
            let _ = src_client.authenticate(cred);
            let _ = dst_client.authenticate(cred);
        }
        third_party(&mut src_client, &src.path, &mut dst_client, &dst.path)
            .map_err(|_| NestError::Internal)
    }

    /// Writes the lot table to its persistence file, if disk-backed.
    /// Public so the server can checkpoint after transfers and admin
    /// grants.
    pub fn persist_lots(&self) {
        let Some(path) = &self.lot_store else {
            return;
        };
        let _ = std::fs::write(path, self.storage.lot_manager().snapshot());
    }

    /// Writes the ACL table to the persistence file (one ClassAd per
    /// line), if this appliance is disk-backed.
    fn persist_acls(&self) {
        let Some(path) = &self.acl_store else {
            return;
        };
        let mut out = String::new();
        for ad in self.storage.acl().to_classads() {
            out.push_str(&ad.to_string());
            out.push('\n');
        }
        // Persistence failures must not fail the client's request; the
        // in-memory table is still authoritative for this run.
        let _ = std::fs::write(path, out);
    }

    // -- resource publication -----------------------------------------------

    /// Builds the storage ad this NeST publishes into a discovery system,
    /// enriched with measured load attributes so matchmakers can rank
    /// appliances by observed performance, not just free space:
    /// `MeasuredBandwidthMBs` (EWMA of delivered MB/s), `ActiveTransfers`
    /// (in-flight flows) and `LotBytesCommitted` (bytes charged to lots).
    pub fn storage_ad(&self, protocols: &[&str]) -> ClassAd {
        let mut ad = self.storage.storage_ad(&self.name, protocols);
        let bw_mbs = self
            .obs
            .metrics
            .meter("transfer.bandwidth_bps")
            .rate_per_sec()
            / 1e6;
        ad.insert_value("MeasuredBandwidthMBs", nest_classad::Value::Real(bw_mbs));
        ad.insert_value(
            "ActiveTransfers",
            nest_classad::Value::Int(self.obs.metrics.gauge("transfer.queue_depth").get()),
        );
        ad.insert_value(
            "LotBytesCommitted",
            nest_classad::Value::Int(self.storage.committed_bytes() as i64),
        );
        ad.insert_value(
            "TransferRetries",
            nest_classad::Value::Int(self.obs.metrics.counter("transfer.retries").get() as i64),
        );
        ad.insert_value(
            "TransferFailures",
            nest_classad::Value::Int(self.obs.metrics.counter("transfer.failures").get() as i64),
        );
        // Zero-copy data-path health: flows served via sendfile, flows
        // demoted back to the pooled loop, and header+body writev merges.
        ad.insert_value(
            "ZeroCopyFlows",
            nest_classad::Value::Int(
                self.obs
                    .metrics
                    .counter("transfer.zerocopy.sendfile_flows")
                    .get() as i64,
            ),
        );
        ad.insert_value(
            "ZeroCopyFallbacks",
            nest_classad::Value::Int(
                self.obs
                    .metrics
                    .counter("transfer.zerocopy.fallbacks")
                    .get() as i64,
            ),
        );
        ad.insert_value(
            "WritevCoalesced",
            nest_classad::Value::Int(
                self.obs
                    .metrics
                    .counter("transfer.zerocopy.writev_coalesced")
                    .get() as i64,
            ),
        );
        // Memory-tier health, published only when the tier is on so an
        // ablated appliance's ad is indistinguishable from a pre-tier one.
        if self.storage.mem_tier().enabled() {
            let tier = self.storage.tier_stats();
            ad.insert_value("RamTierBytes", nest_classad::Value::Int(tier.bytes as i64));
            let lookups = tier.hits + tier.misses;
            let hit_pct = if lookups > 0 {
                tier.hits as f64 * 100.0 / lookups as f64
            } else {
                0.0
            };
            ad.insert_value("RamTierHitPct", nest_classad::Value::Real(hit_pct));
        }
        // Connection load, so the matchmaker can rank by headroom: the
        // session layer's admitted-connection gauge against its cap
        // (0 = uncapped thread-per-connection ablation).
        ad.insert_value(
            "MaxConnections",
            nest_classad::Value::Int(self.max_conns as i64),
        );
        ad.insert_value(
            "ActiveConnections",
            nest_classad::Value::Int(self.obs.metrics.gauge("session.active").get()),
        );
        // Self-diagnosis for the matchmaker: which production lock class
        // lost the most time to contention, in microseconds blocked (e.g.
        // "storage.lot:1843us"). Ranked by wait time, not bounce count —
        // a cheap fast-path bounce is not a scaling wall — and harness
        // (`test.*`/`model.*`) classes never appear. Absent until any
        // production class has contended.
        if let Some(top) = parking_lot::lockstats::most_contended() {
            ad.insert_value(
                "LockContentionTop",
                nest_classad::Value::Str(format!("{}:{}us", top.name, top.wait_ns / 1_000)),
            );
        }
        ad
    }

    /// Flushes every dirty write-back object in the memory tier to the
    /// backend (no-op unless a lot opted into `write_back`). The server
    /// calls this during graceful drain so deferred writes are durable
    /// before the appliance exits; returns objects flushed.
    pub fn flush_writeback(&self) -> usize {
        let flushed = self.storage.flush_writeback();
        if flushed > 0 {
            self.persist_lots();
        }
        flushed
    }

    /// Shuts the transfer engine down after in-flight work completes.
    pub fn shutdown(self) {
        self.transfers.shutdown();
    }
}

/// Rebuilds an ACL table from the persistence format (one ClassAd per
/// line; unparseable lines are skipped so a corrupt line cannot brick the
/// appliance).
fn load_acls(text: &str) -> AclTable {
    let ads: Vec<nest_classad::ClassAd> = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| l.parse().ok())
        .collect();
    AclTable::from_classads(&ads)
}

fn render_lot(lot: &nest_storage::Lot) -> String {
    format!(
        "{} {} {} {} {}",
        lot.id.0, lot.owner, lot.capacity, lot.used, lot.expires_at
    )
}

fn parse_who(spec: &str) -> Result<Who, StorageError> {
    if spec == "*" {
        return Ok(Who::Everyone);
    }
    if spec.eq_ignore_ascii_case("anonymous") {
        return Ok(Who::Anonymous);
    }
    if let Some(g) = spec.strip_prefix("group:") {
        return Ok(Who::Group(g.to_owned()));
    }
    Ok(Who::User(
        spec.strip_prefix("user:").unwrap_or(spec).to_owned(),
    ))
}

// ---------------------------------------------------------------------------
// Flow adapters between the storage backend, sockets and the engine
// ---------------------------------------------------------------------------

/// Reads a byte range of a stored file chunk by chunk. Disk-backed reads
/// are replayable, so the source supports [`DataSource::rewind`] and a
/// transient failure downstream can retry the whole range.
pub struct BackendSource {
    storage: Arc<StorageManager>,
    path: VPath,
    offset: u64,
    remaining: u64,
    /// Where the range starts (for rewind).
    start_offset: u64,
    /// The full range length (for rewind).
    len: u64,
    /// Cached raw-descriptor lease for the zero-copy path; re-validated
    /// against the backend's invalidation epoch on every window grant.
    lease: Option<nest_storage::ReadLease>,
}

impl BackendSource {
    /// Creates a source over `len` bytes of `path` starting at `offset`.
    pub fn new(storage: Arc<StorageManager>, path: VPath, offset: u64, len: u64) -> Self {
        Self {
            storage,
            path,
            offset,
            remaining: len,
            start_offset: offset,
            len,
            lease: None,
        }
    }
}

impl DataSource for BackendSource {
    fn read_chunk(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.remaining == 0 {
            return Ok(0);
        }
        let want = (buf.len() as u64).min(self.remaining) as usize;
        let n = self
            .storage
            .read_chunk(&self.path, self.offset, &mut buf[..want])
            .map_err(|e| io::Error::other(e.to_string()))?;
        self.offset += n as u64;
        self.remaining -= n as u64;
        Ok(n)
    }

    fn rewind(&mut self) -> io::Result<()> {
        self.offset = self.start_offset;
        self.remaining = self.len;
        Ok(())
    }

    fn raw_window(&mut self) -> Option<nest_transfer::flow::RawWindow> {
        // Per-step currency check: a metadata mutation (remove / rename /
        // truncate / recreate) bumps the backend's epoch, so a stale lease
        // is re-acquired — or, if the file is gone, the capability is
        // withdrawn and the flow demotes to the pooled read path, which
        // surfaces the error the same way a plain `read_chunk` would.
        let current = self.storage.lease_epoch()?;
        if !matches!(&self.lease, Some(l) if l.epoch == current) {
            self.lease = self.storage.read_lease(&self.path);
        } else {
            // Reusing an epoch-current lease is a handle-cache hit exactly
            // like a pooled-path `read_at` lookup — count it, or zerocopy
            // GETs undercount `handlecache.hits` by every span after the
            // first and the hit ratio becomes path-dependent.
            self.storage.note_lease_hits(1);
        }
        let lease = self.lease.as_ref()?;
        Some(nest_transfer::flow::RawWindow {
            file: Arc::clone(&lease.file),
            offset: self.offset,
            remaining: self.remaining,
        })
    }

    fn zc_advance(&mut self, n: u64) {
        self.offset += n;
        self.remaining = self.remaining.saturating_sub(n);
    }
}

/// Writes chunks into a stored file (charging lots as it grows).
///
/// Whole-file sinks (PUT) support abort-cleanup: a terminal failure
/// removes the partial file and releases its lot charge via
/// [`StorageManager::abort_put`], and a retry truncates back to empty.
/// Block sinks (NFS writes into an existing file) only rewind their write
/// offset — removing the whole file would destroy other blocks.
pub struct BackendSink {
    storage: Arc<StorageManager>,
    who: Principal,
    path: VPath,
    offset: u64,
    start_offset: u64,
    /// Whether this sink owns the whole file (PUT) rather than a block
    /// range within it (NFS write).
    whole_file: bool,
}

impl BackendSink {
    /// Sink for a whole-file PUT starting at offset 0; abort removes the
    /// partial file.
    pub fn whole_file(storage: Arc<StorageManager>, who: Principal, path: VPath) -> Self {
        Self {
            storage,
            who,
            path,
            offset: 0,
            start_offset: 0,
            whole_file: true,
        }
    }

    /// Sink for a block write into an existing file; abort leaves the file
    /// in place.
    pub fn block(storage: Arc<StorageManager>, who: Principal, path: VPath, offset: u64) -> Self {
        Self {
            storage,
            who,
            path,
            offset,
            start_offset: offset,
            whole_file: false,
        }
    }
}

impl DataSink for BackendSink {
    fn write_chunk(&mut self, data: &[u8]) -> io::Result<()> {
        self.storage
            .write_chunk(&self.who, &self.path, self.offset, data)
            .map_err(|e| match e {
                StorageError::Lot(_) => io::Error::new(io::ErrorKind::StorageFull, e.to_string()),
                other => io::Error::other(other.to_string()),
            })?;
        self.offset += data.len() as u64;
        Ok(())
    }

    fn reset(&mut self) -> io::Result<()> {
        if self.whole_file {
            // Drop any partial content so a shorter replay cannot leave a
            // stale tail behind. Routed through the storage manager so the
            // memory tier's copy is invalidated along with the bytes.
            self.storage
                .truncate_for_retry(&self.path)
                .map_err(|e| io::Error::other(e.to_string()))?;
        }
        self.offset = self.start_offset;
        Ok(())
    }

    fn abort(&mut self) {
        if self.whole_file {
            self.storage.abort_put(&self.path);
        }
    }
}

/// Reads exactly `remaining` bytes from a stream (socket PUT bodies).
pub struct LimitedStreamSource<R: Read + Send> {
    inner: R,
    remaining: u64,
}

impl<R: Read + Send> LimitedStreamSource<R> {
    /// Wraps a reader, limited to `limit` bytes.
    pub fn new(inner: R, limit: u64) -> Self {
        Self {
            inner,
            remaining: limit,
        }
    }
}

impl<R: Read + Send> DataSource for LimitedStreamSource<R> {
    fn read_chunk(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.remaining == 0 {
            return Ok(0);
        }
        let want = (buf.len() as u64).min(self.remaining) as usize;
        let n = self.inner.read(&mut buf[..want])?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "client closed mid-upload",
            ));
        }
        self.remaining -= n as u64;
        Ok(n)
    }
}

/// Reads a stream until EOF (FTP stream-mode STOR).
pub struct StreamSource<R: Read + Send> {
    inner: R,
}

impl<R: Read + Send> StreamSource<R> {
    /// Wraps a reader.
    pub fn new(inner: R) -> Self {
        Self { inner }
    }
}

impl<R: Read + Send> DataSource for StreamSource<R> {
    fn read_chunk(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.inner.read(buf)
    }
}

/// Writes chunks to a stream (socket GET bodies).
pub struct StreamSink<W: Write + Send> {
    inner: W,
}

impl<W: Write + Send> StreamSink<W> {
    /// Wraps a writer.
    pub fn new(inner: W) -> Self {
        Self { inner }
    }
}

impl<W: Write + Send> DataSink for StreamSink<W> {
    fn write_chunk(&mut self, data: &[u8]) -> io::Result<()> {
        self.inner.write_all(data)
    }

    fn finish(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A reply-writing sink for socket GET bodies: carries the rendered
/// protocol header and coalesces it with the first body chunk into one
/// `writev`, then exposes the socket's raw descriptor so the rest of the
/// body can go through `sendfile` (see [`nest_transfer::zerocopy`]).
///
/// The descriptor is withheld while the header is pending, so the first
/// chunk always travels the pooled path — the flow probes again on the
/// next step and upgrades without counting a fallback.
pub struct SocketSink<W: Write + Send> {
    writer: W,
    #[cfg(unix)]
    fd: Option<std::os::unix::io::RawFd>,
    pending_head: Option<Vec<u8>>,
    coalesced: Option<Arc<Counter>>,
}

impl<W: Write + Send> SocketSink<W> {
    /// Wraps a writer with a protocol header to send before the body.
    pub fn new(writer: W, head: Vec<u8>) -> Self {
        Self {
            writer,
            #[cfg(unix)]
            fd: None,
            pending_head: Some(head),
            coalesced: None,
        }
    }

    /// Exposes the writer's raw descriptor for the `sendfile` fast path.
    /// The descriptor must stay valid for the sink's lifetime (i.e. `fd`
    /// must belong to the wrapped writer or a dup sharing its lifetime).
    #[cfg(unix)]
    pub fn with_raw_fd(mut self, fd: std::os::unix::io::RawFd) -> Self {
        self.fd = Some(fd);
        self
    }

    /// Counts header+first-chunk coalesced writes on `counter`.
    pub fn with_coalesce_counter(mut self, counter: Arc<Counter>) -> Self {
        self.coalesced = Some(counter);
        self
    }
}

impl<W: Write + Send> DataSink for SocketSink<W> {
    fn write_chunk(&mut self, data: &[u8]) -> io::Result<()> {
        if let Some(head) = self.pending_head.take() {
            nest_transfer::zerocopy::write_all_vectored2(&mut self.writer, &head, data)?;
            if let Some(c) = &self.coalesced {
                c.inc();
            }
            return Ok(());
        }
        self.writer.write_all(data)
    }

    fn finish(&mut self) -> io::Result<()> {
        // A zero-byte body never produces a chunk, so the header may
        // still be pending here; the client is owed it regardless.
        if let Some(head) = self.pending_head.take() {
            self.writer.write_all(&head)?;
        }
        self.writer.flush()
    }

    #[cfg(unix)]
    fn raw_fd(&mut self) -> Option<std::os::unix::io::RawFd> {
        if self.pending_head.is_some() {
            // Header not on the wire yet: body bytes must not jump ahead
            // of it, so the capability is withheld until the first pooled
            // chunk carries the header out (via the coalesced writev).
            return None;
        }
        self.fd
    }
}

/// Accumulates a flow's bytes and hands them back over a channel when the
/// flow finishes (used for NFS block reads).
pub struct ChannelSink {
    buf: Vec<u8>,
    tx: Option<crossbeam::channel::Sender<Vec<u8>>>,
}

impl ChannelSink {
    /// Creates the sink and its receiving end.
    pub fn new() -> (Self, crossbeam::channel::Receiver<Vec<u8>>) {
        let (tx, rx) = crossbeam::channel::bounded(1);
        (
            Self {
                buf: Vec::new(),
                tx: Some(tx),
            },
            rx,
        )
    }
}

impl DataSink for ChannelSink {
    fn write_chunk(&mut self, data: &[u8]) -> io::Result<()> {
        self.buf.extend_from_slice(data);
        Ok(())
    }

    fn finish(&mut self) -> io::Result<()> {
        if let Some(tx) = self.tx.take() {
            let _ = tx.send(std::mem::take(&mut self.buf));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dispatcher() -> Dispatcher {
        Dispatcher::new(&NestConfig::ephemeral("test")).unwrap()
    }

    fn alice() -> Principal {
        Principal::user("alice")
    }

    #[test]
    fn sync_requests_roundtrip() {
        let d = dispatcher();
        let who = alice();
        assert_eq!(
            d.execute_sync(&who, "chirp", &NestRequest::Mkdir { path: "/d".into() }),
            NestResponse::Ok
        );
        assert_eq!(
            d.execute_sync(
                &who,
                "chirp",
                &NestRequest::ListDir {
                    path: "/".into(),
                    prefix: None,
                    delimiter: None
                }
            ),
            NestResponse::OkText(vec!["d".into()])
        );
        assert_eq!(
            d.execute_sync(&who, "chirp", &NestRequest::Rmdir { path: "/d".into() }),
            NestResponse::Ok
        );
        // Errors map to protocol-independent classes.
        assert_eq!(
            d.execute_sync(
                &who,
                "chirp",
                &NestRequest::Stat {
                    path: "/gone".into()
                }
            ),
            NestResponse::Error(NestError::NotFound)
        );
        d.shutdown();
    }

    #[test]
    fn lot_lifecycle_through_dispatcher() {
        let d = dispatcher();
        let who = alice();
        let resp = d.execute_sync(
            &who,
            "chirp",
            &NestRequest::LotCreate {
                capacity: 1000,
                duration: 3600,
            },
        );
        let id = match resp {
            NestResponse::OkLot(id) => id,
            other => panic!("{:?}", other),
        };
        assert_eq!(
            d.execute_sync(&who, "chirp", &NestRequest::LotRenew { id, extra: 60 }),
            NestResponse::Ok
        );
        match d.execute_sync(&who, "chirp", &NestRequest::LotList) {
            NestResponse::OkText(lines) => assert_eq!(lines.len(), 1),
            other => panic!("{:?}", other),
        }
        assert_eq!(
            d.execute_sync(&who, "chirp", &NestRequest::LotTerminate { id }),
            NestResponse::Ok
        );
        d.shutdown();
    }

    #[test]
    fn put_then_get_via_transfer_manager() {
        let d = dispatcher();
        let who = alice();
        d.execute_sync(
            &who,
            "chirp",
            &NestRequest::LotCreate {
                capacity: 1 << 20,
                duration: 3600,
            },
        );
        let payload = vec![42u8; 100_000];
        let vpath = d
            .admit_put(&who, "chirp", "/data", Some(payload.len() as u64))
            .unwrap();
        let moved = d
            .transfer_put(
                &who,
                "chirp",
                &vpath,
                Box::new(io::Cursor::new(payload.clone())),
                Some(payload.len() as u64),
            )
            .unwrap();
        assert_eq!(moved, payload.len() as u64);

        let (vpath, size, _cached) = d.admit_get(&who, "chirp", "/data").unwrap();
        assert_eq!(size, payload.len() as u64);
        let (sink, rx) = ChannelSink::new();
        d.transfer_get(&who, "chirp", &vpath, size, false, Box::new(sink))
            .unwrap();
        assert_eq!(rx.recv().unwrap(), payload);
        d.shutdown();
    }

    #[test]
    fn cache_model_predicts_second_read_resident() {
        let d = dispatcher();
        let who = alice();
        d.execute_sync(
            &who,
            "chirp",
            &NestRequest::LotCreate {
                capacity: 1 << 20,
                duration: 3600,
            },
        );
        let vpath = d.admit_put(&who, "chirp", "/hot", Some(1000)).unwrap();
        d.transfer_put(
            &who,
            "chirp",
            &vpath,
            Box::new(io::Cursor::new(vec![1u8; 1000])),
            Some(1000),
        )
        .unwrap();
        // After the put, the cache model holds the file.
        let (_, _, cached) = d.admit_get(&who, "chirp", "/hot").unwrap();
        assert!(cached);
        d.shutdown();
    }

    #[test]
    fn nfs_block_read_write_through_flows() {
        let d = dispatcher();
        let who = alice();
        d.execute_sync(
            &who,
            "chirp",
            &NestRequest::LotCreate {
                capacity: 1 << 20,
                duration: 3600,
            },
        );
        let vpath = d.admit_put(&who, "nfs", "/blocks", Some(0)).unwrap();
        d.write_block(&who, "nfs", &vpath, 0, vec![7u8; 8192])
            .unwrap();
        d.write_block(&who, "nfs", &vpath, 8192, vec![8u8; 100])
            .unwrap();
        let block = d.read_block(&who, "nfs", &vpath, 0, 8192).unwrap();
        assert_eq!(block, vec![7u8; 8192]);
        let tail = d.read_block(&who, "nfs", &vpath, 8192, 8192).unwrap();
        assert_eq!(tail, vec![8u8; 100]);
        d.shutdown();
    }

    #[test]
    fn setacl_getacl_via_common_requests() {
        let d = dispatcher();
        let who = alice();
        assert_eq!(
            d.execute_sync(
                &who,
                "chirp",
                &NestRequest::SetAcl {
                    path: "/".into(),
                    principal: "user:bob".into(),
                    rights: "rl".into(),
                }
            ),
            NestResponse::Ok
        );
        match d.execute_sync(&who, "chirp", &NestRequest::GetAcl { path: "/".into() }) {
            NestResponse::OkText(lines) => {
                assert!(lines
                    .iter()
                    .any(|l| l.contains("user:bob") && l.contains("rl")));
            }
            other => panic!("{:?}", other),
        }
        d.shutdown();
    }

    #[test]
    fn storage_ad_lists_protocols() {
        let d = dispatcher();
        let ad = d.storage_ad(&["chirp", "nfs"]);
        assert_eq!(ad.eval("Name"), nest_classad::Value::str("test"));
        d.shutdown();
    }

    #[test]
    fn put_without_lot_is_no_space() {
        let d = dispatcher();
        match d.admit_put(&alice(), "chirp", "/f", Some(10)) {
            Err(NestError::NoSpace) => {}
            other => panic!("{:?}", other),
        }
        d.shutdown();
    }
}
