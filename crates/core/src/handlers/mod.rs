//! Protocol handlers: the server side of the virtual protocol layer.
//!
//! Each handler owns one client connection, performs protocol-specific
//! authentication ("since the authentication mechanism is protocol
//! specific, each protocol handler performs its own authentication of
//! clients"), parses the wire format into the common request interface,
//! and routes through the shared [`crate::dispatcher::Dispatcher`].

pub mod chirp;
pub mod ftp;
pub mod http;
pub mod ibp;
pub mod nfs;
