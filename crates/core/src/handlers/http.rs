//! The HTTP protocol handler (anonymous access only, per the paper).

use crate::dispatcher::{Dispatcher, LimitedStreamSource};
use crate::session::{Await, SessionCtx};
use nest_proto::http::{
    render_response_head, status_for_error, HttpMethod, HttpRequestHead, HttpResponseHead,
};
use nest_proto::request::{NestError, NestRequest, NestResponse};
use nest_storage::Principal;
use std::io::{self, Write};
use std::net::TcpStream;
use std::sync::Arc;

const PROTOCOL: &str = "http";

/// Serves one persistent HTTP connection until close, drain, or idle reap.
pub fn handle_conn(
    dispatcher: &Arc<Dispatcher>,
    mut stream: TcpStream,
    ctx: &SessionCtx,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    let who = Principal::anonymous();
    loop {
        match ctx.await_request(&stream)? {
            Await::Ready => {}
            _ => return Ok(()),
        }
        let Some(head) = HttpRequestHead::read(&mut stream)? else {
            return Ok(());
        };
        match head.method {
            HttpMethod::Get if head.path == "/nest/stats" => {
                // The monitoring endpoint: flat `name value` text lines,
                // served before any storage-manager admission so it works
                // without a lot and never appears in transfer statistics.
                let body = dispatcher.metrics_snapshot().render_text();
                let resp = HttpResponseHead::with_length(200, "OK", body.len() as u64);
                stream.write_all(render_response_head(&resp).as_bytes())?;
                stream.write_all(body.as_bytes())?;
            }
            HttpMethod::Get => {
                match dispatcher.admit_get(&who, PROTOCOL, &head.path) {
                    Err(NestError::Invalid) => {
                        // GET on a directory: serve a plain-text index, as
                        // 2002 file servers did.
                        match dispatcher.execute_sync(
                            &who,
                            PROTOCOL,
                            &NestRequest::ListDir {
                                path: head.path.clone(),
                                prefix: None,
                                delimiter: None,
                            },
                        ) {
                            NestResponse::OkText(names) => {
                                let mut body = String::new();
                                for name in names {
                                    body.push_str(&name);
                                    body.push('\n');
                                }
                                let resp =
                                    HttpResponseHead::with_length(200, "OK", body.len() as u64);
                                stream.write_all(render_response_head(&resp).as_bytes())?;
                                stream.write_all(body.as_bytes())?;
                            }
                            NestResponse::Error(e) => send_error(&mut stream, e)?,
                            _ => send_error(&mut stream, NestError::Internal)?,
                        }
                    }
                    Err(e) => send_error(&mut stream, e)?,
                    Ok((vpath, size, cached)) => {
                        // Header + first chunk leave in one writev; the
                        // rest of the body takes the sendfile fast path
                        // when the source can lend a raw window.
                        let resp = HttpResponseHead::with_length(200, "OK", size);
                        let head = render_response_head(&resp).into_bytes();
                        let sink = dispatcher.socket_sink(stream.try_clone()?, head);
                        dispatcher.transfer_get(&who, PROTOCOL, &vpath, size, cached, sink)?;
                    }
                }
            }
            HttpMethod::Head => {
                match dispatcher.execute_sync(
                    &who,
                    PROTOCOL,
                    &NestRequest::Stat {
                        path: head.path.clone(),
                    },
                ) {
                    NestResponse::OkSize(size) => {
                        let resp = HttpResponseHead::with_length(200, "OK", size);
                        stream.write_all(render_response_head(&resp).as_bytes())?;
                    }
                    NestResponse::Error(e) => send_error(&mut stream, e)?,
                    _ => send_error(&mut stream, NestError::Internal)?,
                }
            }
            HttpMethod::Put => {
                let Some(length) = head.content_length() else {
                    // 411 Length Required: we do not accept chunked bodies.
                    let resp = HttpResponseHead::with_length(411, "Length Required", 0);
                    stream.write_all(render_response_head(&resp).as_bytes())?;
                    continue;
                };
                match dispatcher.admit_put(&who, PROTOCOL, &head.path, Some(length)) {
                    Err(e) => {
                        // Must drain the body to keep the connection in sync.
                        drain(&mut stream, length)?;
                        send_error(&mut stream, e)?;
                    }
                    Ok(vpath) => {
                        let source =
                            Box::new(LimitedStreamSource::new(stream.try_clone()?, length));
                        match dispatcher.transfer_put(&who, PROTOCOL, &vpath, source, Some(length))
                        {
                            Ok(_) => {
                                let resp = HttpResponseHead::with_length(201, "Created", 0);
                                stream.write_all(render_response_head(&resp).as_bytes())?;
                            }
                            Err(e) if e.kind() == io::ErrorKind::StorageFull => {
                                send_error(&mut stream, NestError::NoSpace)?;
                                return Ok(()); // body may be half-read; drop conn
                            }
                            Err(e) => return Err(e),
                        }
                    }
                }
            }
            HttpMethod::Delete => {
                match dispatcher.execute_sync(
                    &who,
                    PROTOCOL,
                    &NestRequest::Delete {
                        path: head.path.clone(),
                    },
                ) {
                    NestResponse::Ok => {
                        let resp = HttpResponseHead::with_length(204, "No Content", 0);
                        stream.write_all(render_response_head(&resp).as_bytes())?;
                    }
                    NestResponse::Error(e) => send_error(&mut stream, e)?,
                    _ => send_error(&mut stream, NestError::Internal)?,
                }
            }
        }
        stream.flush()?;
    }
}

fn send_error(stream: &mut TcpStream, e: NestError) -> io::Result<()> {
    let (status, reason) = status_for_error(e);
    let resp = HttpResponseHead::with_length(status, reason, 0);
    stream.write_all(render_response_head(&resp).as_bytes())
}

fn drain(stream: &mut TcpStream, length: u64) -> io::Result<()> {
    nest_proto::wire::copy_exact(stream, &mut io::sink(), length, 64 * 1024)
}
