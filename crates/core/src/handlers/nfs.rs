//! The NFS (and MOUNT) protocol handler, served over ONC RPC.
//!
//! Per the paper, NFS connections get anonymous access only; a default lot
//! for the anonymous user (or a Chirp-created one) must back NFS writes.
//! Every READ/WRITE block is routed through the transfer manager as its
//! own flow, so cross-protocol scheduling policies see NFS traffic.

use crate::dispatcher::Dispatcher;
use crate::fhtable::FhTable;
use nest_proto::nfs::types::{FileHandle, NfsAttr, NfsStat};
use nest_proto::nfs::wire::{
    mountproc, proc, AttrStat, CreateArgs, DirEntry, DirOpArgs, DirOpRes, FhStatus, ReadArgs,
    ReadDirArgs, ReadDirRes, ReadRes, RenameArgs, SetAttrArgs, WriteArgs,
};
use nest_proto::request::NestError;
use nest_storage::backend::FileKind;
use nest_storage::{Principal, VPath};
use nest_sunrpc::rpc::{AcceptStat, CallBody};
use nest_sunrpc::server::RpcHandler;
use nest_sunrpc::xdr::{XdrDecoder, XdrEncoder};
use std::net::SocketAddr;
use std::sync::Arc;

const PROTOCOL: &str = "nfs";

/// The NFS dialect's `NestError` mapping (exposed for the protocol-front
/// error-surface contract).
pub fn nfs_stat_for(e: NestError) -> NfsStat {
    match e {
        NestError::Denied => NfsStat::Acces,
        NestError::NotFound => NfsStat::NoEnt,
        NestError::Exists => NfsStat::Exist,
        NestError::NoSpace => NfsStat::Dquot,
        NestError::BadRequest => NfsStat::Io,
        NestError::Invalid => NfsStat::NotDir,
        NestError::Internal => NfsStat::Io,
    }
}

/// The NFS program handler.
pub struct NfsHandler {
    dispatcher: Arc<Dispatcher>,
    fhs: Arc<FhTable>,
}

impl NfsHandler {
    /// Creates a handler sharing the appliance's handle table.
    pub fn new(dispatcher: Arc<Dispatcher>, fhs: Arc<FhTable>) -> Self {
        Self { dispatcher, fhs }
    }

    fn who(&self) -> Principal {
        // The paper's configuration: NFS is anonymous-only.
        Principal::anonymous()
    }

    fn resolve(&self, fh: &FileHandle) -> Result<VPath, NfsStat> {
        self.fhs.resolve(fh).ok_or(NfsStat::Stale)
    }

    fn attr_for(&self, path: &VPath) -> Result<NfsAttr, NfsStat> {
        let st = self
            .dispatcher
            .storage()
            .stat(&self.who(), PROTOCOL, path)
            .map_err(|e| nfs_stat_for(NestError::from(&e)))?;
        let fileid = self.fhs.fileid(path);
        Ok(match st.kind {
            FileKind::File => NfsAttr::file(st.size.min(u32::MAX as u64) as u32, fileid),
            FileKind::Dir => NfsAttr::dir(fileid),
        })
    }

    fn getattr(&self, d: &mut XdrDecoder<'_>) -> Result<Vec<u8>, AcceptStat> {
        let fh = FileHandle::decode(d).map_err(|_| AcceptStat::GarbageArgs)?;
        let res = match self.resolve(&fh).and_then(|p| self.attr_for(&p)) {
            Ok(attr) => AttrStat::ok(attr),
            Err(status) => AttrStat::err(status),
        };
        let mut e = XdrEncoder::new();
        res.encode(&mut e);
        Ok(e.into_bytes())
    }

    fn setattr(&self, d: &mut XdrDecoder<'_>) -> Result<Vec<u8>, AcceptStat> {
        let args = SetAttrArgs::decode(d).map_err(|_| AcceptStat::GarbageArgs)?;
        let res = (|| {
            let path = self.resolve(&args.fh)?;
            if let Some(size) = args.size {
                // Truncation is a write-class operation: re-admit through
                // the storage manager so ACLs and lot accounting apply.
                let sm = self.dispatcher.storage();
                sm.backend()
                    .truncate(&path, size as u64)
                    .map_err(|_| NfsStat::Io)?;
                if size == 0 {
                    sm.lot_manager().release_file(&path);
                }
            }
            self.attr_for(&path)
        })()
        .map_or_else(AttrStat::err, AttrStat::ok);
        let mut e = XdrEncoder::new();
        res.encode(&mut e);
        Ok(e.into_bytes())
    }

    fn lookup(&self, d: &mut XdrDecoder<'_>) -> Result<Vec<u8>, AcceptStat> {
        let args = DirOpArgs::decode(d).map_err(|_| AcceptStat::GarbageArgs)?;
        let res = (|| {
            let dir = self.resolve(&args.dir)?;
            let path = dir.join(&args.name).map_err(|_| NfsStat::NoEnt)?;
            let attr = self.attr_for(&path)?;
            Ok::<_, NfsStat>(DirOpRes::ok(self.fhs.handle_for(&path), attr))
        })()
        .unwrap_or_else(DirOpRes::err);
        let mut e = XdrEncoder::new();
        res.encode(&mut e);
        Ok(e.into_bytes())
    }

    fn read(&self, d: &mut XdrDecoder<'_>) -> Result<Vec<u8>, AcceptStat> {
        let args = ReadArgs::decode(d).map_err(|_| AcceptStat::GarbageArgs)?;
        let res = (|| {
            let path = self.resolve(&args.fh)?;
            let count = args.count.min(nest_proto::nfs::NFS_BLOCK_SIZE) as usize;
            let data = self
                .dispatcher
                .read_block(&self.who(), PROTOCOL, &path, args.offset as u64, count)
                .map_err(nfs_stat_for)?;
            let attr = self.attr_for(&path)?;
            Ok::<_, NfsStat>(ReadRes {
                status: NfsStat::Ok,
                attr: Some(attr),
                data,
            })
        })()
        .unwrap_or_else(|status| ReadRes {
            status,
            attr: None,
            data: Vec::new(),
        });
        let mut e = XdrEncoder::new();
        res.encode(&mut e);
        Ok(e.into_bytes())
    }

    fn write(&self, d: &mut XdrDecoder<'_>) -> Result<Vec<u8>, AcceptStat> {
        let args = WriteArgs::decode(d).map_err(|_| AcceptStat::GarbageArgs)?;
        let res = (|| {
            let path = self.resolve(&args.fh)?;
            self.dispatcher
                .write_block(&self.who(), PROTOCOL, &path, args.offset as u64, args.data)
                .map_err(nfs_stat_for)?;
            let attr = self.attr_for(&path)?;
            Ok::<_, NfsStat>(AttrStat::ok(attr))
        })()
        .unwrap_or_else(AttrStat::err);
        let mut e = XdrEncoder::new();
        res.encode(&mut e);
        Ok(e.into_bytes())
    }

    fn create(&self, d: &mut XdrDecoder<'_>, mkdir: bool) -> Result<Vec<u8>, AcceptStat> {
        let args = CreateArgs::decode(d).map_err(|_| AcceptStat::GarbageArgs)?;
        let res = (|| {
            let dir = self.resolve(&args.wher.dir)?;
            let path = dir.join(&args.wher.name).map_err(|_| NfsStat::Io)?;
            if mkdir {
                self.dispatcher
                    .storage()
                    .mkdir(&self.who(), PROTOCOL, &path)
                    .map_err(|e| nfs_stat_for(NestError::from(&e)))?;
            } else {
                self.dispatcher
                    .storage()
                    .begin_put(&self.who(), PROTOCOL, &path, 0)
                    .map_err(|e| nfs_stat_for(NestError::from(&e)))?;
            }
            let attr = self.attr_for(&path)?;
            Ok::<_, NfsStat>(DirOpRes::ok(self.fhs.handle_for(&path), attr))
        })()
        .unwrap_or_else(DirOpRes::err);
        let mut e = XdrEncoder::new();
        res.encode(&mut e);
        Ok(e.into_bytes())
    }

    fn remove(&self, d: &mut XdrDecoder<'_>, rmdir: bool) -> Result<Vec<u8>, AcceptStat> {
        let args = DirOpArgs::decode(d).map_err(|_| AcceptStat::GarbageArgs)?;
        let status = (|| {
            let dir = self.resolve(&args.dir)?;
            let path = dir.join(&args.name).map_err(|_| NfsStat::NoEnt)?;
            let sm = self.dispatcher.storage();
            let result = if rmdir {
                sm.rmdir(&self.who(), PROTOCOL, &path)
            } else {
                sm.remove(&self.who(), PROTOCOL, &path)
            };
            result.map_err(|e| nfs_stat_for(NestError::from(&e)))?;
            self.fhs.forget(&path);
            Ok::<_, NfsStat>(NfsStat::Ok)
        })()
        .unwrap_or_else(|s| s);
        let mut e = XdrEncoder::new();
        e.put_u32(status as u32);
        Ok(e.into_bytes())
    }

    fn rename(&self, d: &mut XdrDecoder<'_>) -> Result<Vec<u8>, AcceptStat> {
        let args = RenameArgs::decode(d).map_err(|_| AcceptStat::GarbageArgs)?;
        let status = (|| {
            let from_dir = self.resolve(&args.from.dir)?;
            let to_dir = self.resolve(&args.to.dir)?;
            let from = from_dir.join(&args.from.name).map_err(|_| NfsStat::NoEnt)?;
            let to = to_dir.join(&args.to.name).map_err(|_| NfsStat::Io)?;
            self.dispatcher
                .storage()
                .rename(&self.who(), PROTOCOL, &from, &to)
                .map_err(|e| nfs_stat_for(NestError::from(&e)))?;
            self.fhs.rename(&from, &to);
            Ok::<_, NfsStat>(NfsStat::Ok)
        })()
        .unwrap_or_else(|s| s);
        let mut e = XdrEncoder::new();
        e.put_u32(status as u32);
        Ok(e.into_bytes())
    }

    fn readdir(&self, d: &mut XdrDecoder<'_>) -> Result<Vec<u8>, AcceptStat> {
        let args = ReadDirArgs::decode(d).map_err(|_| AcceptStat::GarbageArgs)?;
        let res = (|| {
            let dir = self.resolve(&args.fh)?;
            let names = self
                .dispatcher
                .storage()
                .list(&self.who(), PROTOCOL, &dir)
                .map_err(|e| nfs_stat_for(NestError::from(&e)))?;
            // Cookie = index into the listing (1-based); "." and ".." first.
            let mut all: Vec<(u32, String)> = Vec::with_capacity(names.len() + 2);
            all.push((self.fhs.fileid(&dir), ".".to_owned()));
            let parent = dir.parent().unwrap_or_else(VPath::root);
            all.push((self.fhs.fileid(&parent), "..".to_owned()));
            for name in names {
                let child = dir.join(&name).map_err(|_| NfsStat::Io)?;
                all.push((self.fhs.fileid(&child), name));
            }
            let start = args.cookie as usize;
            let mut entries = Vec::new();
            let mut budget = args.count.max(512) as usize;
            let mut idx = start;
            while idx < all.len() && budget > 0 {
                let (fileid, name) = &all[idx];
                budget = budget.saturating_sub(16 + name.len());
                entries.push(DirEntry {
                    fileid: *fileid,
                    name: name.clone(),
                    cookie: (idx + 1) as u32,
                });
                idx += 1;
            }
            Ok::<_, NfsStat>(ReadDirRes {
                status: NfsStat::Ok,
                entries,
                eof: idx >= all.len(),
            })
        })()
        .unwrap_or_else(|status| ReadDirRes {
            status,
            entries: Vec::new(),
            eof: true,
        });
        let mut e = XdrEncoder::new();
        res.encode(&mut e);
        Ok(e.into_bytes())
    }

    fn statfs(&self, d: &mut XdrDecoder<'_>) -> Result<Vec<u8>, AcceptStat> {
        let _fh = FileHandle::decode(d).map_err(|_| AcceptStat::GarbageArgs)?;
        let lm = self.dispatcher.storage().lot_manager();
        let total = lm.total_capacity();
        let now = 0; // reservable(now=0) is a lower bound; fine for statfs
        let free = lm.reservable(now);
        let mut e = XdrEncoder::new();
        e.put_u32(NfsStat::Ok as u32);
        e.put_u32(nest_proto::nfs::NFS_BLOCK_SIZE); // tsize
        e.put_u32(512); // bsize
        e.put_u32((total / 512) as u32); // blocks
        e.put_u32((free / 512) as u32); // bfree
        e.put_u32((free / 512) as u32); // bavail
        Ok(e.into_bytes())
    }
}

impl RpcHandler for NfsHandler {
    fn handle(&self, call: &CallBody, _peer: SocketAddr) -> Result<Vec<u8>, AcceptStat> {
        let mut d = XdrDecoder::new(&call.args);
        match call.proc {
            proc::NULL => Ok(Vec::new()),
            proc::GETATTR => self.getattr(&mut d),
            proc::SETATTR => self.setattr(&mut d),
            proc::LOOKUP => self.lookup(&mut d),
            proc::READ => self.read(&mut d),
            // nestlint: allow(raw-socket-write): NFS WRITE proc dispatch, not stream I/O
            proc::WRITE => self.write(&mut d),
            proc::CREATE => self.create(&mut d, false),
            proc::MKDIR => self.create(&mut d, true),
            proc::REMOVE => self.remove(&mut d, false),
            proc::RMDIR => self.remove(&mut d, true),
            proc::RENAME => self.rename(&mut d),
            proc::READDIR => self.readdir(&mut d),
            proc::STATFS => self.statfs(&mut d),
            _ => Err(AcceptStat::ProcUnavail),
        }
    }
}

/// The MOUNT program handler ("within NeST, mount is handled by the NFS
/// handler" — here a sibling sharing the same handle table).
pub struct MountHandler {
    fhs: Arc<FhTable>,
}

impl MountHandler {
    /// Creates a handler over the shared handle table.
    pub fn new(fhs: Arc<FhTable>) -> Self {
        Self { fhs }
    }
}

impl RpcHandler for MountHandler {
    fn handle(&self, call: &CallBody, _peer: SocketAddr) -> Result<Vec<u8>, AcceptStat> {
        match call.proc {
            mountproc::NULL => Ok(Vec::new()),
            mountproc::MNT => {
                let mut d = XdrDecoder::new(&call.args);
                let _dirpath = d.get_str().map_err(|_| AcceptStat::GarbageArgs)?;
                // NeST exports a single virtual root.
                let st = FhStatus {
                    status: 0,
                    fh: Some(self.fhs.root()),
                };
                let mut e = XdrEncoder::new();
                st.encode(&mut e);
                Ok(e.into_bytes())
            }
            mountproc::UMNT => Ok(Vec::new()),
            _ => Err(AcceptStat::ProcUnavail),
        }
    }
}
