//! The Chirp protocol handler.

use crate::dispatcher::{Dispatcher, LimitedStreamSource, StreamSink};
use crate::session::{Await, SessionCtx};
use nest_proto::chirp::{format_response, parse_command, status_line, ChirpCommand};
use nest_proto::request::{NestError, NestRequest, NestResponse};
use nest_proto::wire::{read_line, write_line};
use nest_storage::Principal;
use std::io;
use std::net::TcpStream;
use std::sync::Arc;

const PROTOCOL: &str = "chirp";

/// Serves one Chirp connection until QUIT, EOF, drain, or idle reap.
pub fn handle_conn(
    dispatcher: &Arc<Dispatcher>,
    mut stream: TcpStream,
    ctx: &SessionCtx,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    let mut who = Principal::anonymous();
    loop {
        // Between requests: wait for bytes, the drain signal, or the idle
        // deadline (the session layer classifies the close from these).
        match ctx.await_request(&stream)? {
            Await::Ready => {}
            _ => return Ok(()),
        }
        let Some(line) = read_line(&mut stream)? else {
            return Ok(());
        };
        if line.is_empty() {
            continue;
        }
        match parse_command(&line) {
            None => {
                write_line(
                    &mut stream,
                    &status_line(&NestResponse::Error(NestError::BadRequest)),
                )?;
            }
            Some(ChirpCommand::Version) => {
                write_line(&mut stream, "0 nest-chirp/0.9")?;
            }
            Some(ChirpCommand::Stats) => {
                // Session-level, like `version`: rendered metrics lines.
                let text = dispatcher.metrics_snapshot().render_text();
                let lines: Vec<String> = text.lines().map(str::to_owned).collect();
                for out in format_response(&NestResponse::OkText(lines)) {
                    write_line(&mut stream, &out)?;
                }
            }
            Some(ChirpCommand::Auth(cred)) => match dispatcher.authenticate(&cred) {
                Ok(principal) => {
                    let user = principal.user.clone();
                    who = principal;
                    write_line(&mut stream, &format!("0 {}", user))?;
                }
                Err(_) => {
                    write_line(
                        &mut stream,
                        &status_line(&NestResponse::Error(NestError::Denied)),
                    )?;
                }
            },
            Some(ChirpCommand::Request(NestRequest::Quit)) => {
                write_line(&mut stream, "0 bye")?;
                return Ok(());
            }
            Some(ChirpCommand::Request(NestRequest::Get { path })) => {
                handle_get(dispatcher, &who, &mut stream, &path)?;
            }
            Some(ChirpCommand::Request(NestRequest::Put { path, size })) => {
                handle_put(dispatcher, &who, &mut stream, &path, size.unwrap_or(0))?;
            }
            Some(ChirpCommand::Request(NestRequest::ThirdParty { src, dst })) => {
                let resp = match dispatcher.third_party(&src, &dst) {
                    Ok(()) => NestResponse::Ok,
                    Err(e) => NestResponse::Error(e),
                };
                write_line(&mut stream, &status_line(&resp))?;
            }
            Some(ChirpCommand::Request(req)) => {
                let resp = dispatcher.execute_sync(&who, PROTOCOL, &req);
                for out in format_response(&resp) {
                    write_line(&mut stream, &out)?;
                }
            }
        }
    }
}

fn handle_get(
    dispatcher: &Arc<Dispatcher>,
    who: &Principal,
    stream: &mut TcpStream,
    path: &str,
) -> io::Result<()> {
    match dispatcher.admit_get(who, PROTOCOL, path) {
        Err(e) => write_line(stream, &status_line(&NestResponse::Error(e))),
        Ok((vpath, size, cached)) => {
            write_line(stream, &format!("0 {}", size))?;
            // The transfer manager moves the bytes; the handler "stops
            // listening on the client channel" until it finishes.
            let sink = Box::new(StreamSink::new(stream.try_clone()?));
            match dispatcher.transfer_get(who, PROTOCOL, &vpath, size, cached, sink) {
                Ok(_) => Ok(()),
                // Mid-stream failure: the byte count promise is broken, so
                // the only safe option is closing the connection.
                Err(e) => Err(e),
            }
        }
    }
}

fn handle_put(
    dispatcher: &Arc<Dispatcher>,
    who: &Principal,
    stream: &mut TcpStream,
    path: &str,
    size: u64,
) -> io::Result<()> {
    match dispatcher.admit_put(who, PROTOCOL, path, Some(size)) {
        Err(e) => write_line(stream, &status_line(&NestResponse::Error(e))),
        Ok(vpath) => {
            write_line(stream, "0 ready")?;
            let source = Box::new(LimitedStreamSource::new(stream.try_clone()?, size));
            match dispatcher.transfer_put(who, PROTOCOL, &vpath, source, Some(size)) {
                Ok(_) => write_line(stream, &status_line(&NestResponse::Ok)),
                Err(e) if e.kind() == io::ErrorKind::StorageFull => write_line(
                    stream,
                    &status_line(&NestResponse::Error(NestError::NoSpace)),
                ),
                Err(_) => write_line(
                    stream,
                    &status_line(&NestResponse::Error(NestError::Internal)),
                ),
            }
        }
    }
}
