//! The FTP and GridFTP protocol handler.
//!
//! One handler serves both: the GridFTP listener sets `gridftp: true`,
//! enabling the `AUTH GSSAPI`/`ADAT` handshake, `MODE E` extended block
//! mode, and parallel data streams. The plain FTP listener allows only
//! anonymous stream-mode sessions, matching the paper's configuration.

use crate::dispatcher::{Dispatcher, StreamSink, StreamSource};
use crate::session::{Await, SessionCtx};
use nest_proto::ftp::{format_pasv_reply, parse_command, FtpCommand, FtpReply};
use nest_proto::gridftp::modee::{recv_striped, OffsetSink, DESC_EOD, DESC_EOF};
use nest_proto::gridftp::write_block;
use nest_proto::gsi::Credential;
use nest_proto::request::{NestError, NestRequest, NestResponse};
use nest_proto::wire::{read_line, write_line};
use nest_storage::{Principal, StorageManager, VPath};
use nest_transfer::flow::DataSink;
use parking_lot::Mutex;
use std::io::{self, Write};
use std::net::{SocketAddrV4, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Session {
    who: Principal,
    logged_in: bool,
    cwd: VPath,
    pasv: Option<TcpListener>,
    port_addr: Option<SocketAddrV4>,
    rnfr: Option<String>,
    mode_e: bool,
    parallelism: u32,
    gridftp: bool,
    awaiting_adat: bool,
}

impl Session {
    fn protocol(&self) -> &'static str {
        if self.gridftp {
            "gridftp"
        } else {
            "ftp"
        }
    }

    fn resolve(&self, arg: &str) -> Result<String, NestError> {
        self.cwd
            .join(arg)
            .map(|p| p.to_string())
            .map_err(|_| NestError::BadRequest)
    }
}

/// Serves one FTP (or GridFTP, when `gridftp`) control connection.
pub fn handle_conn(
    dispatcher: &Arc<Dispatcher>,
    mut stream: TcpStream,
    gridftp: bool,
    ctx: &SessionCtx,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    let mut session = Session {
        who: Principal::anonymous(),
        logged_in: false,
        cwd: VPath::root(),
        pasv: None,
        port_addr: None,
        rnfr: None,
        mode_e: false,
        parallelism: 1,
        gridftp,
        awaiting_adat: false,
    };
    reply(&mut stream, 220, "NeST FTP service ready")?;
    loop {
        match ctx.await_request(&stream)? {
            Await::Ready => {}
            _ => return Ok(()),
        }
        let Some(line) = read_line(&mut stream)? else {
            return Ok(());
        };
        if line.is_empty() {
            continue;
        }
        let cmd = parse_command(&line);
        if matches!(cmd, FtpCommand::Quit) {
            reply(&mut stream, 221, "Goodbye")?;
            return Ok(());
        }
        handle_command(dispatcher, &mut session, &mut stream, cmd)?;
    }
}

fn reply(stream: &mut TcpStream, code: u16, text: &str) -> io::Result<()> {
    write_line(stream, &FtpReply::new(code, text).to_string())
}

fn reply_error(stream: &mut TcpStream, e: NestError) -> io::Result<()> {
    let (code, text) = match e {
        NestError::Denied => (550, "Permission denied"),
        NestError::NotFound => (550, "No such file or directory"),
        NestError::Exists => (553, "Already exists"),
        NestError::NoSpace => (452, "Insufficient storage space"),
        NestError::BadRequest => (501, "Syntax error in parameters"),
        NestError::Invalid => (550, "Requested action not taken"),
        NestError::Internal => (451, "Local error in processing"),
    };
    reply(stream, code, text)
}

fn handle_command(
    dispatcher: &Arc<Dispatcher>,
    s: &mut Session,
    stream: &mut TcpStream,
    cmd: FtpCommand,
) -> io::Result<()> {
    match cmd {
        FtpCommand::User(name) => {
            if name.eq_ignore_ascii_case("anonymous") || name.eq_ignore_ascii_case("ftp") {
                reply(stream, 331, "Anonymous login ok, send any password")
            } else if s.who.user == name {
                // GSI-authenticated GridFTP sessions may USER their mapped
                // name.
                s.logged_in = true;
                reply(stream, 230, "User logged in")
            } else {
                reply(stream, 530, "Only anonymous or GSI login is allowed")
            }
        }
        FtpCommand::Pass(_) => {
            s.logged_in = true;
            reply(stream, 230, "User logged in")
        }
        FtpCommand::Syst => reply(stream, 215, "UNIX Type: L8 (NeST)"),
        FtpCommand::Type(_) => reply(stream, 200, "Type set (always binary)"),
        FtpCommand::Noop => reply(stream, 200, "NOOP ok"),
        FtpCommand::Pwd => reply(stream, 257, &format!("\"{}\" is current directory", s.cwd)),
        FtpCommand::Cwd(dir) => match s.cwd.join(&dir) {
            Ok(p) => {
                // The directory must exist and be listable.
                match dispatcher.execute_sync(
                    &s.who,
                    s.protocol(),
                    &NestRequest::ListDir {
                        path: p.to_string(),
                        prefix: None,
                        delimiter: None,
                    },
                ) {
                    NestResponse::OkText(_) => {
                        s.cwd = p;
                        reply(stream, 250, "Directory changed")
                    }
                    NestResponse::Error(e) => reply_error(stream, e),
                    _ => reply_error(stream, NestError::Internal),
                }
            }
            Err(_) => reply_error(stream, NestError::BadRequest),
        },
        FtpCommand::Mode(m) => {
            if m.eq_ignore_ascii_case(&'E') {
                if s.gridftp {
                    s.mode_e = true;
                    reply(stream, 200, "MODE E ok")
                } else {
                    reply(stream, 504, "MODE E requires GridFTP")
                }
            } else {
                s.mode_e = false;
                reply(stream, 200, "MODE S ok")
            }
        }
        FtpCommand::OptsParallelism(n) => {
            if s.gridftp {
                s.parallelism = n.clamp(1, 16);
                reply(stream, 200, "Parallelism set")
            } else {
                reply(stream, 501, "OPTS not supported")
            }
        }
        FtpCommand::AuthGssapi => {
            if s.gridftp {
                s.awaiting_adat = true;
                reply(stream, 334, "ADAT must follow")
            } else {
                reply(stream, 534, "GSI not available on plain FTP")
            }
        }
        FtpCommand::Adat(blob) => {
            if !s.awaiting_adat {
                return reply(stream, 503, "ADAT without AUTH");
            }
            s.awaiting_adat = false;
            let wire = blob.replace('|', " ");
            match Credential::from_wire(&wire) {
                Some(cred) => match dispatcher.authenticate(&cred) {
                    Ok(principal) => {
                        let user = principal.user.clone();
                        s.who = principal;
                        s.logged_in = true;
                        reply(
                            stream,
                            235,
                            &format!("GSSAPI authentication succeeded for {}", user),
                        )
                    }
                    Err(_) => reply(stream, 535, "GSSAPI authentication failed"),
                },
                None => reply(stream, 501, "Malformed ADAT token"),
            }
        }
        FtpCommand::Pasv => {
            let listener = TcpListener::bind((local_ip(stream), 0))?;
            let addr = listener.local_addr()?;
            s.pasv = Some(listener);
            s.port_addr = None;
            write_line(stream, &format_pasv_reply(addr).to_string())
        }
        FtpCommand::Port(addr) => {
            s.port_addr = Some(addr);
            s.pasv = None;
            reply(stream, 200, "PORT ok")
        }
        FtpCommand::Mkd(dir) => {
            let resp = match s.resolve(&dir) {
                Ok(path) => {
                    dispatcher.execute_sync(&s.who, s.protocol(), &NestRequest::Mkdir { path })
                }
                Err(e) => NestResponse::Error(e),
            };
            match resp {
                NestResponse::Ok => reply(stream, 257, &format!("\"{}\" created", dir)),
                NestResponse::Error(e) => reply_error(stream, e),
                _ => reply_error(stream, NestError::Internal),
            }
        }
        FtpCommand::Rmd(dir) => simple(dispatcher, s, stream, &dir, |path| NestRequest::Rmdir {
            path,
        }),
        FtpCommand::Dele(path) => simple(dispatcher, s, stream, &path, |path| {
            NestRequest::Delete { path }
        }),
        FtpCommand::Size(path) => {
            let resp = match s.resolve(&path) {
                Ok(path) => {
                    dispatcher.execute_sync(&s.who, s.protocol(), &NestRequest::Stat { path })
                }
                Err(e) => NestResponse::Error(e),
            };
            match resp {
                NestResponse::OkSize(size) => reply(stream, 213, &size.to_string()),
                NestResponse::Error(e) => reply_error(stream, e),
                _ => reply_error(stream, NestError::Internal),
            }
        }
        FtpCommand::Rnfr(path) => {
            s.rnfr = Some(path);
            reply(stream, 350, "RNFR ok, send RNTO")
        }
        FtpCommand::Rnto(to) => {
            let Some(from) = s.rnfr.take() else {
                return reply(stream, 503, "RNTO without RNFR");
            };
            let resp = match (s.resolve(&from), s.resolve(&to)) {
                (Ok(from), Ok(to)) => {
                    dispatcher.execute_sync(&s.who, s.protocol(), &NestRequest::Rename { from, to })
                }
                _ => NestResponse::Error(NestError::BadRequest),
            };
            match resp {
                NestResponse::Ok => reply(stream, 250, "Rename successful"),
                NestResponse::Error(e) => reply_error(stream, e),
                _ => reply_error(stream, NestError::Internal),
            }
        }
        FtpCommand::List(path) | FtpCommand::Nlst(path) => {
            handle_list(dispatcher, s, stream, path.as_deref())
        }
        FtpCommand::Retr(path) => handle_retr(dispatcher, s, stream, &path),
        FtpCommand::Stor(path) => handle_stor(dispatcher, s, stream, &path),
        FtpCommand::Spas => reply(stream, 502, "SPAS not implemented; use PASV"),
        FtpCommand::Quit => unreachable!("handled by caller"),
        FtpCommand::Unknown(_) => reply(stream, 502, "Command not implemented"),
    }
}

fn simple(
    dispatcher: &Arc<Dispatcher>,
    s: &mut Session,
    stream: &mut TcpStream,
    arg: &str,
    build: impl Fn(String) -> NestRequest,
) -> io::Result<()> {
    let resp = match s.resolve(arg) {
        Ok(path) => dispatcher.execute_sync(&s.who, s.protocol(), &build(path)),
        Err(e) => NestResponse::Error(e),
    };
    match resp {
        NestResponse::Ok => reply(stream, 250, "Requested action okay"),
        NestResponse::Error(e) => reply_error(stream, e),
        _ => reply_error(stream, NestError::Internal),
    }
}

/// The IP clients should connect back to for passive data connections.
fn local_ip(stream: &TcpStream) -> std::net::IpAddr {
    stream
        .local_addr()
        .map(|a| a.ip())
        .unwrap_or_else(|_| std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST))
}

/// Opens the session's data connection(s): accept on the PASV listener or
/// connect out to the PORT address.
fn open_data(s: &mut Session, n: usize) -> io::Result<Vec<TcpStream>> {
    if let Some(listener) = s.pasv.take() {
        listener.set_nonblocking(true)?;
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut conns = Vec::with_capacity(n);
        while conns.len() < n {
            match listener.accept() {
                Ok((conn, _)) => {
                    conn.set_nonblocking(false)?;
                    conn.set_nodelay(true)?;
                    conns.push(conn);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() > deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "data connection not established",
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(e),
            }
        }
        Ok(conns)
    } else if let Some(addr) = s.port_addr {
        let mut conns = Vec::with_capacity(n);
        for _ in 0..n {
            let conn = TcpStream::connect(addr)?;
            conn.set_nodelay(true)?;
            conns.push(conn);
        }
        Ok(conns)
    } else {
        Err(io::Error::new(
            io::ErrorKind::NotConnected,
            "no PASV or PORT data address",
        ))
    }
}

fn handle_list(
    dispatcher: &Arc<Dispatcher>,
    s: &mut Session,
    stream: &mut TcpStream,
    path: Option<&str>,
) -> io::Result<()> {
    let target = match path {
        Some(p) => match s.resolve(p) {
            Ok(t) => t,
            Err(e) => return reply_error(stream, e),
        },
        None => s.cwd.to_string(),
    };
    match dispatcher.execute_sync(
        &s.who,
        s.protocol(),
        &NestRequest::ListDir {
            path: target,
            prefix: None,
            delimiter: None,
        },
    ) {
        NestResponse::OkText(names) => {
            reply(stream, 150, "Opening data connection for listing")?;
            let mut data = match open_data(s, 1) {
                Ok(mut v) => v.remove(0),
                Err(_) => return reply(stream, 425, "Cannot open data connection"),
            };
            for name in names {
                write_line(&mut data, &name)?;
            }
            drop(data);
            reply(stream, 226, "Transfer complete")
        }
        NestResponse::Error(e) => reply_error(stream, e),
        _ => reply_error(stream, NestError::Internal),
    }
}

fn handle_retr(
    dispatcher: &Arc<Dispatcher>,
    s: &mut Session,
    stream: &mut TcpStream,
    path: &str,
) -> io::Result<()> {
    let resolved = match s.resolve(path) {
        Ok(p) => p,
        Err(e) => return reply_error(stream, e),
    };
    match dispatcher.admit_get(&s.who, s.protocol(), &resolved) {
        Err(e) => reply_error(stream, e),
        Ok((vpath, size, cached)) => {
            reply(
                stream,
                150,
                &format!("Opening data connection ({} bytes)", size),
            )?;
            let streams = match open_data(s, if s.mode_e { s.parallelism as usize } else { 1 }) {
                Ok(v) => v,
                Err(_) => return reply(stream, 425, "Cannot open data connection"),
            };
            let sink: Box<dyn DataSink> = if s.mode_e {
                Box::new(ModeESink::new(streams))
            } else {
                Box::new(StreamSink::new(streams.into_iter().next().unwrap()))
            };
            match dispatcher.transfer_get(&s.who, s.protocol(), &vpath, size, cached, sink) {
                Ok(_) => reply(stream, 226, "Transfer complete"),
                Err(_) => reply(stream, 426, "Connection closed; transfer aborted"),
            }
        }
    }
}

fn handle_stor(
    dispatcher: &Arc<Dispatcher>,
    s: &mut Session,
    stream: &mut TcpStream,
    path: &str,
) -> io::Result<()> {
    let resolved = match s.resolve(path) {
        Ok(p) => p,
        Err(e) => return reply_error(stream, e),
    };
    match dispatcher.admit_put(&s.who, s.protocol(), &resolved, None) {
        Err(e) => reply_error(stream, e),
        Ok(vpath) => {
            reply(stream, 150, "Ready to receive data")?;
            let streams = match open_data(s, if s.mode_e { s.parallelism as usize } else { 1 }) {
                Ok(v) => v,
                Err(_) => return reply(stream, 425, "Cannot open data connection"),
            };
            let result: io::Result<u64> = if s.mode_e {
                // MODE E blocks carry offsets and may arrive on any stream;
                // land them directly at their offsets through the storage
                // manager (admission and lot charging already happened).
                let sink: Arc<Mutex<dyn OffsetSink>> = Arc::new(Mutex::named(
                    "core.ftp.sink",
                    600,
                    BackendOffsetSink {
                        storage: Arc::clone(dispatcher.storage()),
                        who: s.who.clone(),
                        path: vpath.clone(),
                    },
                ));
                recv_striped(streams, sink)
            } else {
                let data = streams.into_iter().next().unwrap();
                let source = Box::new(StreamSource::new(data));
                dispatcher.transfer_put(&s.who, s.protocol(), &vpath, source, None)
            };
            match result {
                Ok(_) => reply(stream, 226, "Transfer complete"),
                Err(e) if e.kind() == io::ErrorKind::StorageFull => {
                    reply_error(stream, NestError::NoSpace)
                }
                Err(_) => reply(stream, 426, "Connection closed; transfer aborted"),
            }
        }
    }
}

/// A flow sink that stripes chunks across MODE E data streams.
struct ModeESink {
    streams: Vec<TcpStream>,
    offset: u64,
    turn: usize,
}

impl ModeESink {
    fn new(streams: Vec<TcpStream>) -> Self {
        Self {
            streams,
            offset: 0,
            turn: 0,
        }
    }
}

impl DataSink for ModeESink {
    fn write_chunk(&mut self, data: &[u8]) -> io::Result<()> {
        write_block(&mut self.streams[self.turn], 0, self.offset, data)?;
        self.offset += data.len() as u64;
        self.turn = (self.turn + 1) % self.streams.len();
        Ok(())
    }

    fn finish(&mut self) -> io::Result<()> {
        let n = self.streams.len() as u64;
        write_block(&mut self.streams[0], DESC_EOF, n, &[])?;
        for stream in &mut self.streams {
            write_block(stream, DESC_EOD, 0, &[])?;
            stream.flush()?;
        }
        Ok(())
    }
}

/// Lands MODE E blocks at their offsets through the storage manager.
struct BackendOffsetSink {
    storage: Arc<StorageManager>,
    who: Principal,
    path: VPath,
}

impl OffsetSink for BackendOffsetSink {
    fn write_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()> {
        self.storage
            .write_chunk(&self.who, &self.path, offset, data)
            .map_err(|e| match e {
                nest_storage::StorageError::Lot(_) => {
                    io::Error::new(io::ErrorKind::StorageFull, e.to_string())
                }
                other => io::Error::other(other.to_string()),
            })
    }
}
