//! The IBP depot handler (paper §3 future work; §8 related work).
//!
//! A depot stores byte arrays named by capabilities — deliberately *not*
//! integrated with NeST's file namespace, because that is exactly the
//! contrast the paper draws in §8: "IBP reservations are allocations for
//! byte arrays. This makes it extremely difficult for multiple files to be
//! contained within one allocation." Volatile allocations may be revoked
//! under space pressure; stable allocations may not, and unlike lots they
//! never "switch automatically to best-effort when their duration expires"
//! — an expired IBP allocation is simply gone.

use crate::session::{Await, SessionCtx};
use nest_proto::ibp::{parse_command, Capability, IbpCommand, Reliability, CODE_OK};
use nest_proto::wire::{read_exact_vec, read_line, write_line};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{self, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

/// Error codes on the wire.
const ERR_NOCAP: i32 = -1;
const ERR_FULL: i32 = -2;
const ERR_EXPIRED: i32 = -3;
const ERR_BADREQ: i32 = -4;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum CapKind {
    Read,
    Write,
    Manage,
}

struct Allocation {
    size: u64,
    data: Vec<u8>,
    expires: u64,
    reliability: Reliability,
    created_seq: u64,
}

struct DepotState {
    next_id: u64,
    next_seq: u64,
    allocs: HashMap<u64, Allocation>,
    caps: HashMap<String, (u64, CapKind)>,
}

/// An IBP depot: byte-array storage with capability naming and
/// volatile/stable reliability classes.
pub struct IbpDepot {
    capacity: u64,
    state: Mutex<DepotState>,
    clock: Arc<dyn Fn() -> u64 + Send + Sync>,
}

impl IbpDepot {
    /// Creates a depot over `capacity` bytes, using the system clock.
    pub fn new(capacity: u64) -> Self {
        Self::with_clock(
            capacity,
            Arc::new(|| {
                SystemTime::now()
                    .duration_since(UNIX_EPOCH)
                    .map(|d| d.as_secs())
                    .unwrap_or(0)
            }),
        )
    }

    /// Creates a depot with an injected clock (tests).
    pub fn with_clock(capacity: u64, clock: Arc<dyn Fn() -> u64 + Send + Sync>) -> Self {
        Self {
            capacity,
            state: Mutex::named(
                "core.ibp.depot",
                100,
                DepotState {
                    next_id: 1,
                    next_seq: 1,
                    allocs: HashMap::new(),
                    caps: HashMap::new(),
                },
            ),
            clock,
        }
    }

    fn now(&self) -> u64 {
        (self.clock)()
    }

    /// Reserves an allocation; returns (read, write, manage) capabilities.
    pub fn allocate(
        &self,
        size: u64,
        duration: u64,
        reliability: Reliability,
    ) -> Result<(Capability, Capability, Capability), i32> {
        let now = self.now();
        let mut st = self.state.lock();

        // Expired allocations are reclaimable unconditionally; volatile
        // ones are revocable under pressure (oldest first). Stable live
        // allocations are untouchable — that is IBP's guarantee.
        loop {
            let reserved: u64 = st.allocs.values().map(|a| a.size).sum();
            if reserved + size <= self.capacity {
                break;
            }
            let victim = st
                .allocs
                .iter()
                .filter(|(_, a)| a.expires <= now || a.reliability == Reliability::Volatile)
                .min_by_key(|(id, a)| {
                    // Expired first (0), then volatile by age.
                    let class = u64::from(a.expires > now);
                    (class, a.created_seq, **id)
                })
                .map(|(id, _)| *id);
            match victim {
                Some(id) => Self::drop_alloc(&mut st, id),
                None => return Err(ERR_FULL),
            }
        }

        let id = st.next_id;
        st.next_id += 1;
        let seq = st.next_seq;
        st.next_seq += 1;
        let rcap = Capability::mint(id, "r", rand::random());
        let wcap = Capability::mint(id, "w", rand::random());
        let mcap = Capability::mint(id, "m", rand::random());
        st.caps.insert(rcap.0.clone(), (id, CapKind::Read));
        st.caps.insert(wcap.0.clone(), (id, CapKind::Write));
        st.caps.insert(mcap.0.clone(), (id, CapKind::Manage));
        st.allocs.insert(
            id,
            Allocation {
                size,
                data: Vec::new(),
                expires: now.saturating_add(duration),
                reliability,
                created_seq: seq,
            },
        );
        Ok((rcap, wcap, mcap))
    }

    fn drop_alloc(st: &mut DepotState, id: u64) {
        st.allocs.remove(&id);
        st.caps.retain(|_, (aid, _)| *aid != id);
    }

    fn resolve(&self, cap: &Capability, want: CapKind) -> Result<u64, i32> {
        let st = self.state.lock();
        match st.caps.get(&cap.0) {
            Some((id, kind)) if *kind == want => Ok(*id),
            _ => Err(ERR_NOCAP),
        }
    }

    /// Appends bytes via the write capability; returns the stored total.
    pub fn store(&self, wcap: &Capability, data: &[u8]) -> Result<u64, i32> {
        let id = self.resolve(wcap, CapKind::Write)?;
        let now = self.now();
        let mut st = self.state.lock();
        let alloc = st.allocs.get_mut(&id).ok_or(ERR_NOCAP)?;
        if alloc.expires <= now {
            return Err(ERR_EXPIRED);
        }
        if alloc.data.len() as u64 + data.len() as u64 > alloc.size {
            return Err(ERR_FULL);
        }
        alloc.data.extend_from_slice(data);
        Ok(alloc.data.len() as u64)
    }

    /// Reads a range via the read capability.
    pub fn load(&self, rcap: &Capability, offset: u64, len: u64) -> Result<Vec<u8>, i32> {
        let id = self.resolve(rcap, CapKind::Read)?;
        let now = self.now();
        let st = self.state.lock();
        let alloc = st.allocs.get(&id).ok_or(ERR_NOCAP)?;
        if alloc.expires <= now {
            return Err(ERR_EXPIRED);
        }
        let start = (offset as usize).min(alloc.data.len());
        let end = (start + len as usize).min(alloc.data.len());
        Ok(alloc.data[start..end].to_vec())
    }

    /// Probes via the manage capability: (size, stored, expires,
    /// reliability).
    pub fn probe(&self, mcap: &Capability) -> Result<(u64, u64, u64, Reliability), i32> {
        let id = self.resolve(mcap, CapKind::Manage)?;
        let now = self.now();
        let st = self.state.lock();
        let alloc = st.allocs.get(&id).ok_or(ERR_NOCAP)?;
        if alloc.expires <= now {
            return Err(ERR_EXPIRED);
        }
        Ok((
            alloc.size,
            alloc.data.len() as u64,
            alloc.expires,
            alloc.reliability,
        ))
    }

    /// Extends the duration (expired allocations cannot be revived — the
    /// §8 contrast with renewable lots).
    pub fn extend(&self, mcap: &Capability, extra: u64) -> Result<(), i32> {
        let id = self.resolve(mcap, CapKind::Manage)?;
        let now = self.now();
        let mut st = self.state.lock();
        let alloc = st.allocs.get_mut(&id).ok_or(ERR_NOCAP)?;
        if alloc.expires <= now {
            return Err(ERR_EXPIRED);
        }
        alloc.expires = alloc.expires.saturating_add(extra);
        Ok(())
    }

    /// Deallocates via the manage capability.
    pub fn decrement(&self, mcap: &Capability) -> Result<(), i32> {
        let id = self.resolve(mcap, CapKind::Manage)?;
        let mut st = self.state.lock();
        Self::drop_alloc(&mut st, id);
        Ok(())
    }

    /// Bytes currently reserved (all reliability classes).
    pub fn reserved(&self) -> u64 {
        self.state.lock().allocs.values().map(|a| a.size).sum()
    }
}

/// Serves one IBP connection until QUIT, EOF, drain, or idle reap.
pub fn handle_conn(
    depot: &Arc<IbpDepot>,
    mut stream: TcpStream,
    ctx: &SessionCtx,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    loop {
        match ctx.await_request(&stream)? {
            Await::Ready => {}
            _ => return Ok(()),
        }
        let Some(line) = read_line(&mut stream)? else {
            return Ok(());
        };
        if line.is_empty() {
            continue;
        }
        match parse_command(&line) {
            None => write_line(&mut stream, &format!("{} bad request", ERR_BADREQ))?,
            Some(IbpCommand::Quit) => {
                write_line(&mut stream, &format!("{} bye", CODE_OK))?;
                return Ok(());
            }
            Some(IbpCommand::Allocate {
                size,
                duration,
                reliability,
            }) => match depot.allocate(size, duration, reliability) {
                Ok((r, w, m)) => {
                    write_line(&mut stream, &format!("{} {} {} {}", CODE_OK, r, w, m))?
                }
                Err(code) => write_line(&mut stream, &format!("{} allocate failed", code))?,
            },
            Some(IbpCommand::Store { wcap, nbytes }) => {
                // The payload always follows the request line; read it
                // before judging the capability so the stream stays framed.
                let data = read_exact_vec(&mut stream, nbytes)?;
                match depot.store(&wcap, &data) {
                    Ok(total) => write_line(&mut stream, &format!("{} {}", CODE_OK, total))?,
                    Err(code) => write_line(&mut stream, &format!("{} store failed", code))?,
                }
            }
            Some(IbpCommand::Load { rcap, offset, len }) => match depot.load(&rcap, offset, len) {
                Ok(data) => {
                    write_line(&mut stream, &format!("{} {}", CODE_OK, data.len()))?;
                    stream.write_all(&data)?;
                    stream.flush()?;
                }
                Err(code) => write_line(&mut stream, &format!("{} load failed", code))?,
            },
            Some(IbpCommand::Probe { mcap }) => match depot.probe(&mcap) {
                Ok((size, stored, expires, rel)) => write_line(
                    &mut stream,
                    &format!(
                        "{} {} {} {} {}",
                        CODE_OK,
                        size,
                        stored,
                        expires,
                        rel.as_str()
                    ),
                )?,
                Err(code) => write_line(&mut stream, &format!("{} probe failed", code))?,
            },
            Some(IbpCommand::Extend { mcap, extra }) => match depot.extend(&mcap, extra) {
                Ok(()) => write_line(&mut stream, &format!("{} ok", CODE_OK))?,
                Err(code) => write_line(&mut stream, &format!("{} extend failed", code))?,
            },
            Some(IbpCommand::Decrement { mcap }) => match depot.decrement(&mcap) {
                Ok(()) => write_line(&mut stream, &format!("{} ok", CODE_OK))?,
                Err(code) => write_line(&mut stream, &format!("{} decrement failed", code))?,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn depot_at(capacity: u64) -> (Arc<IbpDepot>, Arc<AtomicU64>) {
        let now = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&now);
        let depot = Arc::new(IbpDepot::with_clock(
            capacity,
            Arc::new(move || n2.load(Ordering::Relaxed)),
        ));
        (depot, now)
    }

    #[test]
    fn allocate_store_load_lifecycle() {
        let (depot, _) = depot_at(1000);
        let (r, w, m) = depot.allocate(100, 60, Reliability::Stable).unwrap();
        assert_eq!(depot.store(&w, b"hello ").unwrap(), 6);
        assert_eq!(depot.store(&w, b"world").unwrap(), 11);
        assert_eq!(depot.load(&r, 6, 5).unwrap(), b"world");
        let (size, stored, _, rel) = depot.probe(&m).unwrap();
        assert_eq!((size, stored, rel), (100, 11, Reliability::Stable));
        depot.decrement(&m).unwrap();
        assert_eq!(depot.load(&r, 0, 1), Err(ERR_NOCAP));
    }

    #[test]
    fn capabilities_enforce_rights() {
        let (depot, _) = depot_at(1000);
        let (r, w, m) = depot.allocate(10, 60, Reliability::Volatile).unwrap();
        // Wrong capability kind for each operation.
        assert_eq!(depot.store(&r, b"x"), Err(ERR_NOCAP));
        assert_eq!(depot.load(&w, 0, 1), Err(ERR_NOCAP));
        assert_eq!(depot.probe(&r), Err(ERR_NOCAP));
        // A forged capability with a correct-looking shape fails too.
        let forged = Capability::mint(m.alloc_id().unwrap(), "m", 12345);
        assert_eq!(depot.decrement(&forged), Err(ERR_NOCAP));
    }

    #[test]
    fn overfill_rejected() {
        let (depot, _) = depot_at(1000);
        let (_, w, _) = depot.allocate(5, 60, Reliability::Stable).unwrap();
        assert_eq!(depot.store(&w, b"123456"), Err(ERR_FULL));
        assert_eq!(depot.store(&w, b"12345").unwrap(), 5);
    }

    #[test]
    fn volatile_revoked_under_pressure_stable_not() {
        let (depot, _) = depot_at(1000);
        let (rv, wv, _) = depot.allocate(600, 60, Reliability::Volatile).unwrap();
        depot.store(&wv, &[1; 600]).unwrap();
        let (_, ws, _) = depot.allocate(300, 60, Reliability::Stable).unwrap();
        depot.store(&ws, &[2; 300]).unwrap();
        // Needing 400 more: the volatile allocation is revoked.
        let (_, _, _) = depot.allocate(400, 60, Reliability::Stable).unwrap();
        assert_eq!(depot.load(&rv, 0, 1), Err(ERR_NOCAP));
        // Now 700/1000 stable reserved; another 400 stable cannot evict
        // stable space.
        assert_eq!(
            depot.allocate(400, 60, Reliability::Stable).err(),
            Some(ERR_FULL)
        );
    }

    #[test]
    fn expired_allocations_are_gone_not_best_effort() {
        // The §8 contrast with lots: no automatic stable→volatile switch;
        // expiry ends the allocation outright and it cannot be revived.
        let (depot, now) = depot_at(1000);
        let (r, w, m) = depot.allocate(100, 10, Reliability::Stable).unwrap();
        depot.store(&w, b"data").unwrap();
        now.store(20, Ordering::Relaxed);
        assert_eq!(depot.load(&r, 0, 4), Err(ERR_EXPIRED));
        assert_eq!(depot.extend(&m, 100), Err(ERR_EXPIRED));
        // Its space is reclaimable by anyone.
        depot.allocate(1000, 60, Reliability::Stable).unwrap();
        assert_eq!(depot.probe(&m), Err(ERR_NOCAP));
    }

    #[test]
    fn extend_prolongs_live_allocations() {
        let (depot, now) = depot_at(1000);
        let (_, _, m) = depot.allocate(10, 10, Reliability::Stable).unwrap();
        depot.extend(&m, 100).unwrap();
        now.store(50, Ordering::Relaxed);
        let (_, _, expires, _) = depot.probe(&m).unwrap();
        assert_eq!(expires, 110);
    }
}
