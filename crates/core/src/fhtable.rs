//! NFS file-handle table: opaque 32-byte handles ↔ virtual paths.
//!
//! Handles carry a 64-bit id and a generation tag. When a path is removed
//! and its id later reused, the generation differs and stale handles are
//! answered with `NFSERR_STALE`, as a correct NFS server must.

use nest_proto::nfs::FileHandle;
use nest_storage::VPath;
use parking_lot::Mutex;
use std::collections::HashMap;

/// The handle table.
#[derive(Debug)]
pub struct FhTable {
    inner: Mutex<FhState>,
}

impl Default for FhTable {
    fn default() -> Self {
        Self {
            inner: Mutex::named("core.fhtable", 110, FhState::default()),
        }
    }
}

#[derive(Debug, Default)]
struct FhState {
    next_id: u64,
    generation: u64,
    by_path: HashMap<VPath, u64>,
    by_id: HashMap<u64, (VPath, u64)>,
}

impl FhTable {
    /// Creates a table whose id 1 is the root directory.
    pub fn new() -> Self {
        let table = Self::default();
        {
            let mut st = table.inner.lock();
            st.next_id = 2;
            st.generation = 1;
            st.by_path.insert(VPath::root(), 1);
            st.by_id.insert(1, (VPath::root(), 1));
        }
        table
    }

    /// The root handle (what MOUNT returns).
    pub fn root(&self) -> FileHandle {
        FileHandle::from_id(1, 1)
    }

    /// Returns (allocating if needed) the handle for a path.
    pub fn handle_for(&self, path: &VPath) -> FileHandle {
        let mut st = self.inner.lock();
        if let Some(&id) = st.by_path.get(path) {
            let generation = st.by_id[&id].1;
            return FileHandle::from_id(id, generation);
        }
        let id = st.next_id;
        st.next_id += 1;
        let generation = st.generation;
        st.by_path.insert(path.clone(), id);
        st.by_id.insert(id, (path.clone(), generation));
        FileHandle::from_id(id, generation)
    }

    /// Resolves a handle to its path; `None` for unknown or stale handles.
    pub fn resolve(&self, fh: &FileHandle) -> Option<VPath> {
        let st = self.inner.lock();
        let (path, generation) = st.by_id.get(&fh.id())?;
        if *generation != fh.generation() {
            return None;
        }
        Some(path.clone())
    }

    /// Forgets a path (on remove/rmdir); its handles become stale.
    pub fn forget(&self, path: &VPath) {
        let mut st = self.inner.lock();
        if let Some(id) = st.by_path.remove(path) {
            st.by_id.remove(&id);
        }
        // Bump the generation so a recreated file at the same path gets a
        // distinguishable handle even if ids were ever reused.
        st.generation += 1;
    }

    /// Re-keys a path (on rename), keeping the same handle valid.
    pub fn rename(&self, from: &VPath, to: &VPath) {
        let mut st = self.inner.lock();
        if let Some(id) = st.by_path.remove(from) {
            st.by_path.insert(to.clone(), id);
            if let Some(entry) = st.by_id.get_mut(&id) {
                entry.0 = to.clone();
            }
        }
    }

    /// The 32-bit file id NFS attributes report for a path.
    pub fn fileid(&self, path: &VPath) -> u32 {
        (self.handle_for(path).id() & 0xFFFF_FFFF) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vp(s: &str) -> VPath {
        VPath::parse(s).unwrap()
    }

    #[test]
    fn root_is_stable() {
        let t = FhTable::new();
        assert_eq!(t.root(), t.handle_for(&VPath::root()));
        assert_eq!(t.resolve(&t.root()), Some(VPath::root()));
    }

    #[test]
    fn same_path_same_handle() {
        let t = FhTable::new();
        let a = t.handle_for(&vp("/f"));
        let b = t.handle_for(&vp("/f"));
        assert_eq!(a, b);
        let c = t.handle_for(&vp("/g"));
        assert_ne!(a, c);
    }

    #[test]
    fn forget_makes_handles_stale() {
        let t = FhTable::new();
        let fh = t.handle_for(&vp("/f"));
        t.forget(&vp("/f"));
        assert_eq!(t.resolve(&fh), None);
        // A recreated file gets a fresh handle that resolves.
        let fh2 = t.handle_for(&vp("/f"));
        assert_ne!(fh, fh2);
        assert_eq!(t.resolve(&fh2), Some(vp("/f")));
    }

    #[test]
    fn rename_keeps_handle_valid() {
        let t = FhTable::new();
        let fh = t.handle_for(&vp("/old"));
        t.rename(&vp("/old"), &vp("/new"));
        assert_eq!(t.resolve(&fh), Some(vp("/new")));
        assert_eq!(t.handle_for(&vp("/new")), fh);
    }

    #[test]
    fn fileid_is_stable() {
        let t = FhTable::new();
        assert_eq!(t.fileid(&vp("/x")), t.fileid(&vp("/x")));
        assert_ne!(t.fileid(&vp("/x")), t.fileid(&vp("/y")));
    }
}
